// Unit and property tests for src/util: RNG, statistics, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "src/util/cli.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace vlsipart {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 500 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, TruncatedGeometricBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.truncated_geometric(2, 10, 0.5);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 10u);
  }
  EXPECT_EQ(rng.truncated_geometric(5, 5, 0.5), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkStreamsIndependent) {
  Rng base(31);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
  // Forking is a const operation: repeated forks with the same id agree.
  Rng a2 = base.fork(0);
  Rng a3 = base.fork(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a2.next(), a3.next());
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(37);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  RunningStats other;
  s.merge(other);
  EXPECT_TRUE(s.empty());
}

TEST(Sample, OrderStatistics) {
  Sample s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Sample, ExpectedMinOfOneIsMean) {
  Sample s;
  for (double x : {10.0, 20.0, 30.0}) s.add(x);
  EXPECT_NEAR(s.expected_min_of(1), 20.0, 1e-12);
}

TEST(Sample, ExpectedMinOfAllIsMin) {
  Sample s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_NEAR(s.expected_min_of(4), 10.0, 1e-12);
  EXPECT_NEAR(s.expected_min_of(100), 10.0, 1e-12);
}

TEST(Sample, ExpectedMinMatchesBruteForce) {
  // E[min of 2 of {1,2,3,4}] without replacement:
  // pairs (6): min 1 x3, min 2 x2, min 3 x1 -> (3+4+3)/6 = 5/3.
  Sample s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_NEAR(s.expected_min_of(2), 5.0 / 3.0, 1e-12);
  // E[min of 3 of {1,2,3,4}]: triples (4): min 1 x3, min 2 x1 -> 5/4.
  EXPECT_NEAR(s.expected_min_of(3), 5.0 / 4.0, 1e-12);
}

TEST(Sample, ExpectedMinMonotoneInK) {
  Rng rng(41);
  Sample s;
  for (int i = 0; i < 100; ++i) s.add(rng.uniform(10.0, 50.0));
  double prev = s.expected_min_of(1);
  for (std::size_t k = 2; k <= 100; ++k) {
    const double cur = s.expected_min_of(k);
    EXPECT_LE(cur, prev + 1e-9) << "k=" << k;
    prev = cur;
  }
}

TEST(Sample, GeometricMean) {
  Sample s;
  for (double x : {1.0, 4.0, 16.0}) s.add(x);
  EXPECT_NEAR(s.geometric_mean(), 4.0, 1e-12);
  Sample single;
  single.add(7.0);
  EXPECT_NEAR(single.geometric_mean(), 7.0, 1e-12);
  Sample empty;
  EXPECT_DOUBLE_EQ(empty.geometric_mean(), 0.0);
  Sample with_zero;
  with_zero.add(0.0);
  with_zero.add(2.0);
  EXPECT_DOUBLE_EQ(with_zero.geometric_mean(), 0.0);
}

TEST(Sample, ProbMinLeq) {
  Sample s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_NEAR(s.prob_min_leq(1, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(s.prob_min_leq(2, 2.0), 0.75, 1e-12);
  EXPECT_NEAR(s.prob_min_leq(1, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(s.prob_min_leq(3, 4.0), 1.0, 1e-12);
}

TEST(TextTable, AlignedRendering) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, CsvRendering) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_min_avg(219, 283.4), "219/283");
  EXPECT_EQ(fmt_cut_cpu(265.7, 6.4), "265.7/6.40");
  EXPECT_EQ(fmt_cut_cpu(265.7, 6.4, 1), "265.7/6.4");
}

TEST(Cli, ParsesAllStyles) {
  // Note the greedy "--name value" rule: a bare option followed by a
  // non-option token consumes it, so boolean flags must precede another
  // option or come last.
  const char* argv[] = {"prog", "pos1",    "--alpha", "3",   "--beta=x",
                        "pos2", "--flag2", "--gamma", "2.5", "--flag"};
  const CliArgs args(10, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "x");
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_TRUE(args.get_bool("flag2"));
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0.0), 2.5);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 42), 42);
}

TEST(Cli, ParsesLists) {
  const char* argv[] = {"prog", "--cases", "ibm01,ibm02,ibm03"};
  const CliArgs args(3, argv);
  const auto list = args.get_list("cases", "");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "ibm01");
  EXPECT_EQ(list[2], "ibm03");
  const auto fallback = args.get_list("other", "a,b");
  ASSERT_EQ(fallback.size(), 2u);
}

TEST(Cli, StrictIntParsing) {
  const char* argv[] = {"prog",       "--starts", "12x",  "--runs", "abc",
                        "--empty-ok", "--big",    "999999999999999999999",
                        "--good",     "17"};
  const CliArgs args(10, argv);
  EXPECT_EQ(args.get_int("good", 0), 17);
  // Trailing garbage, non-numeric text, overflow, and a valueless flag
  // all throw instead of silently becoming 0 or a truncated prefix.
  EXPECT_THROW(args.get_int("starts", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int("runs", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int("big", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int("empty-ok", 0), std::invalid_argument);
  // The error message names the option and the offending text.
  try {
    args.get_int("starts", 0);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("starts"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12x"), std::string::npos);
  }
}

TEST(Cli, StrictDoubleParsing) {
  const char* argv[] = {"prog", "--tol", "0.02oops", "--scale", "0.25",
                        "--sci", "1e-3"};
  const CliArgs args(7, argv);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("sci", 0.0), 1e-3);
  EXPECT_THROW(args.get_double("tol", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 0.5), 0.5);
}

TEST(Cli, CheckKnownAcceptsVocabulary) {
  const char* argv[] = {"prog", "--threads", "8", "--seed", "3"};
  const CliArgs args(5, argv);
  EXPECT_NO_THROW(args.check_known({"threads", "seed", "scale"}));
}

TEST(Cli, CheckKnownRejectsTypoWithSuggestion) {
  const char* argv[] = {"prog", "--thread", "8"};
  const CliArgs args(3, argv);
  try {
    args.check_known({"threads", "seed", "scale"});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--thread"), std::string::npos);
    EXPECT_NE(what.find("--threads"), std::string::npos) << what;
  }
}

TEST(Cli, CheckKnownRejectsUnrelatedOption) {
  const char* argv[] = {"prog", "--zzzzzzz", "8"};
  const CliArgs args(3, argv);
  EXPECT_THROW(args.check_known({"threads", "seed"}),
               std::invalid_argument);
}

TEST(Logging, CheckFailureThrows) {
  EXPECT_THROW(VP_CHECK(false, "intentional"), std::logic_error);
  EXPECT_NO_THROW(VP_CHECK(true, "fine"));
}

}  // namespace
}  // namespace vlsipart
