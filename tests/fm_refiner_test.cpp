// Tests for the FM/CLIP refinement engine: correctness invariants, the
// implicit-decision policies, and the CLIP corking effect of Sec. 2.3.
#include <gtest/gtest.h>

#include <tuple>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/core/partitioner.h"

namespace vlsipart {
namespace {

/// Two 6-vertex clusters joined by a single bridge net; optimal 2-way
/// cut is 1 at any reasonable tolerance.
Hypergraph two_clusters() {
  HypergraphBuilder b(12);
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) {
      b.add_edge({i, j});
      b.add_edge({static_cast<VertexId>(6 + i), static_cast<VertexId>(6 + j)});
    }
  }
  b.add_edge({0, 6});  // bridge
  return b.finalize("two-clusters");
}

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(FmRefiner, FindsOptimalCutOnSeparableInstance) {
  const Hypergraph h = two_clusters();
  const PartitionProblem p = make_problem(h, 0.2);
  int optimal_found = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto parts = random_initial(p, rng);
    PartitionState state(h);
    state.assign(parts);
    FmRefiner refiner(p, FmConfig{});
    refiner.refine(state, rng);
    if (state.cut() == 1) ++optimal_found;
    EXPECT_EQ(check_solution(p, state.parts()), "");
  }
  // FM from a random start should find the planted bisection nearly
  // always on this trivially separable instance.
  EXPECT_GE(optimal_found, 8);
}

TEST(FmRefiner, NeverWorsensCut) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto parts = random_initial(p, rng);
    PartitionState state(h);
    state.assign(parts);
    const Weight before = state.cut();
    FmRefiner refiner(p, FmConfig{});
    const FmResult r = refiner.refine(state, rng);
    EXPECT_LE(state.cut(), before);
    EXPECT_EQ(r.final_cut, state.cut());
    EXPECT_EQ(r.initial_cut, before);
    state.audit();
  }
}

TEST(FmRefiner, PreservesFeasibility) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto parts = random_initial(p, rng);
    ASSERT_EQ(check_solution(p, parts), "");
    PartitionState state(h);
    state.assign(parts);
    FmRefiner refiner(p, FmConfig{});
    refiner.refine(state, rng);
    EXPECT_EQ(check_solution(p, state.parts()), "");
  }
}

TEST(FmRefiner, FixedVerticesNeverMove) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.2);
  p.fixed.assign(h.num_vertices(), kNoPart);
  p.fixed[1] = 0;
  p.fixed[5] = 1;
  p.fixed[9] = 1;
  Rng rng(3);
  auto parts = random_initial(p, rng);
  PartitionState state(h);
  state.assign(parts);
  FmRefiner refiner(p, FmConfig{});
  refiner.refine(state, rng);
  EXPECT_EQ(state.part(1), 0);
  EXPECT_EQ(state.part(5), 1);
  EXPECT_EQ(state.part(9), 1);
}

TEST(FmRefiner, RecoversFromInfeasibleStart) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  // Everything in part 0: grossly infeasible.
  std::vector<PartId> parts(h.num_vertices(), 0);
  parts[0] = 1;  // parts must be {0,1}-assigned; near-degenerate split
  PartitionState state(h);
  state.assign(parts);
  FmRefiner refiner(p, FmConfig{});
  Rng rng(1);
  refiner.refine(state, rng);
  EXPECT_TRUE(p.balance.feasible(state.part_weight(0)))
      << "w0=" << state.part_weight(0) << " window "
      << p.balance.to_string();
}

/// Corking construction (Sec. 2.3): one oversized, highest-gain cell on
/// each side sits at the head of CLIP's zero-gain bucket and blocks the
/// whole pass.
struct CorkFixture {
  Hypergraph h;
  PartitionProblem p;
  std::vector<PartId> parts;

  CorkFixture() {
    HypergraphBuilder b(22);
    // Vertices 0..9 small part-0 cells, 10..19 small part-1 cells,
    // 20 = big cell in part 0, 21 = big cell in part 1.
    b.set_vertex_weight(20, 50);
    b.set_vertex_weight(21, 50);
    // High gain for the big cells: 5 cut 2-pin nets each.
    for (VertexId i = 0; i < 5; ++i) {
      b.add_edge({20, static_cast<VertexId>(10 + i)});
      b.add_edge({21, static_cast<VertexId>(0 + i)});
    }
    // Mildly negative gains for small cells: same-side pair nets.
    for (VertexId i = 0; i + 1 < 10; ++i) {
      b.add_edge({i, static_cast<VertexId>(i + 1)});
      b.add_edge({static_cast<VertexId>(10 + i),
                  static_cast<VertexId>(10 + i + 1)});
    }
    // A few cross nets so small-cell moves can improve the cut.
    b.add_edge({2, 12});
    b.add_edge({3, 13});
    h = b.finalize("cork");
    p.graph = &h;
    // Total weight 120; window must be < 50 so the big cells can never
    // move legally: tolerance 5% -> window 6, parts in [57, 63].
    p.balance = BalanceConstraint::from_tolerance(120, 0.05);
    parts.assign(22, 0);
    for (VertexId i = 10; i < 20; ++i) parts[i] = 1;
    parts[20] = 0;
    parts[21] = 1;
  }
};

TEST(Corking, ClipWithoutFixStallsWithZeroMovePass) {
  CorkFixture f;
  PartitionState state(f.h);
  state.assign(f.parts);
  FmConfig cfg;
  cfg.clip = true;
  cfg.exclude_oversized = false;
  FmRefiner refiner(f.p, cfg);
  Rng rng(1);
  const FmResult r = refiner.refine(state, rng);
  EXPECT_GE(r.zero_move_passes, 1u);
  EXPECT_EQ(r.total_moves, 0u);
  EXPECT_EQ(state.cut(), compute_cut(f.h, f.parts));  // nothing improved
}

TEST(Corking, OversizedExclusionUncorks) {
  CorkFixture f;
  PartitionState state(f.h);
  state.assign(f.parts);
  FmConfig cfg;
  cfg.clip = true;
  cfg.exclude_oversized = true;  // "Our CLIP" fix
  FmRefiner refiner(f.p, cfg);
  Rng rng(1);
  const FmResult r = refiner.refine(state, rng);
  EXPECT_EQ(r.zero_move_passes, 0u);
  EXPECT_GT(r.total_moves, 0u);
  EXPECT_GT(r.pass_stats.at(0).oversized_excluded, 0u);
}

TEST(Corking, LookBeyondFirstAlsoUncorks) {
  CorkFixture f;
  PartitionState state(f.h);
  state.assign(f.parts);
  FmConfig cfg;
  cfg.clip = true;
  cfg.look_beyond_first = true;  // the "too time-consuming" alternative
  FmRefiner refiner(f.p, cfg);
  Rng rng(1);
  const FmResult r = refiner.refine(state, rng);
  EXPECT_GT(r.total_moves, 0u);
}

TEST(Corking, ClassicFmIsNotCorked) {
  // Classic FM keys by actual gain, so the big cells sit in their own
  // high-gain buckets; skipping those buckets still reaches the small
  // cells below — no corking.
  CorkFixture f;
  PartitionState state(f.h);
  state.assign(f.parts);
  FmConfig cfg;
  cfg.clip = false;
  FmRefiner refiner(f.p, cfg);
  Rng rng(1);
  const FmResult r = refiner.refine(state, rng);
  EXPECT_GT(r.total_moves, 0u);
  EXPECT_EQ(r.zero_move_passes, 0u);
}

TEST(FmRefiner, ZeroGainPolicyChangesTrajectory) {
  // All-dgain vs Nonzero must (generically) produce different results on
  // an actual-area instance — this is the Table 1 effect.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  int differs = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto run_with = [&](ZeroGainUpdate policy) {
      Rng rng(seed);
      auto parts = random_initial(p, rng);
      PartitionState state(h);
      state.assign(parts);
      FmConfig cfg;
      cfg.zero_gain_update = policy;
      FmRefiner refiner(p, cfg);
      refiner.refine(state, rng);
      return state.cut();
    };
    if (run_with(ZeroGainUpdate::kAll) != run_with(ZeroGainUpdate::kNonzero)) {
      ++differs;
    }
  }
  EXPECT_GE(differs, 4);
}

TEST(FmRefiner, EarlyExitLimitsMoves) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(2);
  auto parts = random_initial(p, rng);

  FmConfig unlimited;
  PartitionState a(h);
  a.assign(parts);
  Rng ra(7);
  FmRefiner rf_a(p, unlimited);
  const FmResult full = rf_a.refine(a, ra);

  FmConfig capped;
  capped.max_moves_past_best = 20;
  PartitionState b(h);
  b.assign(parts);
  Rng rb(7);
  FmRefiner rf_b(p, capped);
  const FmResult early = rf_b.refine(b, rb);

  EXPECT_LT(early.total_moves, full.total_moves);
  EXPECT_EQ(check_solution(p, b.parts()), "");
}

TEST(FmRefiner, MaxPassesRespected) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(4);
  auto parts = random_initial(p, rng);
  PartitionState state(h);
  state.assign(parts);
  FmConfig cfg;
  cfg.max_passes = 1;
  FmRefiner refiner(p, cfg);
  const FmResult r = refiner.refine(state, rng);
  EXPECT_EQ(r.passes, 1u);
}

TEST(FmConfig, ToStringNamesEveryPolicy) {
  FmConfig cfg;
  cfg.clip = true;
  cfg.exclude_oversized = true;
  cfg.look_beyond_first = true;
  const std::string s = cfg.to_string();
  EXPECT_NE(s.find("CLIP"), std::string::npos);
  EXPECT_NE(s.find("Away"), std::string::npos);
  EXPECT_NE(s.find("Nonzero"), std::string::npos);
  EXPECT_NE(s.find("LIFO"), std::string::npos);
  EXPECT_NE(s.find("noOversized"), std::string::npos);
  EXPECT_NE(s.find("lookBeyond"), std::string::npos);
}

// ---------------------------------------------------------------------
// Property sweep over the full implicit-decision cross-product: every
// combination must satisfy the engine invariants (feasible result,
// never-worse cut, internal consistency, determinism).
// ---------------------------------------------------------------------

using PolicyTuple =
    std::tuple<bool, TieBreak, ZeroGainUpdate, InsertOrder, BestChoice>;

class FmPolicySweep : public ::testing::TestWithParam<PolicyTuple> {};

TEST_P(FmPolicySweep, InvariantsHoldForEveryPolicyCombination) {
  const auto [clip, tie, zero, insert, best] = GetParam();
  FmConfig cfg;
  cfg.clip = clip;
  cfg.tie_break = tie;
  cfg.zero_gain_update = zero;
  cfg.insert_order = insert;
  cfg.best_choice = best;
  cfg.exclude_oversized = clip;  // keep CLIP variants uncorked

  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);

  Rng init_rng(11);
  const auto parts = random_initial(p, init_rng);
  const Weight before = compute_cut(h, parts);

  auto run_once = [&]() {
    PartitionState state(h);
    state.assign(parts);
    Rng rng(77);
    FmRefiner refiner(p, cfg);
    refiner.refine(state, rng);
    state.audit();
    return state;
  };

  PartitionState state = run_once();
  EXPECT_LE(state.cut(), before) << cfg.to_string();
  EXPECT_EQ(check_solution(p, state.parts()), "") << cfg.to_string();
  // Determinism: identical seed and config reproduce the exact result.
  PartitionState again = run_once();
  EXPECT_EQ(state.parts(), again.parts()) << cfg.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FmPolicySweep,
    ::testing::Combine(
        ::testing::Values(false, true),
        ::testing::Values(TieBreak::kAway, TieBreak::kPart0,
                          TieBreak::kToward),
        ::testing::Values(ZeroGainUpdate::kAll, ZeroGainUpdate::kNonzero),
        ::testing::Values(InsertOrder::kLifo, InsertOrder::kFifo,
                          InsertOrder::kRandom),
        ::testing::Values(BestChoice::kFirst, BestChoice::kLast,
                          BestChoice::kBalance)));

}  // namespace
}  // namespace vlsipart
