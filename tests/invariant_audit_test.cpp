// Tests for the runtime invariant-audit harness: AuditConfig parsing,
// the from-scratch gain/state cross-checks, the fail-fast paths on
// deliberately corrupted structures, and the guarantee that enabling
// audits never changes a result.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/core/invariant_audit.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

/// RAII guard: sets VLSIPART_AUDIT for one scope, restores on exit.
class ScopedAuditEnv {
 public:
  explicit ScopedAuditEnv(const char* value) {
    const char* old = std::getenv("VLSIPART_AUDIT");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("VLSIPART_AUDIT");
    } else {
      ::setenv("VLSIPART_AUDIT", value, 1);
    }
  }
  ~ScopedAuditEnv() {
    if (had_old_) {
      ::setenv("VLSIPART_AUDIT", old_.c_str(), 1);
    } else {
      ::unsetenv("VLSIPART_AUDIT");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(AuditConfig, EnvParsing) {
  {
    ScopedAuditEnv env(nullptr);
    EXPECT_FALSE(AuditConfig::from_env().has_value());
  }
  {
    ScopedAuditEnv env("");
    EXPECT_FALSE(AuditConfig::from_env().has_value());
  }
  {
    ScopedAuditEnv env("off");
    const auto config = AuditConfig::from_env();
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->mode, AuditMode::kOff);
    EXPECT_FALSE(config->enabled());
  }
  {
    ScopedAuditEnv env("pass");
    const auto config = AuditConfig::from_env();
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->mode, AuditMode::kPerPass);
    EXPECT_TRUE(config->enabled());
  }
  {
    ScopedAuditEnv env("moves");
    const auto config = AuditConfig::from_env();
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->mode, AuditMode::kPerMoves);
    EXPECT_EQ(config->every_moves, 256u);
  }
  {
    ScopedAuditEnv env("moves:17");
    const auto config = AuditConfig::from_env();
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->mode, AuditMode::kPerMoves);
    EXPECT_EQ(config->every_moves, 17u);
    EXPECT_EQ(config->to_string(), "moves:17");
  }
  {
    ScopedAuditEnv env("bogus");
    EXPECT_THROW(AuditConfig::from_env(), std::logic_error);
  }
  {
    ScopedAuditEnv env("moves:0");
    EXPECT_THROW(AuditConfig::from_env(), std::logic_error);
  }
}

TEST(AuditConfig, EnvOverridesConfig) {
  AuditConfig base;
  base.mode = AuditMode::kPerPass;
  {
    ScopedAuditEnv env(nullptr);
    EXPECT_EQ(AuditConfig::resolve(base).mode, AuditMode::kPerPass);
  }
  {
    ScopedAuditEnv env("off");
    EXPECT_EQ(AuditConfig::resolve(base).mode, AuditMode::kOff);
  }
  {
    ScopedAuditEnv env("moves:4");
    const AuditConfig resolved = AuditConfig::resolve(base);
    EXPECT_EQ(resolved.mode, AuditMode::kPerMoves);
    EXPECT_EQ(resolved.every_moves, 4u);
  }
}

/// Two triangles joined by one bridge net (7 edges, 6 vertices).
Hypergraph small_graph() {
  HypergraphBuilder b(6);
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  b.add_edge({0, 2});
  b.add_edge({3, 4});
  b.add_edge({4, 5});
  b.add_edge({3, 5});
  b.add_edge({2, 3});  // bridge
  return b.finalize("audit-small");
}

PartitionProblem make_problem(const Hypergraph& h) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.4);
  return p;
}

/// Builds a consistent (state, container, view) fixture mirroring what
/// run_pass() constructs, then lets the caller corrupt pieces of it.
struct AuditFixture {
  Hypergraph h = small_graph();
  PartitionProblem problem = make_problem(h);
  FmConfig config;
  PartitionState state{h};
  GainContainer container{h.num_vertices(), InsertOrder::kLifo};
  std::vector<Gain> initial_gain;
  std::vector<std::uint8_t> locked;
  Rng rng{7};

  AuditFixture() {
    state.assign(std::vector<PartId>{0, 0, 0, 1, 1, 1});
    container.reset(16);
    initial_gain.resize(h.num_vertices());
    locked.assign(h.num_vertices(), 0);
    for (std::size_t v = 0; v < h.num_vertices(); ++v) {
      const auto vid = static_cast<VertexId>(v);
      initial_gain[v] = state.gain(vid);
      container.insert(vid, state.part(vid), initial_gain[v], rng);
    }
  }

  FmAuditView view() const {
    FmAuditView out;
    out.problem = &problem;
    out.config = &config;
    out.state = &state;
    out.container = &container;
    out.initial_gain = initial_gain;
    out.locked = locked;
    return out;
  }
};

TEST(InvariantAudit, ConsistentContainerPasses) {
  AuditFixture f;
  EXPECT_NO_THROW(audit_gain_container(f.view()));
  EXPECT_NO_THROW(audit_mid_pass(f.view()));
}

TEST(InvariantAudit, CatchesCorruptedGainKey) {
  AuditFixture f;
  // Shift vertex 2's key by +1 without touching the state: exactly the
  // signature of a delta-gain update bug.
  f.container.update_key(2, +1, f.rng);
  EXPECT_THROW(audit_gain_container(f.view()), std::logic_error);
  try {
    audit_gain_container(f.view());
    FAIL() << "corrupted key not caught";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("gain key drift"), std::string::npos)
        << e.what();
  }
}

TEST(InvariantAudit, CatchesWrongSideBookkeeping) {
  AuditFixture f;
  // Re-home vertex 4 onto side 0 while the state says part 1.
  f.container.remove(4);
  f.container.insert(4, 0, f.initial_gain[4], f.rng);
  EXPECT_THROW(audit_gain_container(f.view()), std::logic_error);
}

TEST(InvariantAudit, CatchesLockedVertexStillContained) {
  AuditFixture f;
  f.locked[1] = 1;  // locked but never removed from the container
  EXPECT_THROW(audit_gain_container(f.view()), std::logic_error);
}

TEST(InvariantAudit, CatchesMissingFreeVertex) {
  AuditFixture f;
  f.container.remove(5);  // removed but not locked
  EXPECT_THROW(audit_gain_container(f.view()), std::logic_error);
}

TEST(InvariantAudit, ClipKeysAreCumulativeDeltas) {
  AuditFixture f;
  f.config.clip = true;
  // CLIP containers start at key 0; the audit must reconstruct the
  // cumulative-delta baseline from initial_gain, not expect raw gains.
  GainContainer clip(f.h.num_vertices(), InsertOrder::kLifo);
  clip.reset(16);
  for (std::size_t v = 0; v < f.h.num_vertices(); ++v) {
    clip.insert_at_head(static_cast<VertexId>(v),
                        f.state.part(static_cast<VertexId>(v)), 0);
  }
  FmAuditView view = f.view();
  view.container = &clip;
  EXPECT_NO_THROW(audit_gain_container(view));
  clip.update_key(0, +2, f.rng);
  EXPECT_THROW(audit_gain_container(view), std::logic_error);
}

TEST(InvariantAudit, PassBoundaryAcceptsConsistentState) {
  AuditFixture f;
  EXPECT_NO_THROW(audit_pass_boundary(f.problem, f.state,
                                      /*imbalance_before=*/0,
                                      /*cut_before=*/f.state.cut()));
}

TEST(InvariantAudit, PassBoundaryRejectsWorsenedCut) {
  AuditFixture f;
  // Pretend the pass started from a strictly better cut at equal
  // imbalance: the rollback guarantee says that cannot happen.
  EXPECT_THROW(audit_pass_boundary(f.problem, f.state, /*imbalance_before=*/0,
                                   /*cut_before=*/f.state.cut() - 1),
               std::logic_error);
}

TEST(InvariantAudit, LockedPinAuditCatchesDrift) {
  AuditFixture f;
  std::array<std::vector<std::uint32_t>, 2> locked_in;
  locked_in[0].assign(f.h.num_edges(), 0);
  locked_in[1].assign(f.h.num_edges(), 0);
  FmAuditView view = f.view();
  view.locked_in = &locked_in;
  EXPECT_NO_THROW(audit_locked_pins(view));
  locked_in[0][3] = 1;  // phantom locked pin
  EXPECT_THROW(audit_locked_pins(view), std::logic_error);
}

/// Refinement results must be bit-identical with audits off, per-pass,
/// and per-move — audits observe, they never steer.
TEST(InvariantAudit, AuditsNeverChangeResults) {
  const Hypergraph h = generate_netlist(preset("ibm01").scaled(0.05));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.1);

  auto run_with = [&](AuditMode mode, std::size_t every) {
    FmConfig config;
    config.clip = true;
    config.audit.mode = mode;
    config.audit.every_moves = every;
    Rng rng(42);
    PartitionState state(h);
    state.assign(make_initial(problem, InitialScheme::kRandom, 0, rng));
    FmRefiner refiner(problem, config);
    Rng refine_rng(99);
    refiner.refine(state, refine_rng);
    return state.parts();
  };

  const auto baseline = run_with(AuditMode::kOff, 0);
  EXPECT_EQ(baseline, run_with(AuditMode::kPerPass, 0));
  EXPECT_EQ(baseline, run_with(AuditMode::kPerMoves, 8));
}

/// End-to-end: the ML pipeline (contraction validation + projection cut
/// audit + per-pass FM audits) runs clean under VLSIPART_AUDIT and
/// produces the identical partition.
TEST(InvariantAudit, MlPipelineCleanUnderEnvAudit) {
  const Hypergraph h = generate_netlist(preset("ibm01").scaled(0.05));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.1);

  auto run_once = [&]() {
    MlConfig config;
    MlPartitioner partitioner(config);
    Rng rng(7);
    std::vector<PartId> parts;
    partitioner.run(problem, rng, parts);
    return parts;
  };

  std::vector<PartId> baseline;
  {
    ScopedAuditEnv env(nullptr);
    baseline = run_once();
  }
  std::vector<PartId> audited;
  {
    ScopedAuditEnv env("pass");
    audited = run_once();
  }
  EXPECT_EQ(baseline, audited);
}

}  // namespace
}  // namespace vlsipart
