// Tests for the bucket-array gain container, including the insertion-
// order policies whose effects the paper (and [21]) study.
#include <gtest/gtest.h>

#include "src/part/core/gain_container.h"

namespace vlsipart {
namespace {

TEST(GainContainer, InsertRemoveBasics) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(10);
  EXPECT_TRUE(c.empty());
  c.insert(3, 0, 5, rng);
  c.insert(4, 1, -2, rng);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.size(0), 1u);
  EXPECT_EQ(c.size(1), 1u);
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.key(3), 5);
  EXPECT_EQ(c.side_of(3), 0);
  EXPECT_EQ(c.max_key(0), 5);
  EXPECT_EQ(c.max_key(1), -2);
  c.remove(3);
  EXPECT_FALSE(c.contains(3));
  EXPECT_EQ(c.size(0), 0u);
}

TEST(GainContainer, LifoOrderWithinBucket) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 3, rng);
  c.insert(1, 0, 3, rng);
  c.insert(2, 0, 3, rng);
  // LIFO: last inserted at the head.
  EXPECT_EQ(c.bucket_head(0, 3), 2u);
  EXPECT_EQ(c.next_in_bucket(2), 1u);
  EXPECT_EQ(c.next_in_bucket(1), 0u);
  EXPECT_EQ(c.next_in_bucket(0), kInvalidVertex);
}

TEST(GainContainer, FifoOrderWithinBucket) {
  GainContainer c(8, InsertOrder::kFifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 3, rng);
  c.insert(1, 0, 3, rng);
  c.insert(2, 0, 3, rng);
  EXPECT_EQ(c.bucket_head(0, 3), 0u);
  EXPECT_EQ(c.next_in_bucket(0), 1u);
  EXPECT_EQ(c.next_in_bucket(1), 2u);
}

TEST(GainContainer, RandomOrderIsDeterministicGivenSeed) {
  auto heads = [](std::uint64_t seed) {
    GainContainer c(16, InsertOrder::kRandom);
    Rng rng(seed);
    c.reset(5);
    for (VertexId v = 0; v < 16; ++v) c.insert(v, 0, 0, rng);
    std::vector<VertexId> order;
    for (VertexId v = c.bucket_head(0, 0); v != kInvalidVertex;
         v = c.next_in_bucket(v)) {
      order.push_back(v);
    }
    return order;
  };
  EXPECT_EQ(heads(42), heads(42));
  EXPECT_NE(heads(42), heads(43));
}

TEST(GainContainer, InsertAtHeadOverridesPolicy) {
  GainContainer c(8, InsertOrder::kFifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 2, rng);
  c.insert_at_head(1, 0, 2);
  EXPECT_EQ(c.bucket_head(0, 2), 1u);
}

TEST(GainContainer, UpdateKeyMovesBuckets) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(10);
  c.insert(5, 1, 0, rng);
  c.update_key(5, 4, rng);
  EXPECT_EQ(c.key(5), 4);
  EXPECT_EQ(c.max_key(1), 4);
  c.update_key(5, -7, rng);
  EXPECT_EQ(c.key(5), -3);
  EXPECT_EQ(c.max_key(1), -3);
}

TEST(GainContainer, UpdateKeyClampsAtBounds) {
  GainContainer c(4, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(3);
  c.insert(0, 0, 2, rng);
  c.update_key(0, 100, rng);
  EXPECT_EQ(c.key(0), 3);
  c.update_key(0, -100, rng);
  EXPECT_EQ(c.key(0), -3);
}

TEST(GainContainer, ReinsertShiftsPositionUnderLifo) {
  // The All-dgain zero-delta update: reinsertion moves a vertex to the
  // head under LIFO — the position shift the paper describes.
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 1, rng);
  c.insert(1, 0, 1, rng);
  c.insert(2, 0, 1, rng);
  EXPECT_EQ(c.bucket_head(0, 1), 2u);
  c.reinsert(0, rng);
  EXPECT_EQ(c.bucket_head(0, 1), 0u);
  EXPECT_EQ(c.key(0), 1);
}

TEST(GainContainer, MaxKeyDescendsLazily) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(10);
  c.insert(0, 0, 9, rng);
  c.insert(1, 0, -4, rng);
  EXPECT_EQ(c.max_key(0), 9);
  c.remove(0);
  EXPECT_EQ(c.max_key(0), -4);
  c.insert(2, 0, 3, rng);
  EXPECT_EQ(c.max_key(0), 3);
}

TEST(GainContainer, NextNonemptyBelow) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(10);
  c.insert(0, 0, 7, rng);
  c.insert(1, 0, 2, rng);
  c.insert(2, 0, -10, rng);
  EXPECT_EQ(c.next_nonempty_below(0, 7), 2);
  EXPECT_EQ(c.next_nonempty_below(0, 2), -10);
  EXPECT_LT(c.next_nonempty_below(0, -10), c.min_representable_key());
}

TEST(GainContainer, ResetClearsEverything) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 1, rng);
  c.insert(1, 1, 2, rng);
  c.reset(7);
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.max_representable_key(), 7);
}

TEST(GainContainer, SidesAreSegregated) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 4, rng);
  c.insert(1, 1, 4, rng);
  EXPECT_EQ(c.bucket_head(0, 4), 0u);
  EXPECT_EQ(c.bucket_head(1, 4), 1u);
  c.remove(0);
  EXPECT_EQ(c.bucket_head(0, 4), kInvalidVertex);
  EXPECT_EQ(c.bucket_head(1, 4), 1u);
}

TEST(GainContainer, MiddleRemovalRelinksList) {
  GainContainer c(8, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(5);
  c.insert(0, 0, 2, rng);
  c.insert(1, 0, 2, rng);
  c.insert(2, 0, 2, rng);  // list: 2 -> 1 -> 0
  c.remove(1);
  EXPECT_EQ(c.bucket_head(0, 2), 2u);
  EXPECT_EQ(c.next_in_bucket(2), 0u);
  EXPECT_EQ(c.next_in_bucket(0), kInvalidVertex);
  c.remove(2);  // head removal
  EXPECT_EQ(c.bucket_head(0, 2), 0u);
  c.remove(0);  // tail/last removal
  EXPECT_EQ(c.bucket_head(0, 2), kInvalidVertex);
  EXPECT_TRUE(c.empty());
}

TEST(GainContainer, OutOfRangeBucketHeadIsInvalid) {
  GainContainer c(4, InsertOrder::kLifo);
  Rng rng(1);
  c.reset(3);
  EXPECT_EQ(c.bucket_head(0, 100), kInvalidVertex);
  EXPECT_EQ(c.bucket_head(0, -100), kInvalidVertex);
}

}  // namespace
}  // namespace vlsipart
