// Tests for k-way partitioning via recursive bisection.
#include <gtest/gtest.h>

#include <set>

#include "src/gen/netlist_gen.h"
#include "src/part/kway/recursive_bisection.h"

namespace vlsipart {
namespace {

TEST(KwayCut, HandComputed) {
  HypergraphBuilder b(6);
  b.add_edge({0, 1});        // same part below
  b.add_edge({1, 2, 3});     // spans parts 0 and 1
  b.add_edge({4, 5}, 3);     // same part
  b.add_edge({0, 5});        // spans parts 0 and 2
  const Hypergraph h = b.finalize();
  const std::vector<PartId> parts = {0, 0, 1, 1, 2, 2};
  EXPECT_EQ(kway_cut(h, parts), 2);
  const std::vector<PartId> one_part(6, 0);
  EXPECT_EQ(kway_cut(h, one_part), 0);
}

TEST(KwayCut, MatchesTwoWayCutForK2) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  Rng rng(1);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
  PartitionState s(h);
  s.assign(parts);
  EXPECT_EQ(kway_cut(h, parts), s.cut());
}

class KwaySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KwaySweep, ProducesValidKwayPartitions) {
  const std::size_t k = GetParam();
  const Hypergraph h = generate_netlist(preset("small"));
  KwayConfig config;
  config.k = k;
  config.tolerance = 0.25;
  config.seed = 3;
  const KwayResult r = recursive_bisection(h, config);
  ASSERT_EQ(r.parts.size(), h.num_vertices());
  // Every part in range and populated.
  std::set<PartId> used(r.parts.begin(), r.parts.end());
  EXPECT_EQ(used.size(), k);
  for (const PartId p : used) EXPECT_LT(p, k);
  // Cut consistent.
  EXPECT_EQ(r.cut, kway_cut(h, r.parts));
  // Balance within the configured tolerance band.
  EXPECT_EQ(check_kway(h, r.parts, k, config.tolerance), "");
  // Part weights sum to total.
  Weight sum = 0;
  for (const Weight w : r.part_weights) sum += w;
  EXPECT_EQ(sum, h.total_vertex_weight());
  // k-1 bisections for a full decomposition.
  EXPECT_EQ(r.bisections, k - 1);
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddK, KwaySweep,
                         ::testing::Values(2, 3, 4, 5, 7, 8));

TEST(Kway, MoreCutWithMoreParts) {
  const Hypergraph h = generate_netlist(preset("small"));
  Weight prev = 0;
  for (const std::size_t k : {2, 4, 8}) {
    KwayConfig config;
    config.k = k;
    config.tolerance = 0.25;
    const KwayResult r = recursive_bisection(h, config);
    EXPECT_GE(r.cut, prev);
    prev = r.cut;
  }
}

TEST(Kway, FlatEngineWorksToo) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  KwayConfig config;
  config.k = 4;
  config.tolerance = 0.4;
  config.use_ml = false;
  const KwayResult r = recursive_bisection(h, config);
  EXPECT_EQ(check_kway(h, r.parts, 4, config.tolerance), "");
}

TEST(Kway, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  KwayConfig config;
  config.k = 4;
  config.tolerance = 0.4;
  config.seed = 9;
  const KwayResult a = recursive_bisection(h, config);
  const KwayResult b = recursive_bisection(h, config);
  EXPECT_EQ(a.parts, b.parts);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(Kway, RejectsBadK) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  KwayConfig config;
  config.k = 1;
  EXPECT_THROW(recursive_bisection(h, config), std::logic_error);
  config.k = 200;
  EXPECT_THROW(recursive_bisection(h, config), std::logic_error);
}

TEST(CheckKway, DetectsViolations) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  std::vector<PartId> parts(h.num_vertices(), 0);
  // All in one part of k=2: grossly unbalanced.
  EXPECT_NE(check_kway(h, parts, 2, 0.1), "");
  parts[0] = 5;
  EXPECT_NE(check_kway(h, parts, 2, 0.1), "");
}

}  // namespace
}  // namespace vlsipart
