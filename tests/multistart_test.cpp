// Tests for the multistart harness and its reporting aggregates.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(Multistart, RecordsEveryStart) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult r = run_multistart(p, engine, 7, 42);
  EXPECT_EQ(r.starts.size(), 7u);
  for (const auto& s : r.starts) {
    EXPECT_TRUE(s.feasible);
    EXPECT_GE(s.cpu_seconds, 0.0);
  }
}

TEST(Multistart, MinLeqAvgAndBestMatchesParts) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult r = run_multistart(p, engine, 10, 1);
  EXPECT_LE(static_cast<double>(r.min_cut()), r.avg_cut());
  EXPECT_EQ(r.best_cut, r.min_cut());
  ASSERT_FALSE(r.best_parts.empty());
  EXPECT_EQ(compute_cut(h, r.best_parts), r.best_cut);
  EXPECT_EQ(check_solution(p, r.best_parts), "");
}

TEST(Multistart, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner e1{FmConfig{}};
  FlatFmPartitioner e2{FmConfig{}};
  const MultistartResult a = run_multistart(p, e1, 5, 9);
  const MultistartResult b = run_multistart(p, e2, 5, 9);
  ASSERT_EQ(a.starts.size(), b.starts.size());
  for (std::size_t i = 0; i < a.starts.size(); ++i) {
    EXPECT_EQ(a.starts[i].cut, b.starts[i].cut);
  }
  EXPECT_EQ(a.best_parts, b.best_parts);
}

TEST(Multistart, StartsAreIndividuallyReproducible) {
  // Start i uses base.fork(i): re-running just start 2 standalone must
  // reproduce its cut exactly.
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult all = run_multistart(p, engine, 5, 77);
  Rng base(77);
  Rng rng = base.fork(2);
  std::vector<PartId> parts;
  FlatFmPartitioner solo{FmConfig{}};
  const Weight cut = solo.run(p, rng, parts);
  EXPECT_EQ(cut, all.starts[2].cut);
}

TEST(Multistart, SamplesMatchStarts) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult r = run_multistart(p, engine, 6, 3);
  const Sample cuts = r.cut_sample();
  EXPECT_EQ(cuts.size(), 6u);
  EXPECT_DOUBLE_EQ(cuts.mean(), r.avg_cut());
  EXPECT_DOUBLE_EQ(cuts.min(), static_cast<double>(r.min_cut()));
  const Sample times = r.time_sample();
  EXPECT_EQ(times.size(), 6u);
  EXPECT_NEAR(times.mean() * 6.0, r.total_cpu_seconds, 1e-9);
}

TEST(Multistart, DifferentSeedsExploreDifferently) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner e1{FmConfig{}};
  FlatFmPartitioner e2{FmConfig{}};
  const MultistartResult a = run_multistart(p, e1, 8, 1);
  const MultistartResult b = run_multistart(p, e2, 8, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.starts.size(); ++i) {
    if (a.starts[i].cut != b.starts[i].cut) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace vlsipart
