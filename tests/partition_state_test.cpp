// Tests for balance constraints and the incremental partition state.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/balance.h"
#include "src/part/core/initial.h"
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

TEST(Balance, TwoPercentWindow) {
  // Paper: 2% balance = parts between 49% and 51% of total.
  const auto b = BalanceConstraint::from_tolerance(10000, 0.02);
  EXPECT_EQ(b.max_part(), 5100);
  EXPECT_EQ(b.min_part(), 4900);
  EXPECT_EQ(b.window(), 200);
  EXPECT_TRUE(b.feasible(5000));
  EXPECT_TRUE(b.feasible(4900));
  EXPECT_TRUE(b.feasible(5100));
  EXPECT_FALSE(b.feasible(4899));
  EXPECT_FALSE(b.feasible(5101));
}

TEST(Balance, TenPercentWindow) {
  const auto b = BalanceConstraint::from_tolerance(10000, 0.10);
  EXPECT_EQ(b.max_part(), 5500);
  EXPECT_EQ(b.min_part(), 4500);
}

TEST(Balance, ExactBisectionWithOddTotal) {
  const auto b = BalanceConstraint::from_tolerance(101, 0.0);
  // Parity remainder must remain admissible: parts {50, 51}.
  EXPECT_EQ(b.max_part(), 51);
  EXPECT_EQ(b.min_part(), 50);
  EXPECT_TRUE(b.feasible(50));
  EXPECT_TRUE(b.feasible(51));
  EXPECT_FALSE(b.feasible(49));
}

TEST(Balance, MoveLegality) {
  const auto b = BalanceConstraint::from_tolerance(1000, 0.10);
  // Window [450, 550].  w0 = 500: moving weight 60 from part 0 makes
  // w0 = 440 -> illegal; weight 50 -> 450 legal.
  EXPECT_FALSE(b.move_legal(500, 60, 0));
  EXPECT_TRUE(b.move_legal(500, 50, 0));
  EXPECT_TRUE(b.move_legal(500, 50, 1));
  EXPECT_FALSE(b.move_legal(540, 20, 1));
}

TEST(Balance, FromBoundsClamps) {
  const auto b = BalanceConstraint::from_bounds(100, -5, 200);
  EXPECT_EQ(b.min_part(), 0);
  EXPECT_EQ(b.max_part(), 100);
  EXPECT_THROW(BalanceConstraint::from_bounds(100, 60, 40),
               std::logic_error);
  EXPECT_THROW(BalanceConstraint::from_tolerance(0, 0.02), std::logic_error);
}

Hypergraph small_graph() {
  // 6 vertices, nets: {0,1,2}, {2,3}, {3,4,5}, {0,5}.
  HypergraphBuilder b(6);
  b.add_edge({0, 1, 2});
  b.add_edge({2, 3});
  b.add_edge({3, 4, 5});
  b.add_edge({0, 5});
  return b.finalize("six");
}

TEST(PartitionState, AssignComputesCut) {
  const Hypergraph h = small_graph();
  PartitionState s(h);
  s.assign(std::vector<PartId>{0, 0, 0, 1, 1, 1});
  // Cut nets: {2,3} and {0,5}.
  EXPECT_EQ(s.cut(), 2);
  EXPECT_EQ(s.part_weight(0), 3);
  EXPECT_EQ(s.part_weight(1), 3);
  EXPECT_EQ(s.pins_in(0, 0), 3u);
  EXPECT_EQ(s.pins_in(0, 1), 0u);
  EXPECT_EQ(s.pins_in(1, 0), 1u);
  EXPECT_EQ(s.pins_in(1, 1), 1u);
  EXPECT_TRUE(s.edge_cut(1));
  EXPECT_FALSE(s.edge_cut(0));
  s.audit();
}

TEST(PartitionState, MoveUpdatesIncrementally) {
  const Hypergraph h = small_graph();
  PartitionState s(h);
  s.assign(std::vector<PartId>{0, 0, 0, 1, 1, 1});
  s.move(3);  // 3 joins part 0: net {2,3} uncut, net {3,4,5} cut
  EXPECT_EQ(s.part(3), 0);
  EXPECT_EQ(s.cut(), 2);  // {3,4,5} now cut, {0,5} still cut
  EXPECT_EQ(s.part_weight(0), 4);
  s.audit();
  s.move(3);  // move back
  EXPECT_EQ(s.cut(), 2);
  EXPECT_EQ(s.part(3), 1);
  s.audit();
}

TEST(PartitionState, GainMatchesDefinition) {
  const Hypergraph h = small_graph();
  PartitionState s(h);
  s.assign(std::vector<PartId>{0, 0, 0, 1, 1, 1});
  // gain(v) = cut reduction when moving v.
  for (VertexId v = 0; v < 6; ++v) {
    const Weight before = s.cut();
    const Gain g = s.gain(v);
    s.move(v);
    EXPECT_EQ(before - s.cut(), g) << "v=" << static_cast<int>(v);
    s.move(v);  // restore
  }
}

TEST(PartitionState, RandomMoveSequenceStaysConsistent) {
  // Property: after any sequence of moves, incremental bookkeeping
  // matches a from-scratch recomputation.
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionState s(h);
  Rng rng(5);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
  s.assign(parts);
  for (int i = 0; i < 500; ++i) {
    s.move(static_cast<VertexId>(rng.below(h.num_vertices())));
  }
  s.audit();
  EXPECT_EQ(s.cut(), compute_cut(h, s.parts()));
}

TEST(PartitionState, FuzzMoveRecordingAndAudit) {
  // Seeded fuzz over three instance sizes: interleave plain moves,
  // recording moves (the move(v, counts) overload the FM inner loop
  // feeds on), and full re-assignments.  Every recording move's reported
  // old pin counts must equal the pre-move pins_in of each incident net,
  // and periodic audits pin the incremental bookkeeping to a
  // from-scratch recomputation.
  for (const char* name : {"tiny", "small", "medium"}) {
    const Hypergraph h = generate_netlist(preset(name));
    const std::size_t n = h.num_vertices();
    PartitionState s(h);
    Rng rng(0xf022eedULL ^ n);

    std::vector<PartId> parts(n);
    for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
    s.assign(parts);

    MoveNetCounts counts;
    std::vector<std::uint32_t> expect0, expect1;
    std::size_t since_audit = 0;
    for (int step = 0; step < 2000; ++step) {
      const auto op = rng.below(100);
      if (op < 2) {
        // Occasional full re-assignment resets all incremental state.
        for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
        s.assign(parts);
        continue;
      }
      const auto v = static_cast<VertexId>(rng.below(n));
      if (op < 50) {
        s.move(v);
      } else {
        const auto edges = h.incident_edges(v);
        expect0.clear();
        expect1.clear();
        for (const EdgeId e : edges) {
          expect0.push_back(s.pins_in(e, 0));
          expect1.push_back(s.pins_in(e, 1));
        }
        s.move(v, counts);
        ASSERT_EQ(counts.old_pins.size(), 2 * edges.size());
        for (std::size_t i = 0; i < edges.size(); ++i) {
          ASSERT_EQ(counts.old_in(i, 0), expect0[i])
              << name << " v=" << v << " i=" << i;
          ASSERT_EQ(counts.old_in(i, 1), expect1[i])
              << name << " v=" << v << " i=" << i;
        }
      }
      if (++since_audit >= 64) {
        s.audit();
        EXPECT_EQ(s.cut(), compute_cut(h, s.parts()));
        since_audit = 0;
      }
    }
    s.audit();
    EXPECT_EQ(s.cut(), compute_cut(h, s.parts()));
  }
}

TEST(PartitionState, RejectsPartialAssignment) {
  const Hypergraph h = small_graph();
  PartitionState s(h);
  EXPECT_THROW(s.assign(std::vector<PartId>{0, 0, 0}), std::logic_error);
  EXPECT_THROW(s.assign(std::vector<PartId>{0, 0, 0, 1, 1, 7}),
               std::logic_error);
}

TEST(CheckSolution, DetectsViolations) {
  const Hypergraph h = small_graph();
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.4);
  EXPECT_EQ(check_solution(p, std::vector<PartId>{0, 0, 0, 1, 1, 1}), "");
  EXPECT_NE(check_solution(p, std::vector<PartId>{0, 0, 0, 1, 1}), "");
  EXPECT_NE(check_solution(p, std::vector<PartId>{0, 0, 0, 0, 0, 0}), "");
  p.fixed.assign(6, kNoPart);
  p.fixed[0] = 1;
  EXPECT_NE(check_solution(p, std::vector<PartId>{0, 0, 0, 1, 1, 1}), "");
  EXPECT_EQ(check_solution(p, std::vector<PartId>{1, 0, 0, 0, 1, 1}), "");
}

TEST(Initial, RandomInitialFeasibleOnMacroInstance) {
  const Hypergraph h = generate_netlist(preset("small"));
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.02);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto parts = random_initial(p, rng);
    EXPECT_EQ(check_solution(p, parts), "") << "trial " << trial;
  }
}

TEST(Initial, RespectsFixedVertices) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.3);
  p.fixed.assign(h.num_vertices(), kNoPart);
  p.fixed[3] = 1;
  p.fixed[7] = 0;
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto parts = random_initial(p, rng);
    EXPECT_EQ(parts[3], 1);
    EXPECT_EQ(parts[7], 0);
  }
}

TEST(Initial, LptDeterministicAndTight) {
  const Hypergraph h = generate_netlist(preset("small"));
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.02);
  const auto a = lpt_initial(p);
  const auto b = lpt_initial(p);
  EXPECT_EQ(a, b);
  EXPECT_EQ(check_solution(p, a), "");
}

TEST(Initial, DiverseAcrossRngStates) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.1);
  Rng rng(7);
  const auto a = random_initial(p, rng);
  const auto b = random_initial(p, rng);
  EXPECT_NE(a, b);  // consecutive draws differ with overwhelming probability
}

}  // namespace
}  // namespace vlsipart
