// Tests for the vpartd service layer: protocol robustness (truncated /
// oversized / malformed frames, disconnects, deadlines, drain under
// load) and the determinism contract — results served concurrently by
// any worker count are bit-identical to direct library calls.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/service/client.h"
#include "src/service/framing.h"
#include "src/service/instance_cache.h"
#include "src/service/json.h"
#include "src/service/protocol.h"
#include "src/service/server.h"
#include "src/util/histogram.h"
#include "src/util/shutdown.h"

namespace vlsipart::service {
namespace {

ServiceConfig test_config(std::size_t workers) {
  ServiceConfig config;
  // TCP port 0 (kernel-assigned) avoids unix-path length/cleanup issues
  // in parallel ctest runs.
  config.endpoint.tcp_port = 0;
  config.workers = workers;
  config.queue_capacity = 32;
  config.idle_timeout_ms = 2000;
  return config;
}

SubmitRequest tiny_request(std::uint64_t seed = 1,
                           const std::string& engine = "flat") {
  SubmitRequest req;
  req.instance.preset = "tiny";
  req.instance.scale = 0.5;
  req.k = 2;
  req.engine = engine;
  req.starts = 2;
  req.vcycles = 0;
  req.seed = seed;
  req.include_parts = true;
  return req;
}

/// Reference result computed with direct library calls (the vpart path).
void direct_reference(const SubmitRequest& req, Weight& cut,
                      std::vector<PartId>& parts) {
  const Hypergraph h = generate_netlist(
      preset(req.instance.preset).scaled(req.instance.scale));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance = BalanceConstraint::from_tolerance(
      h.total_vertex_weight(), req.tolerance);
  if (req.engine == "ml") {
    MlConfig config;
    MlPartitioner engine(config);
    const MultistartResult r =
        run_hmetis_like(problem, engine, req.starts, req.vcycles, req.seed);
    cut = r.best_cut;
    parts = r.best_parts;
  } else {
    FmConfig fm;
    if (req.engine == "clip") {
      fm.clip = true;
      fm.exclude_oversized = true;
    }
    FlatFmPartitioner engine(fm);
    const MultistartResult r =
        run_multistart(problem, engine, req.starts, req.seed);
    cut = r.best_cut;
    parts = r.best_parts;
  }
}

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override { reset_shutdown_for_test(); }
  void TearDown() override {
    if (server_ != nullptr) server_->stop();
    reset_shutdown_for_test();
  }

  Endpoint start(ServiceConfig config) {
    server_ = std::make_unique<PartitionService>(std::move(config));
    server_->start();
    return server_->bound_endpoint();
  }

  std::unique_ptr<PartitionService> server_;
};

// ---------------------------------------------------------------------
// Determinism: same request set, serial vs concurrent, 1/2/8 workers,
// all bit-identical to direct library calls.

TEST_F(ServiceFixture, ServiceDeterminismAcrossWorkerCounts) {
  std::vector<SubmitRequest> requests;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    requests.push_back(tiny_request(seed, "flat"));
    requests.push_back(tiny_request(seed, "clip"));
  }
  requests.push_back(tiny_request(3, "ml"));

  std::vector<Weight> want_cut(requests.size());
  std::vector<std::vector<PartId>> want_parts(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    direct_reference(requests[i], want_cut[i], want_parts[i]);
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ServiceConfig config = test_config(workers);
    // Cold server each round, and cold results within the round: the
    // comparison is about execution, not about replaying a cache.
    const Endpoint endpoint = start(std::move(config));

    // Serial: one client, one request at a time.
    for (std::size_t i = 0; i < requests.size(); ++i) {
      SubmitRequest req = requests[i];
      req.use_result_cache = false;
      ServiceClient client;
      ASSERT_TRUE(client.connect(endpoint)) << client.error();
      const PartitionReply reply = client.submit_and_wait(req);
      ASSERT_TRUE(reply.ok) << reply.error << ": " << reply.message;
      EXPECT_EQ(reply.cut, want_cut[i]) << "workers=" << workers;
      EXPECT_EQ(reply.parts, want_parts[i]) << "workers=" << workers;
    }

    // Concurrent: every request in flight at once from its own client.
    std::vector<PartitionReply> replies(requests.size());
    std::vector<std::thread> threads;
    threads.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      threads.emplace_back([&, i] {
        SubmitRequest req = requests[i];
        req.use_result_cache = false;
        ServiceClient client;
        if (!client.connect(endpoint)) return;
        replies[i] = client.submit_and_wait(req);
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(replies[i].ok)
          << "workers=" << workers << ": " << replies[i].error;
      EXPECT_EQ(replies[i].cut, want_cut[i]) << "workers=" << workers;
      EXPECT_EQ(replies[i].parts, want_parts[i]) << "workers=" << workers;
    }

    server_->stop();
    server_.reset();
    reset_shutdown_for_test();
  }
}

TEST_F(ServiceFixture, ServiceResultCacheHitReturnsIdenticalResult) {
  const Endpoint endpoint = start(test_config(2));
  ServiceClient client;
  ASSERT_TRUE(client.connect(endpoint));
  const PartitionReply cold = client.submit_and_wait(tiny_request(7));
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(cold.cache, "none");
  const PartitionReply warm = client.submit_and_wait(tiny_request(7));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.cache, "result");
  EXPECT_EQ(warm.cut, cold.cut);
  EXPECT_EQ(warm.parts, cold.parts);
  // Different seed = different request hash = no stale hit.
  const PartitionReply other = client.submit_and_wait(tiny_request(8));
  ASSERT_TRUE(other.ok);
  EXPECT_NE(other.cache, "result");
}

// ---------------------------------------------------------------------
// Failure paths.

TEST_F(ServiceFixture, ServiceRejectsMalformedJson) {
  const Endpoint endpoint = start(test_config(1));
  std::string error;
  Socket sock = connect_endpoint(endpoint, 2000, &error);
  ASSERT_TRUE(sock.valid()) << error;
  ASSERT_TRUE(write_frame(sock.fd(), "{\"op\": nonsense"));
  std::string payload;
  ASSERT_EQ(read_frame(sock.fd(), payload, 1 << 20, 5000),
            FrameStatus::kOk);
  JsonValue response;
  ASSERT_TRUE(parse_json(payload, response, nullptr));
  EXPECT_FALSE(response.find("ok")->as_bool(true));
  EXPECT_EQ(response.find("error")->as_string(), "bad_json");
  // The connection survives a malformed request: a valid one succeeds.
  ASSERT_TRUE(write_frame(sock.fd(), R"({"op":"ping"})"));
  ASSERT_EQ(read_frame(sock.fd(), payload, 1 << 20, 5000),
            FrameStatus::kOk);
  ASSERT_TRUE(parse_json(payload, response, nullptr));
  EXPECT_TRUE(response.find("ok")->as_bool(false));
}

TEST_F(ServiceFixture, ServiceRejectsOversizedPayload) {
  ServiceConfig config = test_config(1);
  config.max_payload = 1024;
  const Endpoint endpoint = start(std::move(config));
  std::string error;
  Socket sock = connect_endpoint(endpoint, 2000, &error);
  ASSERT_TRUE(sock.valid()) << error;
  // Hand-roll a frame header announcing 1 MiB against the 1 KiB cap.
  const std::uint32_t announced = 1u << 20;
  unsigned char header[4] = {
      static_cast<unsigned char>(announced >> 24),
      static_cast<unsigned char>(announced >> 16),
      static_cast<unsigned char>(announced >> 8),
      static_cast<unsigned char>(announced)};
  ASSERT_EQ(::send(sock.fd(), header, 4, 0), 4);
  std::string payload;
  ASSERT_EQ(read_frame(sock.fd(), payload, 1 << 20, 5000),
            FrameStatus::kOk);
  JsonValue response;
  ASSERT_TRUE(parse_json(payload, response, nullptr));
  EXPECT_EQ(response.find("error")->as_string(), "oversized");
  // Server closes the connection after an oversized announcement.
  ASSERT_EQ(read_frame(sock.fd(), payload, 1 << 20, 5000),
            FrameStatus::kClosed);
}

TEST_F(ServiceFixture, ServiceSurvivesTruncatedFrame) {
  const Endpoint endpoint = start(test_config(1));
  {
    std::string error;
    Socket sock = connect_endpoint(endpoint, 2000, &error);
    ASSERT_TRUE(sock.valid()) << error;
    // Announce 100 bytes, send 3, hang up mid-frame.
    const unsigned char partial[7] = {0, 0, 0, 100, '{', '"', 'o'};
    ASSERT_EQ(::send(sock.fd(), partial, 7, 0), 7);
  }  // RAII close = truncation
  // The server must shrug it off and keep serving.
  ServiceClient client;
  ASSERT_TRUE(client.connect(endpoint));
  const PartitionReply reply = client.submit_and_wait(tiny_request());
  EXPECT_TRUE(reply.ok) << reply.error;
}

TEST_F(ServiceFixture, ServiceSurvivesDisconnectMidResponse) {
  const Endpoint endpoint = start(test_config(1));
  {
    std::string error;
    Socket sock = connect_endpoint(endpoint, 2000, &error);
    ASSERT_TRUE(sock.valid()) << error;
    SubmitRequest req = tiny_request();
    req.include_parts = true;
    ASSERT_TRUE(write_frame(sock.fd(), submit_to_json(req).dump()));
    std::string payload;
    ASSERT_EQ(read_frame(sock.fd(), payload, 1 << 20, 5000),
              FrameStatus::kOk);
    JsonValue submitted;
    ASSERT_TRUE(parse_json(payload, submitted, nullptr));
    ASSERT_TRUE(submitted.find("ok")->as_bool(false));
    // Ask for the result but vanish before reading the response.  The
    // server's send hits a dead peer (EPIPE, suppressed) and must not
    // die or leak the connection slot.
    JsonValue fetch = JsonValue::object();
    fetch.set("op", JsonValue::string("result"));
    fetch.set("job", *submitted.find("job"));
    fetch.set("wait", JsonValue::boolean(true));
    ASSERT_TRUE(write_frame(sock.fd(), fetch.dump()));
  }  // RAII close while the job may still be running
  ServiceClient client;
  ASSERT_TRUE(client.connect(endpoint));
  const PartitionReply reply = client.submit_and_wait(tiny_request(2));
  EXPECT_TRUE(reply.ok) << reply.error;
}

TEST_F(ServiceFixture, ServiceExpiresDeadlinedJobs) {
  // One worker pinned on a slow job; a zero-tolerance deadline behind it
  // must expire rather than run.
  const Endpoint endpoint = start(test_config(1));
  ServiceClient blocker;
  ASSERT_TRUE(blocker.connect(endpoint));
  SubmitRequest slow = tiny_request(1, "ml");
  slow.instance.preset = "small";
  slow.starts = 8;
  slow.vcycles = 2;
  slow.use_result_cache = false;
  const std::int64_t slow_job = blocker.submit(slow);
  ASSERT_GT(slow_job, 0);

  ServiceClient client;
  ASSERT_TRUE(client.connect(endpoint));
  SubmitRequest hurried = tiny_request(2);
  hurried.deadline_ms = 1;  // already elapsed by pickup time
  const PartitionReply reply = client.submit_and_wait(hurried);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.state, "expired");
  EXPECT_EQ(reply.error, "expired");
  // The slow job itself still completes.
  const PartitionReply slow_reply = blocker.fetch_result(slow_job);
  EXPECT_TRUE(slow_reply.ok) << slow_reply.error;
}

TEST_F(ServiceFixture, ServiceShedsLoadWhenQueueFull) {
  ServiceConfig config = test_config(1);
  config.queue_capacity = 1;
  const Endpoint endpoint = start(std::move(config));
  ServiceClient client;
  ASSERT_TRUE(client.connect(endpoint));
  SubmitRequest slow = tiny_request(1, "ml");
  slow.instance.preset = "small";
  slow.starts = 8;
  slow.use_result_cache = false;
  std::vector<std::int64_t> jobs;
  bool shed = false;
  for (int i = 0; i < 8; ++i) {
    SubmitRequest req = slow;
    req.seed = static_cast<std::uint64_t>(100 + i);
    const std::int64_t job = client.submit(req);
    if (job < 0) {
      EXPECT_EQ(client.error(), "overloaded");
      shed = true;
    } else {
      jobs.push_back(job);
    }
  }
  EXPECT_TRUE(shed) << "queue of 1 never overflowed across 8 rapid submits";
  for (const std::int64_t job : jobs) {
    const PartitionReply reply = client.fetch_result(job);
    EXPECT_TRUE(reply.ok) << reply.error;
  }
}

// ---------------------------------------------------------------------
// Drain under load: stop() finishes in-flight jobs, and their cuts match
// direct library calls.

TEST_F(ServiceFixture, ServiceDrainUnderLoadCompletesInFlight) {
  const Endpoint endpoint = start(test_config(2));
  std::vector<SubmitRequest> requests;
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    SubmitRequest req = tiny_request(seed);
    req.use_result_cache = false;
    requests.push_back(req);
  }
  std::vector<ServiceClient> clients(requests.size());
  std::vector<std::int64_t> jobs(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(clients[i].connect(endpoint));
    jobs[i] = clients[i].submit(requests[i]);
    ASSERT_GT(jobs[i], 0);
  }
  // Drain with everything still queued/running; stop() must block until
  // every admitted job is terminal, then let waiting fetches complete.
  std::thread drain([this] { server_->stop(); });
  std::vector<PartitionReply> replies(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    replies[i] = clients[i].fetch_result(jobs[i]);
  }
  drain.join();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(replies[i].ok) << replies[i].error;
    Weight want_cut = 0;
    std::vector<PartId> want_parts;
    direct_reference(requests[i], want_cut, want_parts);
    EXPECT_EQ(replies[i].cut, want_cut);
    EXPECT_EQ(replies[i].parts, want_parts);
  }
  // Post-drain submits are refused.
  ServiceClient late;
  if (late.connect(endpoint)) {
    EXPECT_LT(late.submit(requests[0]), 0);
  }
}

TEST_F(ServiceFixture, ServiceStatsReportActivity) {
  const Endpoint endpoint = start(test_config(2));
  ServiceClient client;
  ASSERT_TRUE(client.connect(endpoint));
  ASSERT_TRUE(client.submit_and_wait(tiny_request(21)).ok);
  ASSERT_TRUE(client.submit_and_wait(tiny_request(21)).ok);  // cache hit
  JsonValue stats;
  ASSERT_TRUE(client.stats(stats));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("completed")->as_int(), 2);
  EXPECT_EQ(stats.find("result_cache_hits")->as_int(), 1);
  EXPECT_GE(stats.find("instance_cache_hits")->as_int(), 1);
  const JsonValue* latency = stats.find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_int(), 2);
  EXPECT_GE(latency->find("p99_s")->as_number(), 0.0);
}

// ---------------------------------------------------------------------
// Component-level pieces.

TEST(ServiceJson, RoundTripsAndRejectsGarbage) {
  JsonValue obj = JsonValue::object();
  obj.set("op", JsonValue::string("submit"));
  obj.set("k", JsonValue::integer(2));
  obj.set("tol", JsonValue::number(0.02));
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::integer(1));
  arr.push(JsonValue::boolean(false));
  obj.set("xs", std::move(arr));
  const std::string text = obj.dump();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(parse_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed.dump(), text);

  JsonValue out;
  EXPECT_FALSE(parse_json("{\"a\":}", out, &error));
  EXPECT_FALSE(parse_json("{} garbage", out, &error));
  EXPECT_FALSE(parse_json("{\"a\":1e999}", out, &error));
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_FALSE(parse_json(deep, out, &error));
  EXPECT_TRUE(parse_json(R"("é😀")", out, &error)) << error;
}

TEST(ServiceProtocol, ParseSubmitValidates) {
  JsonValue good;
  ASSERT_TRUE(parse_json(
      R"({"op":"submit","instance":{"preset":"tiny"},"k":4,
          "engine":"clip","starts":3,"seed":9})",
      good, nullptr));
  SubmitRequest req;
  std::string error;
  ASSERT_TRUE(parse_submit(good, req, &error)) << error;
  EXPECT_EQ(req.k, 4u);
  EXPECT_EQ(req.engine, "clip");
  EXPECT_EQ(req.starts, 3u);
  EXPECT_EQ(req.seed, 9u);

  const auto expect_reject = [](const char* text) {
    JsonValue bad;
    ASSERT_TRUE(parse_json(text, bad, nullptr)) << text;
    SubmitRequest out;
    std::string why;
    EXPECT_FALSE(parse_submit(bad, out, &why)) << text;
    EXPECT_FALSE(why.empty());
  };
  expect_reject(R"({"op":"submit"})");
  expect_reject(R"({"op":"submit","instance":{}})");
  expect_reject(
      R"({"op":"submit","instance":{"preset":"tiny","hgr_path":"x"}})");
  expect_reject(
      R"({"op":"submit","instance":{"preset":"tiny"},"engine":"magic"})");
  expect_reject(
      R"({"op":"submit","instance":{"preset":"tiny"},"k":1})");
  expect_reject(
      R"({"op":"submit","instance":{"preset":"tiny"},"tolerance":2})");
  expect_reject(
      R"({"op":"submit","instance":{"preset":"tiny"},"deadline_ms":-5})");
}

TEST(ServiceProtocol, ResultCacheKeySensitivity) {
  const SubmitRequest base = tiny_request(5);
  const std::uint64_t h = 12345;
  const std::uint64_t key = result_cache_key(base, h);
  EXPECT_EQ(result_cache_key(base, h), key);
  SubmitRequest changed = base;
  changed.seed = 6;
  EXPECT_NE(result_cache_key(changed, h), key);
  changed = base;
  changed.engine = "clip";
  EXPECT_NE(result_cache_key(changed, h), key);
  changed = base;
  changed.starts = 3;
  EXPECT_NE(result_cache_key(changed, h), key);
  EXPECT_NE(result_cache_key(base, h + 1), key);
  // include_parts / deadlines / cache opts do NOT affect the key.
  changed = base;
  changed.include_parts = !base.include_parts;
  changed.deadline_ms = 99;
  changed.use_result_cache = false;
  EXPECT_EQ(result_cache_key(changed, h), key);
}

TEST(ServiceInstanceCache, SingleFlightAndEviction) {
  InstanceCache cache(1);
  InstanceSpec tiny;
  tiny.preset = "tiny";
  bool hit = true;
  const auto first = cache.get(tiny, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(first, nullptr);
  EXPECT_GT(first->graph.num_vertices(), 0u);
  EXPECT_NE(first->content_hash, 0u);
  const auto again = cache.get(tiny, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), first.get());  // same resident object

  InstanceSpec small;
  small.preset = "small";
  cache.get(small, &hit);  // capacity 1: evicts tiny
  EXPECT_EQ(cache.resident(), 1u);
  cache.get(tiny, &hit);
  EXPECT_FALSE(hit);  // rebuilt after eviction

  InstanceSpec bad;
  bad.hgr_path = "/nonexistent/file.hgr";
  EXPECT_THROW(cache.get(bad, &hit), std::exception);
  EXPECT_THROW(cache.get(bad, &hit), std::exception);  // retried, not stuck
}

TEST(ServiceInstanceCache, ContentHashSeesStructure) {
  InstanceSpec a;
  a.preset = "tiny";
  InstanceSpec b;
  b.preset = "tiny";
  b.gen_seed = 77;  // different generator stream
  InstanceCache cache(4);
  bool hit = false;
  const auto ia = cache.get(a, &hit);
  const auto ib = cache.get(b, &hit);
  EXPECT_NE(ia->content_hash, ib->content_hash);
  EXPECT_EQ(hypergraph_content_hash(ia->graph), ia->content_hash);
}

TEST(ServiceHistogram, QuantilesAreConservativeAndOrderFree) {
  LatencyHistogram a;
  LatencyHistogram b;
  const double samples[] = {1e-6, 5e-6, 2e-3, 0.5, 3e-3, 8e-5};
  for (const double s : samples) a.record(s);
  for (int i = 5; i >= 0; --i) b.record(samples[i]);
  EXPECT_EQ(a.count(), 6u);
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  EXPECT_GE(a.quantile(0.99), 0.5);  // never under-states
  EXPECT_DOUBLE_EQ(a.max_seconds(), 0.5);
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), 12u);
  EXPECT_EQ(merged.quantile(0.5), a.quantile(0.5));
}

TEST(ServiceFraming, EndpointParse) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(Endpoint::parse("unix:/tmp/x.sock", ep, &error));
  EXPECT_TRUE(ep.is_unix());
  EXPECT_EQ(ep.unix_path, "/tmp/x.sock");
  ASSERT_TRUE(Endpoint::parse("tcp:7077", ep, &error));
  EXPECT_FALSE(ep.is_unix());
  EXPECT_EQ(ep.tcp_port, 7077);
  ASSERT_TRUE(Endpoint::parse("/tmp/bare.sock", ep, &error));
  EXPECT_TRUE(ep.is_unix());
  EXPECT_FALSE(Endpoint::parse("tcp:notaport", ep, &error));
  EXPECT_FALSE(Endpoint::parse("tcp:99999", ep, &error));
  EXPECT_FALSE(Endpoint::parse("", ep, &error));
}

}  // namespace
}  // namespace vlsipart::service
