// Tests for the quadrisection placement flow [35] and the comparison-
// report module.
#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/report.h"
#include "src/flows/quadrisection.h"
#include "src/gen/netlist_gen.h"
#include "src/part/core/partitioner.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

TEST(Quadrisection, AllCellsInsideCore) {
  const Hypergraph h = generate_netlist(preset("small"));
  QuadPlacerConfig config;
  config.core_width = 120.0;
  config.core_height = 90.0;
  const PlacementReport report = quadrisection_place(h, config);
  ASSERT_EQ(report.placement.x.size(), h.num_vertices());
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    EXPECT_GE(report.placement.x[v], 0.0);
    EXPECT_LE(report.placement.x[v], 120.0);
    EXPECT_GE(report.placement.y[v], 0.0);
    EXPECT_LE(report.placement.y[v], 90.0);
  }
}

TEST(Quadrisection, PartitionsAndPropagatesTerminals) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PlacementReport report =
      quadrisection_place(h, QuadPlacerConfig{});
  EXPECT_GT(report.regions_partitioned, 4u);
  EXPECT_GT(report.terminals_created, 0u);
  EXPECT_GT(report.hpwl, 0.0);
}

TEST(Quadrisection, BeatsRandomPlacement) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PlacementReport report =
      quadrisection_place(h, QuadPlacerConfig{});
  const double side =
      std::sqrt(static_cast<double>(h.total_vertex_weight()));
  Placement random;
  random.x.resize(h.num_vertices());
  random.y.resize(h.num_vertices());
  Rng rng(5);
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    random.x[v] = rng.uniform(0.0, side);
    random.y[v] = rng.uniform(0.0, side);
  }
  EXPECT_LT(report.hpwl, 0.7 * hpwl(h, random));
}

TEST(Quadrisection, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  QuadPlacerConfig config;
  config.seed = 17;
  const PlacementReport a = quadrisection_place(h, config);
  const PlacementReport b = quadrisection_place(h, config);
  EXPECT_EQ(a.placement.x, b.placement.x);
  EXPECT_DOUBLE_EQ(a.hpwl, b.hpwl);
}

TEST(Quadrisection, ComparableToBisectionFlow) {
  // Both flows must land in the same wirelength ballpark (within 2x of
  // each other) on a structured instance.
  const Hypergraph h = generate_netlist(preset("small"));
  const PlacementReport quad = quadrisection_place(h, QuadPlacerConfig{});
  const PlacementReport bis = topdown_place(h, PlacerConfig{});
  EXPECT_LT(quad.hpwl, 2.0 * bis.hpwl);
  EXPECT_LT(bis.hpwl, 2.0 * quad.hpwl);
}

TEST(CompareEngines, ReportShapeAndContent) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.1);

  FlatFmPartitioner a{FmConfig{}};
  FmConfig clip_cfg;
  clip_cfg.clip = true;
  clip_cfg.exclude_oversized = true;
  FlatFmPartitioner b{clip_cfg};

  ComparisonConfig config;
  config.runs = 8;
  config.budgets = {1, 2, 4};
  const ComparisonReport report =
      compare_engines(problem, {{"fm", &a}, {"clip", &b}}, config);

  ASSERT_EQ(report.engines.size(), 2u);
  EXPECT_EQ(report.engines[0].name, "fm");
  EXPECT_EQ(report.engines[0].multistart.starts.size(), 8u);
  EXPECT_EQ(report.engines[0].bsf.size(), 3u);
  EXPECT_TRUE(report.engines[0].versus_baseline.empty());
  EXPECT_FALSE(report.engines[1].versus_baseline.empty());
  EXPECT_EQ(report.points.size(), 6u);
  EXPECT_FALSE(report.frontier.empty());
  EXPECT_LE(report.frontier.size(), report.points.size());

  const std::string text = report.to_string();
  EXPECT_NE(text.find("Multistart summary"), std::string::npos);
  EXPECT_NE(text.find("best-so-far"), std::string::npos);
  EXPECT_NE(text.find("frontier"), std::string::npos);
  EXPECT_NE(text.find("Significance"), std::string::npos);
}

TEST(CompareEngines, RejectsBadConfig) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.1);
  ComparisonConfig config;
  EXPECT_THROW(compare_engines(problem, {}, config), std::logic_error);
  FlatFmPartitioner a{FmConfig{}};
  config.baseline = 5;
  EXPECT_THROW(compare_engines(problem, {{"fm", &a}}, config),
               std::logic_error);
}

}  // namespace
}  // namespace vlsipart
