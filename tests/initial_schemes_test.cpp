// Tests for BFS region-growing initial solutions, the InitialScheme
// dispatch, coarsening-scheme options, and budgeted multistart.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/initial.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/coarsen.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(BfsInitial, CoversAllVerticesWithBothParts) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(1);
  const auto parts = bfs_initial(p, rng);
  ASSERT_EQ(parts.size(), h.num_vertices());
  Weight w0 = 0;
  Weight w1 = 0;
  for (std::size_t v = 0; v < parts.size(); ++v) {
    ASSERT_LE(parts[v], 1);
    (parts[v] == 0 ? w0 : w1) += h.vertex_weight(static_cast<VertexId>(v));
  }
  EXPECT_GT(w0, 0);
  EXPECT_GT(w1, 0);
  // Region grows to roughly half the weight (within the largest single
  // claim step, which one macro can dominate).
  EXPECT_GE(w0, h.total_vertex_weight() / 2);
  EXPECT_LE(w0, h.total_vertex_weight() / 2 + h.max_vertex_weight() + 1);
}

TEST(BfsInitial, LowerCutThanRandomInitial) {
  // The whole point of region growing: the initial cut starts near the
  // region boundary instead of ~half of all nets.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(2);
  double bfs_total = 0.0;
  double random_total = 0.0;
  for (int i = 0; i < 10; ++i) {
    bfs_total += static_cast<double>(compute_cut(h, bfs_initial(p, rng)));
    random_total +=
        static_cast<double>(compute_cut(h, random_initial(p, rng)));
  }
  EXPECT_LT(bfs_total, 0.7 * random_total);
}

TEST(BfsInitial, RespectsFixedVertices) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.3);
  p.fixed.assign(h.num_vertices(), kNoPart);
  p.fixed[3] = 0;
  p.fixed[8] = 1;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto parts = bfs_initial(p, rng);
    EXPECT_EQ(parts[3], 0);
    EXPECT_EQ(parts[8], 1);
  }
}

TEST(InitialScheme, DispatchAndNames) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.2);
  Rng rng(4);
  for (const InitialScheme s :
       {InitialScheme::kRandom, InitialScheme::kBfs, InitialScheme::kMixed}) {
    const auto parts = make_initial(p, s, 0, rng);
    EXPECT_EQ(parts.size(), h.num_vertices());
    EXPECT_NE(std::string(name_of(s)), "?");
  }
}

TEST(InitialScheme, FlatEngineWithBfsStartsStaysValid) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}, "bfs-fm", InitialScheme::kBfs};
  const MultistartResult r = run_multistart(p, engine, 8, 5);
  for (const auto& s : r.starts) EXPECT_TRUE(s.feasible);
  EXPECT_EQ(check_solution(p, r.best_parts), "");
}

TEST(CoarsenScheme, MatchingHalvesAtMost) {
  const Hypergraph h = generate_netlist(preset("small"));
  CoarsenConfig config;
  config.scheme = CoarsenScheme::kHeavyEdgeMatching;
  Rng rng(6);
  const CoarsenLevel level = coarsen_once(h, config, {}, {}, rng);
  // Pairs only: at most a 2x reduction.
  EXPECT_GE(level.coarse.num_vertices(), h.num_vertices() / 2);
  // And clusters are pairs: max coarse "cardinality" is 2, which we
  // check via the fine-to-coarse map.
  std::vector<int> members(level.coarse.num_vertices(), 0);
  for (const VertexId c : level.fine_to_coarse) ++members[c];
  for (const int m : members) EXPECT_LE(m, 2);
  EXPECT_EQ(level.coarse.total_vertex_weight(), h.total_vertex_weight());
}

TEST(CoarsenScheme, FirstChoiceShrinksFasterThanMatching) {
  const Hypergraph h = generate_netlist(preset("small"));
  Rng r1(7);
  Rng r2(7);
  CoarsenConfig fc;
  fc.scheme = CoarsenScheme::kFirstChoice;
  CoarsenConfig hem;
  hem.scheme = CoarsenScheme::kHeavyEdgeMatching;
  const auto a = coarsen_once(h, fc, {}, {}, r1);
  const auto b = coarsen_once(h, hem, {}, {}, r2);
  EXPECT_LT(a.coarse.num_vertices(), b.coarse.num_vertices());
}

TEST(CoarsenScheme, MlWorksWithMatchingCoarsening) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlConfig config;
  config.coarsen.scheme = CoarsenScheme::kHeavyEdgeMatching;
  MlPartitioner engine(config);
  std::vector<PartId> parts;
  Rng rng(8);
  const Weight cut = engine.run(p, rng, parts);
  EXPECT_EQ(check_solution(p, parts), "");
  EXPECT_EQ(cut, compute_cut(h, parts));
}

TEST(MlInitialScheme, BfsAtCoarsestLevelWorks) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlConfig config;
  config.initial_scheme = InitialScheme::kMixed;
  MlPartitioner engine(config);
  std::vector<PartId> parts;
  Rng rng(9);
  engine.run(p, rng, parts);
  EXPECT_EQ(check_solution(p, parts), "");
}

TEST(BudgetedMultistart, RespectsBudgetAndRunsAtLeastOnce) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  // Tiny budget: exactly one start.
  const MultistartResult one =
      run_multistart_budgeted(p, engine, 0.0, 3);
  EXPECT_EQ(one.starts.size(), 1u);
  // Generous budget: several starts, total CPU only slightly above.
  FlatFmPartitioner engine2{FmConfig{}};
  const MultistartResult many =
      run_multistart_budgeted(p, engine2, 0.05, 3);
  EXPECT_GT(many.starts.size(), 1u);
  EXPECT_EQ(check_solution(p, many.best_parts), "");
}

TEST(BudgetedMultistart, MaxStartsCap) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult r =
      run_multistart_budgeted(p, engine, 100.0, 3, /*max_starts=*/5);
  EXPECT_EQ(r.starts.size(), 5u);
}

}  // namespace
}  // namespace vlsipart
