// Tests for the statistical significance machinery (Brglez [7] /
// Sec. 3.2 "significance tests").
#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/significance.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

Sample normal_sample(double mean, double stddev, std::size_t n,
                     std::uint64_t seed) {
  Rng rng(seed);
  Sample s;
  for (std::size_t i = 0; i < n; ++i) s.add(rng.normal(mean, stddev));
  return s;
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, 0.25),
              0.25 * 0.25 * (3.0 - 0.5), 1e-12);
  // Boundaries.
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(3.0, 4.0, 1.0), 1.0);
}

TEST(NormalP, KnownValues) {
  EXPECT_NEAR(normal_two_sided_p(0.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_two_sided_p(1.959964), 0.05, 1e-4);
  EXPECT_NEAR(normal_two_sided_p(-1.959964), 0.05, 1e-4);
  EXPECT_NEAR(normal_two_sided_p(2.575829), 0.01, 1e-4);
}

TEST(StudentT, KnownValues) {
  // t = 2.228 with 10 dof -> p = 0.05 (two-sided).
  EXPECT_NEAR(student_t_two_sided_p(2.228139, 10.0), 0.05, 1e-4);
  // Large dof approaches the normal distribution.
  EXPECT_NEAR(student_t_two_sided_p(1.959964, 1e6),
              normal_two_sided_p(1.959964), 1e-3);
  EXPECT_NEAR(student_t_two_sided_p(0.0, 5.0), 1.0, 1e-12);
}

TEST(WelchT, DetectsRealDifference) {
  const Sample a = normal_sample(100.0, 5.0, 40, 1);
  const Sample b = normal_sample(110.0, 5.0, 40, 2);
  const TestResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_at(0.001));
  EXPECT_LT(r.statistic, 0.0);  // a has the smaller mean
}

TEST(WelchT, AcceptsNullWhenSame) {
  const Sample a = normal_sample(100.0, 5.0, 40, 3);
  const Sample b = normal_sample(100.0, 5.0, 40, 4);
  const TestResult r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant_at(0.01));
}

TEST(WelchT, FalsePositiveRateNearAlpha) {
  // Property: under the null, p < 0.05 should occur ~5% of the time.
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const Sample a =
        normal_sample(50.0, 3.0, 20, 1000 + 2 * static_cast<unsigned>(t));
    const Sample b =
        normal_sample(50.0, 3.0, 20, 1001 + 2 * static_cast<unsigned>(t));
    if (welch_t_test(a, b).significant_at(0.05)) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.12);
}

TEST(WelchT, TooFewSamplesIsInconclusive) {
  Sample a;
  a.add(1.0);
  Sample b;
  b.add(2.0);
  b.add(3.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_value, 1.0);
}

TEST(WelchT, ConstantSamples) {
  Sample a;
  Sample b;
  for (int i = 0; i < 5; ++i) {
    a.add(7.0);
    b.add(7.0);
  }
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_value, 1.0);
  Sample c;
  for (int i = 0; i < 5; ++i) c.add(9.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, c).p_value, 0.0);
}

TEST(MannWhitney, DetectsShift) {
  const Sample a = normal_sample(100.0, 5.0, 40, 5);
  const Sample b = normal_sample(112.0, 5.0, 40, 6);
  const TestResult r = mann_whitney_u(a, b);
  EXPECT_TRUE(r.significant_at(0.001));
}

TEST(MannWhitney, AcceptsNull) {
  const Sample a = normal_sample(100.0, 5.0, 40, 7);
  const Sample b = normal_sample(100.0, 5.0, 40, 8);
  EXPECT_FALSE(mann_whitney_u(a, b).significant_at(0.01));
}

TEST(MannWhitney, HandlesHeavyTies) {
  // Integer cut values produce many ties; the tie correction must keep
  // the statistic finite and sane.
  Sample a;
  Sample b;
  for (int i = 0; i < 30; ++i) {
    a.add(static_cast<double>(100 + (i % 3)));
    b.add(static_cast<double>(101 + (i % 3)));
  }
  const TestResult r = mann_whitney_u(a, b);
  EXPECT_TRUE(std::isfinite(r.statistic));
  EXPECT_TRUE(r.significant_at(0.05));
  // Fully tied: inconclusive.
  Sample c;
  Sample d;
  for (int i = 0; i < 10; ++i) {
    c.add(5.0);
    d.add(5.0);
  }
  EXPECT_DOUBLE_EQ(mann_whitney_u(c, d).p_value, 1.0);
}

TEST(MannWhitney, RobustToOutliers) {
  // A rank test should still detect the shift when Welch is diluted by
  // one huge outlier.
  Sample a = normal_sample(100.0, 2.0, 30, 9);
  Sample b = normal_sample(104.0, 2.0, 30, 10);
  a.add(10000.0);  // pathological run in sample a
  const TestResult u = mann_whitney_u(a, b);
  EXPECT_TRUE(u.significant_at(0.01));
}

TEST(Describe, MentionsWinnerAndSignificance) {
  const Sample a = normal_sample(100.0, 3.0, 30, 11);
  const Sample b = normal_sample(120.0, 3.0, 30, 12);
  const std::string s = describe_comparison("ours", a, "theirs", b);
  EXPECT_NE(s.find("ours better"), std::string::npos);
  EXPECT_NE(s.find("significant"), std::string::npos);
}

}  // namespace
}  // namespace vlsipart
