// Tests for start pruning in the multistart harness (Sec. 3.2).
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(Pruning, PrunesSomeStartsWithTightFactor) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  PruneConfig prune;
  prune.factor = 1.0;  // anything worse than the best pass-1 cut dies
  const PrunedMultistartResult r =
      run_multistart_pruned(p, FmConfig{}, 20, 5, prune);
  EXPECT_GT(r.pruned_starts, 0u);
  EXPECT_LT(r.pruned_starts, 20u);
  EXPECT_EQ(r.result.starts.size(), 20u);
  EXPECT_GT(r.pruned_cpu_seconds, 0.0);
}

TEST(Pruning, LooseFactorPrunesNothing) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  PruneConfig prune;
  prune.factor = 1000.0;
  const PrunedMultistartResult r =
      run_multistart_pruned(p, FmConfig{}, 10, 5, prune);
  EXPECT_EQ(r.pruned_starts, 0u);
}

TEST(Pruning, BestSolutionStaysFeasibleAndConsistent) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  PruneConfig prune;
  prune.factor = 1.05;
  const PrunedMultistartResult r =
      run_multistart_pruned(p, FmConfig{}, 15, 7, prune);
  ASSERT_FALSE(r.result.best_parts.empty());
  EXPECT_EQ(check_solution(p, r.result.best_parts), "");
  EXPECT_EQ(compute_cut(h, r.result.best_parts), r.result.best_cut);
}

TEST(Pruning, QualityCloseToUnprunedAtLowerCost) {
  // The point of pruning: nearly the unpruned best cut for less CPU.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);

  FlatFmPartitioner plain_engine{FmConfig{}};
  const MultistartResult plain = run_multistart(p, plain_engine, 20, 11);

  PruneConfig prune;
  prune.factor = 1.10;
  const PrunedMultistartResult pruned =
      run_multistart_pruned(p, FmConfig{}, 20, 11, prune);

  // Same seeds, same pass-1 trajectories: the pruned best can be at most
  // slightly worse (only starts with bad first passes were discarded).
  EXPECT_LE(static_cast<double>(pruned.result.best_cut),
            1.5 * static_cast<double>(plain.best_cut));
  if (pruned.pruned_starts > 0) {
    EXPECT_LT(pruned.result.total_cpu_seconds,
              plain.total_cpu_seconds * 1.05);
  }
}

TEST(Pruning, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  PruneConfig prune;
  prune.factor = 1.1;
  const PrunedMultistartResult a =
      run_multistart_pruned(p, FmConfig{}, 10, 13, prune);
  const PrunedMultistartResult b =
      run_multistart_pruned(p, FmConfig{}, 10, 13, prune);
  EXPECT_EQ(a.pruned_starts, b.pruned_starts);
  EXPECT_EQ(a.result.best_cut, b.result.best_cut);
  EXPECT_EQ(a.result.best_parts, b.result.best_parts);
}

TEST(Pruning, PrunedStartsNeverWinBest) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  PruneConfig prune;
  prune.factor = 1.0;
  const PrunedMultistartResult r =
      run_multistart_pruned(p, FmConfig{}, 20, 17, prune);
  for (const auto& s : r.result.starts) {
    if (!s.feasible) continue;  // pruned records are marked infeasible
    EXPECT_GE(s.cut, r.result.best_cut);
  }
}

}  // namespace
}  // namespace vlsipart
