// Tests for Krishnamurthy lookahead-gain tie-breaking [30].
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(Lookahead, InvariantsHoldAcrossDepths) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  for (const int depth : {1, 2, 3, 5}) {
    FmConfig cfg;
    cfg.lookahead_depth = depth;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng rng(seed);
      auto parts = random_initial(p, rng);
      PartitionState state(h);
      state.assign(parts);
      const Weight before = state.cut();
      FmRefiner refiner(p, cfg);
      refiner.refine(state, rng);
      EXPECT_LE(state.cut(), before) << "depth " << depth;
      EXPECT_EQ(check_solution(p, state.parts()), "") << "depth " << depth;
      state.audit();
    }
  }
}

TEST(Lookahead, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FmConfig cfg;
  cfg.lookahead_depth = 3;
  auto run = [&]() {
    Rng rng(4);
    auto parts = random_initial(p, rng);
    PartitionState state(h);
    state.assign(parts);
    FmRefiner refiner(p, cfg);
    refiner.refine(state, rng);
    return state.parts();
  };
  EXPECT_EQ(run(), run());
}

TEST(Lookahead, ChangesTieBreakDecisions) {
  // Depth-2 lookahead must (generically) reach different local optima
  // than arbitrary LIFO tie-breaking.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  int differs = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto run_depth = [&](int depth) {
      Rng rng(seed);
      auto parts = random_initial(p, rng);
      PartitionState state(h);
      state.assign(parts);
      FmConfig cfg;
      cfg.lookahead_depth = depth;
      FmRefiner refiner(p, cfg);
      refiner.refine(state, rng);
      return state.cut();
    };
    if (run_depth(1) != run_depth(3)) ++differs;
  }
  EXPECT_GE(differs, 5);
}

TEST(Lookahead, NoWorseOnAverageThanPlainFm) {
  // Krishnamurthy's claim: lookahead tie-breaking improves average
  // solution quality.  Verify the direction over a modest sample.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  FmConfig plain;
  FmConfig look;
  look.lookahead_depth = 3;
  FlatFmPartitioner plain_engine(plain);
  FlatFmPartitioner look_engine(look);
  const MultistartResult a = run_multistart(p, plain_engine, 20, 3);
  const MultistartResult b = run_multistart(p, look_engine, 20, 3);
  EXPECT_LE(b.avg_cut(), a.avg_cut() * 1.10);
}

TEST(Lookahead, IgnoredInClipMode) {
  // CLIP keys have no level structure; lookahead must be a no-op there
  // (same trajectory as plain CLIP).
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  auto run = [&](int depth) {
    Rng rng(8);
    auto parts = random_initial(p, rng);
    PartitionState state(h);
    state.assign(parts);
    FmConfig cfg;
    cfg.clip = true;
    cfg.exclude_oversized = true;
    cfg.lookahead_depth = depth;
    FmRefiner refiner(p, cfg);
    refiner.refine(state, rng);
    return state.parts();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Lookahead, VectorMatchesHandComputation) {
  // Nets: a={0,1}, b={0,2,3}, c={0,4,5,6}, all vertices in part 0 except
  // 6 in part 1; nothing locked.  For v=0 (from=0, to=1):
  //   net a: beta_from=2 -> +1 at level 2.
  //   net b: beta_from=3 -> +1 at level 3.
  //   net c: beta_from=3 (pins 0,4,5 in part 0) -> +1 at level 3;
  //          beta_to=1 (pin 6) -> -1 at level 2.
  HypergraphBuilder builder(7);
  builder.add_edge({0, 1});
  builder.add_edge({0, 2, 3});
  builder.add_edge({0, 4, 5, 6});
  const Hypergraph h = builder.finalize();
  const PartitionProblem p = make_problem(h, 0.9);
  PartitionState state(h);
  state.assign(std::vector<PartId>{0, 0, 0, 0, 0, 0, 1});

  // Expose the vector through behavior: select the first move with
  // depth 3 and verify the engine's choice is consistent with the hand
  // computation by comparing cut trajectories.  (The vector itself is
  // private; we verify its observable effect.)
  FmConfig cfg;
  cfg.lookahead_depth = 3;
  FmRefiner refiner(p, cfg);
  Rng rng(1);
  const FmResult r = refiner.refine(state, rng);
  EXPECT_LE(r.final_cut, r.initial_cut);
  state.audit();
}

TEST(Lookahead, WorksWithFixedVertices) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.2);
  p.fixed.assign(h.num_vertices(), kNoPart);
  p.fixed[2] = 0;
  p.fixed[6] = 1;
  FmConfig cfg;
  cfg.lookahead_depth = 3;
  Rng rng(5);
  auto parts = random_initial(p, rng);
  PartitionState state(h);
  state.assign(parts);
  FmRefiner refiner(p, cfg);
  refiner.refine(state, rng);
  EXPECT_EQ(state.part(2), 0);
  EXPECT_EQ(state.part(6), 1);
  EXPECT_EQ(check_solution(p, state.parts()), "");
}

}  // namespace
}  // namespace vlsipart
