// Unit tests for the hypergraph substrate: builder, CSR structure,
// validation, statistics, and contraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/contraction.h"
#include "src/hypergraph/hypergraph.h"
#include "src/hypergraph/stats.h"

namespace vlsipart {
namespace {

Hypergraph make_triangleish() {
  // 4 vertices, 3 edges: {0,1}, {1,2,3}, {0,3}.
  HypergraphBuilder b(4);
  b.add_edge({0, 1});
  b.add_edge({1, 2, 3});
  b.add_edge({0, 3});
  return b.finalize("triangleish");
}

TEST(HypergraphBuilder, BasicCounts) {
  Hypergraph h = make_triangleish();
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.num_pins(), 7u);
  h.validate();
}

TEST(HypergraphBuilder, PinsAndIncidence) {
  Hypergraph h = make_triangleish();
  const auto pins1 = h.pins(1);
  ASSERT_EQ(pins1.size(), 3u);
  EXPECT_EQ(pins1[0], 1u);
  EXPECT_EQ(pins1[1], 2u);
  EXPECT_EQ(pins1[2], 3u);
  EXPECT_EQ(h.degree(0), 2u);
  EXPECT_EQ(h.degree(1), 2u);
  EXPECT_EQ(h.degree(2), 1u);
  EXPECT_EQ(h.degree(3), 2u);
  const auto edges3 = h.incident_edges(3);
  ASSERT_EQ(edges3.size(), 2u);
  EXPECT_EQ(edges3[0], 1u);
  EXPECT_EQ(edges3[1], 2u);
}

TEST(HypergraphBuilder, DuplicatePinsRemoved) {
  HypergraphBuilder b(3);
  const EdgeId e = b.add_edge({0, 1, 1, 0});
  EXPECT_NE(e, kInvalidEdge);
  Hypergraph h = b.finalize();
  EXPECT_EQ(h.edge_size(0), 2u);
  h.validate();
}

TEST(HypergraphBuilder, SingletonEdgeDropped) {
  HypergraphBuilder b(3);
  EXPECT_EQ(b.add_edge({1, 1, 1}), kInvalidEdge);
  EXPECT_EQ(b.add_edge(std::initializer_list<VertexId>{2}), kInvalidEdge);
  Hypergraph h = b.finalize();
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(HypergraphBuilder, WeightsTracked) {
  HypergraphBuilder b(3);
  b.set_vertex_weight(0, 5);
  b.set_vertex_weight(1, 7);
  b.add_edge({0, 1}, 3);
  b.add_edge({1, 2}, 2);
  Hypergraph h = b.finalize();
  EXPECT_EQ(h.total_vertex_weight(), 5 + 7 + 1);
  EXPECT_EQ(h.max_vertex_weight(), 7);
  EXPECT_EQ(h.total_edge_weight(), 5);
  EXPECT_EQ(h.edge_weight(0), 3);
  h.validate();
}

TEST(HypergraphBuilder, RejectsBadInput) {
  HypergraphBuilder b(2);
  EXPECT_THROW(b.set_vertex_weight(5, 1), std::logic_error);
  EXPECT_THROW(b.set_vertex_weight(0, 0), std::logic_error);
  EXPECT_THROW(b.add_edge({0, 7}), std::logic_error);
  EXPECT_THROW(b.add_edge({0, 1}, 0), std::logic_error);
}

TEST(InstanceStats, MatchesHandComputation) {
  Hypergraph h = make_triangleish();
  const InstanceStats s = compute_stats(h, 3);
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.num_pins, 7u);
  EXPECT_DOUBLE_EQ(s.avg_net_size, 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.avg_vertex_degree, 7.0 / 4.0);
  EXPECT_EQ(s.max_net_size, 3u);
  EXPECT_EQ(s.max_vertex_degree, 2u);
  EXPECT_EQ(s.num_huge_nets, 1u);  // the 3-pin net with threshold 3
  EXPECT_FALSE(s.to_string("t").empty());
}

TEST(Contraction, MergesParallelNetsAndDropsInternal) {
  // Clusters {0,1} and {2,3}: edge {0,1} collapses; edges {0,2} and
  // {1,3} become parallel coarse nets and merge with summed weight.
  // Cluster ids are non-dense (but in range — they are representative
  // vertex ids) to exercise the first-appearance renumbering.
  HypergraphBuilder b(4);
  b.add_edge({0, 1});
  b.add_edge({0, 2});
  b.add_edge({1, 3});
  Hypergraph h = b.finalize();
  const std::vector<VertexId> clusters = {3, 3, 2, 2};
  const ContractionResult r = contract(h, clusters);
  EXPECT_EQ(r.num_coarse_vertices, 2u);
  EXPECT_EQ(r.coarse.num_edges(), 1u);
  EXPECT_EQ(r.coarse.edge_weight(0), 2);
  EXPECT_EQ(r.nets_collapsed, 1u);
  EXPECT_EQ(r.nets_merged, 1u);
  EXPECT_EQ(r.coarse.total_vertex_weight(), h.total_vertex_weight());
  r.coarse.validate();
}

TEST(Contraction, RejectsOutOfRangeClusterIds) {
  Hypergraph h = make_triangleish();
  const std::vector<VertexId> clusters = {9, 9, 4, 4};
  EXPECT_THROW(contract(h, clusters), std::logic_error);
}

TEST(Contraction, ReusedMemoryMatchesFreshCalls) {
  // Threading one ContractionMemory through successive contractions must
  // produce exactly what memory-less calls produce.
  Hypergraph h = make_triangleish();
  ContractionMemory memory;
  std::vector<std::vector<VertexId>> maps = {
      {0, 0, 1, 1}, {2, 2, 2, 3}, {0, 1, 2, 3}};
  for (const auto& clusters : maps) {
    const ContractionResult fresh = contract(h, clusters);
    const ContractionResult reused = contract(h, clusters, &memory);
    EXPECT_EQ(fresh.fine_to_coarse, reused.fine_to_coarse);
    EXPECT_EQ(fresh.num_coarse_vertices, reused.num_coarse_vertices);
    EXPECT_EQ(fresh.coarse.num_edges(), reused.coarse.num_edges());
    for (std::size_t e = 0; e < fresh.coarse.num_edges(); ++e) {
      const auto id = static_cast<EdgeId>(e);
      EXPECT_EQ(fresh.coarse.edge_weight(id), reused.coarse.edge_weight(id));
      const auto fp = fresh.coarse.pins(id);
      const auto rp = reused.coarse.pins(id);
      ASSERT_EQ(fp.size(), rp.size());
      EXPECT_TRUE(std::equal(fp.begin(), fp.end(), rp.begin()));
    }
    reused.coarse.validate();
  }
}

TEST(Contraction, ProjectionRoundTrip) {
  Hypergraph h = make_triangleish();
  const std::vector<VertexId> clusters = {0, 0, 1, 1};
  const ContractionResult r = contract(h, clusters);
  const std::vector<PartId> coarse_parts = {0, 1};
  const auto fine = project_partition(r.fine_to_coarse, coarse_parts);
  ASSERT_EQ(fine.size(), 4u);
  EXPECT_EQ(fine[0], fine[1]);
  EXPECT_EQ(fine[2], fine[3]);
  EXPECT_NE(fine[0], fine[2]);
}

TEST(Generator, RespectsPresetShape) {
  const GenConfig config = preset("small");
  Hypergraph h = generate_netlist(config);
  h.validate();
  const InstanceStats s = compute_stats(h);
  EXPECT_NEAR(static_cast<double>(s.num_vertices),
              static_cast<double>(config.num_cells + config.num_pads), 0.0);
  // Sec. 2.1 shape: avg degree and net size in the 2..6 band, |E|~|V|.
  EXPECT_GT(s.avg_net_size, 2.0);
  EXPECT_LT(s.avg_net_size, 6.0);
  EXPECT_GT(s.avg_vertex_degree, 1.5);
  EXPECT_LT(s.avg_vertex_degree, 8.0);
  EXPECT_GT(s.area_spread, 10.0);  // macros present
}

TEST(Generator, Deterministic) {
  const GenConfig config = preset("tiny");
  Hypergraph a = generate_netlist(config);
  Hypergraph b = generate_netlist(config);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    const auto pa = a.pins(static_cast<EdgeId>(e));
    const auto pb = b.pins(static_cast<EdgeId>(e));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(Generator, UnknownPresetThrows) {
  EXPECT_THROW(preset("ibm99"), std::invalid_argument);
}

TEST(Generator, IbmPresetNamesComplete) {
  const auto names = ibm_preset_names();
  ASSERT_EQ(names.size(), 18u);
  EXPECT_EQ(names.front(), "ibm01");
  EXPECT_EQ(names.back(), "ibm18");
  for (const auto& n : names) EXPECT_NO_THROW(preset(n));
}

}  // namespace
}  // namespace vlsipart
