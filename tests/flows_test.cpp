// Tests for the top-down placement flow (the motivating use model).
#include <gtest/gtest.h>

#include <cmath>

#include "src/flows/topdown_place.h"
#include "src/gen/netlist_gen.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

TEST(TopdownPlace, AllCellsInsideCore) {
  const Hypergraph h = generate_netlist(preset("small"));
  PlacerConfig config;
  config.core_width = 100.0;
  config.core_height = 80.0;
  const PlacementReport report = topdown_place(h, config);
  ASSERT_EQ(report.placement.x.size(), h.num_vertices());
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    EXPECT_GE(report.placement.x[v], 0.0);
    EXPECT_LE(report.placement.x[v], 100.0);
    EXPECT_GE(report.placement.y[v], 0.0);
    EXPECT_LE(report.placement.y[v], 80.0);
  }
}

TEST(TopdownPlace, RecursesAndPropagatesTerminals) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PlacementReport report = topdown_place(h, PlacerConfig{});
  // 624 cells with 24-cell leaves -> dozens of bisections, and crossing
  // nets must have produced fixed terminals.
  EXPECT_GT(report.regions_partitioned, 20u);
  EXPECT_GT(report.terminals_created, 0u);
  EXPECT_GT(report.hpwl, 0.0);
}

TEST(TopdownPlace, BeatsRandomPlacementOnHpwl) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PlacementReport report = topdown_place(h, PlacerConfig{});

  // Random placement baseline in the same core.
  const double side =
      std::sqrt(static_cast<double>(h.total_vertex_weight()));
  Placement random;
  random.x.resize(h.num_vertices());
  random.y.resize(h.num_vertices());
  Rng rng(5);
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    random.x[v] = rng.uniform(0.0, side);
    random.y[v] = rng.uniform(0.0, side);
  }
  const double random_hpwl = hpwl(h, random);
  // Min-cut placement should beat random wirelength by a wide margin.
  EXPECT_LT(report.hpwl, 0.7 * random_hpwl);
}

TEST(TopdownPlace, DeterministicForConfig) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PlacerConfig config;
  config.seed = 33;
  const PlacementReport a = topdown_place(h, config);
  const PlacementReport b = topdown_place(h, config);
  EXPECT_EQ(a.placement.x, b.placement.x);
  EXPECT_EQ(a.placement.y, b.placement.y);
  EXPECT_DOUBLE_EQ(a.hpwl, b.hpwl);
}

TEST(TopdownPlace, LeafOnlyInstance) {
  // Instance smaller than leaf_cells: no partitioning at all.
  const Hypergraph h = generate_netlist(preset("tiny"));
  PlacerConfig config;
  config.leaf_cells = 10000;
  const PlacementReport report = topdown_place(h, config);
  EXPECT_EQ(report.regions_partitioned, 0u);
  EXPECT_GT(report.hpwl, 0.0);
}

TEST(Hpwl, HandComputed) {
  HypergraphBuilder b(3);
  b.add_edge({0, 1});
  b.add_edge({0, 1, 2}, 3);
  const Hypergraph h = b.finalize();
  Placement pl;
  pl.x = {0.0, 2.0, 1.0};
  pl.y = {0.0, 0.0, 5.0};
  // Net {0,1}: 2 + 0 = 2.  Net {0,1,2} (w3): (2 + 5) * 3 = 21.
  EXPECT_DOUBLE_EQ(hpwl(h, pl), 23.0);
}

}  // namespace
}  // namespace vlsipart
