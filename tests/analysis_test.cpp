// vpart_lint analyzer tests: lexer behavior, a fixture corpus with a
// firing / suppressed / clean case for every rule, false-positive
// regressions for the keyword-in-string/comment class the regex lint
// had, baseline semantics, output renderers, and a self-test that lints
// the repository's own sources (the acceptance gate: the repo is
// clean).
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/finding.h"
#include "src/analysis/lexer.h"
#include "src/analysis/output.h"

namespace vlsipart::analysis {
namespace {

AnalysisResult lint(const std::string& path, const std::string& code,
                    const std::vector<SourceBuffer>& context = {}) {
  AnalyzerOptions options;
  return analyze_buffers({SourceBuffer{path, code}}, context, options);
}

std::size_t count_rule(const AnalysisResult& r, const std::string& rule) {
  std::size_t n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string dump(const AnalysisResult& r) {
  std::string out;
  for (const Finding& f : r.findings) out += f.to_string() + "\n";
  for (const std::string& e : r.errors) out += "error: " + e + "\n";
  return out;
}

// ---------------------------------------------------------------------
// Lexer

TEST(Lexer, TokensCarryLineAndColumn) {
  const LexedFile f = lex("a.cpp", "int x = 42;\nreturn x;\n");
  ASSERT_GE(f.tokens.size(), 8u);
  EXPECT_TRUE(f.tokens[0].is_ident("int"));
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[0].col, 1);
  EXPECT_EQ(f.tokens[3].kind, TokenKind::kNumber);
  EXPECT_TRUE(f.tokens[5].is_ident("return"));
  EXPECT_EQ(f.tokens[5].line, 2);
}

TEST(Lexer, CommentsAreCapturedNotTokenized) {
  const LexedFile f = lex("a.cpp",
                          "int a; // trailing note\n"
                          "/* block\n   spanning */ int b;\n");
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_NE(f.comments[0].text.find("trailing note"), std::string::npos);
  EXPECT_EQ(f.comments[0].line, 1);
  EXPECT_EQ(f.comments[1].line, 2);  // block comment: start line
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "trailing");
    EXPECT_NE(t.text, "spanning");
  }
}

TEST(Lexer, StringAndCharLiteralsAreOpaque) {
  const LexedFile f =
      lex("a.cpp", "const char* s = \"rand() \\\" mt19937\"; char c = '\\'';");
  std::size_t strings = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kString) ++strings;
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "mt19937");
  }
  EXPECT_EQ(strings, 1u);
}

TEST(Lexer, RawStringsAreOpaque) {
  const LexedFile f = lex(
      "a.cpp", "auto r = R\"x(rand() \")\" unordered_map<int,int>)x\"; int z;");
  bool saw_z = false;
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "unordered_map");
    if (t.is_ident("z")) saw_z = true;
  }
  EXPECT_TRUE(saw_z);  // lexing resumed correctly after the raw string
}

TEST(Lexer, PreprocessorLinesAreSingleTokens) {
  const LexedFile f = lex("a.cpp",
                          "#include <random>\n"
                          "#define TWO \\\n  2\n"
                          "int x;\n");
  std::size_t pp = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kPreprocessor) ++pp;
    EXPECT_NE(t.text, "random");
  }
  EXPECT_EQ(pp, 2u);  // the continuation line folds into one token
}

TEST(Lexer, DigitSeparatorsStaySingleNumber) {
  const LexedFile f = lex("a.cpp", "long n = 1'000'000; int m = 0x7f'ff;");
  std::size_t numbers = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kNumber) ++numbers;
  }
  EXPECT_EQ(numbers, 2u);
  EXPECT_EQ(f.tokens[3].text, "1'000'000");
}

TEST(Lexer, EncodingPrefixedStringsAreOneToken) {
  const LexedFile f = lex(
      "a.cpp", "auto a = u8\"rand()\"; auto b = L\"x\"; auto c = U\"y\";");
  std::size_t strings = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kString) ++strings;
    EXPECT_NE(t.text, "rand");
    EXPECT_FALSE(t.is_ident("u8"));
    EXPECT_FALSE(t.is_ident("L"));
  }
  EXPECT_EQ(strings, 3u);
}

TEST(Lexer, EncodingPrefixedCharLiteralsAreOneToken) {
  const LexedFile f = lex("a.cpp", "auto a = u8'x'; auto b = L'y';");
  std::size_t chars = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kCharLiteral) ++chars;
    EXPECT_FALSE(t.is_ident("u8"));
    EXPECT_FALSE(t.is_ident("L"));
  }
  EXPECT_EQ(chars, 2u);
  EXPECT_EQ(f.tokens[3].text, "u8'x'");
}

TEST(Lexer, RawStringContainingCommentClosersIsOpaque) {
  const LexedFile f = lex("a.cpp",
                          "auto r = R\"(a */ b /* c // d)\"; int after;\n"
                          "// real comment\n");
  bool saw_after = false;
  for (const Token& t : f.tokens) {
    if (t.is_ident("after")) saw_after = true;
  }
  EXPECT_TRUE(saw_after);
  ASSERT_EQ(f.comments.size(), 1u);  // only the real one
  EXPECT_NE(f.comments[0].text.find("real comment"), std::string::npos);
}

TEST(Lexer, PreprocessorStringWithSlashesKeepsWholeLine) {
  // A URL inside a #define used to truncate the directive at "//" and
  // turn the tail into a phantom comment.
  const LexedFile f = lex("a.cpp",
                          "#define URL \"http://example.com\"\n"
                          "int x;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_NE(f.tokens[0].text.find("example.com\""), std::string::npos);
  EXPECT_TRUE(f.comments.empty());
}

TEST(Lexer, PreprocessorRawStringWithCommentCloserKeepsWholeLine) {
  const LexedFile f = lex("a.cpp",
                          "#define PAT R\"(a */ b)\"\n"
                          "int y;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_NE(f.tokens[0].text.find(")\""), std::string::npos);
  EXPECT_TRUE(f.comments.empty());
  bool saw_y = false;
  for (const Token& t : f.tokens) {
    if (t.is_ident("y")) saw_y = true;
  }
  EXPECT_TRUE(saw_y);
}

// ---------------------------------------------------------------------
// Determinism rules: firing / suppressed / clean per rule

TEST(RuleRand, Fires) {
  const AnalysisResult r = lint("src/part/f.cpp", "int x = rand();\n");
  EXPECT_EQ(count_rule(r, "rand"), 1u) << dump(r);
}

TEST(RuleRand, SuppressedByAllow) {
  const AnalysisResult r = lint(
      "src/part/f.cpp", "int x = rand();  // det-lint: allow(rand) why\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(RuleRand, CleanOnMemberAndNonCall) {
  const AnalysisResult r = lint("src/part/f.cpp",
                                "int a = gen.rand();\n"
                                "int rand_count = 0;\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleRandomDevice, Fires) {
  const AnalysisResult r =
      lint("src/util/f.cpp", "std::random_device rd;\n");
  EXPECT_EQ(count_rule(r, "random-device"), 1u) << dump(r);
}

TEST(RuleRandomDevice, SuppressedByAllowOnLineAbove) {
  const AnalysisResult r = lint("src/util/f.cpp",
                                "// det-lint: allow(random-device) why\n"
                                "std::random_device rd;\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(RuleRandomDevice, CleanWhenOnlyNamedInComment) {
  const AnalysisResult r =
      lint("src/util/f.cpp", "// uses std::random_device? no.\nint x;\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleStdEngine, Fires) {
  const AnalysisResult r = lint("src/part/f.cpp", "std::mt19937 gen(42);\n");
  EXPECT_EQ(count_rule(r, "std-engine"), 1u) << dump(r);
}

TEST(RuleStdEngine, Suppressed) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "std::mt19937 gen(42);  // det-lint: allow(std-engine) reference\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleStdEngine, CleanInStringLiteral) {
  const AnalysisResult r =
      lint("src/part/f.cpp", "const char* s = \"std::mt19937\";\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleTimeSeed, FiresOnTimeCallOnSeedLine) {
  const AnalysisResult r =
      lint("src/part/f.cpp", "auto seed = time(nullptr);\n");
  EXPECT_EQ(count_rule(r, "time-seed"), 1u) << dump(r);
}

TEST(RuleTimeSeed, FiresOnClockNowSeed) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "auto seed = Clock::now().time_since_epoch().count();\n");
  EXPECT_EQ(count_rule(r, "time-seed"), 1u) << dump(r);
  EXPECT_EQ(count_rule(r, "wall-clock"), 1u) << dump(r);  // both rules
}

TEST(RuleTimeSeed, Suppressed) {
  const AnalysisResult r =
      lint("src/part/f.cpp",
           "// det-lint: allow(time-seed) test fixture\n"
           "auto seed = time(nullptr);\n");
  EXPECT_EQ(count_rule(r, "time-seed"), 0u) << dump(r);
}

TEST(RuleTimeSeed, CleanWhenSeedComesFromConfig) {
  const AnalysisResult r =
      lint("src/part/f.cpp", "auto seed = config.seed;\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleWallClock, Fires) {
  const AnalysisResult r =
      lint("src/util/f.cpp", "auto t = Clock::now();\n");
  EXPECT_EQ(count_rule(r, "wall-clock"), 1u) << dump(r);
}

TEST(RuleWallClock, SuppressedListSyntax) {
  const AnalysisResult r = lint(
      "src/util/f.cpp",
      "// det-lint: allow(wall-clock, time-seed) reporting only\n"
      "auto t = Clock::now();\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(RuleWallClock, CleanOnPlainNowIdentifier) {
  const AnalysisResult r = lint("src/util/f.cpp", "int now = 5; use(now);\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleUnorderedInCore, Fires) {
  const AnalysisResult r =
      lint("src/part/f.cpp", "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(r, "unordered-in-core"), 1u) << dump(r);
}

TEST(RuleUnorderedInCore, Suppressed) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "std::unordered_map<int, int> m;  // det-lint: "
      "allow(unordered-in-core) never iterated\n");
  EXPECT_EQ(count_rule(r, "unordered-in-core"), 0u) << dump(r);
}

TEST(RuleUnorderedInCore, CleanOutsideCoreDirs) {
  const AnalysisResult r =
      lint("src/util/f.cpp", "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(r, "unordered-in-core"), 0u) << dump(r);
}

TEST(RuleUnorderedIter, Fires) {
  const AnalysisResult r = lint("src/util/f.cpp",
                                "std::unordered_set<int> items;\n"
                                "void f() { for (int v : items) use(v); }\n");
  EXPECT_EQ(count_rule(r, "unordered-iter"), 1u) << dump(r);
}

TEST(RuleUnorderedIter, Suppressed) {
  const AnalysisResult r =
      lint("src/util/f.cpp",
           "std::unordered_set<int> items;\n"
           "// det-lint: allow(unordered-iter) order-insensitive fold\n"
           "void f() { for (int v : items) use(v); }\n");
  EXPECT_EQ(count_rule(r, "unordered-iter"), 0u) << dump(r);
}

TEST(RuleUnorderedIter, CleanOverVector) {
  const AnalysisResult r = lint("src/util/f.cpp",
                                "std::vector<int> items;\n"
                                "void f() { for (int v : items) use(v); }\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RulePointerSortKey, Fires) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "void f(std::vector<Node*>& v) {\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const Node* a, const Node* b) { return a < b; });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "pointer-sort-key"), 1u) << dump(r);
}

TEST(RulePointerSortKey, Suppressed) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "void f(std::vector<Node*>& v) {\n"
      "  // det-lint: allow(pointer-sort-key) ids proven unique upstream\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const Node* a, const Node* b) { return a < b; });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "pointer-sort-key"), 0u) << dump(r);
}

TEST(RulePointerSortKey, CleanOnValueComparator) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "void f(std::vector<int>& v) {\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const int a, const int b) { return a < b; });\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleFloatAccumulateUnordered, Fires) {
  const AnalysisResult r = lint("src/util/f.cpp",
                                "std::unordered_map<int, double> weights;\n"
                                "double total = 0.0;\n"
                                "void f() {\n"
                                "  for (auto& kv : weights) {\n"
                                "    total += kv.second;\n"
                                "  }\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "float-accumulate-unordered"), 1u) << dump(r);
}

TEST(RuleFloatAccumulateUnordered, Suppressed) {
  const AnalysisResult r =
      lint("src/util/f.cpp",
           "std::unordered_map<int, double> weights;\n"
           "double total = 0.0;\n"
           "void f() {\n"
           "  for (auto& kv : weights) {\n"
           "    // det-lint: allow(float-accumulate-unordered) stats only\n"
           "    total += kv.second;\n"
           "  }\n"
           "}\n");
  EXPECT_EQ(count_rule(r, "float-accumulate-unordered"), 0u) << dump(r);
}

TEST(RuleFloatAccumulateUnordered, CleanOnIntegerAccumulator) {
  const AnalysisResult r = lint("src/util/f.cpp",
                                "std::unordered_map<int, int> weights;\n"
                                "long total = 0;\n"
                                "void f() {\n"
                                "  for (auto& kv : weights) {\n"
                                "    total += kv.second;\n"
                                "  }\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "float-accumulate-unordered"), 0u) << dump(r);
}

TEST(RulePointerKeyedContainer, Fires) {
  const AnalysisResult r =
      lint("src/hypergraph/f.cpp", "std::map<Node*, int> by_node;\n");
  EXPECT_EQ(count_rule(r, "pointer-keyed-container"), 1u) << dump(r);
}

TEST(RulePointerKeyedContainer, Suppressed) {
  const AnalysisResult r = lint(
      "src/hypergraph/f.cpp",
      "std::map<Node*, int> by_node;  // det-lint: "
      "allow(pointer-keyed-container) never iterated, lookup only\n");
  EXPECT_EQ(count_rule(r, "pointer-keyed-container"), 0u) << dump(r);
}

TEST(RulePointerKeyedContainer, CleanOnPointerValueAndOutsideCore) {
  // Pointer in the *mapped* type is fine; pointer keys outside the core
  // directories are out of scope.
  const AnalysisResult in_core =
      lint("src/part/f.cpp", "std::map<int, Node*> owners;\n");
  EXPECT_EQ(in_core.findings.size(), 0u) << dump(in_core);
  const AnalysisResult outside =
      lint("src/util/f.cpp", "std::map<Node*, int> by_node;\n");
  EXPECT_EQ(outside.findings.size(), 0u) << dump(outside);
}

TEST(RulePointerCompare, Fires) {
  const AnalysisResult r = lint(
      "src/eval/f.cpp",
      "bool operator<(const Node* a, const Node* b) { return a < b; }\n");
  EXPECT_EQ(count_rule(r, "pointer-compare"), 1u) << dump(r);
}

TEST(RulePointerCompare, Suppressed) {
  const AnalysisResult r = lint(
      "src/eval/f.cpp",
      "// det-lint: allow(pointer-compare) arena-ordered by construction\n"
      "bool operator<(const Node* a, const Node* b) { return a < b; }\n");
  EXPECT_EQ(count_rule(r, "pointer-compare"), 0u) << dump(r);
}

TEST(RulePointerCompare, CleanOnReferencesAndStreams) {
  const AnalysisResult r = lint(
      "src/eval/f.cpp",
      "bool operator<(const Node& a, const Node& b) { return a.id < b.id; }\n"
      "std::ostream& operator<<(std::ostream& os, const Node* n);\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

// ---------------------------------------------------------------------
// False-positive regressions: the regex lint flagged keywords inside
// strings and comments; the token-level port must not.

TEST(FalsePositives, KeywordsInCommentsAndStrings) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "// rand() mt19937 random_device unordered_map<int,int> ::now()\n"
      "/* for (int v : items) total += w; std::map<Node*, int> */\n"
      "const char* help = \"use srand(time(nullptr)) to seed rand()\";\n"
      "auto re = R\"(std::unordered_set<int> items; Clock::now())\";\n"
      "int x = 0;\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(FalsePositives, AllowAnnotationForOtherRuleDoesNotSuppress) {
  const AnalysisResult r = lint(
      "src/part/f.cpp",
      "int x = rand();  // det-lint: allow(wall-clock) wrong rule\n");
  EXPECT_EQ(count_rule(r, "rand"), 1u) << dump(r);
}

// ---------------------------------------------------------------------
// Knob completeness (synthetic corpus)

const char* const kKnobStruct =
    "struct FmConfig {\n"
    "  int alpha = 1;\n"
    "  bool beta = false;\n"
    "  std::string to_string() const;\n"  // member function: not a field
    "};\n"
    "struct OtherConfig { int gamma = 0; };\n";  // not a target struct

std::vector<SourceBuffer> knob_context(const std::string& tool_code,
                                       const std::string& docs) {
  return {SourceBuffer{"tools/fixture_tool.cpp", tool_code},
          SourceBuffer{"DESIGN.md", docs}};
}

TEST(RuleKnobCompleteness, FiresOnUnreachableField) {
  // alpha is parsed + documented; beta is documented but no CLI parse
  // site ever touches it.
  const AnalysisResult r = lint(
      "src/part/core/knob_fixture.h", kKnobStruct,
      knob_context("void f(FmConfig& c, const CliArgs& a) {\n"
                   "  a.check_known({\"alpha\"});\n"
                   "  c.alpha = a.get_int(\"alpha\", 1);\n"
                   "}\n",
                   "The alpha and beta knobs."));
  EXPECT_EQ(count_rule(r, "knob-completeness"), 1u) << dump(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("FmConfig::beta"), std::string::npos);
}

TEST(RuleKnobCompleteness, FiresOnUndocumentedField) {
  const AnalysisResult r = lint(
      "src/part/core/knob_fixture.h", kKnobStruct,
      knob_context("void f(FmConfig& c, const CliArgs& a) {\n"
                   "  a.check_known({\"alpha\", \"beta\"});\n"
                   "  c.alpha = a.get_int(\"alpha\", 1);\n"
                   "  c.beta = a.get_bool(\"beta\");\n"
                   "}\n",
                   "Only alpha is documented."));
  EXPECT_EQ(count_rule(r, "knob-completeness"), 1u) << dump(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("FmConfig::beta"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("DESIGN.md"), std::string::npos);
}

TEST(RuleKnobCompleteness, CleanWhenReachableAndDocumented) {
  const AnalysisResult r = lint(
      "src/part/core/knob_fixture.h", kKnobStruct,
      knob_context("void f(FmConfig& c, const CliArgs& a) {\n"
                   "  a.check_known({\"alpha\", \"beta\"});\n"
                   "  c.alpha = a.get_int(\"alpha\", 1);\n"
                   "  c.beta = a.get_bool(\"beta\");\n"
                   "}\n",
                   "The alpha and beta knobs."));
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleKnobCompleteness, MemberAccessWithoutParseSiteDoesNotCount) {
  // The tool touches c.beta but never parses CLI options, so beta stays
  // unreachable.
  const AnalysisResult r =
      lint("src/part/core/knob_fixture.h", kKnobStruct,
           knob_context("void f(FmConfig& c) { c.alpha = 1; c.beta = true; }\n",
                        "The alpha and beta knobs."));
  EXPECT_EQ(count_rule(r, "knob-completeness"), 2u) << dump(r);
}

TEST(RuleKnobCompleteness, SuppressedByAllowOnFieldLine) {
  const AnalysisResult r = lint(
      "src/part/core/knob_fixture.h",
      "struct FmConfig {\n"
      "  int alpha = 1;\n"
      "  // det-lint: allow(knob-completeness) internal-only switch\n"
      "  bool beta = false;\n"
      "};\n",
      knob_context("void f(FmConfig& c, const CliArgs& a) {\n"
                   "  a.check_known({\"alpha\"});\n"
                   "  c.alpha = a.get_int(\"alpha\", 1);\n"
                   "}\n",
                   "The alpha knob."));
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(RuleKnobCompleteness, DocWordMatchIsWholeWord) {
  // "alphabet" must not satisfy the documentation leg for "alpha".
  const AnalysisResult r = lint(
      "src/part/core/knob_fixture.h", "struct FmConfig { int alpha = 1; };\n",
      knob_context("void f(FmConfig& c, const CliArgs& a) {\n"
                   "  c.alpha = a.get_int(\"alpha\", 1);\n"
                   "}\n",
                   "The alphabet of knobs."));
  EXPECT_EQ(count_rule(r, "knob-completeness"), 1u) << dump(r);
}

// ---------------------------------------------------------------------
// Lock discipline (synthetic corpus)

AnalysisResult lint_lock(const std::string& body) {
  const std::string header =
      "class Widget {\n"
      " public:\n"
      "  void touch();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int count_ = 0;  // guarded_by(mutex_)\n"
      "};\n";
  AnalyzerOptions options;
  return analyze_buffers({SourceBuffer{"src/service/widget.h", header},
                          SourceBuffer{"src/service/widget.cpp", body}},
                         {}, options);
}

TEST(RuleLockDiscipline, FiresOnUnlockedAccess) {
  const AnalysisResult r =
      lint_lock("void Widget::touch() { count_ += 1; }\n");
  EXPECT_EQ(count_rule(r, "lock-discipline"), 1u) << dump(r);
}

TEST(RuleLockDiscipline, CleanUnderLockGuard) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  count_ += 1;\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, CleanUnderUniqueAndScopedLock) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::unique_lock<std::mutex> lock(mutex_);\n"
      "  count_ += 1;\n"
      "}\n"
      "void Widget::touch2() {\n"
      "  std::scoped_lock lock(mutex_);\n"
      "  count_ += 1;\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, LockScopeEndsAtBrace) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  { std::lock_guard<std::mutex> lock(mutex_); count_ = 1; }\n"
      "  count_ = 2;\n"  // lock released with its scope
      "}\n");
  EXPECT_EQ(count_rule(r, "lock-discipline"), 1u) << dump(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(RuleLockDiscipline, HoldsAnnotationCoversHelper) {
  const AnalysisResult r = lint_lock(
      "void Widget::bump_locked() {\n"
      "  // det-lint: holds(mutex_)\n"
      "  count_ += 1;\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, MemberMutexMatchesBySuffix) {
  // A lock of shared.mutex_ satisfies guarded_by(mutex_).
  const AnalysisResult r = lint_lock(
      "void Widget::touch(Shared& shared) {\n"
      "  std::lock_guard<std::mutex> lock(shared.mutex_);\n"
      "  count_ += 1;\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, WrongMutexDoesNotSatisfy) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::lock_guard<std::mutex> lock(other_mutex_);\n"
      "  count_ += 1;\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "lock-discipline"), 1u) << dump(r);
}

TEST(RuleLockDiscipline, SuppressedByAllow) {
  const AnalysisResult r = lint_lock(
      "void Widget::init() {\n"
      "  // det-lint: allow(lock-discipline) pre-publication init\n"
      "  count_ = 0;\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(RuleLockDiscipline, OutOfScopeDirsAreIgnored) {
  AnalyzerOptions options;
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/widget.h",
                    "class W { int count_ = 0;  // guarded_by(mutex_)\n};\n"},
       SourceBuffer{"src/part/widget.cpp",
                    "void W::touch() { count_ += 1; }\n"}},
      {}, options);
  EXPECT_EQ(count_rule(r, "lock-discipline"), 0u) << dump(r);
}

// Interprocedural propagation: a helper whose in-scope call sites all
// hold the mutex is checked as if it held it.

TEST(RuleLockDiscipline, HoldsPropagatesThroughCallGraph) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  bump();\n"
      "}\n"
      "void Widget::bump() { count_ += 1; }\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, HoldsPropagatesTwoLevels) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  bump();\n"
      "}\n"
      "void Widget::bump() { inc(); }\n"
      "void Widget::inc() { count_ += 1; }\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, UnlockedCallSiteBreaksPropagation) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  bump();\n"
      "}\n"
      "void Widget::careless() { bump(); }\n"  // no lock here
      "void Widget::bump() { count_ += 1; }\n");
  EXPECT_EQ(count_rule(r, "lock-discipline"), 1u) << dump(r);
}

TEST(RuleLockDiscipline, ExplicitHoldsStillPropagates) {
  // An annotated helper's lockset flows onward to ITS callees.
  const AnalysisResult r = lint_lock(
      "void Widget::bump_locked() {\n"
      "  // det-lint: holds(mutex_)\n"
      "  inc();\n"
      "}\n"
      "void Widget::inc() { count_ += 1; }\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleLockDiscipline, WorkerLambdaInheritsCaptureContext) {
  const AnalysisResult r = lint_lock(
      "void Widget::touch() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  auto body = [&] { count_ += 1; };\n"
      "  body();\n"
      "}\n");
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

// ---------------------------------------------------------------------
// Parallel-round protocol (synthetic corpus)

AnalysisResult lint_round(const std::string& body) {
  AnalyzerOptions options;
  return analyze_buffers(
      {SourceBuffer{"src/part/core/parallel_engine.cpp", body}}, {},
      options);
}

TEST(RuleRoundFrozenWrite, FiresOnNonRangeIndexedWrite) {
  const AnalysisResult r = lint_round(
      "void Engine::round(std::size_t n) {\n"
      "  auto work_shard = [&](std::size_t shard) {\n"
      "    const ShardRange r = shard_range(n, shards_, shard);\n"
      "    for (std::size_t v = r.begin; v < r.end; ++v) {\n"
      "      gain_[v] = 1;\n"  // clean: v derived from the range
      "    }\n"
      "    frozen_[cursor_] = 3;\n"  // fires: cursor_ not range-derived
      "  };\n"
      "  pool_->parallel_for_dynamic(shards_, work_shard);\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "round-frozen-write"), 1u) << dump(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].line, 7);
}

TEST(RuleRoundFrozenWrite, FiresOnCapturedContainerGrowth) {
  const AnalysisResult r = lint_round(
      "void Engine::round(std::size_t n) {\n"
      "  pool_->parallel_for_dynamic(shards_, [&](std::size_t shard) {\n"
      "    results_.push_back(shard);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "round-frozen-write"), 1u) << dump(r);
}

TEST(RuleRoundFrozenWrite, CleanWhenShardOwnsItsSlots) {
  const AnalysisResult r = lint_round(
      "void Engine::round(std::size_t n) {\n"
      "  auto work_shard = [&](std::size_t shard) {\n"
      "    const ShardRange r = shard_range(n, shards_, shard);\n"
      "    std::vector<int>& out = shard_out_[shard];\n"
      "    for (std::size_t v = r.begin; v < r.end; ++v) {\n"
      "      gain_[v] = 1;\n"
      "      dirty_[v] = 0;\n"
      "    }\n"
      "  };\n"
      "  pool_->parallel_for_dynamic(shards_, work_shard);\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "round-frozen-write"), 0u) << dump(r);
}

TEST(RuleRoundFrozenWrite, SuppressedByAllow) {
  const AnalysisResult r = lint_round(
      "void Engine::round(std::size_t n) {\n"
      "  auto work_shard = [&](std::size_t shard) {\n"
      "    // det-lint: allow(round-frozen-write) slot proven disjoint\n"
      "    frozen_[cursor_] = 3;\n"
      "  };\n"
      "  pool_->parallel_for_dynamic(shards_, work_shard);\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "round-frozen-write"), 0u) << dump(r);
  EXPECT_GE(r.suppressed, 1u);
}

TEST(RuleRoundFrozenWrite, NonParallelUnitIsOutOfScope) {
  AnalyzerOptions options;
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/core/engine.cpp",
                    "void Engine::round(std::size_t n) {\n"
                    "  auto work_shard = [&](std::size_t shard) {\n"
                    "    frozen_[cursor_] = 3;\n"
                    "  };\n"
                    "  pool_->parallel_for_dynamic(shards_, work_shard);\n"
                    "}\n"}},
      {}, options);
  EXPECT_EQ(count_rule(r, "round-frozen-write"), 0u) << dump(r);
}

TEST(RuleRoundRng, FiresOnRngDrawInShard) {
  const AnalysisResult r = lint_round(
      "void Engine::round(std::size_t n) {\n"
      "  pool_->parallel_for_dynamic(shards_, [&](std::size_t shard) {\n"
      "    const auto coin = rng_.next_u64();\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "round-rng-in-shard"), 1u) << dump(r);
}

TEST(RuleRoundRng, CleanOutsideWorkerLambda) {
  const AnalysisResult r = lint_round(
      "void Engine::round(std::size_t n) {\n"
      "  const auto coin = rng_.next_u64();\n"  // before the round: fine
      "  pool_->parallel_for_dynamic(shards_, [&](std::size_t shard) {\n"
      "    gain_[shard] = coin;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "round-rng-in-shard"), 0u) << dump(r);
}

// ---------------------------------------------------------------------
// Rule filter: family names

TEST(RuleFilterFamily, FamilyNameEnablesItsRules) {
  AnalyzerOptions options;
  options.only_rules = {"determinism"};
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = rand();\n"}}, {}, options);
  EXPECT_EQ(count_rule(r, "rand"), 1u) << dump(r);
}

TEST(RuleFilterFamily, OtherFamiliesAreExcluded) {
  AnalyzerOptions options;
  options.only_rules = {"hotpath"};
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = rand();\n"}}, {}, options);
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
}

TEST(RuleFilterFamily, UnknownFamilyIsAnError) {
  AnalyzerOptions options;
  options.only_rules = {"fastpath"};
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x;\n"}}, {}, options);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("fastpath"), std::string::npos);
}

// ---------------------------------------------------------------------
// Baseline

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(Baseline, SilencesRulePathPairs) {
  AnalyzerOptions options;
  options.baseline_path = write_temp(
      "vpart_lint_baseline_ok.txt",
      "# comment\n\nrand|src/part/f.cpp|fixture retained during port\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = rand();\n"}}, {}, options);
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_EQ(r.baselined, 1u);
}

TEST(Baseline, OtherFilesStillFire) {
  AnalyzerOptions options;
  options.baseline_path =
      write_temp("vpart_lint_baseline_other.txt",
                 "rand|src/part/other.cpp|different file\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = rand();\n"}}, {}, options);
  EXPECT_EQ(count_rule(r, "rand"), 1u) << dump(r);
  EXPECT_EQ(r.baselined, 0u);
}

TEST(Baseline, EntryWithoutJustificationIsAnError) {
  AnalyzerOptions options;
  options.baseline_path = write_temp("vpart_lint_baseline_nojust.txt",
                                     "rand|src/part/f.cpp|\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = 0;\n"}}, {}, options);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("justification"), std::string::npos);
}

TEST(Baseline, MalformedEntryAndUnknownRuleAreErrors) {
  AnalyzerOptions options;
  options.baseline_path =
      write_temp("vpart_lint_baseline_bad.txt",
                 "just-one-field\nno-such-rule|a.cpp|because\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = 0;\n"}}, {}, options);
  EXPECT_EQ(r.errors.size(), 2u) << dump(r);
}

TEST(Options, UnknownRuleFilterIsAnError) {
  AnalyzerOptions options;
  options.only_rules = {"rand", "bogus-rule"};
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp", "int x = 0;\n"}}, {}, options);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("bogus-rule"), std::string::npos);
}

TEST(Options, RuleFilterRestrictsFindings) {
  AnalyzerOptions options;
  options.only_rules = {"std-engine"};
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/f.cpp",
                    "int x = rand();\nstd::mt19937 gen(1);\n"}},
      {}, options);
  EXPECT_EQ(r.findings.size(), 1u) << dump(r);
  EXPECT_EQ(r.findings[0].rule, "std-engine");
}

// ---------------------------------------------------------------------
// Catalog and renderers

TEST(Catalog, EveryRuleIsFindable) {
  EXPECT_GE(rule_catalog().size(), 13u);
  for (const RuleInfo& info : rule_catalog()) {
    EXPECT_EQ(find_rule(info.id), &info);
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(Renderers, HumanJsonSarif) {
  const AnalysisResult r =
      lint("src/part/f.cpp", "int x = rand();\nstd::mt19937 g(1);\n");
  ASSERT_EQ(r.findings.size(), 2u) << dump(r);

  const std::string human = render_human(r);
  EXPECT_NE(human.find("src/part/f.cpp:1:9: [rand]"), std::string::npos)
      << human;
  EXPECT_NE(human.find("2 findings"), std::string::npos) << human;

  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"rule\": \"rand\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos) << json;

  const std::string sarif = render_sarif(r);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"std-engine\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  // The full catalog rides along as reportingDescriptors.
  EXPECT_NE(sarif.find("\"id\": \"lock-discipline\""), std::string::npos);
}

TEST(Renderers, FindingsAreSortedByPathLineCol) {
  AnalyzerOptions options;
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/b.cpp", "int x = rand();\n"},
       SourceBuffer{"src/part/a.cpp", "std::mt19937 g(1);\nint y = rand();\n"}},
      {}, options);
  ASSERT_EQ(r.findings.size(), 3u) << dump(r);
  EXPECT_EQ(r.findings[0].path, "src/part/a.cpp");
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.findings[1].path, "src/part/a.cpp");
  EXPECT_EQ(r.findings[1].line, 2);
  EXPECT_EQ(r.findings[2].path, "src/part/b.cpp");
}

// ---------------------------------------------------------------------
// Repository self-test: the acceptance gate.  The repo's own sources
// must lint clean — determinism, knob completeness (every config field
// CLI-reachable and documented) and lock discipline all pass.

TEST(RepoSelfTest, RepositoryLintsClean) {
  AnalyzerOptions options;
  options.repo_root = VLSIPART_SOURCE_DIR;
  // Absolute paths: a relative "src" would resolve against the build
  // tree (the test's cwd), which also has a src/ directory.
  const std::string root = std::string(VLSIPART_SOURCE_DIR) + "/";
  const AnalysisResult r = analyze_paths(
      {root + "src", root + "tools", root + "bench", root + "examples",
       root + "tests"},
      options);
  EXPECT_TRUE(r.errors.empty()) << dump(r);
  EXPECT_EQ(r.findings.size(), 0u) << dump(r);
  EXPECT_GT(r.files_scanned, 100u);  // really scanned the tree
  EXPECT_GT(r.suppressed, 0u);       // the annotated clock reads
}

}  // namespace
}  // namespace vlsipart::analysis
