// Robustness sweep: degenerate and adversarial instances through every
// engine, always audited.  These are the inputs where silent
// implementation bugs (the paper's central worry) tend to live: tiny
// graphs, star hubs, chains, parallel nets, all-fixed problems,
// impossible balances.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/contraction.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

void run_all_engines(const Hypergraph& h, double tol) {
  const PartitionProblem p = make_problem(h, tol);
  std::vector<PartId> parts;

  FlatFmPartitioner flat{FmConfig{}};
  Rng r1(1);
  const Weight c1 = flat.run(p, r1, parts);
  EXPECT_EQ(c1, compute_cut(h, parts));

  FmConfig clip_cfg;
  clip_cfg.clip = true;
  clip_cfg.exclude_oversized = true;
  FlatFmPartitioner clip{clip_cfg};
  Rng r2(1);
  const Weight c2 = clip.run(p, r2, parts);
  EXPECT_EQ(c2, compute_cut(h, parts));

  MlPartitioner ml(MlConfig{});
  Rng r3(1);
  const Weight c3 = ml.run(p, r3, parts);
  EXPECT_EQ(c3, compute_cut(h, parts));
}

TEST(Robustness, TwoVertexGraph) {
  HypergraphBuilder b(2);
  b.add_edge({0, 1});
  const Hypergraph h = b.finalize();
  run_all_engines(h, 0.5);
}

TEST(Robustness, StarHub) {
  // One hub on every net: the hub's gain structure is maximally
  // coupled; moving it touches everything.
  HypergraphBuilder b(50);
  for (VertexId i = 1; i < 50; ++i) {
    b.add_edge({0, i});
  }
  const Hypergraph h = b.finalize();
  run_all_engines(h, 0.2);
  // Any balanced bipartition cuts at least the spokes on the smaller
  // side: optimal cut is ~half the spokes.
  const PartitionProblem p = make_problem(h, 0.2);
  FlatFmPartitioner flat{FmConfig{}};
  const MultistartResult r = run_multistart(p, flat, 10, 1);
  EXPECT_GE(r.min_cut(), 49 / 2 - 5);
}

TEST(Robustness, LongChain) {
  // Path graph: optimal bisection cut is exactly 1.
  constexpr std::size_t kN = 64;
  HypergraphBuilder b(kN);
  for (VertexId i = 0; i + 1 < kN; ++i) {
    b.add_edge({i, static_cast<VertexId>(i + 1)});
  }
  const Hypergraph h = b.finalize();
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner ml(MlConfig{});
  const MultistartResult r = run_multistart(p, ml, 10, 1);
  EXPECT_EQ(r.min_cut(), 1);
}

TEST(Robustness, ManyParallelNets) {
  // The same 2-pin net repeated 100 times plus filler: gain magnitudes
  // hit the weighted-degree bound (container sizing stress).
  HypergraphBuilder b(20);
  for (int i = 0; i < 100; ++i) {
    b.add_edge({0, 1});
  }
  for (VertexId i = 2; i + 1 < 20; ++i) {
    b.add_edge({i, static_cast<VertexId>(i + 1)});
  }
  const Hypergraph h = b.finalize();
  run_all_engines(h, 0.3);
  // 0 and 1 must end on the same side (any start, the 100-net bundle
  // dominates).
  const PartitionProblem p = make_problem(h, 0.3);
  FlatFmPartitioner flat{FmConfig{}};
  std::vector<PartId> parts;
  Rng rng(3);
  flat.run(p, rng, parts);
  EXPECT_EQ(parts[0], parts[1]);
}

TEST(Robustness, OneGiantNet) {
  // A single net covering every vertex plus pairwise structure: the
  // giant net is always cut; engines must not thrash on it.
  HypergraphBuilder b(40);
  {
    std::vector<VertexId> all(40);
    for (VertexId i = 0; i < 40; ++i) all[i] = i;
    b.add_edge(all);
  }
  for (VertexId i = 0; i + 1 < 40; i += 2) {
    b.add_edge({i, static_cast<VertexId>(i + 1)});
  }
  const Hypergraph h = b.finalize();
  run_all_engines(h, 0.2);
}

TEST(Robustness, AllVerticesFixed) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.9);
  p.fixed.resize(h.num_vertices());
  Rng seed_rng(5);
  for (auto& f : p.fixed) f = static_cast<PartId>(seed_rng.below(2));
  FlatFmPartitioner flat{FmConfig{}};
  std::vector<PartId> parts;
  Rng rng(1);
  flat.run(p, rng, parts);
  EXPECT_EQ(parts, p.fixed);  // nothing may move
}

TEST(Robustness, HeavyweightVertexDominates) {
  // One vertex holds 90% of the weight: no balanced bisection exists at
  // tight tolerance; engines must terminate and report infeasibility
  // honestly rather than loop.
  HypergraphBuilder b(10);
  b.set_vertex_weight(0, 900);
  for (VertexId i = 1; i < 10; ++i) {
    b.add_edge({0, i});
  }
  const Hypergraph h = b.finalize();
  const PartitionProblem p = make_problem(h, 0.02);
  FlatFmPartitioner flat{FmConfig{}};
  const MultistartResult r = run_multistart(p, flat, 5, 1);
  for (const auto& s : r.starts) {
    EXPECT_FALSE(s.feasible);  // no feasible solution exists
  }
}

TEST(Robustness, DisconnectedIslands) {
  // Two disjoint cliques: optimal cut 0.  Tolerance must leave a
  // nonzero window: at exact bisection with unit weights no *single* FM
  // move is legal (pass-based engines need the alternating pair-move
  // discipline there), so the window-zero case cannot improve at all —
  // see Balance.ExactBisectionWithOddTotal for the constraint itself.
  HypergraphBuilder b(16);
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) {
      b.add_edge({i, j});
      b.add_edge({static_cast<VertexId>(8 + i), static_cast<VertexId>(8 + j)});
    }
  }
  const Hypergraph h = b.finalize();
  const PartitionProblem p = make_problem(h, 0.3);
  MlPartitioner ml(MlConfig{});
  const MultistartResult r = run_multistart(p, ml, 10, 1);
  EXPECT_EQ(r.min_cut(), 0);

  // And the zero-window case is a no-op, not a hang: the engine
  // terminates with the initial solution intact.
  const PartitionProblem exact = make_problem(h, 0.0);
  FlatFmPartitioner flat{FmConfig{}};
  std::vector<PartId> parts;
  Rng rng(2);
  flat.run(exact, rng, parts);
  EXPECT_EQ(check_solution(exact, parts), "");
}

class RandomGraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphFuzz, EnginesSurviveArbitraryTopology) {
  // Uniformly random (non-generator) hypergraphs: arbitrary net sizes,
  // arbitrary weights, no locality structure at all.
  Rng rng(GetParam());
  const std::size_t n = 10 + rng.below(120);
  HypergraphBuilder b(n);
  const std::size_t m = 5 + rng.below(3 * n);
  std::vector<VertexId> pins;
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t size = 2 + rng.below(std::min<std::size_t>(n, 9));
    pins.clear();
    for (std::size_t k = 0; k < size; ++k) {
      pins.push_back(static_cast<VertexId>(rng.below(n)));
    }
    b.add_edge(pins, 1 + static_cast<Weight>(rng.below(4)));
  }
  for (std::size_t v = 0; v < n; ++v) {
    b.set_vertex_weight(static_cast<VertexId>(v),
                        1 + static_cast<Weight>(rng.below(20)));
  }
  const Hypergraph h = b.finalize("fuzz");
  h.validate();
  run_all_engines(h, 0.3);

  // k-way too, when big enough.
  if (n >= 20) {
    KwayConfig config;
    config.k = 4;
    config.tolerance = 0.6;
    config.seed = GetParam();
    const KwayResult r = recursive_bisection(h, config);
    EXPECT_EQ(r.cut, kway_cut(h, r.parts));
  }

  // Contraction round trip preserves weight.
  Rng crng(GetParam() ^ 0xC0A3ULL);
  std::vector<VertexId> clusters(n);
  for (std::size_t v = 0; v < n; ++v) {
    clusters[v] = static_cast<VertexId>(crng.below((n + 1) / 2));
  }
  const ContractionResult c = contract(h, clusters);
  EXPECT_EQ(c.coarse.total_vertex_weight(), h.total_vertex_weight());
  c.coarse.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace vlsipart
