// Tests for objectives, BSF curves and Pareto-frontier reporting.
#include <gtest/gtest.h>

#include "src/eval/bsf.h"
#include "src/eval/objectives.h"
#include "src/eval/pareto.h"
#include "src/hypergraph/hypergraph.h"

namespace vlsipart {
namespace {

Hypergraph toy() {
  // 4 vertices (weights 1,2,3,4), nets {0,1}, {1,2,3}, {0,3} (weight 2).
  HypergraphBuilder b(4);
  b.set_vertex_weight(1, 2);
  b.set_vertex_weight(2, 3);
  b.set_vertex_weight(3, 4);
  b.add_edge({0, 1});
  b.add_edge({1, 2, 3});
  b.add_edge({0, 3}, 2);
  return b.finalize();
}

TEST(Objectives, CutSize) {
  const Hypergraph h = toy();
  const std::vector<PartId> parts = {0, 0, 1, 1};
  // Cut nets: {1,2,3} (w1) and {0,3} (w2) -> 3.
  EXPECT_EQ(cut_size(h, parts), 3);
  const std::vector<PartId> all0 = {0, 0, 0, 0};
  EXPECT_EQ(cut_size(h, all0), 0);
}

TEST(Objectives, RatioCut) {
  const Hypergraph h = toy();
  const std::vector<PartId> parts = {0, 0, 1, 1};
  // w(P0) = 3, w(P1) = 7, cut = 3.
  EXPECT_DOUBLE_EQ(ratio_cut(h, parts), 3.0 / 21.0);
  const std::vector<PartId> degenerate = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ratio_cut(h, degenerate), 0.0);
}

TEST(Objectives, ScaledCost) {
  const Hypergraph h = toy();
  const std::vector<PartId> parts = {0, 0, 1, 1};
  // (3/3 + 3/7) / 4.
  EXPECT_DOUBLE_EQ(scaled_cost(h, parts), (1.0 + 3.0 / 7.0) / 4.0);
}

TEST(Objectives, Absorption) {
  const Hypergraph h = toy();
  const std::vector<PartId> all0 = {0, 0, 0, 0};
  // Fully absorbed: every net contributes 1 -> 3.0.
  EXPECT_DOUBLE_EQ(absorption(h, all0), 3.0);
  const std::vector<PartId> parts = {0, 0, 1, 1};
  // {0,1}: both in P0 -> 1. {1,2,3}: P0 has 1 pin (0), P1 has 2 ->
  // (0 + 1)/2 = 0.5. {0,3}: split -> 0.
  EXPECT_DOUBLE_EQ(absorption(h, parts), 1.5);
}

TEST(Objectives, SumOfExternalDegrees) {
  const Hypergraph h = toy();
  const std::vector<PartId> parts = {0, 0, 1, 1};
  // {1,2,3}: (3-1)*1 = 2; {0,3}: (2-1)*2 = 2 -> 4.
  EXPECT_EQ(sum_of_external_degrees(h, parts), 4);
}

TEST(Bsf, ExpectedCurveMonotone) {
  Sample cuts;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) cuts.add(rng.uniform(100.0, 300.0));
  const auto curve =
      expected_bsf_curve(cuts, 0.5, {1, 2, 4, 8, 16, 32, 60});
  ASSERT_EQ(curve.size(), 7u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].expected_cost, curve[i - 1].expected_cost);
    EXPECT_GT(curve[i].cpu_seconds, curve[i - 1].cpu_seconds);
  }
  EXPECT_DOUBLE_EQ(curve[0].cpu_seconds, 0.5);
  EXPECT_NEAR(curve[0].expected_cost, cuts.mean(), 1e-9);
  EXPECT_NEAR(curve.back().expected_cost, cuts.min(), 1e-9);
}

TEST(Bsf, ObservedCurveTracksBest) {
  std::vector<StartRecord> starts;
  const double cuts[] = {50, 40, 45, 30, 60};
  for (double c : cuts) {
    StartRecord r;
    r.cut = static_cast<Weight>(c);
    r.cpu_seconds = 1.0;
    r.feasible = true;
    starts.push_back(r);
  }
  const auto curve = observed_bsf_curve(starts);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve[0].expected_cost, 50);
  EXPECT_DOUBLE_EQ(curve[1].expected_cost, 40);
  EXPECT_DOUBLE_EQ(curve[2].expected_cost, 40);
  EXPECT_DOUBLE_EQ(curve[3].expected_cost, 30);
  EXPECT_DOUBLE_EQ(curve[4].expected_cost, 30);
  EXPECT_DOUBLE_EQ(curve[4].cpu_seconds, 5.0);
}

TEST(Bsf, InfeasibleStartsIgnoredInObservedCurve) {
  std::vector<StartRecord> starts(2);
  starts[0].cut = 10;
  starts[0].feasible = false;
  starts[0].cpu_seconds = 1.0;
  starts[1].cut = 99;
  starts[1].feasible = true;
  starts[1].cpu_seconds = 1.0;
  const auto curve = observed_bsf_curve(starts);
  EXPECT_DOUBLE_EQ(curve[1].expected_cost, 99);
}

TEST(Bsf, FormatContainsLabel) {
  Sample cuts;
  cuts.add(5.0);
  const auto curve = expected_bsf_curve(cuts, 1.0, {1});
  EXPECT_NE(format_bsf(curve, "flat-fm").find("flat-fm"),
            std::string::npos);
}

TEST(Pareto, DominanceIsStrict) {
  const PerfPoint a{10.0, 5.0, "a"};
  const PerfPoint b{9.0, 4.0, "b"};
  const PerfPoint c{10.0, 4.0, "c"};
  EXPECT_TRUE(dominates(b, a));
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(c, a));  // equal cost: not strict dominance
  EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, FrontierDropsDominatedPoints) {
  std::vector<PerfPoint> pts = {
      {100, 1, "fast-bad"}, {50, 10, "slow-good"}, {80, 5, "middle"},
      {90, 6, "dominated-by-middle"}, {120, 2, "dominated-by-fast"},
  };
  const auto frontier = pareto_frontier(pts);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].label, "fast-bad");
  EXPECT_EQ(frontier[1].label, "middle");
  EXPECT_EQ(frontier[2].label, "slow-good");
}

TEST(Pareto, EqualPointsAllKept) {
  std::vector<PerfPoint> pts = {{10, 1, "x"}, {10, 1, "y"}};
  EXPECT_EQ(pareto_frontier(pts).size(), 2u);
}

TEST(Pareto, FrontierOfEmptyAndSingle) {
  EXPECT_TRUE(pareto_frontier({}).empty());
  const auto single = pareto_frontier({{5, 5, "only"}});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].label, "only");
}

TEST(Pareto, RankingDiagramPicksAffordableBest) {
  std::vector<PerfPoint> pts = {
      {100, 1, "flat"}, {60, 5, "clip"}, {40, 20, "ml"},
  };
  const auto ranking = ranking_diagram(pts, {0.5, 2.0, 10.0, 30.0});
  ASSERT_EQ(ranking.size(), 4u);
  EXPECT_EQ(ranking[0].winner, "");  // nothing affordable at 0.5s
  EXPECT_EQ(ranking[1].winner, "flat");
  EXPECT_EQ(ranking[2].winner, "clip");
  EXPECT_EQ(ranking[3].winner, "ml");
}

TEST(Pareto, FormatFrontier) {
  const auto s = format_frontier({{10, 1, "x"}});
  EXPECT_NE(s.find('x'), std::string::npos);
  EXPECT_NE(s.find("frontier"), std::string::npos);
}

}  // namespace
}  // namespace vlsipart
