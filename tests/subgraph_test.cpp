// Tests for sub-hypergraph extraction and connected components.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/subgraph.h"
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

Hypergraph sample() {
  // 6 vertices; nets {0,1,2}, {2,3}, {3,4,5} (w2), {0,5}.
  HypergraphBuilder b(6);
  b.set_vertex_weight(4, 9);
  b.add_edge({0, 1, 2});
  b.add_edge({2, 3});
  b.add_edge({3, 4, 5}, 2);
  b.add_edge({0, 5});
  return b.finalize("sample");
}

TEST(Subgraph, ExtractProjectsNets) {
  const Hypergraph h = sample();
  const std::vector<VertexId> block = {2, 3, 4};
  const Subhypergraph sub = extract_subhypergraph(h, block);
  sub.graph.validate();
  ASSERT_EQ(sub.graph.num_vertices(), 3u);
  // Surviving nets: {2,3} (both internal) and {3,4} (projection of
  // {3,4,5}).  {0,1,2} projects to the single pin {2} and is dropped;
  // {0,5} has no internal pin and is never visited (not counted).
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.nets_dropped, 1u);
  // Weights carried over (vertex 4 had weight 9, local id 2).
  EXPECT_EQ(sub.graph.vertex_weight(2), 9);
  // The projected net keeps the original weight 2.
  Weight total_edge_weight = 0;
  for (std::size_t e = 0; e < sub.graph.num_edges(); ++e) {
    total_edge_weight += sub.graph.edge_weight(static_cast<EdgeId>(e));
  }
  EXPECT_EQ(total_edge_weight, 3);
  // Mapping is the selection order.
  EXPECT_EQ(sub.to_original[0], 2u);
  EXPECT_EQ(sub.to_original[2], 4u);
  EXPECT_EQ(sub.edge_to_original.size(), sub.graph.num_edges());
}

TEST(Subgraph, FullSelectionIsIsomorphic) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  std::vector<VertexId> all(h.num_vertices());
  for (std::size_t v = 0; v < all.size(); ++v) {
    all[v] = static_cast<VertexId>(v);
  }
  const Subhypergraph sub = extract_subhypergraph(h, all);
  EXPECT_EQ(sub.graph.num_vertices(), h.num_vertices());
  EXPECT_EQ(sub.graph.num_edges(), h.num_edges());
  EXPECT_EQ(sub.graph.num_pins(), h.num_pins());
  EXPECT_EQ(sub.nets_dropped, 0u);
  EXPECT_EQ(sub.graph.total_vertex_weight(), h.total_vertex_weight());
}

TEST(Subgraph, CutConsistencyUnderRestriction) {
  // Property: for a 2-way assignment, the cut restricted to a block's
  // internal nets equals the cut of the extracted sub-hypergraph under
  // the projected assignment.
  const Hypergraph h = generate_netlist(preset("tiny"));
  Rng rng(3);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
  std::vector<VertexId> block;
  for (std::size_t v = 0; v < h.num_vertices(); v += 2) {
    block.push_back(static_cast<VertexId>(v));
  }
  const Subhypergraph sub = extract_subhypergraph(h, block);
  std::vector<PartId> sub_parts(sub.graph.num_vertices());
  for (std::size_t i = 0; i < sub_parts.size(); ++i) {
    sub_parts[i] = parts[sub.to_original[i]];
  }
  Weight expected = 0;
  for (const EdgeId e : sub.edge_to_original) {
    bool in0 = false;
    bool in1 = false;
    for (const VertexId u : h.pins(e)) {
      // Count only internal pins, matching the projection.
      bool internal = false;
      for (const VertexId b : block) {
        if (b == u) {
          internal = true;
          break;
        }
      }
      if (!internal) continue;
      (parts[u] == 0 ? in0 : in1) = true;
    }
    if (in0 && in1) expected += h.edge_weight(e);
  }
  EXPECT_EQ(compute_cut(sub.graph, sub_parts), expected);
}

TEST(Subgraph, RejectsDuplicatesAndOutOfRange) {
  const Hypergraph h = sample();
  const std::vector<VertexId> dup = {1, 1};
  EXPECT_THROW(extract_subhypergraph(h, dup), std::logic_error);
  const std::vector<VertexId> oob = {99};
  EXPECT_THROW(extract_subhypergraph(h, oob), std::logic_error);
}

TEST(Components, SingleComponentGraph) {
  const Hypergraph h = sample();
  const Components c = connected_components(h);
  EXPECT_EQ(c.num_components, 1u);
  EXPECT_EQ(c.sizes.at(0), 6u);
}

TEST(Components, DetectsIslands) {
  HypergraphBuilder b(7);
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  b.add_edge({3, 4});
  // 5 and 6 share a net; vertex 6 also isolated? No: {5,6} connected.
  b.add_edge({5, 6});
  const Hypergraph h = b.finalize();
  const Components c = connected_components(h);
  EXPECT_EQ(c.num_components, 3u);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
  EXPECT_NE(c.component_of[3], c.component_of[5]);
  std::size_t total = 0;
  for (const std::size_t s : c.sizes) total += s;
  EXPECT_EQ(total, 7u);
}

TEST(Components, IsolatedVertices) {
  HypergraphBuilder b(3);
  b.add_edge({0, 1});
  const Hypergraph h = b.finalize();
  const Components c = connected_components(h);
  EXPECT_EQ(c.num_components, 2u);  // {0,1} and {2}
}

TEST(Components, GeneratedInstancesAreConnectedEnough) {
  // Instance hygiene: the synthetic suite must be dominated by one giant
  // component (disconnected benchmarks make cut comparisons misleading).
  const Hypergraph h = generate_netlist(preset("small"));
  const Components c = connected_components(h);
  std::size_t largest = 0;
  for (const std::size_t s : c.sizes) largest = std::max(largest, s);
  EXPECT_GT(static_cast<double>(largest),
            0.90 * static_cast<double>(h.num_vertices()));
}

}  // namespace
}  // namespace vlsipart
