// Failure-path tests: VP_CHECK's fail-fast behavior (serialized,
// thread-id-prefixed stderr line + std::logic_error; process death when
// unhandled), check_solution's rejection cases, and the audit harness
// catching a deliberately corrupted gain container end to end.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "src/part/core/invariant_audit.h"
#include "src/part/core/partition_state.h"
#include "src/util/logging.h"

namespace vlsipart {
namespace {

TEST(VpCheckDeathTest, AbortsWithExpressionAndMessage) {
  // A VP_CHECK failure nobody catches kills the process (the noexcept
  // boundary stands in for "no handler anywhere up the stack"); the
  // serialized stderr line carries the expression, location and
  // streamed message.
  EXPECT_DEATH(
      ([]() noexcept { VP_CHECK(1 + 1 == 3, "arithmetic broke: " << 42); })(),
      "VP_CHECK failed: 1 \\+ 1 == 3.*arithmetic broke: 42");
}

TEST(VpCheckDeathTest, StderrLineCarriesThreadIdPrefix) {
  EXPECT_DEATH(([]() noexcept { VP_CHECK(false, "prefixed"); })(),
               "\\[CHECK\\]\\[tid [0-9]+\\].*prefixed");
}

TEST(VpCheckDeathTest, WorkerThreadFailureIsPrefixedToo) {
  EXPECT_DEATH(
      {
        std::thread worker([] { VP_CHECK(false, "from worker"); });
        worker.join();
      },
      "\\[CHECK\\]\\[tid [0-9]+\\].*from worker");
}

TEST(VpCheck, ThrowsLogicErrorWhenHandled) {
  // The throwing contract (callers may catch and reroute, as the thread
  // pool does) is part of the API.
  EXPECT_THROW(VP_CHECK(false, "caught"), std::logic_error);
  try {
    VP_CHECK(false, "streamed " << 7);
    FAIL() << "VP_CHECK did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("VP_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("streamed 7"), std::string::npos);
  }
}

/// 4 unit-weight vertices in a 4-cycle of 2-pin nets.
Hypergraph square() {
  HypergraphBuilder b(4);
  b.add_edge({0, 1});
  b.add_edge({1, 2});
  b.add_edge({2, 3});
  b.add_edge({3, 0});
  return b.finalize("square");
}

TEST(CheckSolution, RejectsOversizedBlock) {
  const Hypergraph h = square();
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_bounds(h.total_vertex_weight(), 1, 3);
  const std::vector<PartId> lopsided{0, 0, 0, 0};  // part 0 weighs 4 > 3
  const std::string err = check_solution(p, lopsided);
  EXPECT_NE(err.find("balance violated"), std::string::npos) << err;
}

TEST(CheckSolution, RejectsUnassignedVertex) {
  const Hypergraph h = square();
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.5);
  const std::vector<PartId> holey{0, kNoPart, 1, 1};
  const std::string err = check_solution(p, holey);
  EXPECT_NE(err.find("unassigned"), std::string::npos) << err;
}

TEST(CheckSolution, RejectsMovedFixedVertex) {
  const Hypergraph h = square();
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.5);
  p.fixed = {0, kNoPart, kNoPart, kNoPart};
  const std::vector<PartId> moved{1, 0, 1, 1};
  const std::string err = check_solution(p, moved);
  EXPECT_NE(err.find("fixed vertex 0 moved"), std::string::npos) << err;
}

TEST(CheckSolution, RejectsSizeMismatch) {
  const Hypergraph h = square();
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.5);
  const std::vector<PartId> short_parts{0, 1};
  EXPECT_EQ(check_solution(p, short_parts), "assignment size mismatch");
}

TEST(CheckSolution, RejectsMiscountedCut) {
  const Hypergraph h = square();
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.5);
  const std::vector<PartId> parts{0, 0, 1, 1};  // cuts nets {1,2} and {3,0}
  EXPECT_TRUE(check_solution(p, parts, 2).empty());
  const std::string err = check_solution(p, parts, 1);
  EXPECT_NE(err.find("cut miscounted"), std::string::npos) << err;
  EXPECT_NE(err.find("claimed 1"), std::string::npos) << err;
}

TEST(AuditDeathTest, CorruptedGainContainerKillsTheProcess) {
  // The full fail-fast path, exactly as a production binary with
  // VLSIPART_AUDIT=pass would experience it: corrupt one key, audit,
  // die with a diagnostic naming the drifted vertex.
  EXPECT_DEATH(
      ([]() noexcept {
        const Hypergraph h = square();
        PartitionProblem p;
        p.graph = &h;
        p.balance =
            BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.5);
        FmConfig config;
        PartitionState state(h);
        state.assign(std::vector<PartId>{0, 0, 1, 1});
        GainContainer container(h.num_vertices(), InsertOrder::kLifo);
        container.reset(8);
        Rng rng(3);
        std::vector<Gain> initial_gain(h.num_vertices());
        const std::vector<std::uint8_t> locked(h.num_vertices(), 0);
        for (std::size_t v = 0; v < h.num_vertices(); ++v) {
          const auto vid = static_cast<VertexId>(v);
          initial_gain[v] = state.gain(vid);
          container.insert(vid, state.part(vid), initial_gain[v], rng);
        }
        container.update_key(3, -2, rng);  // the deliberate corruption
        FmAuditView view;
        view.problem = &p;
        view.config = &config;
        view.state = &state;
        view.container = &container;
        view.initial_gain = initial_gain;
        view.locked = locked;
        audit_gain_container(view);
      })(),
      "gain key drift at vertex 3");
}

}  // namespace
}  // namespace vlsipart
