// Memetic engine tests.  The headline property (ISSUE 9): the
// evolutionary loop is bit-identical at ANY evo_threads value and any
// multistart thread count — offspring are pure functions of their fork
// streams and a rank snapshot taken before the parallel section, so the
// schedule can never reach the result.  Plus pinned golden digests, a
// seeded fuzz harness for the recombination V-cycle (balance/fixed
// constraints survive arbitrary parent pairs, audits on), and mutation
// feasibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/part/core/initial.h"
#include "src/part/core/multistart.h"
#include "src/part/evo/evo_partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  }
};

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

/// Small-but-real config: every operator (seeding, recombination,
/// mutation, elitist replacement) fires at least once.
EvoConfig small_evo_config(std::size_t evo_threads = 1) {
  EvoConfig cfg;
  cfg.population = 3;
  cfg.generations = 2;
  cfg.offspring = 3;
  cfg.mutation_period = 3;  // offspring 2 of each generation mutates
  cfg.mutation_size = 6;
  cfg.evo_threads = evo_threads;
  cfg.ml.initial_tries = 4;
  return cfg;
}

std::uint64_t single_run_digest(const PartitionProblem& p,
                                const EvoConfig& cfg, std::uint64_t seed,
                                Weight* cut_out) {
  EvoPartitioner engine(cfg);
  Rng rng(seed);
  std::vector<PartId> parts;
  const Weight cut = engine.run(p, rng, parts);
  EXPECT_EQ(cut, compute_cut(*p.graph, parts));
  EXPECT_TRUE(check_solution(p, parts).empty());
  Digest d;
  d.add(static_cast<std::uint64_t>(cut));
  for (const PartId part : parts) d.add(part);
  if (cut_out != nullptr) *cut_out = cut;
  return d.h;
}

TEST(EvoDeterminism, BitIdenticalAcrossEvoThreadCounts) {
  for (const char* const instance : {"tiny", "small"}) {
    const Hypergraph h = generate_netlist(preset(instance));
    const PartitionProblem p = make_problem(h, 0.10);
    Weight ref_cut = 0;
    const std::uint64_t ref =
        single_run_digest(p, small_evo_config(1), 31, &ref_cut);
    for (const std::size_t t : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      Weight cut = 0;
      EXPECT_EQ(single_run_digest(p, small_evo_config(t), 31, &cut), ref)
          << instance << " diverged at evo_threads=" << t;
      EXPECT_EQ(cut, ref_cut);
    }
  }
}

std::uint64_t multistart_digest(const PartitionProblem& p,
                                const EvoConfig& cfg, std::uint64_t seed,
                                std::size_t starts, std::size_t threads) {
  EvoPartitioner engine(cfg);
  const MultistartResult r = run_multistart(p, engine, starts, seed, threads);
  Digest d;
  d.add(static_cast<std::uint64_t>(r.best_cut));
  for (const PartId part : r.best_parts) d.add(part);
  for (const StartRecord& s : r.starts) {
    d.add(static_cast<std::uint64_t>(s.cut));
    d.add(s.feasible ? 1 : 0);
  }
  return d.h;
}

TEST(EvoDeterminism, BitIdenticalAcrossMultistartThreadCounts) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.10);
  const std::uint64_t ref =
      multistart_digest(p, small_evo_config(), 55, /*starts=*/4, 1);
  for (const std::size_t t : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(multistart_digest(p, small_evo_config(), 55, 4, t), ref)
        << "diverged at " << t << " multistart threads";
  }
}

// Golden digests over the (instance x seed) matrix, pinned from the
// first run (same policy as fm_golden_trace_test / nlevel_test).
struct GoldenEntry {
  const char* instance;
  std::uint64_t seed;
  std::uint64_t digest;
};

TEST(EvoDeterminism, GoldenDigests) {
  const GoldenEntry kGolden[] = {
      {"tiny", 1, 0x71f0233c42eee095ULL},
      {"tiny", 7, 0x71f0233c42eee095ULL},
      {"tiny", 42, 0xcd0e6f3b90bbdd81ULL},
      {"small", 1, 0xeaaea3b9e0d44cd2ULL},
      {"small", 7, 0xba6c779fea16c61aULL},
      {"small", 42, 0x383db2be6da41241ULL},
  };
  for (const GoldenEntry& entry : kGolden) {
    const Hypergraph h = generate_netlist(preset(entry.instance));
    const PartitionProblem p = make_problem(h, 0.10);
    const std::uint64_t digest =
        single_run_digest(p, small_evo_config(), entry.seed, nullptr);
    EXPECT_EQ(digest, entry.digest)
        << entry.instance << " seed " << entry.seed << " digest 0x"
        << std::hex << digest;
  }
}

TEST(EvoFuzz, RecombinationVcycleRespectsConstraints) {
  // Seeded fuzz of the recombination operator in isolation: arbitrary
  // feasible parent pairs (random initial solutions — much more diverse
  // than converged population members), guide = agreement classes, full
  // runtime audits on.  The result must stay feasible and never be
  // worse than the first parent.
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.10);
  std::vector<PartId> fixed(h.num_vertices(), kNoPart);
  Rng pick(123);
  for (int i = 0; i < 6; ++i) {
    fixed[pick.below(h.num_vertices())] = static_cast<PartId>(pick.below(2));
  }
  p.fixed = fixed;

  MlConfig ml;
  ml.initial_tries = 2;
  ml.refine.audit.mode = AuditMode::kPerPass;
  MlPartitioner engine(ml);

  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(1000 + seed);
    std::vector<PartId> p1 = make_initial(p, InitialScheme::kRandom, 0, rng);
    std::vector<PartId> p2 = make_initial(p, InitialScheme::kRandom, 1, rng);
    ASSERT_TRUE(check_solution(p, p1).empty());
    const Weight before = compute_cut(h, p1);
    std::vector<PartId> guide(h.num_vertices());
    for (std::size_t v = 0; v < guide.size(); ++v) {
      guide[v] = static_cast<PartId>(2 * (p1[v] & 1) + (p2[v] & 1));
    }
    std::vector<PartId> child = p1;
    const Weight after = engine.vcycle_guided(p, rng, child, guide);
    EXPECT_LE(after, before) << "seed " << seed;
    EXPECT_EQ(after, compute_cut(h, child)) << "seed " << seed;
    EXPECT_TRUE(check_solution(p, child).empty()) << "seed " << seed;
    for (std::size_t v = 0; v < fixed.size(); ++v) {
      if (fixed[v] != kNoPart) EXPECT_EQ(child[v], fixed[v]);
    }
  }
}

TEST(EvoFuzz, MutationRunsStayFeasible) {
  // Mutation perturbs before repairing; the final population must still
  // be feasible (elitist replacement never keeps an infeasible winner
  // while a feasible one exists, and seeding produces feasible ones).
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.05);  // tight window
  EvoConfig cfg = small_evo_config();
  cfg.mutation_period = 1;  // every offspring mutates
  cfg.mutation_size = 16;
  cfg.ml.refine.audit.mode = AuditMode::kPerPass;
  for (const std::uint64_t seed : {2ULL, 12ULL, 22ULL}) {
    EvoPartitioner engine(cfg);
    Rng rng(seed);
    std::vector<PartId> parts;
    const Weight cut = engine.run(p, rng, parts);
    EXPECT_EQ(cut, compute_cut(h, parts));
    EXPECT_TRUE(check_solution(p, parts).empty()) << "seed " << seed;
  }
}

TEST(EvoPartitionerTest, CloneIsIndependentAndIdentical) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.10);
  EvoPartitioner engine(small_evo_config());
  auto cloned = engine.clone();
  ASSERT_NE(cloned, nullptr);
  Rng rng1(9), rng2(9);
  std::vector<PartId> a, b;
  const Weight ca = engine.run(p, rng1, a);
  const Weight cb = cloned->run(p, rng2, b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vlsipart
