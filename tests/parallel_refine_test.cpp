// Determinism and correctness harness for the synchronous-round
// parallel engines (parallel_refine.h, parallel_coarsen.h).
//
// The hard acceptance bar: the parallel refiner and coarsener must be
// bit-identical to themselves at 1/2/4/8 threads (the shard.h merge
// lemma made executable), on real instances across a config matrix —
// full kept-move traces, round stats and final assignments digested and
// compared, plus the complete ML pipeline with both engines enabled.
// Alongside the invariance suites, a seeded fuzz harness drives the
// prefix-scan commit with adversarial proposal lists (duplicates, fixed
// vertices, stale gains, tight balance windows) and audits the state
// after every commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/part/core/initial.h"
#include "src/part/core/parallel_refine.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/part/ml/parallel_coarsen.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vlsipart {
namespace {

// FNV-1a style combiner, same idiom as fm_golden_trace_test: the digest
// pins the full ordered sequence of observable events.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  void add_signed(std::int64_t x) { add(static_cast<std::uint64_t>(x)); }
};

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

const char* const kInstances[] = {"tiny", "small", "medium"};
const std::size_t kThreadCounts[] = {1, 2, 4, 8};

struct ConfigSpec {
  std::string label;
  FmConfig cfg;
  double tolerance;
};

/// The config surface the round engine actually reads: balance window,
/// corking exclusion, round cap.  (Bucket policies like insert_order
/// are serial-engine knobs; the round engine has no buckets.)
std::vector<ConfigSpec> parallel_config_matrix() {
  std::vector<ConfigSpec> out;
  for (const double tol : {0.02, 0.10}) {
    for (const bool cork : {false, true}) {
      for (const int max_passes : {-1, 3}) {
        FmConfig cfg;
        cfg.exclude_oversized = cork;
        cfg.max_passes = max_passes;
        cfg.record_trace = true;
        std::string label = "tol" + std::to_string(tol).substr(0, 4) +
                            (cork ? "-cork1" : "-cork0") + "-mp" +
                            std::to_string(max_passes);
        out.push_back({std::move(label), cfg, tol});
      }
    }
  }
  return out;
}

/// Digest of one parallel refine at a given thread count: every round's
/// stats and kept-move trace, then the final cut and full assignment.
std::uint64_t parallel_refine_digest(const Hypergraph& h,
                                     const ConfigSpec& spec,
                                     std::size_t threads, Weight* final_cut) {
  const PartitionProblem p = make_problem(h, spec.tolerance);
  Rng init_rng(12345);
  const auto parts = random_initial(p, init_rng);
  PartitionState state(h);
  state.assign(parts);

  ThreadPool pool(threads);
  ParallelFmRefiner refiner(p, spec.cfg, &pool);
  Rng rng(67890);
  const ParallelFmResult r = refiner.refine(state, rng);

  Digest d;
  d.add(r.rounds);
  d.add(r.total_moves);
  d.add_signed(r.initial_cut);
  d.add_signed(r.final_cut);
  for (const ParallelRoundStats& s : r.round_stats) {
    d.add(s.proposals);
    d.add(s.applied);
    d.add(s.kept);
    d.add(s.rejected_balance);
    d.add(s.gains_recomputed);
    d.add_signed(s.cut_before);
    d.add_signed(s.cut_after);
  }
  for (const auto& trace : r.round_traces) {
    d.add(trace.size());
    for (const VertexId v : trace) d.add(v);
  }
  for (const PartId part : state.parts()) d.add(part);
  *final_cut = state.cut();
  return d.h;
}

TEST(ParallelRefine, BitIdenticalAcrossThreadCounts) {
  const auto configs = parallel_config_matrix();
  for (const char* const instance : kInstances) {
    const Hypergraph h = generate_netlist(preset(instance));
    for (const ConfigSpec& spec : configs) {
      Weight ref_cut = 0;
      const std::uint64_t ref =
          parallel_refine_digest(h, spec, /*threads=*/1, &ref_cut);
      for (const std::size_t t : kThreadCounts) {
        if (t == 1) continue;
        Weight cut = 0;
        const std::uint64_t digest = parallel_refine_digest(h, spec, t, &cut);
        EXPECT_EQ(digest, ref) << instance << " " << spec.label << " at "
                               << t << " threads diverged from 1 thread";
        EXPECT_EQ(cut, ref_cut) << instance << " " << spec.label;
      }
    }
  }
}

TEST(ParallelRefine, NullPoolMatchesSingleThreadPool) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  FmConfig cfg;
  cfg.record_trace = true;

  Rng init_rng(7);
  const auto parts = random_initial(p, init_rng);

  auto run = [&](ThreadPool* pool) {
    PartitionState state(h);
    state.assign(parts);
    ParallelFmRefiner refiner(p, cfg, pool);
    Rng rng(99);
    refiner.refine(state, rng);
    return state.parts();
  };

  ThreadPool pool(1);
  EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(ParallelRefine, ImprovesCutAndKeepsFeasibility) {
  for (const char* const instance : kInstances) {
    const Hypergraph h = generate_netlist(preset(instance));
    const PartitionProblem p = make_problem(h, 0.02);
    Rng init_rng(31337);
    const auto parts = random_initial(p, init_rng);
    PartitionState state(h);
    state.assign(parts);
    const Weight initial = state.cut();

    ThreadPool pool(4);
    ParallelFmRefiner refiner(p, FmConfig{}, &pool);
    Rng rng(4242);
    const ParallelFmResult r = refiner.refine(state, rng);

    EXPECT_LE(state.cut(), initial) << instance;
    EXPECT_EQ(r.final_cut, state.cut()) << instance;
    EXPECT_GT(r.total_moves, 0u) << instance;
    EXPECT_TRUE(check_solution(p, state.parts(), state.cut()).empty())
        << instance;
    state.audit();
  }
}

TEST(ParallelRefine, RecoversFromInfeasibleStart) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.10);
  // Everything on side 0: maximally infeasible, zero cut.
  std::vector<PartId> parts(h.num_vertices(), 0);
  PartitionState state(h);
  state.assign(parts);
  ASSERT_GT(state.part_weight(0), p.balance.max_part());

  ThreadPool pool(2);
  ParallelFmRefiner refiner(p, FmConfig{}, &pool);
  Rng rng(5);
  refiner.refine(state, rng);

  EXPECT_TRUE(p.balance.feasible(state.part_weight(0)))
      << "w0=" << state.part_weight(0) << " window=["
      << p.balance.min_part() << "," << p.balance.max_part() << "]";
  state.audit();
}

TEST(ParallelRefine, RespectsFixedVertices) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem p = make_problem(h, 0.10);
  p.fixed.assign(h.num_vertices(), kNoPart);
  Rng fix_rng(77);
  for (std::size_t v = 0; v < h.num_vertices(); v += 7) {
    p.fixed[v] = static_cast<PartId>(fix_rng.range(0, 1));
  }
  Rng init_rng(88);
  const auto parts = random_initial(p, init_rng);
  PartitionState state(h);
  state.assign(parts);

  ThreadPool pool(4);
  ParallelFmRefiner refiner(p, FmConfig{}, &pool);
  Rng rng(6);
  refiner.refine(state, rng);

  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    if (p.fixed[v] != kNoPart) {
      EXPECT_EQ(state.part(static_cast<VertexId>(v)), p.fixed[v])
          << "fixed vertex " << v << " moved";
    }
  }
}

/// The full ML pipeline with both parallel engines enabled must be
/// bit-identical at 2/4/8 threads (1 selects the serial engines, which
/// are a different — golden-pinned — heuristic).
TEST(ParallelRefine, MlPipelineBitIdenticalAcrossThreadCounts) {
  for (const char* const instance : {"small", "medium"}) {
    const Hypergraph h = generate_netlist(preset(instance));
    const PartitionProblem p = make_problem(h, 0.02);

    auto run = [&](std::size_t threads) {
      MlConfig cfg;
      cfg.refine.refine_threads = threads;
      cfg.coarsen.coarsen_threads = threads;
      MlPartitioner ml(cfg);
      Rng rng(424242);
      std::vector<PartId> parts;
      const Weight cut = ml.run(p, rng, parts);
      Digest d;
      d.add_signed(cut);
      for (const PartId part : parts) d.add(part);
      return d.h;
    };

    const std::uint64_t ref = run(2);
    EXPECT_EQ(run(4), ref) << instance << ": ML pipeline at 4 threads";
    EXPECT_EQ(run(8), ref) << instance << ": ML pipeline at 8 threads";
  }
}

/// FlatFmPartitioner with refine_threads > 1 under the multistart
/// harness: still thread-invariant, still feasible.
TEST(ParallelRefine, FlatPartitionerMultistartThreadInvariant) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);

  auto run = [&](std::size_t refine_threads) {
    FmConfig cfg;
    cfg.refine_threads = refine_threads;
    FlatFmPartitioner engine(cfg);
    const MultistartResult r = run_multistart(p, engine, 4, /*seed=*/9);
    Digest d;
    d.add_signed(r.best_cut);
    for (const PartId part : r.best_parts) d.add(part);
    return d.h;
  };

  const std::uint64_t ref = run(2);
  EXPECT_EQ(run(4), ref);
  EXPECT_EQ(run(8), ref);
}

// ---------------------------------------------------------------------
// Parallel coarsening invariance.

std::uint64_t hierarchy_digest(const Hypergraph& h,
                               const CoarsenConfig& config,
                               std::size_t threads) {
  ThreadPool pool(threads);
  ContractionMemory memory;
  const std::vector<CoarsenLevel> levels =
      parallel_build_hierarchy(h, config, {}, {}, &pool, &memory);
  Digest d;
  d.add(levels.size());
  for (const CoarsenLevel& level : levels) {
    d.add(level.coarse.num_vertices());
    d.add(level.coarse.num_edges());
    d.add(level.coarse.num_pins());
    for (const VertexId c : level.fine_to_coarse) d.add(c);
    for (std::size_t v = 0; v < level.coarse.num_vertices(); ++v) {
      d.add_signed(level.coarse.vertex_weight(static_cast<VertexId>(v)));
    }
    for (std::size_t e = 0; e < level.coarse.num_edges(); ++e) {
      d.add_signed(level.coarse.edge_weight(static_cast<EdgeId>(e)));
    }
  }
  return d.h;
}

TEST(ParallelCoarsen, BitIdenticalAcrossThreadCounts) {
  for (const char* const instance : kInstances) {
    const Hypergraph h = generate_netlist(preset(instance));
    for (const CoarsenScheme scheme :
         {CoarsenScheme::kHeavyEdgeMatching, CoarsenScheme::kFirstChoice}) {
      CoarsenConfig config;
      config.scheme = scheme;
      const std::uint64_t ref = hierarchy_digest(h, config, 1);
      for (const std::size_t t : kThreadCounts) {
        if (t == 1) continue;
        EXPECT_EQ(hierarchy_digest(h, config, t), ref)
            << instance << " scheme " << static_cast<int>(scheme) << " at "
            << t << " threads";
      }
    }
  }
}

TEST(ParallelCoarsen, FixedVerticesStaySingletons) {
  const Hypergraph h = generate_netlist(preset("small"));
  std::vector<PartId> fixed(h.num_vertices(), kNoPart);
  for (std::size_t v = 0; v < h.num_vertices(); v += 11) fixed[v] = 0;

  ThreadPool pool(4);
  CoarsenConfig config;
  const CoarsenLevel level =
      parallel_coarsen_once(h, config, fixed, {}, &pool);

  std::vector<std::size_t> cluster_size(level.coarse.num_vertices(), 0);
  for (const VertexId c : level.fine_to_coarse) ++cluster_size[c];
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    if (fixed[v] != kNoPart) {
      EXPECT_EQ(cluster_size[level.fine_to_coarse[v]], 1u)
          << "fixed vertex " << v << " was clustered";
    }
  }
}

TEST(ParallelCoarsen, RespectsExplicitWeightCap) {
  const Hypergraph h = generate_netlist(preset("small"));
  const Weight cap = std::max<Weight>(h.max_vertex_weight(), 40);
  for (const CoarsenScheme scheme :
       {CoarsenScheme::kHeavyEdgeMatching, CoarsenScheme::kFirstChoice}) {
    CoarsenConfig config;
    config.scheme = scheme;
    config.max_cluster_weight = cap;
    ThreadPool pool(2);
    const CoarsenLevel level = parallel_coarsen_once(h, config, {}, {}, &pool);
    for (std::size_t c = 0; c < level.coarse.num_vertices(); ++c) {
      const Weight w = level.coarse.vertex_weight(static_cast<VertexId>(c));
      // Clusters above the cap may only be single vertices that already
      // exceeded it on their own.
      if (w > cap) {
        std::size_t members = 0;
        for (const VertexId fc : level.fine_to_coarse) {
          if (fc == static_cast<VertexId>(c)) ++members;
        }
        EXPECT_EQ(members, 1u) << "multi-vertex cluster " << c
                               << " exceeds cap: " << w << " > " << cap;
      }
    }
  }
}

TEST(ParallelCoarsen, ReducesInstanceSize) {
  const Hypergraph h = generate_netlist(preset("medium"));
  ThreadPool pool(4);
  CoarsenConfig config;
  ContractionMemory memory;
  const std::vector<CoarsenLevel> levels =
      parallel_build_hierarchy(h, config, {}, {}, &pool, &memory);
  ASSERT_FALSE(levels.empty());
  EXPECT_LE(levels.back().coarse.num_vertices(), h.num_vertices() / 2);
  for (const CoarsenLevel& level : levels) level.coarse.validate();
}

// ---------------------------------------------------------------------
// Seeded fuzz for the prefix-scan commit: adversarial proposal lists
// against audited state.

TEST(ParallelCommitFuzz, AdversarialProposalsKeepStateSound) {
  Rng rng(0xfeedULL);
  for (int iter = 0; iter < 60; ++iter) {
    // Random small hypergraph with wide weight spread.
    const std::size_t n = 8 + static_cast<std::size_t>(rng.range(0, 24));
    HypergraphBuilder b(n);
    for (std::size_t v = 0; v < n; ++v) {
      b.set_vertex_weight(static_cast<VertexId>(v),
                          1 + rng.range(0, iter % 3 == 0 ? 19 : 3));
    }
    const std::size_t edges = n + static_cast<std::size_t>(rng.range(0, 16));
    for (std::size_t e = 0; e < edges; ++e) {
      std::vector<VertexId> pins;
      const std::size_t size = 2 + static_cast<std::size_t>(rng.range(0, 4));
      for (std::size_t i = 0; i < size; ++i) {
        pins.push_back(static_cast<VertexId>(
            rng.range(0, static_cast<std::int64_t>(n) - 1)));
      }
      b.add_edge(pins, 1 + rng.range(0, 3));
    }
    const Hypergraph h = b.finalize("fuzz");
    if (h.num_edges() == 0) continue;

    // Tight or loose balance window; occasional fixed vertices.
    PartitionProblem p = make_problem(h, iter % 2 == 0 ? 0.05 : 0.3);
    if (iter % 4 == 0) {
      p.fixed.assign(n, kNoPart);
      p.fixed[0] = 0;
      p.fixed[n / 2] = 1;
    }

    std::vector<PartId> parts(n);
    for (std::size_t v = 0; v < n; ++v) {
      parts[v] = p.is_fixed(static_cast<VertexId>(v))
                     ? p.fixed[v]
                     : static_cast<PartId>(rng.range(0, 1));
    }
    PartitionState state(h);
    state.assign(parts);

    auto imbalance_of = [&p](Weight w0) -> Weight {
      if (w0 < p.balance.min_part()) return p.balance.min_part() - w0;
      if (w0 > p.balance.max_part()) return w0 - p.balance.max_part();
      return 0;
    };
    const Weight imb_before = imbalance_of(state.part_weight(0));
    const Weight cut_before = state.cut();

    // Adversarial proposals: duplicates, fixed vertices, garbage gains
    // (deliberately unrelated to the true gains).
    std::vector<MoveProposal> proposals;
    const std::size_t count = static_cast<std::size_t>(rng.range(0, 40));
    for (std::size_t i = 0; i < count; ++i) {
      MoveProposal mp;
      mp.v = static_cast<VertexId>(
          rng.range(0, static_cast<std::int64_t>(n) - 1));
      mp.gain = rng.range(-5, 5);
      proposals.push_back(mp);
    }
    std::stable_sort(proposals.begin(), proposals.end(),
                     [](const MoveProposal& a, const MoveProposal& b) {
                       return a.gain > b.gain;
                     });

    std::vector<VertexId> kept;
    const CommitOutcome out =
        commit_proposals(p, state, proposals, kept);

    // Incremental bookkeeping intact after apply + rollback.
    state.audit();
    // The (imbalance, cut) key never got worse.
    const Weight imb_after = imbalance_of(state.part_weight(0));
    EXPECT_TRUE(imb_after < imb_before ||
                (imb_after == imb_before && state.cut() <= cut_before))
        << "iter " << iter << ": key worsened";
    EXPECT_EQ(out.kept, kept.size());
    EXPECT_EQ(out.cut_before, cut_before);
    EXPECT_EQ(out.cut_after, state.cut());
    EXPECT_LE(out.kept, out.applied);
    // Fixed vertices never moved.
    for (std::size_t v = 0; v < n; ++v) {
      if (p.is_fixed(static_cast<VertexId>(v))) {
        EXPECT_EQ(state.part(static_cast<VertexId>(v)), p.fixed[v]);
      }
    }

    // Replaying the kept moves on a fresh state reproduces the final
    // assignment, and rerunning the whole commit is deterministic.
    PartitionState replay(h);
    replay.assign(parts);
    for (const VertexId v : kept) replay.move(v);
    EXPECT_EQ(replay.parts(), state.parts()) << "iter " << iter;

    PartitionState rerun(h);
    rerun.assign(parts);
    std::vector<VertexId> kept2;
    const CommitOutcome out2 =
        commit_proposals(p, rerun, proposals, kept2);
    EXPECT_EQ(kept2, kept) << "iter " << iter << ": commit not deterministic";
    EXPECT_EQ(out2.kept, out.kept);
    EXPECT_EQ(out2.applied, out.applied);
    EXPECT_EQ(out2.rejected_balance, out.rejected_balance);
    EXPECT_EQ(rerun.parts(), state.parts());
  }
}

TEST(ParallelCommitFuzz, TightBalanceWindowRejectsOverweightMoves) {
  // Uniform weights, exact-bisection window: any proposal that would tip
  // the scales must be rejected, and at least one such rejection occurs.
  HypergraphBuilder b(8);
  for (VertexId v = 0; v < 8; ++v) b.set_vertex_weight(v, 10);
  for (VertexId v = 0; v + 1 < 8; ++v) {
    b.add_edge({v, static_cast<VertexId>(v + 1)});
  }
  const Hypergraph h = b.finalize("tight");
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_bounds(h.total_vertex_weight(), 40, 40);

  std::vector<PartId> parts = {0, 0, 0, 0, 1, 1, 1, 1};
  PartitionState state(h);
  state.assign(parts);

  // All one-sided proposals: every single one is balance-illegal.
  std::vector<MoveProposal> proposals;
  for (VertexId v = 0; v < 4; ++v) proposals.push_back({v, 1});
  std::vector<VertexId> kept;
  const CommitOutcome out = commit_proposals(p, state, proposals, kept);
  EXPECT_EQ(out.applied, 0u);
  EXPECT_EQ(out.rejected_balance, 4u);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(state.parts(), parts);
  state.audit();
}

TEST(ParallelCommitFuzz, DuplicateAndFixedProposalsAreSkipped) {
  HypergraphBuilder b(6);
  for (VertexId v = 0; v + 1 < 6; ++v) {
    b.add_edge({v, static_cast<VertexId>(v + 1)});
  }
  const Hypergraph h = b.finalize("dups");
  PartitionProblem p = make_problem(h, 0.5);
  p.fixed.assign(6, kNoPart);
  p.fixed[2] = 0;

  std::vector<PartId> parts = {0, 0, 0, 1, 1, 1};
  PartitionState state(h);
  state.assign(parts);

  const std::vector<MoveProposal> proposals = {
      {2, 100},  // fixed -> rejected_other
      {0, 3},
      {0, 3},  // duplicate -> rejected_other
      {5, 1},
  };
  std::vector<VertexId> kept;
  const CommitOutcome out = commit_proposals(p, state, proposals, kept);
  EXPECT_EQ(out.rejected_other, 2u);
  EXPECT_EQ(state.part(2), 0) << "fixed vertex moved";
  state.audit();
}

}  // namespace
}  // namespace vlsipart
