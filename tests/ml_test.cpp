// Tests for multilevel coarsening, the ML partitioner and V-cycling.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/coarsen.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

TEST(Coarsen, PreservesTotalWeight) {
  const Hypergraph h = generate_netlist(preset("small"));
  Rng rng(1);
  const CoarsenLevel level = coarsen_once(h, CoarsenConfig{}, {}, {}, rng);
  EXPECT_EQ(level.coarse.total_vertex_weight(), h.total_vertex_weight());
  level.coarse.validate();
}

TEST(Coarsen, ReducesVertexCount) {
  const Hypergraph h = generate_netlist(preset("small"));
  Rng rng(1);
  const CoarsenLevel level = coarsen_once(h, CoarsenConfig{}, {}, {}, rng);
  EXPECT_LT(level.coarse.num_vertices(), h.num_vertices());
  // Heavy-edge clustering on a well-structured netlist should shrink the
  // instance substantially in one level.
  EXPECT_LT(static_cast<double>(level.coarse.num_vertices()),
            0.8 * static_cast<double>(h.num_vertices()));
}

TEST(Coarsen, RespectsMaxClusterWeight) {
  const Hypergraph h = generate_netlist(preset("small"));
  CoarsenConfig config;
  config.max_cluster_weight = 12;
  Rng rng(1);
  const CoarsenLevel level = coarsen_once(h, config, {}, {}, rng);
  const Weight cap = std::max<Weight>(12, h.max_vertex_weight());
  for (std::size_t v = 0; v < level.coarse.num_vertices(); ++v) {
    EXPECT_LE(level.coarse.vertex_weight(static_cast<VertexId>(v)), cap);
  }
}

TEST(Coarsen, FixedVerticesStaySingletons) {
  const Hypergraph h = generate_netlist(preset("small"));
  std::vector<PartId> fixed(h.num_vertices(), kNoPart);
  fixed[3] = 0;
  fixed[10] = 1;
  fixed[20] = 1;
  Rng rng(2);
  const CoarsenLevel level = coarsen_once(h, CoarsenConfig{}, fixed, {}, rng);
  // Each fixed vertex must map to a coarse vertex of identical weight
  // (i.e., a singleton cluster).
  for (const VertexId v : {VertexId{3}, VertexId{10}, VertexId{20}}) {
    const VertexId c = level.fine_to_coarse[v];
    EXPECT_EQ(level.coarse.vertex_weight(c), h.vertex_weight(v));
    // No other vertex shares the cluster.
    for (std::size_t u = 0; u < h.num_vertices(); ++u) {
      if (u != v) {
        EXPECT_NE(level.fine_to_coarse[u], c);
      }
    }
  }
}

TEST(Coarsen, RespectPartsKeepsClustersHomogeneous) {
  const Hypergraph h = generate_netlist(preset("small"));
  Rng init(3);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(init.below(2));
  CoarsenConfig config;
  config.respect_parts = true;
  Rng rng(4);
  const CoarsenLevel level = coarsen_once(h, config, {}, parts, rng);
  std::vector<PartId> cluster_part(level.coarse.num_vertices(), kNoPart);
  for (std::size_t v = 0; v < parts.size(); ++v) {
    PartId& slot = cluster_part[level.fine_to_coarse[v]];
    if (slot == kNoPart) {
      slot = parts[v];
    } else {
      EXPECT_EQ(slot, parts[v]) << "cluster mixes parts at fine vertex " << v;
    }
  }
}

TEST(Coarsen, CutPreservedUnderProjection) {
  // For any coarse assignment, the coarse cut equals the fine cut of its
  // projection (parallel-net weight merging makes this exact).
  const Hypergraph h = generate_netlist(preset("tiny"));
  Rng rng(5);
  const CoarsenLevel level = coarsen_once(h, CoarsenConfig{}, {}, {}, rng);
  Rng assign_rng(6);
  std::vector<PartId> coarse_parts(level.coarse.num_vertices());
  for (auto& p : coarse_parts) p = static_cast<PartId>(assign_rng.below(2));
  const Weight coarse_cut = compute_cut(level.coarse, coarse_parts);
  const auto fine_parts = project_partition(level.fine_to_coarse, coarse_parts);
  EXPECT_EQ(coarse_cut, compute_cut(h, fine_parts));
}

TEST(Coarsen, HierarchyReachesTarget) {
  const Hypergraph h = generate_netlist(preset("medium"));
  CoarsenConfig config;
  config.coarsen_to = 100;
  Rng rng(7);
  const auto levels = build_hierarchy(h, config, {}, {}, rng);
  ASSERT_FALSE(levels.empty());
  // Either we reached the target or coarsening stalled above it.
  EXPECT_LE(levels.back().coarse.num_vertices(),
            static_cast<std::size_t>(
                static_cast<double>(h.num_vertices()) * 0.2));
  // Monotone shrink across levels.
  std::size_t prev = h.num_vertices();
  for (const auto& level : levels) {
    EXPECT_LT(level.coarse.num_vertices(), prev);
    prev = level.coarse.num_vertices();
  }
}

TEST(Coarsen, ProjectFixedDetectsConflicts) {
  std::vector<PartId> fine_fixed = {0, kNoPart, 1};
  std::vector<VertexId> map = {0, 0, 1};
  const auto coarse = project_fixed(fine_fixed, map, 2);
  EXPECT_EQ(coarse[0], 0);
  EXPECT_EQ(coarse[1], 1);
  // Merging two differently fixed vertices must throw.
  std::vector<VertexId> bad_map = {0, 0, 0};
  EXPECT_THROW(project_fixed(fine_fixed, bad_map, 1), std::logic_error);
}

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(MlPartitioner, ProducesFeasibleSolutions) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  MlPartitioner ml(MlConfig{});
  std::vector<PartId> parts;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const Weight cut = ml.run(p, rng, parts);
    EXPECT_EQ(check_solution(p, parts), "") << "seed " << seed;
    EXPECT_EQ(cut, compute_cut(h, parts));
  }
}

TEST(MlPartitioner, BeatsFlatOnStructuredInstance) {
  const Hypergraph h = generate_netlist(preset("medium"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner ml(MlConfig{});
  FlatFmPartitioner flat{FmConfig{}};
  double ml_total = 0.0;
  double flat_total = 0.0;
  std::vector<PartId> parts;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng r1(seed);
    ml_total += static_cast<double>(ml.run(p, r1, parts));
    Rng r2(seed);
    flat_total += static_cast<double>(flat.run(p, r2, parts));
  }
  // The paper's strength ordering: ML engines clearly beat flat ones on
  // ISPD98-like instances.
  EXPECT_LT(ml_total, flat_total);
}

TEST(MlPartitioner, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner ml(MlConfig{});
  std::vector<PartId> a;
  std::vector<PartId> b;
  Rng r1(9);
  const Weight ca = ml.run(p, r1, a);
  Rng r2(9);
  const Weight cb = ml.run(p, r2, b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a, b);
}

TEST(MlPartitioner, HandlesFixedVertices) {
  const Hypergraph h = generate_netlist(preset("small"));
  PartitionProblem p = make_problem(h, 0.1);
  p.fixed.assign(h.num_vertices(), kNoPart);
  for (VertexId v = 0; v < 10; ++v) p.fixed[v] = static_cast<PartId>(v % 2);
  MlPartitioner ml(MlConfig{});
  std::vector<PartId> parts;
  Rng rng(11);
  ml.run(p, rng, parts);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(parts[v], static_cast<PartId>(v % 2));
  }
  EXPECT_EQ(check_solution(p, parts), "");
}

TEST(MlPartitioner, VcycleNeverWorsens) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner ml(MlConfig{});
  std::vector<PartId> parts;
  Rng rng(13);
  const Weight initial = ml.run(p, rng, parts);
  Weight cut = initial;
  for (int c = 0; c < 3; ++c) {
    const Weight next = ml.vcycle(p, rng, parts);
    EXPECT_LE(next, cut);
    EXPECT_EQ(next, compute_cut(h, parts));
    EXPECT_EQ(check_solution(p, parts), "");
    cut = next;
  }
}

TEST(MlPartitioner, TinyGraphBelowCoarsenTarget) {
  // Graph already smaller than coarsen_to: the ML engine must still
  // work (degenerates to multi-try FM).
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlConfig config;
  config.coarsen.coarsen_to = 1000;
  MlPartitioner ml(config);
  std::vector<PartId> parts;
  Rng rng(17);
  const Weight cut = ml.run(p, rng, parts);
  EXPECT_EQ(check_solution(p, parts), "");
  EXPECT_EQ(cut, compute_cut(h, parts));
}

TEST(HmetisLike, VcyclesOnBestImproveOrKeep) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  MlPartitioner ml(MlConfig{});
  const MultistartResult plain = run_multistart(p, ml, 4, 21);
  MlPartitioner ml2(MlConfig{});
  const MultistartResult cycled = run_hmetis_like(p, ml2, 4, 2, 21);
  EXPECT_LE(cycled.best_cut, plain.best_cut);
  EXPECT_EQ(check_solution(p, cycled.best_parts), "");
}

}  // namespace
}  // namespace vlsipart
