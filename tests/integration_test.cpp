// End-to-end integration tests across modules: generate -> write ->
// read -> partition -> audit -> compare engines, plus brute-force
// optimality cross-checks on exhaustively solvable instances.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "src/eval/objectives.h"
#include "src/gen/netlist_gen.h"
#include "src/io/hmetis_io.h"
#include "src/io/partition_io.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(Integration, GenerateWriteReadPartitionRoundTrip) {
  // The same instance must produce the same cut whether partitioned
  // directly or after an .hgr round trip.
  const Hypergraph original = generate_netlist(preset("small"));
  std::ostringstream out;
  write_hmetis(original, out);
  std::istringstream in(out.str());
  const Hypergraph reread = read_hmetis(in, "small");

  const PartitionProblem p1 = make_problem(original, 0.1);
  const PartitionProblem p2 = make_problem(reread, 0.1);
  FlatFmPartitioner e1{FmConfig{}};
  FlatFmPartitioner e2{FmConfig{}};
  std::vector<PartId> parts1;
  std::vector<PartId> parts2;
  Rng r1(3);
  Rng r2(3);
  EXPECT_EQ(e1.run(p1, r1, parts1), e2.run(p2, r2, parts2));
  EXPECT_EQ(parts1, parts2);
}

TEST(Integration, SolutionFileRoundTripPreservesCut) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner engine(MlConfig{});
  std::vector<PartId> parts;
  Rng rng(5);
  const Weight cut = engine.run(p, rng, parts);
  std::ostringstream out;
  write_partition(parts, out);
  std::istringstream in(out.str());
  const auto reread = read_partition(in);
  EXPECT_EQ(reread, parts);
  EXPECT_EQ(compute_cut(h, reread), cut);
}

/// Exhaustive optimal bisection cut for tiny instances (n <= 20).
Weight brute_force_optimum(const Hypergraph& h,
                           const BalanceConstraint& balance) {
  const std::size_t n = h.num_vertices();
  Weight best = std::numeric_limits<Weight>::max();
  std::vector<PartId> parts(n);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Weight w0 = 0;
    for (std::size_t v = 0; v < n; ++v) {
      parts[v] = static_cast<PartId>((mask >> v) & 1u);
      if (parts[v] == 0) w0 += h.vertex_weight(static_cast<VertexId>(v));
    }
    if (!balance.feasible(w0)) continue;
    best = std::min(best, compute_cut(h, parts));
  }
  return best;
}

class BruteForceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceSweep, MultistartMlFindsOptimumOnTinyInstances) {
  // Property: on exhaustively solvable random instances, a 30-start ML
  // multistart finds the true optimum (or at worst +1 net — these
  // instances have huge plateaus, but in practice the optimum is hit).
  const std::uint64_t seed = GetParam();
  GenConfig config;
  config.name = "brute";
  config.num_cells = 14;
  config.num_pads = 2;
  config.num_nets = 24;
  config.num_macros = 0;
  config.num_huge_nets = 0;
  config.seed = seed;
  const Hypergraph h = generate_netlist(config);
  const PartitionProblem p = make_problem(h, 0.3);

  const Weight optimum = brute_force_optimum(h, p.balance);
  ASSERT_LT(optimum, std::numeric_limits<Weight>::max());

  MlPartitioner engine(MlConfig{});
  const MultistartResult r = run_multistart(p, engine, 30, seed + 1);
  EXPECT_EQ(r.best_cut, optimum) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomTinyInstances, BruteForceSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Integration, EngineStrengthOrderingOnIbmScaledInstance) {
  // The paper's headline ordering, measured end to end: averages over a
  // common multistart regime must satisfy ML <= flat (LIFO engines) and
  // our-CLIP <= plain flat FM on a structured actual-area instance.
  const Hypergraph h = generate_netlist(preset("ibm01").scaled(0.25));
  const PartitionProblem p = make_problem(h, 0.02);
  const std::size_t runs = 6;

  FlatFmPartitioner flat_lifo{FmConfig{}};
  FmConfig clip_cfg;
  clip_cfg.clip = true;
  clip_cfg.exclude_oversized = true;
  FlatFmPartitioner flat_clip{clip_cfg};
  MlConfig ml_cfg;
  MlPartitioner ml_lifo(ml_cfg);

  const double avg_flat =
      run_multistart(p, flat_lifo, runs, 1).avg_cut();
  const double avg_clip =
      run_multistart(p, flat_clip, runs, 1).avg_cut();
  const double avg_ml = run_multistart(p, ml_lifo, runs, 1).avg_cut();

  EXPECT_LT(avg_clip, avg_flat);
  EXPECT_LT(avg_ml, avg_flat);
}

TEST(Integration, ObjectivesConsistentAcrossEngines) {
  // Any feasible solution's objectives must be internally consistent:
  // absorption + "cut fraction" bookkeeping, SOED >= cut, etc.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner engine(MlConfig{});
  std::vector<PartId> parts;
  Rng rng(9);
  engine.run(p, rng, parts);

  const Weight cut = cut_size(h, parts);
  EXPECT_GE(sum_of_external_degrees(h, parts), cut);
  EXPECT_GT(ratio_cut(h, parts), 0.0);
  EXPECT_GT(scaled_cost(h, parts), 0.0);
  // Absorption of a partitioned netlist is below the fully absorbed
  // total (#nets) by at least something for each cut net.
  EXPECT_LT(absorption(h, parts), static_cast<double>(h.num_edges()));
  EXPECT_GT(absorption(h, parts), 0.0);
}

TEST(Integration, KwayRefinesRecursiveStructure) {
  // 4-way via recursive bisection, then verify that collapsing pairs of
  // parts gives 2-way solutions whose cuts are consistent lower bounds:
  // cut(2-way collapse) <= cut(4-way).
  const Hypergraph h = generate_netlist(preset("small"));
  KwayConfig config;
  config.k = 4;
  config.tolerance = 0.25;
  const KwayResult r = recursive_bisection(h, config);
  std::vector<PartId> collapsed(r.parts.size());
  for (std::size_t v = 0; v < r.parts.size(); ++v) {
    collapsed[v] = static_cast<PartId>(r.parts[v] / 2);
  }
  EXPECT_LE(compute_cut(h, collapsed), r.cut);
}

}  // namespace
}  // namespace vlsipart
