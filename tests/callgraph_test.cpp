// Scope/function extractor and call-graph tests: qualified definition
// parsing, member ownership, lambda capture sites, overload resolution
// by name + arity, recursion cycles, and the hot-path purity rule's
// root-to-offender chains (firing and suppressed).
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/lexer.h"
#include "src/analysis/parser.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {
namespace {

ParsedFile parse(const std::string& code) {
  return parse_file(lex("src/x.cpp", code));
}

std::string dump_findings(const AnalysisResult& r) {
  std::string out;
  for (const Finding& f : r.findings) out += f.to_string() + "\n";
  return out;
}

const FunctionDef* find_def(const ParsedFile& p, const std::string& name) {
  for (const FunctionDef& d : p.functions) {
    if (d.name == name || d.qualified_name == name) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Parser: definitions, qualification, ownership

TEST(Parser, FreeFunctionAndQualifiedMember) {
  const ParsedFile p = parse(
      "int helper(int a, int b) { return a + b; }\n"
      "int Widget::tick(int n) { return helper(n, 1); }\n");
  const FunctionDef* helper = find_def(p, "helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->qualified_name, "helper");
  EXPECT_TRUE(helper->owner.empty());
  EXPECT_EQ(helper->min_arity, 2u);
  EXPECT_EQ(helper->max_arity, 2u);

  const FunctionDef* tick = find_def(p, "Widget::tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->name, "tick");
  EXPECT_EQ(tick->owner, "Widget");
}

TEST(Parser, InlineClassMembersAreOwned) {
  const ParsedFile p = parse(
      "class Counter {\n"
      " public:\n"
      "  void bump() { ++n_; }\n"
      "  int get() const { return n_; }\n"
      " private:\n"
      "  int n_ = 0;\n"
      "};\n");
  const FunctionDef* bump = find_def(p, "bump");
  ASSERT_NE(bump, nullptr);
  EXPECT_EQ(bump->owner, "Counter");
  EXPECT_EQ(bump->qualified_name, "Counter::bump");
  const FunctionDef* get = find_def(p, "get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->owner, "Counter");
}

TEST(Parser, DefaultArgumentsLowerMinArity) {
  const ParsedFile p = parse("int f(int a, int b = 2, int c = 3) { return a; }\n");
  const FunctionDef* f = find_def(p, "f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->min_arity, 1u);
  EXPECT_EQ(f->max_arity, 3u);
}

TEST(Parser, ConstructorWithInitList) {
  const ParsedFile p = parse(
      "Widget::Widget(int n) : n_(n), data_(n, 0) { setup(); }\n");
  const FunctionDef* ctor = find_def(p, "Widget::Widget");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->owner, "Widget");
  EXPECT_EQ(ctor->min_arity, 1u);
}

TEST(Parser, LambdaBodiesWithCaptureSites) {
  const ParsedFile p = parse(
      "void Widget::scan(int n) {\n"
      "  auto body = [this, n](int i) { use(i + n); };\n"
      "  auto untied = [&]() { return 1; };\n"
      "  body(0);\n"
      "}\n");
  const FunctionDef* scan = find_def(p, "Widget::scan");
  ASSERT_NE(scan, nullptr);

  const FunctionDef* body = find_def(p, "body");
  ASSERT_NE(body, nullptr);
  EXPECT_TRUE(body->is_lambda);
  EXPECT_EQ(body->qualified_name, "Widget::scan::body");
  ASSERT_EQ(body->captures.size(), 2u);
  EXPECT_EQ(body->captures[0], "this");
  EXPECT_EQ(body->captures[1], "n");
  ASSERT_EQ(body->param_names.size(), 1u);
  EXPECT_EQ(body->param_names[0], "i");

  const FunctionDef* untied = find_def(p, "untied");
  ASSERT_NE(untied, nullptr);
  ASSERT_EQ(untied->captures.size(), 1u);
  EXPECT_EQ(untied->captures[0], "&");
}

TEST(Parser, EnclosingFindsInnermostSpan) {
  const std::string code =
      "void outer() {\n"
      "  auto inner = [] { int deep = 1; };\n"
      "  inner();\n"
      "}\n";
  const LexedFile f = lex("src/x.cpp", code);
  const ParsedFile p = parse_file(f);
  std::size_t deep_tok = 0;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].is_ident("deep")) deep_tok = i;
  }
  ASSERT_GT(deep_tok, 0u);
  const int idx = p.enclosing(deep_tok, /*named_only=*/false);
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(p.functions[idx].is_lambda);
}

// ---------------------------------------------------------------------
// Call graph: resolution by name + arity, cycles

Corpus corpus_of(const std::string& code) {
  Corpus c;
  c.units.push_back(FileUnit{lex("src/x.cpp", code), true});
  return c;
}

const CallSite* find_call(const CallGraph& g, const std::string& caller,
                          const std::string& name) {
  for (std::size_t f = 0; f < g.functions.size(); ++f) {
    if (g.functions[f].qualified_name != caller) continue;
    for (const CallSite& s : g.calls[f]) {
      if (s.name == name) return &s;
    }
  }
  return nullptr;
}

TEST(CallGraphBuild, OverloadResolutionByArity) {
  const Corpus c = corpus_of(
      "int score(int a) { return a; }\n"
      "int score(int a, int b) { return a + b; }\n"
      "int use() { return score(1, 2); }\n");
  const CallGraph g = build_call_graph(c);
  const CallSite* call = find_call(g, "use", "score");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->args, 2u);
  ASSERT_EQ(call->callees.size(), 1u);
  EXPECT_EQ(g.functions[call->callees[0]].max_arity, 2u);
}

TEST(CallGraphBuild, QualifiedCallRestrictsByOwner) {
  const Corpus c = corpus_of(
      "int A::run(int x) { return x; }\n"
      "int B::run(int x) { return 2 * x; }\n"
      "int use(int x) { return B::run(x); }\n");
  const CallGraph g = build_call_graph(c);
  const CallSite* call = find_call(g, "use", "run");
  ASSERT_NE(call, nullptr);
  ASSERT_EQ(call->callees.size(), 1u);
  EXPECT_EQ(g.functions[call->callees[0]].qualified_name, "B::run");
}

TEST(CallGraphBuild, StdCallsNeverResolve) {
  const Corpus c = corpus_of(
      "int move(int x) { return x; }\n"
      "int use(int x) { return std::move(x); }\n");
  const CallGraph g = build_call_graph(c);
  const CallSite* call = find_call(g, "use", "move");
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(call->callees.empty());
}

TEST(CallGraphBuild, RecursionCycleDoesNotLoop) {
  const Corpus c = corpus_of(
      "int even(int n);\n"
      "int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n"
      "int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n"
      "int self(int n) { return n <= 1 ? n : self(n - 1); }\n");
  const CallGraph g = build_call_graph(c);
  const CallSite* odd_call = find_call(g, "odd", "even");
  ASSERT_NE(odd_call, nullptr);
  EXPECT_EQ(odd_call->callees.size(), 1u);
  const CallSite* self_call = find_call(g, "self", "self");
  ASSERT_NE(self_call, nullptr);
  ASSERT_EQ(self_call->callees.size(), 1u);
  EXPECT_EQ(g.functions[self_call->callees[0]].name, "self");
}

TEST(CallGraphBuild, DeclarationIsNotACall) {
  const Corpus c = corpus_of(
      "int make(int x) { return x; }\n"
      "int use() {\n"
      "  Widget make(3);\n"  // declaration with ctor args, not a call
      "  return 0;\n"
      "}\n");
  const CallGraph g = build_call_graph(c);
  EXPECT_EQ(find_call(g, "use", "make"), nullptr);
}

TEST(CallGraphBuild, LambdaIsChildOfHost) {
  const Corpus c = corpus_of(
      "void host() {\n"
      "  auto work = [](int i) { return i; };\n"
      "  work(1);\n"
      "}\n");
  const CallGraph g = build_call_graph(c);
  int host = -1;
  for (std::size_t f = 0; f < g.functions.size(); ++f) {
    if (g.functions[f].qualified_name == "host") host = static_cast<int>(f);
  }
  ASSERT_GE(host, 0);
  ASSERT_EQ(g.children[host].size(), 1u);
  EXPECT_TRUE(g.functions[g.children[host][0]].is_lambda);
}

// ---------------------------------------------------------------------
// Hot-path purity: chains, firing vs suppressed

AnalysisResult lint(const std::string& code) {
  AnalyzerOptions options;
  return analyze_buffers({SourceBuffer{"src/part/hot.cpp", code}}, {},
                         options);
}

std::size_t hotpath_count(const AnalysisResult& r) {
  std::size_t n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == "hot-path-purity") ++n;
  }
  return n;
}

TEST(HotPathRule, FiresTransitivelyWithChain) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void Refiner::run_pass() { step(1); }\n"
      "void Refiner::step(int n) { grow(n); }\n"
      "void Refiner::grow(int n) { log_.push_back(n); }\n");
  ASSERT_EQ(hotpath_count(r), 1u) << dump_findings(r);
  const std::string& msg = r.findings[0].message;
  EXPECT_NE(msg.find("push_back"), std::string::npos) << msg;
  EXPECT_NE(
      msg.find("Refiner::run_pass -> Refiner::step -> Refiner::grow"),
      std::string::npos)
      << msg;
}

TEST(HotPathRule, DirectNewFires) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void run_pass() { int* p = new int[4]; use(p); }\n");
  EXPECT_EQ(hotpath_count(r), 1u) << dump_findings(r);
}

TEST(HotPathRule, LambdaInsideHotFunctionIsWalked) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void run_pass() {\n"
      "  auto cmp = [&](int a, int b) { scratch_.resize(a); return a < b; };\n"
      "  cmp(1, 2);\n"
      "}\n");
  ASSERT_EQ(hotpath_count(r), 1u) << dump_findings(r);
  EXPECT_NE(r.findings[0].message.find("resize"), std::string::npos);
}

TEST(HotPathRule, AllowWithReasonSuppresses) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void run_pass() {\n"
      "  log_.push_back(1);  // hot-path: allow(amortized growth)\n"
      "}\n");
  EXPECT_EQ(hotpath_count(r), 0u) << dump_findings(r);
  EXPECT_GE(r.suppressed, 1u);
}

TEST(HotPathRule, EmptyAllowReasonDoesNotSuppress) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void run_pass() {\n"
      "  log_.push_back(1);  // hot-path: allow()\n"
      "}\n");
  EXPECT_EQ(hotpath_count(r), 1u) << dump_findings(r);
}

TEST(HotPathRule, AllowPrunesCallEdge) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void run_pass() {\n"
      "  audit();  // hot-path: allow(audit mode only)\n"
      "}\n"
      "void audit() { std::cout << \"state\"; }\n");
  EXPECT_EQ(hotpath_count(r), 0u) << dump_findings(r);
}

TEST(HotPathRule, UnreachedFunctionIsNotChecked) {
  const AnalysisResult r = lint(
      "// hot-path: root\n"
      "void run_pass() { step(); }\n"
      "void step() { counter_ += 1; }\n"
      "void cold_setup() { table_.resize(100); }\n");
  EXPECT_EQ(hotpath_count(r), 0u) << dump_findings(r);
}

}  // namespace
}  // namespace vlsipart::analysis
