// Parameterized property sweep over every ibm preset: each generated
// instance must satisfy the Sec. 2.1 "salient attributes of real-world
// inputs" that the ISPD98 substitution promises (see DESIGN.md), plus
// structural validity and determinism.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"

namespace vlsipart {
namespace {

class IbmPresetSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(IbmPresetSweep, MatchesPublishedScale) {
  const GenConfig config = preset(GetParam());
  // Keep the biggest members affordable in unit tests.
  const double scale = config.num_cells > 80000 ? 0.5 : 1.0;
  const Hypergraph h = generate_netlist(config.scaled(scale));
  h.validate();
  const InstanceStats s = compute_stats(h);

  // |V| and |E| at the preset's (scaled) magnitude.
  const double expected_v =
      static_cast<double>(config.num_cells + config.num_pads) * scale;
  EXPECT_NEAR(static_cast<double>(s.num_vertices), expected_v,
              expected_v * 0.02)
      << GetParam();

  // Sec. 2.1 bands: |E| close to |V|; degrees and net sizes in 3-5-ish.
  EXPECT_GT(s.edge_vertex_ratio, 0.8) << GetParam();
  EXPECT_LT(s.edge_vertex_ratio, 1.6) << GetParam();
  EXPECT_GT(s.avg_net_size, 2.0) << GetParam();
  EXPECT_LT(s.avg_net_size, 5.5) << GetParam();
  EXPECT_GT(s.avg_vertex_degree, 2.0) << GetParam();
  EXPECT_LT(s.avg_vertex_degree, 6.5) << GetParam();

  // A small number of huge (clock/reset class) nets.
  EXPECT_GE(s.num_huge_nets, 1u) << GetParam();
  EXPECT_LE(s.num_huge_nets, 30u) << GetParam();

  // Wide area variation with at least one cell above a 2% balance
  // window (the corking precondition).
  EXPECT_GT(s.area_spread, 50.0) << GetParam();
  EXPECT_GT(h.max_vertex_weight(),
            h.total_vertex_weight() / 50)  // > 2% of total
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllIbmPresets, IbmPresetSweep,
                         ::testing::ValuesIn(ibm_preset_names()));

class ScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweep, ScalingPreservesShape) {
  const double scale = GetParam();
  const Hypergraph h = generate_netlist(preset("ibm02").scaled(scale));
  h.validate();
  const InstanceStats s = compute_stats(h);
  EXPECT_GT(s.avg_net_size, 2.0);
  EXPECT_LT(s.avg_net_size, 5.5);
  EXPECT_GT(s.edge_vertex_ratio, 0.7);
  EXPECT_LT(s.edge_vertex_ratio, 1.7);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 1.0));

TEST(GeneratorSweep, DistinctPresetsAreDistinctInstances) {
  const Hypergraph a = generate_netlist(preset("ibm01").scaled(0.1));
  const Hypergraph b = generate_netlist(preset("ibm02").scaled(0.1));
  EXPECT_NE(a.num_vertices(), b.num_vertices());
  EXPECT_NE(a.num_edges(), b.num_edges());
}

}  // namespace
}  // namespace vlsipart
