// Dataflow-engine tests: CFG construction over the structured control
// flow the heuristic parser recognizes, reaching definitions with
// def-use chains, and a firing / suppressed / clean fixture for every
// dataflow rule family (index-width, flow-determinism, dead-store) —
// including the one-hop pointer-to-comparator flow the token-level
// determinism rules cannot see.  Ends with a golden SARIF shape check
// and the stale-baseline semantics.
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/finding.h"
#include "src/analysis/lexer.h"
#include "src/analysis/output.h"
#include "src/analysis/parser.h"

namespace vlsipart::analysis {
namespace {

// ---------------------------------------------------------------------
// Harness

struct Built {
  LexedFile lexed;
  ParsedFile parsed;
  int fn = -1;
  Cfg cfg;
};

Built build(const std::string& code, const std::string& name = "f") {
  Built b;
  b.lexed = lex("src/part/fixture.cpp", code);
  b.parsed = parse_file(b.lexed);
  for (std::size_t i = 0; i < b.parsed.functions.size(); ++i) {
    if (b.parsed.functions[i].name == name) b.fn = static_cast<int>(i);
  }
  EXPECT_GE(b.fn, 0) << "function '" << name << "' not parsed";
  if (b.fn >= 0) b.cfg = build_cfg(b.lexed.tokens, b.parsed, b.fn);
  return b;
}

/// Index of the first statement starting on `line`, or -1.
int stmt_on_line(const Cfg& cfg, int line) {
  for (std::size_t i = 0; i < cfg.stmts.size(); ++i) {
    if (cfg.stmts[i].line == line) return static_cast<int>(i);
  }
  return -1;
}

bool has_edge(const Cfg& cfg, int from, int to) {
  const auto& s = cfg.blocks[from].succs;
  return std::find(s.begin(), s.end(), to) != s.end();
}

/// True when some edge b -> s jumps to a dominator of b (a loop).
bool has_back_edge(const Cfg& cfg) {
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const int s : cfg.blocks[b].succs) {
      if (cfg.dominates(s, static_cast<int>(b))) return true;
    }
  }
  return false;
}

AnalysisResult lint(const std::string& path, const std::string& code,
                    std::vector<std::string> only_rules = {}) {
  AnalyzerOptions options;
  options.only_rules = std::move(only_rules);
  return analyze_buffers({SourceBuffer{path, code}}, {}, options);
}

std::size_t count_rule(const AnalysisResult& r, const std::string& rule) {
  std::size_t n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string dump(const AnalysisResult& r) {
  std::string out;
  for (const Finding& f : r.findings) out += f.to_string() + "\n";
  for (const std::string& e : r.errors) out += "error: " + e + "\n";
  return out;
}

// ---------------------------------------------------------------------
// CFG construction

TEST(CfgBuild, StraightLineIsOneBlockNoLoops) {
  const Built b = build(
      "void f(int a) {\n"
      "  int x = a;\n"
      "  int y = x + 1;\n"
      "  use(y);\n"
      "}\n");
  ASSERT_EQ(b.cfg.stmts.size(), 3u);
  // All three statements share a block that flows to exit.
  const int s0 = stmt_on_line(b.cfg, 2);
  const int s2 = stmt_on_line(b.cfg, 4);
  ASSERT_GE(s0, 0);
  ASSERT_GE(s2, 0);
  EXPECT_EQ(b.cfg.block_of_stmt[s0], b.cfg.block_of_stmt[s2]);
  EXPECT_FALSE(has_back_edge(b.cfg));
  EXPECT_TRUE(has_edge(b.cfg, b.cfg.block_of_stmt[s2], b.cfg.exit));
}

TEST(CfgBuild, IfElseFormsDiamondWithDominanceAtJoin) {
  const Built b = build(
      "void f(int a) {\n"
      "  int x = 0;\n"
      "  if (a > 0) {\n"
      "    x = 1;\n"
      "  } else {\n"
      "    x = 2;\n"
      "  }\n"
      "  use(x);\n"
      "}\n");
  const int cond = stmt_on_line(b.cfg, 3);
  const int then_s = stmt_on_line(b.cfg, 4);
  const int else_s = stmt_on_line(b.cfg, 6);
  const int join = stmt_on_line(b.cfg, 8);
  ASSERT_GE(cond, 0);
  ASSERT_GE(then_s, 0);
  ASSERT_GE(else_s, 0);
  ASSERT_GE(join, 0);
  // The condition block branches two ways; the branches rejoin.
  EXPECT_EQ(b.cfg.blocks[b.cfg.block_of_stmt[cond]].succs.size(), 2u);
  EXPECT_TRUE(has_edge(b.cfg, b.cfg.block_of_stmt[then_s],
                       b.cfg.block_of_stmt[join]));
  EXPECT_TRUE(has_edge(b.cfg, b.cfg.block_of_stmt[else_s],
                       b.cfg.block_of_stmt[join]));
  // Dominance: the condition dominates the join, neither branch does.
  EXPECT_TRUE(b.cfg.stmt_dominates(cond, join));
  EXPECT_FALSE(b.cfg.stmt_dominates(then_s, join));
  EXPECT_FALSE(b.cfg.stmt_dominates(else_s, join));
}

TEST(CfgBuild, WhileLoopHasBackEdgeAndExitPath) {
  const Built b = build(
      "void f(int n) {\n"
      "  int i = 0;\n"
      "  while (i < n) {\n"
      "    i = i + 1;\n"
      "  }\n"
      "  use(i);\n"
      "}\n");
  EXPECT_TRUE(has_back_edge(b.cfg));
  const int cond = stmt_on_line(b.cfg, 3);
  const int after = stmt_on_line(b.cfg, 6);
  ASSERT_GE(cond, 0);
  ASSERT_GE(after, 0);
  // The loop header both enters the body and skips past it.
  EXPECT_EQ(b.cfg.blocks[b.cfg.block_of_stmt[cond]].succs.size(), 2u);
  EXPECT_TRUE(b.cfg.stmt_dominates(cond, after));
}

TEST(CfgBuild, ClassicForLoopHasBackEdge) {
  const Built b = build(
      "void f(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    use(i);\n"
      "  }\n"
      "  done();\n"
      "}\n");
  EXPECT_TRUE(has_back_edge(b.cfg));
  const int after = stmt_on_line(b.cfg, 5);
  ASSERT_GE(after, 0);
  // Falling out of the loop still reaches the statement after it.
  EXPECT_GE(b.cfg.idom[b.cfg.block_of_stmt[after]], 0);
}

TEST(CfgBuild, EarlyReturnEdgesToExit) {
  const Built b = build(
      "int f(int a) {\n"
      "  if (a < 0) {\n"
      "    return -1;\n"
      "  }\n"
      "  use(a);\n"
      "  return a;\n"
      "}\n");
  const int ret = stmt_on_line(b.cfg, 3);
  const int after = stmt_on_line(b.cfg, 5);
  ASSERT_GE(ret, 0);
  ASSERT_GE(after, 0);
  const auto& ret_succs = b.cfg.blocks[b.cfg.block_of_stmt[ret]].succs;
  ASSERT_EQ(ret_succs.size(), 1u);
  EXPECT_EQ(ret_succs[0], b.cfg.exit);
  // The early return must NOT dominate the fall-through path.
  EXPECT_FALSE(b.cfg.stmt_dominates(ret, after));
}

TEST(CfgBuild, SwitchCasesBranchFromHeaderAndBreakLeaves) {
  const Built b = build(
      "void f(int a) {\n"
      "  int x = 0;\n"
      "  switch (a) {\n"
      "    case 0:\n"
      "      x = 1;\n"
      "      break;\n"
      "    case 1:\n"
      "      x = 2;\n"
      "      break;\n"
      "    default:\n"
      "      x = 3;\n"
      "  }\n"
      "  use(x);\n"
      "}\n");
  const int head = stmt_on_line(b.cfg, 3);
  const int c0 = stmt_on_line(b.cfg, 5);
  const int c1 = stmt_on_line(b.cfg, 8);
  const int join = stmt_on_line(b.cfg, 13);
  ASSERT_GE(head, 0);
  ASSERT_GE(c0, 0);
  ASSERT_GE(c1, 0);
  ASSERT_GE(join, 0);
  // The switch head reaches every arm; break'ed arms rejoin after it.
  EXPECT_GE(b.cfg.blocks[b.cfg.block_of_stmt[head]].succs.size(), 3u);
  EXPECT_TRUE(b.cfg.stmt_dominates(head, join));
  EXPECT_FALSE(b.cfg.stmt_dominates(c0, join));
  EXPECT_FALSE(b.cfg.stmt_dominates(c1, join));
}

TEST(CfgBuild, NestedScopesAndLambdaBodiesStayOpaque) {
  const Built b = build(
      "void f(int a) {\n"
      "  int x = 0;\n"
      "  {\n"
      "    int y = a;\n"
      "    if (y > 0) {\n"
      "      x = y;\n"
      "    }\n"
      "  }\n"
      "  auto g = [&](int t) { return t + x; };\n"
      "  use(g);\n"
      "}\n");
  // The nested-scope statements appear as ordinary statements...
  EXPECT_GE(stmt_on_line(b.cfg, 4), 0);
  EXPECT_GE(stmt_on_line(b.cfg, 6), 0);
  // ...and the lambda is a single statement of the outer CFG: no
  // statement starts inside its body (the `return` belongs to it).
  const int lam = stmt_on_line(b.cfg, 9);
  ASSERT_GE(lam, 0);
  int stmts_on_9 = 0;
  for (const CfgStmt& s : b.cfg.stmts) {
    if (s.line == 9) ++stmts_on_9;
  }
  EXPECT_EQ(stmts_on_9, 1);
}

// ---------------------------------------------------------------------
// Reaching definitions

ReachingDefs reach(const Built& b) {
  return compute_reaching_defs(b.lexed.tokens, b.parsed, b.fn, b.cfg);
}

/// Lines of the defs reaching the use of `var` on `line` (param defs
/// report line 0).
std::vector<int> def_lines_at_use(const Built& b, const ReachingDefs& rd,
                                  const std::string& var, int line) {
  const int v = rd.var_index(var);
  EXPECT_GE(v, 0);
  std::vector<int> lines;
  for (std::size_t u = 0; u < rd.uses.size(); ++u) {
    if (rd.uses[u].var != v) continue;
    if (b.lexed.tokens[rd.uses[u].token].line != line) continue;
    for (const int d : rd.defs_of_use[u]) {
      lines.push_back(rd.defs[d].stmt < 0
                          ? 0
                          : b.lexed.tokens[rd.defs[d].token].line);
    }
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  return lines;
}

TEST(ReachingDefsTest, LinearKillThenUse) {
  const Built b = build(
      "int f(int a) {\n"
      "  int x = 1;\n"
      "  x = a;\n"
      "  return x;\n"
      "}\n");
  const ReachingDefs rd = reach(b);
  // The reassignment kills the initializer: only line 3 reaches line 4.
  EXPECT_EQ(def_lines_at_use(b, rd, "x", 4), (std::vector<int>{3}));
}

TEST(ReachingDefsTest, BranchesMergeBothDefs) {
  const Built b = build(
      "int f(int a) {\n"
      "  int x = 0;\n"
      "  if (a > 0) {\n"
      "    x = 1;\n"
      "  } else {\n"
      "    x = 2;\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  const ReachingDefs rd = reach(b);
  // Both branch defs reach the join; the killed initializer does not.
  EXPECT_EQ(def_lines_at_use(b, rd, "x", 8), (std::vector<int>{4, 6}));
}

TEST(ReachingDefsTest, LoopCarriesDefAroundBackEdge) {
  const Built b = build(
      "int f(int n) {\n"
      "  int i = 0;\n"
      "  while (i < n) {\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return i;\n"
      "}\n");
  const ReachingDefs rd = reach(b);
  // At the loop-header use, the initial def and the loop-body def both
  // reach (the latter via the back edge); same at the final use.
  EXPECT_EQ(def_lines_at_use(b, rd, "i", 3), (std::vector<int>{2, 4}));
  EXPECT_EQ(def_lines_at_use(b, rd, "i", 6), (std::vector<int>{2, 4}));
}

TEST(ReachingDefsTest, ParamsDefineAtEntry) {
  const Built b = build(
      "int f(int a) {\n"
      "  return a + 1;\n"
      "}\n");
  const ReachingDefs rd = reach(b);
  const int v = rd.var_index("a");
  ASSERT_GE(v, 0);
  EXPECT_TRUE(rd.vars[v].is_param);
  EXPECT_EQ(def_lines_at_use(b, rd, "a", 2), (std::vector<int>{0}));
}

TEST(ReachingDefsTest, UninitializedDeclContributesPseudoDef) {
  const Built b = build(
      "int f(int a) {\n"
      "  int x;\n"
      "  if (a > 0) {\n"
      "    x = 1;\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  const ReachingDefs rd = reach(b);
  const int v = rd.var_index("x");
  ASSERT_GE(v, 0);
  bool uninit_reaches = false;
  for (std::size_t u = 0; u < rd.uses.size(); ++u) {
    if (rd.uses[u].var != v) continue;
    for (const int d : rd.defs_of_use[u]) {
      if (rd.defs[d].uninit) uninit_reaches = true;
    }
  }
  EXPECT_TRUE(uninit_reaches);
}

TEST(ReachingDefsTest, ConservativeOutParamDefDoesNotKill) {
  const Built b = build(
      "int f() {\n"
      "  int x = 1;\n"
      "  fill(&x);\n"
      "  return x;\n"
      "}\n");
  const ReachingDefs rd = reach(b);
  // The &x write is a may-def: both it and the initializer reach.
  EXPECT_EQ(def_lines_at_use(b, rd, "x", 4), (std::vector<int>{2, 3}));
  const int v = rd.var_index("x");
  ASSERT_GE(v, 0);
  EXPECT_TRUE(rd.vars[v].address_taken);
}

// ---------------------------------------------------------------------
// index-width rules

TEST(IndexWidth, NarrowingAssignFires) {
  const AnalysisResult r = lint("src/part/fix.cpp",
                                "void f(const Hypergraph& h) {\n"
                                "  const std::size_t n = h.num_vertices();\n"
                                "  int small = n;\n"
                                "  use(small);\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-assign"), 1u) << dump(r);
}

TEST(IndexWidth, NarrowingCastFires) {
  const AnalysisResult r = lint("src/hypergraph/fix.cpp",
                                "void f(const Hypergraph& h) {\n"
                                "  const std::size_t n = h.num_vertices();\n"
                                "  const auto v = static_cast<unsigned>(n);\n"
                                "  use(v);\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-cast"), 1u) << dump(r);
}

TEST(IndexWidth, NarrowLoopCounterFires) {
  const AnalysisResult r = lint("src/part/fix.cpp",
                                "void f(const Hypergraph& h) {\n"
                                "  for (int i = 0; i < h.num_vertices(); ++i) {\n"
                                "    use(i);\n"
                                "  }\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "narrow-loop-counter"), 1u) << dump(r);
}

TEST(IndexWidth, DominatingGuardSuppressesCast) {
  const AnalysisResult r =
      lint("src/part/fix.cpp",
           "void f(const Hypergraph& h) {\n"
           "  const std::size_t n = h.num_vertices();\n"
           "  VP_CHECK(n <= kInvalidVertex, \"fits\");\n"
           "  const auto v = static_cast<unsigned>(n);\n"
           "  use(v);\n"
           "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-cast"), 0u) << dump(r);
}

TEST(IndexWidth, NonDominatingGuardStillFires) {
  const AnalysisResult r =
      lint("src/part/fix.cpp",
           "void f(const Hypergraph& h, bool paranoid) {\n"
           "  const std::size_t n = h.num_vertices();\n"
           "  if (paranoid) {\n"
           "    VP_CHECK(n <= kInvalidVertex, \"fits\");\n"
           "  }\n"
           "  const auto v = static_cast<unsigned>(n);\n"
           "  use(v);\n"
           "}\n");
  // A guard on only one path proves nothing at the cast.
  EXPECT_EQ(count_rule(r, "narrowing-cast"), 1u) << dump(r);
}

TEST(IndexWidth, DominatingGuardSuppressesLoopCounter) {
  const AnalysisResult r =
      lint("src/part/fix.cpp",
           "void f(const Hypergraph& h) {\n"
           "  const std::size_t n = h.num_vertices();\n"
           "  VP_CHECK(n <= kInvalidVertex, \"fits\");\n"
           "  for (unsigned i = 0; i < n; ++i) {\n"
           "    use(i);\n"
           "  }\n"
           "}\n");
  EXPECT_EQ(count_rule(r, "narrow-loop-counter"), 0u) << dump(r);
}

TEST(IndexWidth, CheckedNarrowIsClean) {
  const AnalysisResult r =
      lint("src/part/fix.cpp",
           "void f(const Hypergraph& h) {\n"
           "  const std::size_t n = h.num_vertices();\n"
           "  const auto v = vp::checked_narrow<unsigned>(n);\n"
           "  use(v);\n"
           "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-assign"), 0u) << dump(r);
  EXPECT_EQ(count_rule(r, "narrowing-cast"), 0u) << dump(r);
}

TEST(IndexWidth, AllowCommentSuppresses) {
  const AnalysisResult r = lint(
      "src/part/fix.cpp",
      "void f(const Hypergraph& h) {\n"
      "  const std::size_t n = h.num_vertices();\n"
      "  int small = n;  // det-lint: allow(narrowing-assign)\n"
      "  use(small);\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-assign"), 0u) << dump(r);
  EXPECT_GE(r.suppressed, 1u);
}

TEST(IndexWidth, OutsideCoreDirsIsOutOfScope) {
  const AnalysisResult r = lint("src/io/fix.cpp",
                                "void f(const Hypergraph& h) {\n"
                                "  const std::size_t n = h.num_vertices();\n"
                                "  int small = n;\n"
                                "  use(small);\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-assign"), 0u) << dump(r);
}

TEST(IndexWidth, WideAssignIsClean) {
  const AnalysisResult r = lint("src/part/fix.cpp",
                                "void f(const Hypergraph& h) {\n"
                                "  const std::size_t n = h.num_vertices();\n"
                                "  std::size_t m = n;\n"
                                "  use(m);\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "narrowing-assign"), 0u) << dump(r);
}

// ---------------------------------------------------------------------
// flow-determinism rules

// The acceptance fixture: a pointer flows through one assignment into a
// sort comparator.  The token-level pointer rules (pointer-sort-key:
// pointer-typed comparator parameters; pointer-compare: operator< over
// pointer parameters) cannot see it — the comparator's parameters are
// plain ints — but the dataflow taint does.
TEST(FlowDeterminism, OneHopPointerIntoComparatorIsCaught) {
  const AnalysisResult r = lint(
      "src/part/fix.cpp",
      "void f(std::vector<int>& ids, const std::vector<Node>& nodes) {\n"
      "  const Node* base = nodes.data();\n"
      "  std::sort(ids.begin(), ids.end(),\n"
      "            [&](int a, int b) { return base + a < base + b; });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "tainted-comparator"), 1u) << dump(r);
  // The old token-level rules miss this shape entirely.
  EXPECT_EQ(count_rule(r, "pointer-sort-key"), 0u) << dump(r);
  EXPECT_EQ(count_rule(r, "pointer-compare"), 0u) << dump(r);
}

TEST(FlowDeterminism, TaintedSeedFires) {
  const AnalysisResult r = lint(
      "src/part/fix.cpp",
      "void f(Rng& rng) {\n"
      "  const auto t = std::chrono::steady_clock::now();\n"
      "  const auto ticks = t;\n"
      "  rng.reseed(ticks);\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "tainted-seed"), 1u) << dump(r);
}

TEST(FlowDeterminism, AllowCommentSuppressesComparator) {
  const AnalysisResult r = lint(
      "src/part/fix.cpp",
      "void f(std::vector<int>& ids, const std::vector<Node>& nodes) {\n"
      "  const Node* base = nodes.data();\n"
      "  std::sort(ids.begin(), ids.end(),  // det-lint: allow(tainted-comparator)\n"
      "            [&](int a, int b) { return base + a < base + b; });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "tainted-comparator"), 0u) << dump(r);
  EXPECT_GE(r.suppressed, 1u);
}

TEST(FlowDeterminism, PointerDifferenceIsClean) {
  // A pointer difference is an offset, not an address: comparing offsets
  // is deterministic, so the subtraction launders the taint.
  const AnalysisResult r = lint(
      "src/part/fix.cpp",
      "void f(std::vector<int>& ids, const Item* begin, const Item* it) {\n"
      "  const std::ptrdiff_t off = it - begin;\n"
      "  std::sort(ids.begin(), ids.end(),\n"
      "            [&](int a, int b) { return a * off < b * off; });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "tainted-comparator"), 0u) << dump(r);
}

TEST(FlowDeterminism, ValueComparatorIsClean) {
  const AnalysisResult r = lint(
      "src/part/fix.cpp",
      "void f(std::vector<int>& ids, const std::vector<int>& key) {\n"
      "  std::sort(ids.begin(), ids.end(),\n"
      "            [&](int a, int b) { return key[a] < key[b]; });\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "tainted-comparator"), 0u) << dump(r);
}

// ---------------------------------------------------------------------
// dead-store rules

TEST(DeadStore, OverwrittenAssignmentFires) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f(int a) {\n"
                                "  int x = 0;\n"
                                "  x = a + 1;\n"
                                "  x = a + 2;\n"
                                "  return x;\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "dead-store"), 1u) << dump(r);
}

TEST(DeadStore, AllowCommentSuppresses) {
  const AnalysisResult r = lint(
      "tools/fix.cpp",
      "int f(int a) {\n"
      "  int x = 0;\n"
      "  x = a + 1;  // det-lint: allow(dead-store)\n"
      "  x = a + 2;\n"
      "  return x;\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "dead-store"), 0u) << dump(r);
  EXPECT_GE(r.suppressed, 1u);
}

TEST(DeadStore, UsedOnEveryPathIsClean) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f(int a) {\n"
                                "  int x = 0;\n"
                                "  x = a + 1;\n"
                                "  return x;\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "dead-store"), 0u) << dump(r);
}

TEST(DeadStore, AddressTakenVarIsExempt) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f(int a) {\n"
                                "  int x = 0;\n"
                                "  register_watch(&x);\n"
                                "  x = a + 1;\n"
                                "  return 0;\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "dead-store"), 0u) << dump(r);
}

TEST(UseBeforeInit, MaybeUninitializedReadFires) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f(int a) {\n"
                                "  int x;\n"
                                "  if (a > 0) {\n"
                                "    x = 1;\n"
                                "  }\n"
                                "  return x;\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "use-before-init"), 1u) << dump(r);
}

TEST(UseBeforeInit, AssignedOnAllPathsIsClean) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f(int a) {\n"
                                "  int x;\n"
                                "  if (a > 0) {\n"
                                "    x = 1;\n"
                                "  } else {\n"
                                "    x = 2;\n"
                                "  }\n"
                                "  return x;\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "use-before-init"), 0u) << dump(r);
}

TEST(UseBeforeInit, OutParamInitIsClean) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f() {\n"
                                "  int x;\n"
                                "  read_value(&x);\n"
                                "  return x;\n"
                                "}\n");
  EXPECT_EQ(count_rule(r, "use-before-init"), 0u) << dump(r);
}

TEST(UseBeforeInit, AllowCommentSuppresses) {
  const AnalysisResult r = lint(
      "tools/fix.cpp",
      "int f(int a) {\n"
      "  int x;\n"
      "  if (a > 0) {\n"
      "    x = 1;\n"
      "  }\n"
      "  return x;  // det-lint: allow(use-before-init)\n"
      "}\n");
  EXPECT_EQ(count_rule(r, "use-before-init"), 0u) << dump(r);
  EXPECT_GE(r.suppressed, 1u);
}

// ---------------------------------------------------------------------
// Rule filter + SARIF shape

TEST(RuleFilter, FamilyNameSelectsAllDataflowRules) {
  const std::string code =
      "void f(const Hypergraph& h) {\n"
      "  const std::size_t n = h.num_vertices();\n"
      "  int small = n;\n"
      "  use(small);\n"
      "}\n";
  const AnalysisResult fam = lint("src/part/fix.cpp", code, {"index-width"});
  EXPECT_EQ(count_rule(fam, "narrowing-assign"), 1u) << dump(fam);
  // ...and a disjoint family filter turns them off.
  const AnalysisResult off = lint("src/part/fix.cpp", code, {"dead-store"});
  EXPECT_EQ(count_rule(off, "narrowing-assign"), 0u) << dump(off);
}

TEST(SarifOutput, DataflowFindingGoldenShape) {
  const AnalysisResult r = lint("tools/fix.cpp",
                                "int f(int a) {\n"
                                "  int x = 0;\n"
                                "  x = a + 1;\n"
                                "  x = a + 2;\n"
                                "  return x;\n"
                                "}\n",
                                {"dead-store"});
  ASSERT_EQ(r.findings.size(), 1u) << dump(r);
  const std::string s = render_sarif(r);
  EXPECT_NE(s.find("sarif-schema-2.1.0"), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\": \"dead-store\""), std::string::npos);
  EXPECT_NE(s.find("\"uri\": \"tools/fix.cpp\""), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 3"), std::string::npos);
  // The driver catalog advertises the new families.
  EXPECT_NE(s.find("\"family\": \"index-width\""), std::string::npos);
  EXPECT_NE(s.find("\"family\": \"flow-determinism\""), std::string::npos);
  EXPECT_NE(s.find("\"family\": \"dead-store\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Stale-baseline semantics

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(StaleBaseline, EntryMatchingNoFindingIsAnError) {
  AnalyzerOptions options;
  options.baseline_path =
      write_temp("cfg_stale_baseline.txt",
                 "dead-store|src/part/clean.cpp|fixed long ago\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/clean.cpp", "int f() { return 0; }\n"}}, {},
      options);
  ASSERT_EQ(r.errors.size(), 1u) << dump(r);
  EXPECT_NE(r.errors[0].find("stale"), std::string::npos);
  EXPECT_NE(r.errors[0].find("dead-store|src/part/clean.cpp"),
            std::string::npos);
}

TEST(StaleBaseline, ConsumedEntryIsNotStale) {
  AnalyzerOptions options;
  options.baseline_path =
      write_temp("cfg_live_baseline.txt",
                 "dead-store|src/part/live.cpp|pending refactor\n");
  const AnalysisResult r =
      analyze_buffers({SourceBuffer{"src/part/live.cpp",
                                    "int f(int a) {\n"
                                    "  int x = 0;\n"
                                    "  x = a + 1;\n"
                                    "  x = a + 2;\n"
                                    "  return x;\n"
                                    "}\n"}},
                      {}, options);
  EXPECT_TRUE(r.errors.empty()) << dump(r);
  EXPECT_EQ(r.baselined, 1u);
}

TEST(StaleBaseline, EntryForUnlintedPathIsNotStale) {
  // A baseline entry for a file outside this run's scope cannot be
  // judged; partial-scope runs must not flag it.
  AnalyzerOptions options;
  options.baseline_path =
      write_temp("cfg_offscope_baseline.txt",
                 "dead-store|src/part/elsewhere.cpp|other file\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/clean.cpp", "int f() { return 0; }\n"}}, {},
      options);
  EXPECT_TRUE(r.errors.empty()) << dump(r);
}

TEST(StaleBaseline, EntryForFilteredOutRuleIsNotStale) {
  // With --rules restricting to another family, the entry's rule never
  // ran, so "no finding matched" proves nothing.
  AnalyzerOptions options;
  options.only_rules = {"index-width"};
  options.baseline_path =
      write_temp("cfg_filtered_baseline.txt",
                 "dead-store|src/part/clean.cpp|not run today\n");
  const AnalysisResult r = analyze_buffers(
      {SourceBuffer{"src/part/clean.cpp", "int f() { return 0; }\n"}}, {},
      options);
  EXPECT_TRUE(r.errors.empty()) << dump(r);
}

}  // namespace
}  // namespace vlsipart::analysis
