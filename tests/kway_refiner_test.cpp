// Tests for the k-way state and direct k-way FM refinement.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/kway/kway_refiner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

TEST(KwayState, AssignAndCut) {
  HypergraphBuilder b(6);
  b.add_edge({0, 1});
  b.add_edge({1, 2, 3});
  b.add_edge({4, 5}, 3);
  b.add_edge({0, 5});
  const Hypergraph h = b.finalize();
  KwayState s(h, 3);
  s.assign(std::vector<PartId>{0, 0, 1, 1, 2, 2});
  EXPECT_EQ(s.cut(), 2);  // {1,2,3} and {0,5}
  EXPECT_EQ(s.part_weight(0), 2);
  EXPECT_EQ(s.pins_in(1, 0), 1u);
  EXPECT_EQ(s.pins_in(1, 1), 2u);
  EXPECT_EQ(s.spanned_parts(1), 2u);
  s.audit();
}

TEST(KwayState, MoveUpdatesIncrementally) {
  HypergraphBuilder b(6);
  b.add_edge({0, 1});
  b.add_edge({1, 2, 3});
  b.add_edge({4, 5}, 3);
  b.add_edge({0, 5});
  const Hypergraph h = b.finalize();
  KwayState s(h, 3);
  s.assign(std::vector<PartId>{0, 0, 1, 1, 2, 2});
  s.move(1, 1);  // net {0,1} becomes cut; net {1,2,3} becomes uncut
  EXPECT_EQ(s.part(1), 1);
  EXPECT_EQ(s.cut(), 2);
  s.audit();
  s.move(1, 0);
  EXPECT_EQ(s.cut(), 2);
  s.audit();
}

TEST(KwayState, GainMatchesMove) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const std::size_t k = 4;
  KwayState s(h, k);
  Rng rng(3);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(k));
  s.assign(parts);
  for (int trial = 0; trial < 200; ++trial) {
    const auto v = static_cast<VertexId>(rng.below(h.num_vertices()));
    auto to = static_cast<PartId>(rng.below(k));
    if (to == s.part(v)) to = static_cast<PartId>((to + 1) % k);
    const Weight before = s.cut();
    const Gain g = s.gain(v, to);
    s.move(v, to);
    EXPECT_EQ(before - s.cut(), g);
  }
  s.audit();
}

TEST(KwayState, RandomMoveSequenceStaysConsistent) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  KwayState s(h, 5);
  Rng rng(7);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(5));
  s.assign(parts);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<VertexId>(rng.below(h.num_vertices()));
    auto to = static_cast<PartId>(rng.below(5));
    if (to == s.part(v)) continue;
    s.move(v, to);
  }
  s.audit();
  EXPECT_EQ(s.cut(), kway_cut(h, s.parts()));
}

TEST(KwayProblemUniform, BandsAreSane) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const KwayProblem p = KwayProblem::uniform(h, 4, 0.2);
  const double cap = static_cast<double>(h.total_vertex_weight()) / 4.0;
  EXPECT_LE(static_cast<double>(p.min_part), cap);
  EXPECT_GE(static_cast<double>(p.max_part), cap);
  EXPECT_LT(p.min_part, p.max_part);
}

TEST(KwayRefiner, NeverWorsensAndStaysFeasible) {
  const Hypergraph h = generate_netlist(preset("small"));
  const std::size_t k = 4;
  // Start from a feasible RB solution (without polish).
  KwayConfig rb;
  rb.k = k;
  rb.tolerance = 0.25;
  rb.refine_passes = 0;
  const KwayResult initial = recursive_bisection(h, rb);

  KwayProblem problem = KwayProblem::uniform(h, k, 0.25);
  KwayState state(h, k);
  state.assign(initial.parts);
  const Weight before = state.cut();
  KwayFmRefiner refiner(problem, KwayFmConfig{});
  Rng rng(1);
  const KwayFmResult r = refiner.refine(state, rng);
  EXPECT_LE(state.cut(), before);
  EXPECT_EQ(r.final_cut, state.cut());
  EXPECT_EQ(r.initial_cut, before);
  state.audit();
  EXPECT_EQ(check_kway_solution(problem, state.parts()), "");
}

TEST(KwayRefiner, ImprovesRecursiveBisectionOnAverage) {
  const Hypergraph h = generate_netlist(preset("small"));
  Weight with_polish = 0;
  Weight without_polish = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    KwayConfig off;
    off.k = 4;
    off.tolerance = 0.25;
    off.seed = seed;
    off.refine_passes = 0;
    KwayConfig on = off;
    on.refine_passes = 3;
    without_polish += recursive_bisection(h, off).cut;
    with_polish += recursive_bisection(h, on).cut;
  }
  EXPECT_LE(with_polish, without_polish);
}

TEST(KwayRefiner, RespectsFixedVertices) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  KwayProblem problem = KwayProblem::uniform(h, 3, 0.6);
  problem.fixed.assign(h.num_vertices(), kNoPart);
  problem.fixed[1] = 2;
  problem.fixed[4] = 0;
  Rng rng(5);
  std::vector<PartId> parts(h.num_vertices());
  for (std::size_t v = 0; v < parts.size(); ++v) {
    parts[v] = static_cast<PartId>(v % 3);
  }
  parts[1] = 2;
  parts[4] = 0;
  KwayState state(h, 3);
  state.assign(parts);
  KwayFmRefiner refiner(problem, KwayFmConfig{});
  refiner.refine(state, rng);
  EXPECT_EQ(state.part(1), 2);
  EXPECT_EQ(state.part(4), 0);
}

TEST(KwayRefiner, LevelGainInvariantsHoldAcrossDepths) {
  const Hypergraph h = generate_netlist(preset("small"));
  const KwayProblem problem = KwayProblem::uniform(h, 4, 0.25);
  KwayConfig rb;
  rb.k = 4;
  rb.tolerance = 0.25;
  rb.refine_passes = 0;
  const KwayResult initial = recursive_bisection(h, rb);
  for (const int depth : {1, 2, 3}) {
    KwayState state(h, 4);
    state.assign(initial.parts);
    const Weight before = state.cut();
    KwayFmConfig config;
    config.lookahead_depth = depth;
    KwayFmRefiner refiner(problem, config);
    Rng rng(3);
    refiner.refine(state, rng);
    EXPECT_LE(state.cut(), before) << "depth " << depth;
    state.audit();
    EXPECT_EQ(check_kway_solution(problem, state.parts()), "")
        << "depth " << depth;
  }
}

TEST(KwayRefiner, LevelGainsChangeDecisions) {
  // Refine from random assignments: the top bucket then holds many
  // tied candidates, which is where level-gain tie-breaking acts.
  const Hypergraph h = generate_netlist(preset("small"));
  const KwayProblem problem = KwayProblem::uniform(h, 4, 0.30);
  int differs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng init(seed);
    std::vector<PartId> parts(h.num_vertices());
    for (auto& p : parts) p = static_cast<PartId>(init.below(4));
    auto run_depth = [&](int depth) {
      KwayState state(h, 4);
      state.assign(parts);
      KwayFmConfig config;
      config.lookahead_depth = depth;
      config.lookahead_scan_limit = 16;
      KwayFmRefiner refiner(problem, config);
      Rng rng(seed);
      refiner.refine(state, rng);
      return state.cut();
    };
    if (run_depth(1) != run_depth(3)) ++differs;
  }
  EXPECT_GE(differs, 2);
}

TEST(KwayRefiner, DeterministicForSeed) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  KwayProblem problem = KwayProblem::uniform(h, 4, 0.5);
  auto run = [&]() {
    Rng rng(9);
    std::vector<PartId> parts(h.num_vertices());
    Rng init(2);
    for (auto& p : parts) p = static_cast<PartId>(init.below(4));
    KwayState state(h, 4);
    state.assign(parts);
    KwayFmRefiner refiner(problem, KwayFmConfig{});
    refiner.refine(state, rng);
    return state.parts();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vlsipart
