// Differential fuzz: the SoA GainContainer (sentinel-threaded flat
// arrays, bucket_array.h) against a deliberately simple reference
// implementation built on std::map + std::deque.  Both sides consume
// their own Rng from the same seed, and the reference mirrors the
// container's position policy exactly (LIFO head / FIFO tail / random
// end, one bernoulli per insert/update/reinsert under kRandom), so
// every observable — membership, keys, sides, per-bucket order,
// max-key extraction sequence including tie-breaks — must match
// bit-for-bit across arbitrary operation interleavings and sparse
// resets.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "src/part/core/gain_container.h"

namespace vlsipart {
namespace {

/// Obviously-correct mirror of GainContainer's semantics.  No sharing
/// with the production code beyond InsertOrder and the Rng type.
class ReferenceGainContainer {
 public:
  ReferenceGainContainer(std::size_t num_vertices, InsertOrder order)
      : order_(order), entries_(num_vertices) {}

  void reset(Gain max_abs_key) {
    max_abs_key_ = max_abs_key;
    buckets_[0].clear();
    buckets_[1].clear();
    for (auto& e : entries_) e.contained = false;
  }

  void insert(VertexId v, PartId side, Gain key, Rng& rng) {
    place(v, side, key, pick_head(rng));
  }

  void insert_at_head(VertexId v, PartId side, Gain key) {
    place(v, side, key, /*front=*/true);
  }

  void remove(VertexId v) {
    auto& e = entries_[v];
    auto& dq = buckets_[e.side][e.key];
    dq.erase(std::find(dq.begin(), dq.end(), v));
    if (dq.empty()) buckets_[e.side].erase(e.key);
    e.contained = false;
  }

  void update_key(VertexId v, Gain delta, Rng& rng) {
    const auto e = entries_[v];
    const Gain new_key =
        std::clamp(e.key + delta, -max_abs_key_, max_abs_key_);
    const bool front = pick_head(rng);
    remove(v);
    place(v, e.side, new_key, front);
  }

  void reinsert(VertexId v, Rng& rng) {
    const auto e = entries_[v];
    const bool front = pick_head(rng);
    remove(v);
    place(v, e.side, e.key, front);
  }

  bool contains(VertexId v) const { return entries_[v].contained; }
  Gain key(VertexId v) const { return entries_[v].key; }
  PartId side_of(VertexId v) const { return entries_[v].side; }

  std::size_t size(PartId side) const {
    std::size_t total = 0;
    for (const auto& [k, dq] : buckets_[side]) total += dq.size();
    return total;
  }
  bool empty() const { return size(0) == 0 && size(1) == 0; }

  Gain max_key(PartId side) const { return buckets_[side].rbegin()->first; }

  std::vector<VertexId> bucket_order(PartId side, Gain key) const {
    const auto it = buckets_[side].find(key);
    if (it == buckets_[side].end()) return {};
    return {it->second.begin(), it->second.end()};
  }

 private:
  struct Entry {
    bool contained = false;
    PartId side = 0;
    Gain key = 0;
  };

  void place(VertexId v, PartId side, Gain key, bool front) {
    auto& dq = buckets_[side][key];
    if (front) {
      dq.push_front(v);  // hot-path: allow(reference oracle for differential test; allocation is the point)
    } else {
      dq.push_back(v);  // hot-path: allow(reference oracle for differential test; allocation is the point)
    }
    entries_[v] = {true, side, key};
  }

  bool pick_head(Rng& rng) const {
    switch (order_) {
      case InsertOrder::kLifo:
        return true;
      case InsertOrder::kFifo:
        return false;
      case InsertOrder::kRandom:
        return rng.bernoulli(0.5);
    }
    return true;
  }

  InsertOrder order_;
  Gain max_abs_key_ = 0;
  std::vector<Entry> entries_;
  std::map<Gain, std::deque<VertexId>> buckets_[2];
};

std::vector<VertexId> soa_bucket_order(const GainContainer& c, PartId side,
                                       Gain key) {
  std::vector<VertexId> out;
  for (VertexId v = c.bucket_head(side, key); v != kInvalidVertex;
       v = c.next_in_bucket(v)) {
    out.push_back(v);
  }
  return out;
}

void expect_equivalent(const GainContainer& soa,
                       const ReferenceGainContainer& ref, std::size_t n,
                       Gain max_abs_key, const char* ctx) {
  for (PartId side = 0; side < 2; ++side) {
    ASSERT_EQ(soa.size(side), ref.size(side)) << ctx << " side=" << int(side);
    if (soa.size(side) > 0) {
      ASSERT_EQ(soa.max_key(side), ref.max_key(side))
          << ctx << " side=" << int(side);
    }
    for (Gain k = -max_abs_key; k <= max_abs_key; ++k) {
      ASSERT_EQ(soa_bucket_order(soa, side, k), ref.bucket_order(side, k))
          << ctx << " side=" << int(side) << " key=" << k;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(soa.contains(v), ref.contains(v)) << ctx << " v=" << v;
    if (soa.contains(v)) {
      ASSERT_EQ(soa.key(v), ref.key(v)) << ctx << " v=" << v;
      ASSERT_EQ(soa.side_of(v), ref.side_of(v)) << ctx << " v=" << v;
    }
  }
}

/// Drain both containers by repeated best-first extraction, preferring
/// side 0 on max-key ties (an arbitrary but shared rule), and demand
/// identical extraction sequences — the strongest order observable,
/// covering tie-breaks within buckets.
void expect_same_extraction(GainContainer& soa, ReferenceGainContainer& ref,
                            const char* ctx) {
  std::vector<VertexId> got;
  std::vector<VertexId> want;
  while (!soa.empty()) {
    PartId side;
    if (soa.size(0) == 0) {
      side = 1;
    } else if (soa.size(1) == 0) {
      side = 0;
    } else {
      side = soa.max_key(0) >= soa.max_key(1) ? 0 : 1;
    }
    const VertexId v = soa.bucket_head(side, soa.max_key(side));
    got.push_back(v);
    soa.remove(v);
  }
  while (!ref.empty()) {
    PartId side;
    if (ref.size(0) == 0) {
      side = 1;
    } else if (ref.size(1) == 0) {
      side = 0;
    } else {
      side = ref.max_key(0) >= ref.max_key(1) ? 0 : 1;
    }
    const auto order = ref.bucket_order(side, ref.max_key(side));
    want.push_back(order.front());
    ref.remove(order.front());
  }
  EXPECT_EQ(got, want) << ctx;
}

class GainContainerDiff : public ::testing::TestWithParam<InsertOrder> {};

TEST_P(GainContainerDiff, FuzzInterleavings) {
  constexpr std::size_t kN = 96;
  constexpr Gain kMaxAbs = 24;
  const InsertOrder order = GetParam();

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GainContainer soa(kN, order);
    ReferenceGainContainer ref(kN, order);
    // Two op-streams (one per implementation) and two policy rngs that
    // must stay in lockstep — any divergence in bernoulli consumption
    // desynchronizes them and fails the comparison.
    Rng ops(seed * 7919);
    Rng rng_soa(seed);
    Rng rng_ref(seed);
    soa.reset(kMaxAbs);
    ref.reset(kMaxAbs);

    for (int step = 0; step < 4000; ++step) {
      const auto v = static_cast<VertexId>(ops.below(kN));
      const auto op = ops.below(100);
      if (op < 35) {
        if (!soa.contains(v)) {
          const auto side = static_cast<PartId>(ops.below(2));
          const Gain key =
              static_cast<Gain>(ops.below(2 * kMaxAbs + 1)) - kMaxAbs;
          soa.insert(v, side, key, rng_soa);
          ref.insert(v, side, key, rng_ref);
        }
      } else if (op < 45) {
        if (!soa.contains(v)) {
          const auto side = static_cast<PartId>(ops.below(2));
          const Gain key =
              static_cast<Gain>(ops.below(2 * kMaxAbs + 1)) - kMaxAbs;
          soa.insert_at_head(v, side, key);
          ref.insert_at_head(v, side, key);
        }
      } else if (op < 60) {
        if (soa.contains(v)) {
          soa.remove(v);
          ref.remove(v);
        }
      } else if (op < 85) {
        if (soa.contains(v)) {
          // Deltas beyond the representable range exercise the clamp.
          const Gain delta = static_cast<Gain>(ops.below(31)) - 15;
          soa.update_key(v, delta, rng_soa);
          ref.update_key(v, delta, rng_ref);
        }
      } else if (op < 95) {
        if (soa.contains(v)) {
          soa.reinsert(v, rng_soa);
          ref.reinsert(v, rng_ref);
        }
      } else {
        // Sparse reset mid-stream: the SoA container must clear exactly
        // the touched buckets.
        soa.reset(kMaxAbs);
        ref.reset(kMaxAbs);
      }
      if (step % 500 == 499) {
        expect_equivalent(soa, ref, kN, kMaxAbs, "mid-stream");
      }
    }
    expect_equivalent(soa, ref, kN, kMaxAbs, "final");
    expect_same_extraction(soa, ref, "extraction");
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, GainContainerDiff,
                         ::testing::Values(InsertOrder::kLifo,
                                           InsertOrder::kFifo,
                                           InsertOrder::kRandom),
                         [](const auto& info) {
                           switch (info.param) {
                             case InsertOrder::kLifo:
                               return "Lifo";
                             case InsertOrder::kFifo:
                               return "Fifo";
                             case InsertOrder::kRandom:
                               return "Random";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace vlsipart
