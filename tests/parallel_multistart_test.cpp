// Determinism tests for the parallel multistart engine: every regime must
// return bit-identical results at 1, 2 and 8 threads (the guarantee
// documented in src/part/core/multistart.h), and the per-engine scratch
// reuse must never leak state between starts.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

void expect_same_result(const MultistartResult& a, const MultistartResult& b,
                        const char* label) {
  ASSERT_EQ(a.starts.size(), b.starts.size()) << label;
  for (std::size_t i = 0; i < a.starts.size(); ++i) {
    EXPECT_EQ(a.starts[i].cut, b.starts[i].cut) << label << " start " << i;
    EXPECT_EQ(a.starts[i].feasible, b.starts[i].feasible)
        << label << " start " << i;
  }
  EXPECT_EQ(a.best_cut, b.best_cut) << label;
  EXPECT_EQ(a.best_parts, b.best_parts) << label;
}

TEST(ParallelMultistart, FlatEngineBitIdenticalAcrossThreadCounts) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner serial_engine{FmConfig{}};
  const MultistartResult serial = run_multistart(p, serial_engine, 16, 42, 1);
  EXPECT_EQ(serial.threads_used, 1u);
  for (const std::size_t threads : {2u, 8u}) {
    FlatFmPartitioner engine{FmConfig{}};
    const MultistartResult r = run_multistart(p, engine, 16, 42, threads);
    EXPECT_EQ(r.threads_used, std::min<std::size_t>(threads, 16));
    expect_same_result(serial, r, "flat");
  }
}

TEST(ParallelMultistart, ClipEngineBitIdenticalAcrossThreadCounts) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  FmConfig cfg;
  cfg.clip = true;
  cfg.exclude_oversized = true;
  FlatFmPartitioner serial_engine{cfg};
  const MultistartResult serial = run_multistart(p, serial_engine, 12, 7, 1);
  for (const std::size_t threads : {2u, 8u}) {
    FlatFmPartitioner engine{cfg};
    const MultistartResult r = run_multistart(p, engine, 12, 7, threads);
    expect_same_result(serial, r, "clip");
  }
}

TEST(ParallelMultistart, MlEngineBitIdenticalAcrossThreadCounts) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  MlPartitioner serial_engine{MlConfig{}};
  const MultistartResult serial = run_multistart(p, serial_engine, 6, 11, 1);
  for (const std::size_t threads : {2u, 8u}) {
    MlPartitioner engine{MlConfig{}};
    const MultistartResult r = run_multistart(p, engine, 6, 11, threads);
    expect_same_result(serial, r, "ml");
  }
}

TEST(ParallelMultistart, MixedInitialSchemeKeyedByStartIndex) {
  // kMixed alternates the initial generator by start index; the parallel
  // path must key the alternation on the index, not on per-engine call
  // counts, to match the serial schedule.
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner serial_engine{FmConfig{}, "", InitialScheme::kMixed};
  const MultistartResult serial = run_multistart(p, serial_engine, 8, 5, 1);
  FlatFmPartitioner engine{FmConfig{}, "", InitialScheme::kMixed};
  const MultistartResult r = run_multistart(p, engine, 8, 5, 4);
  expect_same_result(serial, r, "mixed");
}

TEST(ParallelMultistart, PrunedBitIdenticalAcrossThreadCounts) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  PruneConfig prune;
  prune.factor = 1.02;  // tight factor so pruning actually triggers
  const PrunedMultistartResult serial =
      run_multistart_pruned(p, FmConfig{}, 16, 3, prune, 1);
  EXPECT_GT(serial.pruned_starts, 0u);
  for (const std::size_t threads : {2u, 8u}) {
    const PrunedMultistartResult r =
        run_multistart_pruned(p, FmConfig{}, 16, 3, prune, threads);
    expect_same_result(serial.result, r.result, "pruned");
    EXPECT_EQ(serial.pruned_starts, r.pruned_starts);
  }
}

TEST(ParallelMultistart, BudgetedBitIdenticalWhenCapBinds) {
  // With a budget far beyond the work, the admitted prefix is exactly the
  // max_starts cap at any thread count, so full bit-identity must hold.
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner serial_engine{FmConfig{}};
  const MultistartResult serial =
      run_multistart_budgeted(p, serial_engine, 1e9, 21, 10, 1);
  ASSERT_EQ(serial.starts.size(), 10u);
  for (const std::size_t threads : {2u, 8u}) {
    FlatFmPartitioner engine{FmConfig{}};
    const MultistartResult r =
        run_multistart_budgeted(p, engine, 1e9, 21, 10, threads);
    expect_same_result(serial, r, "budgeted");
  }
}

TEST(ParallelMultistart, BudgetedParallelAdmitsPrefixAndAuditsBest) {
  // Timing decides the prefix length, so only invariants are checked:
  // the admitted set is a prefix, the best is its feasible minimum, and
  // best_parts reproduces best_cut.
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult r =
      run_multistart_budgeted(p, engine, 1e-4, 9, 64, 4);
  ASSERT_GE(r.starts.size(), 1u);
  Weight best = std::numeric_limits<Weight>::max();
  for (const auto& s : r.starts) {
    if (s.feasible) best = std::min(best, s.cut);
  }
  EXPECT_EQ(r.best_cut, best);
  ASSERT_FALSE(r.best_parts.empty());
  EXPECT_EQ(compute_cut(h, r.best_parts), r.best_cut);
  EXPECT_EQ(check_solution(p, r.best_parts), "");
}

TEST(ParallelMultistart, NonClonableEngineFallsBackToSerial) {
  class NoCloneEngine : public Bipartitioner {
   public:
    std::string name() const override { return "noclone"; }
    Weight run(const PartitionProblem& problem, Rng& rng,
               std::vector<PartId>& parts) override {
      (void)rng;
      parts = lpt_initial(problem);
      return compute_cut(*problem.graph, parts);
    }
  };
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  NoCloneEngine engine;
  const MultistartResult r = run_multistart(p, engine, 4, 1, 8);
  EXPECT_EQ(r.threads_used, 1u);
  EXPECT_EQ(r.starts.size(), 4u);
}

TEST(ParallelMultistart, ScratchReuseMatchesFreshEngines) {
  // The reused state/refiner scratch inside FlatFmPartitioner must make
  // every run independent of the runs before it.
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng base(77);

  FlatFmPartitioner reused{FmConfig{}};
  std::vector<PartId> parts;
  std::vector<Weight> reused_cuts;
  for (std::size_t i = 0; i < 4; ++i) {
    Rng rng = base.fork(i);
    reused_cuts.push_back(reused.run_start(p, rng, parts, i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    FlatFmPartitioner fresh{FmConfig{}};
    Rng rng = base.fork(i);
    std::vector<PartId> fresh_parts;
    EXPECT_EQ(fresh.run_start(p, rng, fresh_parts, i), reused_cuts[i])
        << "start " << i;
  }
}

TEST(ParallelMultistart, WallClockAndCpuFieldsPopulated) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  FlatFmPartitioner engine{FmConfig{}};
  const MultistartResult r = run_multistart(p, engine, 4, 1, 2);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.total_cpu_seconds, 0.0);
  EXPECT_EQ(r.threads_used, 2u);
  double sum = 0.0;
  for (const auto& s : r.starts) sum += s.cpu_seconds;
  EXPECT_NEAR(sum, r.total_cpu_seconds, 1e-9);
}

}  // namespace
}  // namespace vlsipart
