// Golden-trace determinism harness for the FM hot paths.
//
// The paper's thesis is that implicit implementation decisions change
// results; the repo's corollary is that *performance* work must not.
// These tests pin the exact observable behavior of the refiner — full
// per-move cut traces, pass statistics, final cuts and final assignments
// — as 64-bit digests captured from the seed implementation.  Any
// optimization of the inner loop (net-state delta-gain skipping, sparse
// bucket reset, allocation-free contraction) must reproduce every digest
// bit-for-bit: speed changes, solutions don't.
//
// Regenerating goldens (only legitimate after an *intentional* behavior
// change): run with VLSIPART_GOLDEN_PRINT=1 and paste the printed tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {
namespace {

// FNV-1a style combiner over 64-bit lanes.  Order-sensitive by design:
// the digest pins the full sequence of observable events.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  void add_signed(std::int64_t x) { add(static_cast<std::uint64_t>(x)); }
};

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

struct ConfigSpec {
  std::string label;
  FmConfig cfg;
};

std::vector<ConfigSpec> flat_config_matrix() {
  std::vector<ConfigSpec> out;
  for (const bool clip : {false, true}) {
    for (const ZeroGainUpdate z :
         {ZeroGainUpdate::kAll, ZeroGainUpdate::kNonzero}) {
      for (const int depth : {1, 3}) {
        for (const bool cork : {false, true}) {
          FmConfig cfg;
          cfg.clip = clip;
          cfg.zero_gain_update = z;
          cfg.lookahead_depth = depth;
          cfg.exclude_oversized = cork;
          cfg.record_trace = true;
          std::string label = std::string("clip") + (clip ? "1" : "0") +
                              (z == ZeroGainUpdate::kAll ? "-all" : "-nz") +
                              "-la" + std::to_string(depth) +
                              (cork ? "-cork1" : "-cork0");
          out.push_back({std::move(label), cfg});
        }
      }
    }
  }
  // Extra corners: rng-consuming insertion orders, FIFO, and the
  // look-beyond-first/skip-side selection policy.
  {
    FmConfig cfg;
    cfg.insert_order = InsertOrder::kRandom;
    cfg.zero_gain_update = ZeroGainUpdate::kAll;
    cfg.record_trace = true;
    out.push_back({"rand-all", cfg});
  }
  {
    FmConfig cfg;
    cfg.insert_order = InsertOrder::kRandom;
    cfg.zero_gain_update = ZeroGainUpdate::kNonzero;
    cfg.record_trace = true;
    out.push_back({"rand-nz", cfg});
  }
  {
    FmConfig cfg;
    cfg.insert_order = InsertOrder::kFifo;
    cfg.zero_gain_update = ZeroGainUpdate::kNonzero;
    cfg.record_trace = true;
    out.push_back({"fifo-nz", cfg});
  }
  {
    FmConfig cfg;
    cfg.look_beyond_first = true;
    cfg.illegal_head = IllegalHeadPolicy::kSkipSide;
    cfg.record_trace = true;
    out.push_back({"beyond-skipside", cfg});
  }
  return out;
}

/// Digest of one flat refine: every pass's stats and per-move cut trace,
/// then the final cut and the full final assignment.
std::uint64_t flat_digest(const Hypergraph& h, const FmConfig& cfg,
                          Weight* final_cut) {
  const PartitionProblem p = make_problem(h, 0.02);
  Rng init_rng(12345);
  const auto parts = random_initial(p, init_rng);
  PartitionState state(h);
  state.assign(parts);
  FmRefiner refiner(p, cfg);
  Rng rng(67890);
  const FmResult r = refiner.refine(state, rng);

  Digest d;
  d.add(r.passes);
  d.add_signed(r.initial_cut);
  d.add_signed(r.final_cut);
  for (const FmPassStats& s : r.pass_stats) {
    d.add(s.moves_made);
    d.add(s.moves_kept);
    d.add_signed(s.cut_before);
    d.add_signed(s.cut_after);
    d.add(s.stalled ? 1 : 0);
    d.add(s.zero_delta_updates);
    d.add(s.nonzero_delta_updates);
    d.add(s.oversized_excluded);
  }
  for (const auto& trace : r.pass_traces) {
    d.add(trace.size());
    for (const Weight c : trace) d.add_signed(c);
  }
  for (const PartId part : state.parts()) d.add(part);
  *final_cut = state.cut();
  return d.h;
}

/// Digest of one multilevel run (coarsen -> initial -> uncoarsen refine,
/// optional V-cycle): final cut plus the full final assignment.  Pins the
/// contraction/coarsening pipeline, not just the refiner.
std::uint64_t ml_digest(const Hypergraph& h, bool clip, std::size_t vcycles,
                        Weight* final_cut) {
  const PartitionProblem p = make_problem(h, 0.02);
  MlConfig cfg;
  cfg.refine.clip = clip;
  cfg.vcycles = vcycles;
  MlPartitioner ml(cfg);
  Rng rng(424242);
  std::vector<PartId> parts;
  const Weight cut = ml.run(p, rng, parts);

  Digest d;
  d.add_signed(cut);
  for (const PartId part : parts) d.add(part);
  *final_cut = cut;
  return d.h;
}

struct GoldenRow {
  const char* instance;
  const char* config;
  std::uint64_t digest;
  Weight cut;
};

// --- Golden tables (captured from the seed implementation) ---
const std::vector<GoldenRow> kFlatGolden = {
    // clang-format off
#include "tests/fm_golden_flat.inc"
    // clang-format on
};

const std::vector<GoldenRow> kMlGolden = {
    // clang-format off
#include "tests/fm_golden_ml.inc"
    // clang-format on
};

const char* const kInstances[] = {"tiny", "small", "medium"};

bool print_mode() {
  const char* env = std::getenv("VLSIPART_GOLDEN_PRINT");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(FmGoldenTrace, FlatConfigMatrix) {
  const auto configs = flat_config_matrix();
  const bool print = print_mode();

  std::size_t row = 0;
  for (const char* const instance : kInstances) {
    const Hypergraph h = generate_netlist(preset(instance));
    for (const ConfigSpec& spec : configs) {
      Weight cut = 0;
      const std::uint64_t digest = flat_digest(h, spec.cfg, &cut);
      if (print) {
        std::printf("    {\"%s\", \"%s\", 0x%016llxULL, %lld},\n", instance,
                    spec.label.c_str(),
                    static_cast<unsigned long long>(digest),
                    static_cast<long long>(cut));
        continue;
      }
      ASSERT_LT(row, kFlatGolden.size()) << "golden table too short";
      const GoldenRow& golden = kFlatGolden[row];
      EXPECT_STREQ(golden.instance, instance);
      EXPECT_STREQ(golden.config, spec.label.c_str());
      EXPECT_EQ(golden.cut, cut)
          << instance << "/" << spec.label << ": final cut drifted";
      EXPECT_EQ(golden.digest, digest)
          << instance << "/" << spec.label
          << ": move trace / stats / assignment drifted";
      ++row;
    }
  }
  if (!print) {
    EXPECT_EQ(row, kFlatGolden.size());
  }
}

TEST(FmGoldenTrace, MultilevelPipeline) {
  const bool print = print_mode();

  std::size_t row = 0;
  for (const char* const instance : kInstances) {
    const Hypergraph h = generate_netlist(preset(instance));
    for (const bool clip : {false, true}) {
      for (const std::size_t vcycles : {std::size_t{0}, std::size_t{1}}) {
        Weight cut = 0;
        const std::uint64_t digest = ml_digest(h, clip, vcycles, &cut);
        const std::string label = std::string("ml-clip") + (clip ? "1" : "0") +
                                  "-vc" + std::to_string(vcycles);
        if (print) {
          std::printf("    {\"%s\", \"%s\", 0x%016llxULL, %lld},\n", instance,
                      label.c_str(), static_cast<unsigned long long>(digest),
                      static_cast<long long>(cut));
          continue;
        }
        ASSERT_LT(row, kMlGolden.size()) << "golden table too short";
        const GoldenRow& golden = kMlGolden[row];
        EXPECT_STREQ(golden.instance, instance);
        EXPECT_STREQ(golden.config, label.c_str());
        EXPECT_EQ(golden.cut, cut)
            << instance << "/" << label << ": final cut drifted";
        EXPECT_EQ(golden.digest, digest)
            << instance << "/" << label << ": assignment drifted";
        ++row;
      }
    }
  }
  if (!print) {
    EXPECT_EQ(row, kMlGolden.size());
  }
}

}  // namespace
}  // namespace vlsipart
