// Tests for FM pass-trace recording and pass-statistics bookkeeping.
#include <gtest/gtest.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"

namespace vlsipart {
namespace {

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

TEST(FmTrace, RecordedOnlyWhenEnabled) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(1);
  auto parts = random_initial(p, rng);

  PartitionState off_state(h);
  off_state.assign(parts);
  FmRefiner off(p, FmConfig{});
  Rng r1(2);
  EXPECT_TRUE(off.refine(off_state, r1).pass_traces.empty());

  PartitionState on_state(h);
  on_state.assign(parts);
  FmConfig traced;
  traced.record_trace = true;
  FmRefiner on(p, traced);
  Rng r2(2);
  const FmResult r = on.refine(on_state, r2);
  EXPECT_EQ(r.pass_traces.size(), r.passes);
}

TEST(FmTrace, TraceLengthsMatchMoveCounts) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(3);
  auto parts = random_initial(p, rng);
  PartitionState state(h);
  state.assign(parts);
  FmConfig cfg;
  cfg.record_trace = true;
  FmRefiner refiner(p, cfg);
  const FmResult r = refiner.refine(state, rng);
  ASSERT_EQ(r.pass_traces.size(), r.pass_stats.size());
  for (std::size_t i = 0; i < r.pass_traces.size(); ++i) {
    EXPECT_EQ(r.pass_traces[i].size(), r.pass_stats[i].moves_made);
  }
}

TEST(FmTrace, BestPrefixValueAppearsInTrace) {
  // The cut after rollback must equal the minimum over the trace prefix
  // that was kept (or the pass-start cut when nothing was kept).
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(5);
  auto parts = random_initial(p, rng);
  PartitionState state(h);
  state.assign(parts);
  FmConfig cfg;
  cfg.record_trace = true;
  FmRefiner refiner(p, cfg);
  const FmResult r = refiner.refine(state, rng);
  for (std::size_t i = 0; i < r.pass_traces.size(); ++i) {
    const auto& stats = r.pass_stats[i];
    const auto& trace = r.pass_traces[i];
    if (stats.moves_kept == 0) {
      EXPECT_EQ(stats.cut_after, stats.cut_before);
    } else {
      ASSERT_LE(stats.moves_kept, trace.size());
      EXPECT_EQ(stats.cut_after, trace[stats.moves_kept - 1]);
      // And it is the minimum over the kept prefix.
      Weight prefix_min = trace[0];
      for (std::size_t m = 0; m < stats.moves_kept; ++m) {
        prefix_min = std::min(prefix_min, trace[m]);
      }
      EXPECT_EQ(stats.cut_after, prefix_min);
    }
  }
}

TEST(FmTrace, PassStatsCountUpdates) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.1);
  Rng rng(7);
  auto parts = random_initial(p, rng);

  // All-dgain performs zero-delta updates; Nonzero performs none.
  FmConfig all;
  all.zero_gain_update = ZeroGainUpdate::kAll;
  all.max_passes = 1;
  PartitionState s1(h);
  s1.assign(parts);
  FmRefiner r1(p, all);
  Rng ra(9);
  const FmResult res_all = r1.refine(s1, ra);
  EXPECT_GT(res_all.pass_stats.at(0).zero_delta_updates, 0u);

  FmConfig nonzero;
  nonzero.zero_gain_update = ZeroGainUpdate::kNonzero;
  nonzero.max_passes = 1;
  PartitionState s2(h);
  s2.assign(parts);
  FmRefiner r2(p, nonzero);
  Rng rb(9);
  const FmResult res_nz = r2.refine(s2, rb);
  EXPECT_EQ(res_nz.pass_stats.at(0).zero_delta_updates, 0u);
  EXPECT_GT(res_nz.pass_stats.at(0).nonzero_delta_updates, 0u);
}

TEST(FmTrace, MonotoneImprovementAcrossPasses) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.02);
  Rng rng(11);
  auto parts = random_initial(p, rng);
  PartitionState state(h);
  state.assign(parts);
  FmRefiner refiner(p, FmConfig{});
  const FmResult r = refiner.refine(state, rng);
  for (std::size_t i = 0; i < r.pass_stats.size(); ++i) {
    EXPECT_LE(r.pass_stats[i].cut_after, r.pass_stats[i].cut_before)
        << "pass " << i;
    if (i > 0) {
      EXPECT_EQ(r.pass_stats[i].cut_before, r.pass_stats[i - 1].cut_after);
    }
  }
}

}  // namespace
}  // namespace vlsipart
