// Tests for hMetis and ISPD98 readers/writers and partition-file IO.
#include <gtest/gtest.h>

#include <sstream>

#include "src/gen/netlist_gen.h"
#include "src/io/hmetis_io.h"
#include "src/io/ispd98_io.h"
#include "src/io/partition_io.h"

namespace vlsipart {
namespace {

TEST(HmetisIo, ReadsUnweighted) {
  std::istringstream in(
      "% a comment\n"
      "3 4\n"
      "1 2\n"
      "2 3 4\n"
      "1 4\n");
  const Hypergraph h = read_hmetis(in, "t");
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.num_pins(), 7u);
  EXPECT_EQ(h.vertex_weight(0), 1);
  EXPECT_EQ(h.edge_weight(0), 1);
  h.validate();
}

TEST(HmetisIo, ReadsFmt11) {
  std::istringstream in(
      "2 3 11\n"
      "5 1 2\n"
      "7 2 3\n"
      "10\n"
      "20\n"
      "30\n");
  const Hypergraph h = read_hmetis(in);
  EXPECT_EQ(h.edge_weight(0), 5);
  EXPECT_EQ(h.edge_weight(1), 7);
  EXPECT_EQ(h.vertex_weight(0), 10);
  EXPECT_EQ(h.vertex_weight(2), 30);
  h.validate();
}

TEST(HmetisIo, RejectsBadInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("2 3 99\n1 2\n2 3\n");
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("2 3\n1 2\n");  // truncated edges
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("1 3\n1 9\n");  // pin out of range
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
}

TEST(HmetisIo, RoundTripPreservesStructure) {
  const Hypergraph original = generate_netlist(preset("tiny"));
  std::ostringstream out;
  write_hmetis(original, out);
  std::istringstream in(out.str());
  const Hypergraph reread = read_hmetis(in, original.name());
  ASSERT_EQ(reread.num_vertices(), original.num_vertices());
  ASSERT_EQ(reread.num_edges(), original.num_edges());
  ASSERT_EQ(reread.num_pins(), original.num_pins());
  for (std::size_t v = 0; v < original.num_vertices(); ++v) {
    EXPECT_EQ(reread.vertex_weight(static_cast<VertexId>(v)),
              original.vertex_weight(static_cast<VertexId>(v)));
  }
  for (std::size_t e = 0; e < original.num_edges(); ++e) {
    const auto pa = original.pins(static_cast<EdgeId>(e));
    const auto pb = reread.pins(static_cast<EdgeId>(e));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
  reread.validate();
}

TEST(Ispd98Io, ReadsHandWrittenNetlist) {
  // 2 cells (a0, a1) + 1 pad (p1); 2 nets: {a0, a1}, {a1, p1}.
  std::istringstream net(
      "0\n"
      "4\n"
      "2\n"
      "3\n"
      "1\n"
      "a0 s I\n"
      "a1 l O\n"
      "a1 s\n"
      "p1 l\n");
  std::istringstream are(
      "a0 4\n"
      "a1 6\n"
      "p1 0\n");
  const Ispd98Instance inst = read_ispd98(net, are, "hand");
  EXPECT_EQ(inst.num_cells, 2u);
  EXPECT_EQ(inst.num_pads, 1u);
  const Hypergraph& h = inst.hypergraph;
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.vertex_weight(0), 4);
  EXPECT_EQ(h.vertex_weight(1), 6);
  EXPECT_EQ(h.vertex_weight(2), 1);  // pad area 0 clamped to 1
  h.validate();
}

TEST(Ispd98Io, RejectsCorruptNetlist) {
  {
    std::istringstream net("0\n4\n2\n3\n1\na0 x\n");
    std::istringstream are("a0 1\n");
    EXPECT_THROW(read_ispd98(net, are), std::runtime_error);
  }
  {
    // Pin count mismatch (header says 4 pins, only 2 lines).
    std::istringstream net("0\n4\n2\n3\n1\na0 s\na1 l\n");
    std::istringstream are("a0 1\n");
    EXPECT_THROW(read_ispd98(net, are), std::runtime_error);
  }
  {
    // Unknown module name.
    std::istringstream net("0\n2\n1\n2\n1\nz0 s\na0 l\n");
    std::istringstream are("a0 1\n");
    EXPECT_THROW(read_ispd98(net, are), std::runtime_error);
  }
}

TEST(Ispd98Io, RoundTripPreservesStructure) {
  Ispd98Instance inst;
  inst.hypergraph = generate_netlist(preset("tiny"));
  inst.num_cells = preset("tiny").num_cells;
  inst.num_pads = preset("tiny").num_pads;
  std::ostringstream net_out;
  std::ostringstream are_out;
  write_ispd98(inst, net_out, are_out);
  std::istringstream net_in(net_out.str());
  std::istringstream are_in(are_out.str());
  const Ispd98Instance reread = read_ispd98(net_in, are_in, "tiny");
  EXPECT_EQ(reread.num_cells, inst.num_cells);
  EXPECT_EQ(reread.num_pads, inst.num_pads);
  const Hypergraph& a = inst.hypergraph;
  const Hypergraph& b = reread.hypergraph;
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex_weight(static_cast<VertexId>(v)),
              b.vertex_weight(static_cast<VertexId>(v)));
  }
  b.validate();
}

TEST(PartitionIo, RoundTrip) {
  const std::vector<PartId> parts{0, 1, 1, 0, 1};
  std::ostringstream out;
  write_partition(parts, out);
  std::istringstream in(out.str());
  EXPECT_EQ(read_partition(in), parts);
}

TEST(PartitionIo, RejectsGarbage) {
  std::istringstream in("0\n1\nbanana\n");
  EXPECT_THROW(read_partition(in), std::runtime_error);
  std::istringstream neg("-1\n");
  EXPECT_THROW(read_partition(neg), std::runtime_error);
}

TEST(FileIo, HmetisFileRoundTrip) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const std::string path = testing::TempDir() + "/vp_tiny.hgr";
  write_hmetis_file(h, path);
  const Hypergraph reread = read_hmetis_file(path);
  EXPECT_EQ(reread.num_vertices(), h.num_vertices());
  EXPECT_EQ(reread.num_edges(), h.num_edges());
  EXPECT_EQ(reread.name(), "vp_tiny");
}

TEST(FileIo, Ispd98FileRoundTrip) {
  Ispd98Instance inst;
  const GenConfig cfg = preset("tiny");
  inst.hypergraph = generate_netlist(cfg);
  inst.num_cells = cfg.num_cells;
  inst.num_pads = cfg.num_pads;
  const std::string base = testing::TempDir() + "/vp_tiny_ispd";
  write_ispd98_files(inst, base);
  const Ispd98Instance reread = read_ispd98_files(base);
  EXPECT_EQ(reread.hypergraph.num_pins(), inst.hypergraph.num_pins());
  EXPECT_EQ(reread.num_cells, inst.num_cells);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_hmetis_file("/nonexistent/x.hgr"), std::runtime_error);
  EXPECT_THROW(read_ispd98_files("/nonexistent/x"), std::runtime_error);
  EXPECT_THROW(read_partition_file("/nonexistent/x.part"),
               std::runtime_error);
}

}  // namespace
}  // namespace vlsipart
