// n-level engine tests: exact contract/uncontract roundtrips on the
// dynamic graph, determinism of the full partitioner (bit-identical
// multistart at any thread count, pinned golden digests across a seed
// matrix), fixed-vertex respect, and audited runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"
#include "src/part/nlevel/nlevel_graph.h"
#include "src/part/nlevel/nlevel_partitioner.h"
#include "src/util/rng.h"

namespace vlsipart {
namespace {

// FNV-1a combiner, same idiom as fm_golden_trace_test.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  }
};

PartitionProblem make_problem(const Hypergraph& h, double tol) {
  PartitionProblem p;
  p.graph = &h;
  p.balance = BalanceConstraint::from_tolerance(h.total_vertex_weight(), tol);
  return p;
}

/// Full observable snapshot of an NlevelGraph: exact pin layouts (the
/// undo log promises positional restoration, not just set equality),
/// weights, weighted degrees, activity, incidence sizes.
struct GraphSnapshot {
  std::vector<std::vector<VertexId>> pins;
  std::vector<Weight> weight;
  std::vector<Weight> wdeg;
  std::vector<bool> active;
  std::vector<std::size_t> incidence_size;

  static GraphSnapshot take(const NlevelGraph& g) {
    GraphSnapshot s;
    s.pins.resize(g.num_edges());
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const auto span = g.pins(static_cast<EdgeId>(e));
      s.pins[e].assign(span.begin(), span.end());
    }
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      const VertexId c = static_cast<VertexId>(v);
      s.weight.push_back(g.cluster_weight(c));
      s.wdeg.push_back(g.weighted_degree(c));
      s.active.push_back(g.active(c));
      s.incidence_size.push_back(g.incident_edges(c).size());
    }
    return s;
  }

  bool operator==(const GraphSnapshot& o) const {
    return pins == o.pins && weight == o.weight && wdeg == o.wdeg &&
           active == o.active && incidence_size == o.incidence_size;
  }
};

TEST(NlevelGraph, ContractUncontractExactRoundtrip) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  NlevelGraph g;
  Rng rng(2024);
  for (int round = 0; round < 8; ++round) {
    g.bind(h);
    // Snapshot after every contraction so uncontraction can be checked
    // level by level, not just end to end.
    std::vector<GraphSnapshot> trail;
    trail.push_back(GraphSnapshot::take(g));
    std::vector<std::pair<VertexId, VertexId>> contracted;
    const std::size_t steps = 1 + rng.below(h.num_vertices() / 2);
    for (std::size_t s = 0; s < steps && g.num_active() >= 2; ++s) {
      // Pick a random active u and a random active partner (prefer a
      // neighbor so shared-net removal paths get exercised).
      VertexId u = static_cast<VertexId>(rng.below(h.num_vertices()));
      while (!g.active(u)) u = static_cast<VertexId>(rng.below(h.num_vertices()));
      VertexId v = kInvalidVertex;
      for (const EdgeId e : g.incident_edges(u)) {
        for (const VertexId w : g.pins(e)) {
          if (w != u) {
            v = w;
            break;
          }
        }
        if (v != kInvalidVertex && rng.below(2) == 0) break;
      }
      if (v == kInvalidVertex) {
        v = static_cast<VertexId>(rng.below(h.num_vertices()));
        while (!g.active(v) || v == u)
          v = static_cast<VertexId>(rng.below(h.num_vertices()));
      }
      g.contract(u, v);
      contracted.push_back({u, v});
      trail.push_back(GraphSnapshot::take(g));
    }
    // Unwind, checking the exact snapshot at every level.
    std::vector<EdgeId> reactivated;
    while (g.num_contractions() > 0) {
      trail.pop_back();
      reactivated.clear();
      const NlevelGraph::Uncontracted uc = g.uncontract(&reactivated);
      EXPECT_EQ(uc.u, contracted.back().first);
      EXPECT_EQ(uc.v, contracted.back().second);
      contracted.pop_back();
      EXPECT_TRUE(GraphSnapshot::take(g) == trail.back())
          << "level " << g.num_contractions() << " not restored exactly";
      // Reactivated nets must now carry both u and v as pins.
      for (const EdgeId e : reactivated) {
        const auto span = g.pins(e);
        EXPECT_NE(std::find(span.begin(), span.end(), uc.u), span.end());
        EXPECT_NE(std::find(span.begin(), span.end(), uc.v), span.end());
      }
    }
  }
}

TEST(NlevelGraph, CurrentClustersChaseAbsorptionChains) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  NlevelGraph g;
  g.bind(h);
  // Chain 0 <- 1 <- 2 (1 absorbs 2, then 0 absorbs 1): every member maps
  // to the representative 0.
  g.contract(1, 2);
  g.contract(0, 1);
  std::vector<VertexId> cluster;
  g.current_clusters(cluster);
  EXPECT_EQ(cluster[0], 0u);
  EXPECT_EQ(cluster[1], 0u);
  EXPECT_EQ(cluster[2], 0u);
  for (std::size_t v = 3; v < h.num_vertices(); ++v)
    EXPECT_EQ(cluster[v], static_cast<VertexId>(v));
}

NlevelConfig small_nlevel_config() {
  NlevelConfig cfg;
  cfg.coarsen_to = 48;
  cfg.initial_tries = 4;
  return cfg;
}

std::uint64_t run_digest(const PartitionProblem& p, const NlevelConfig& cfg,
                         std::uint64_t seed, std::size_t starts,
                         std::size_t threads, Weight* cut_out) {
  NlevelPartitioner engine(cfg);
  const MultistartResult r = run_multistart(p, engine, starts, seed, threads);
  Digest d;
  d.add(static_cast<std::uint64_t>(r.best_cut));
  for (const PartId part : r.best_parts) d.add(part);
  for (const StartRecord& s : r.starts) {
    d.add(static_cast<std::uint64_t>(s.cut));
    d.add(s.feasible ? 1 : 0);
  }
  if (cut_out != nullptr) *cut_out = r.best_cut;
  return d.h;
}

TEST(NlevelDeterminism, BitIdenticalAcrossMultistartThreadCounts) {
  const NlevelConfig cfg = small_nlevel_config();
  for (const char* const instance : {"tiny", "small", "medium"}) {
    const Hypergraph h = generate_netlist(preset(instance));
    const PartitionProblem p = make_problem(h, 0.10);
    const std::uint64_t ref = run_digest(p, cfg, 99, /*starts=*/8,
                                         /*threads=*/1, nullptr);
    for (const std::size_t t : {std::size_t{2}, std::size_t{8}}) {
      EXPECT_EQ(run_digest(p, cfg, 99, 8, t, nullptr), ref)
          << instance << " diverged at " << t << " threads";
    }
  }
}

TEST(NlevelDeterminism, RepeatedRunsAreBitIdentical) {
  const NlevelConfig cfg = small_nlevel_config();
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.10);
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const std::uint64_t first = run_digest(p, cfg, seed, 4, 1, nullptr);
    EXPECT_EQ(run_digest(p, cfg, seed, 4, 1, nullptr), first) << seed;
  }
}

// Golden digests over the (instance x seed) matrix.  Pinned from the
// first run of this suite (same policy as fm_golden_trace_test): any
// change to the engine's decision sequence shows up here.
struct GoldenEntry {
  const char* instance;
  std::uint64_t seed;
  std::uint64_t digest;
};

TEST(NlevelDeterminism, GoldenDigests) {
  const GoldenEntry kGolden[] = {
      {"tiny", 1, 0xb2f7ba31da43c8c5ULL},
      {"tiny", 7, 0x080fe80196da19a2ULL},
      {"tiny", 42, 0x0820e80196e88cd5ULL},
      {"small", 1, 0xcb4c008d02b2f21dULL},
      {"small", 7, 0xe192326027e0f5edULL},
      {"small", 42, 0xd3859fef515a0ce4ULL},
      {"medium", 1, 0x53542bad12a6ae3fULL},
      {"medium", 7, 0xf5666ec972be120cULL},
      {"medium", 42, 0x1a0c9b634e27b0d2ULL},
  };
  const NlevelConfig cfg = small_nlevel_config();
  for (const GoldenEntry& entry : kGolden) {
    const Hypergraph h = generate_netlist(preset(entry.instance));
    const PartitionProblem p = make_problem(h, 0.10);
    const std::uint64_t digest =
        run_digest(p, cfg, entry.seed, /*starts=*/2, /*threads=*/1, nullptr);
    EXPECT_EQ(digest, entry.digest)
        << entry.instance << " seed " << entry.seed << " digest 0x" << std::hex
        << digest;
  }
}

TEST(NlevelPartitionerTest, ProducesFeasibleSolutions) {
  const Hypergraph h = generate_netlist(preset("small"));
  const PartitionProblem p = make_problem(h, 0.10);
  NlevelConfig cfg = small_nlevel_config();
  NlevelPartitioner engine(cfg);
  Rng rng(5);
  std::vector<PartId> parts;
  const Weight cut = engine.run(p, rng, parts);
  EXPECT_EQ(cut, compute_cut(h, parts));
  EXPECT_TRUE(check_solution(p, parts).empty());
}

TEST(NlevelPartitionerTest, AuditedRunMatchesUnaudited) {
  // Audits are pure observers: forcing per-pass audits plus the n-level
  // engine's own per-uncontraction recount must not change the result.
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.10);
  NlevelConfig cfg = small_nlevel_config();
  Rng rng1(11), rng2(11);
  std::vector<PartId> plain_parts, audited_parts;
  NlevelPartitioner plain(cfg);
  const Weight plain_cut = plain.run(p, rng1, plain_parts);
  cfg.refine.audit.mode = AuditMode::kPerPass;
  NlevelPartitioner audited(cfg);
  const Weight audited_cut = audited.run(p, rng2, audited_parts);
  EXPECT_EQ(plain_cut, audited_cut);
  EXPECT_EQ(plain_parts, audited_parts);
}

TEST(NlevelPartitionerTest, RespectsFixedVertices) {
  const Hypergraph h = generate_netlist(preset("small"));
  PartitionProblem p = make_problem(h, 0.10);
  std::vector<PartId> fixed(h.num_vertices(), kNoPart);
  Rng pick(77);
  for (int i = 0; i < 12; ++i) {
    fixed[pick.below(h.num_vertices())] = static_cast<PartId>(pick.below(2));
  }
  p.fixed = fixed;
  NlevelPartitioner engine(small_nlevel_config());
  Rng rng(3);
  std::vector<PartId> parts;
  engine.run(p, rng, parts);
  for (std::size_t v = 0; v < fixed.size(); ++v) {
    if (fixed[v] != kNoPart) {
      EXPECT_EQ(parts[v], fixed[v]) << "fixed vertex " << v << " moved";
    }
  }
  EXPECT_TRUE(check_solution(p, parts).empty());
}

TEST(NlevelPartitionerTest, CloneIsIndependentAndIdentical) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  const PartitionProblem p = make_problem(h, 0.10);
  NlevelPartitioner engine(small_nlevel_config());
  auto cloned = engine.clone();
  ASSERT_NE(cloned, nullptr);
  Rng rng1(9), rng2(9);
  std::vector<PartId> a, b;
  const Weight ca = engine.run(p, rng1, a);
  const Weight cb = cloned->run(p, rng2, b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vlsipart
