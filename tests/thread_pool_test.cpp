// Tests for the fixed-size worker pool behind parallel multistart.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/util/thread_pool.h"

namespace vlsipart {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_dynamic(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  // Far more tasks than threads: dynamic scheduling must still cover
  // [0, n) without duplication or loss.
  ThreadPool pool(3);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_dynamic(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WorkerSlotsAreExclusive) {
  // The two-argument form promises non-overlapping invocations per slot,
  // so unsynchronized per-slot counters must add up exactly.
  ThreadPool pool(4);
  constexpr std::size_t n = 500;
  std::vector<std::size_t> per_slot(pool.num_threads(), 0);
  pool.parallel_for_dynamic(n, [&](std::size_t worker, std::size_t) {
    ASSERT_LT(worker, per_slot.size());
    ++per_slot[worker];
  });
  std::size_t total = 0;
  for (const std::size_t c : per_slot) total += c;
  EXPECT_EQ(total, n);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_dynamic(100,
                                [&](std::size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> calls{0};
  pool.parallel_for_dynamic(10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, ExceptionAbandonsRemainingIndices) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  try {
    pool.parallel_for_dynamic(100000, [&](std::size_t i) {
      ++calls;
      if (i < 2) throw std::runtime_error("early");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(calls.load(), 100000);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> calls{0};
  pool.parallel_for_dynamic(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 5);
}

}  // namespace
}  // namespace vlsipart
