// k-way partitioning bench (the paper's named future-work direction,
// Sec. 4: "the difficulty of multi-way partitioning").
//
// Sweeps k in {2, 4, 8, 16} via recursive bisection, with and without
// the direct k-way FM polish, reporting k-way cut and CPU.
//
// Expected shape: cut grows with k (more boundaries); the direct k-way
// polish recovers cut relative to raw recursive bisection, most visibly
// at larger k where the fixed block hierarchy costs the most.
#include "bench/bench_common.h"
#include "src/part/kway/kway_refiner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/util/timer.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/1,
                                         /*default_scale=*/0.5);

  TextTable table({"case", "k", "RB cut", "RB+polish cut",
                   "RB+polish+LA cut", "improvement", "cpu (s)"});

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    for (const std::size_t k : {2, 4, 8, 16}) {
      KwayConfig raw;
      raw.k = k;
      raw.tolerance = 0.10;
      raw.seed = opt.seed;
      raw.refine_passes = 0;
      KwayConfig polished = raw;
      polished.refine_passes = 3;

      const KwayResult a = recursive_bisection(h, raw);
      CpuTimer timer;
      const KwayResult b = recursive_bisection(h, polished);
      const double cpu = timer.elapsed();

      // Sanchis level-gain polish on top of the RB solution.
      KwayState state(h, k);
      state.assign(a.parts);
      KwayProblem problem = KwayProblem::uniform(h, k, raw.tolerance);
      KwayFmConfig la;
      la.max_passes = 3;
      la.lookahead_depth = 3;
      KwayFmRefiner refiner(problem, la);
      Rng rng(opt.seed);
      refiner.refine(state, rng);
      const Weight la_cut = kway_cut(h, state.parts());

      const double gain =
          a.cut > 0 ? 100.0 * static_cast<double>(a.cut - b.cut) /
                          static_cast<double>(a.cut)
                    : 0.0;
      table.add_row({name, std::to_string(k), std::to_string(a.cut),
                     std::to_string(b.cut), std::to_string(la_cut),
                     fmt_fixed(gain, 1) + "%", fmt_fixed(cpu, 3)});
    }
  }

  std::printf("k-way partitioning: recursive bisection with/without direct "
              "k-way FM polish, 10%% tolerance, scale %.2f\n\n",
              opt.scale);
  emit(table, opt.csv, "k-way cut vs k");
  return 0;
}
