// Ablation of V-cycling (Sec. 3.2): techniques "such as V-cycling that
// are invoked only for the best result of several starts (this implies
// that sampling methods cannot be used)" are why actual CPU time must be
// the comparison axis.  Compares, at matched start counts:
//   * plain ML multistart;
//   * ML multistart + V-cycles on the best (the hMetis protocol);
//   * per-start V-cycling (the expensive alternative).
//
// Expected shape: V-cycle-on-best buys a small cut improvement for a
// small CPU increment; per-start V-cycling costs much more CPU for
// little additional quality.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/8,
                                         /*default_scale=*/0.5);

  TextTable table(
      {"case", "protocol", "best cut", "total cpu (s)"});

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, 0.02);

    {
      MlPartitioner engine(ml_config(our_lifo()));
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      table.add_row({name, "plain multistart",
                     std::to_string(r.best_cut),
                     fmt_fixed(r.total_cpu_seconds, 3)});
    }
    {
      MlPartitioner engine(ml_config(our_lifo()));
      const MultistartResult r =
          run_hmetis_like(problem, engine, opt.runs, 2, opt.seed);
      table.add_row({name, "V-cycle best (x2)",
                     std::to_string(r.best_cut),
                     fmt_fixed(r.total_cpu_seconds, 3)});
    }
    {
      MlConfig config = ml_config(our_lifo());
      config.vcycles = 2;
      MlPartitioner engine(config);
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      table.add_row({name, "V-cycle every start (x2)",
                     std::to_string(r.best_cut),
                     fmt_fixed(r.total_cpu_seconds, 3)});
    }
  }

  std::printf("V-cycling ablation: ML LIFO FM, 2%% balance, %zu starts, "
              "scale %.2f\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv, "V-cycle protocol comparison");
  return 0;
}
