// Table 5: hMetis-1.5-like ML partitioner, configurations 1-6, 10% balance.
#include "bench/bench_table45.h"

int main(int argc, char** argv) {
  return vlsipart::bench::run_table45(argc, argv, 0.10,
                                      "Table 5 (10% balance)");
}
