// Shared driver for Tables 4 and 5: evaluation of the hMetis-1.5-like
// multilevel partitioner across multistart "Configurations" 1-6
// (starts = 1, 2, 4, 8, 16, 100), with V-cycling of the best result, on
// the IBM test cases — exactly the protocol of Sec. 3.2.  Each cell is
// (average best cut / average CPU seconds) over `repeats` repetitions of
// the whole configuration.
//
// Expected shape: average cut decreases monotonically (roughly) with
// more starts while CPU grows ~linearly; looser (10%) tolerance yields
// uniformly lower cuts than 2%.
#pragma once

#include "bench/bench_common.h"
#include "src/util/stats.h"

namespace vlsipart::bench {

inline int run_table45(int argc, char** argv, double tolerance,
                       const char* table_name) {
  const BenchOptions opt = parse_options(
      argc, argv, "ibm01,ibm02,ibm03,ibm04,ibm05,ibm06,ibm10,ibm14,ibm18",
      /*default_runs=*/1, /*default_scale=*/0.2,
      {"repeats", "configs", "vcycles"});
  const CliArgs args(argc, argv);
  const auto repeats = static_cast<std::size_t>(
      args.get_int("repeats", opt.full ? 50 : 2));
  std::vector<std::size_t> start_configs = {1, 2, 4, 8, 16, 100};
  if (!opt.full && !args.has("configs")) {
    start_configs = {1, 2, 4, 8, 16, 32};
  }
  if (args.has("configs")) {
    start_configs.clear();
    for (const auto& s : args.get_list("configs", "")) {
      start_configs.push_back(static_cast<std::size_t>(std::stoul(s)));
    }
  }
  const auto vcycles = static_cast<std::size_t>(args.get_int("vcycles", 1));

  std::vector<std::string> header = {"Circuit"};
  for (std::size_t c = 0; c < start_configs.size(); ++c) {
    header.push_back("cfg" + std::to_string(c + 1) + " (n=" +
                     std::to_string(start_configs[c]) + ")");
  }
  TextTable table(std::move(header));

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, tolerance);
    std::vector<std::string> row = {name};
    for (std::size_t c = 0; c < start_configs.size(); ++c) {
      RunningStats cut_stats;
      RunningStats cpu_stats;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        MlPartitioner engine(ml_config(our_lifo()));
        const std::uint64_t seed =
            opt.seed + 1000 * rep + 37 * (c + 1);
        const MultistartResult r = run_hmetis_like(
            problem, engine, start_configs[c], vcycles, seed, opt.threads);
        cut_stats.add(static_cast<double>(r.best_cut));
        cpu_stats.add(r.total_cpu_seconds);
      }
      row.push_back(fmt_cut_cpu(cut_stats.mean(), cpu_stats.mean()));
    }
    table.add_row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n%s: avg best cut / avg CPU sec; tolerance %.0f%%, %zu "
              "repeat(s), %zu V-cycle(s) on best, scale %.2f\n\n",
              table_name, tolerance * 100.0, repeats, vcycles, opt.scale);
  emit(table, opt, table_name);
  return 0;
}

}  // namespace vlsipart::bench
