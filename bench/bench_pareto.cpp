// Regenerates the paper's non-dominated-frontier comparison (Sec. 3.2):
// (solution cost, runtime) performance points for every engine at
// several multistart budgets, the Pareto set among them, and the
// speed-dependent ranking diagram of Schreiber-Martin [33][34].
//
// Expected shape: the frontier's low-budget end is flat FM, the rest is
// ML; "Reported"-style weak configurations never appear on the frontier.
#include "bench/bench_common.h"
#include "src/eval/pareto.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.35);
  const std::vector<std::size_t> budgets_in_starts = {1, 2, 4, 8, 16};

  struct Engine {
    std::string label;
    bool ml;
    FmConfig cfg;
  };
  const Engine engines[] = {
      {"flat-LIFO", false, our_lifo()},
      {"flat-CLIP", false, our_clip()},
      {"flat-LIFO-weak", false, reported_lifo()},
      {"ML-LIFO", true, our_lifo()},
      {"ML-CLIP", true, our_clip()},
  };

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, 0.02);

    std::vector<PerfPoint> points;
    for (const Engine& e : engines) {
      MultistartResult r;
      if (e.ml) {
        MlPartitioner engine(ml_config(e.cfg));
        r = run_multistart(problem, engine, opt.runs, opt.seed, opt.threads);
      } else {
        FlatFmPartitioner engine(e.cfg);
        r = run_multistart(problem, engine, opt.runs, opt.seed, opt.threads);
      }
      const Sample cuts = r.cut_sample();
      for (const std::size_t k : budgets_in_starts) {
        PerfPoint p;
        p.cost = cuts.expected_min_of(k);
        p.cpu_seconds = r.avg_cpu_seconds() * static_cast<double>(k);
        p.label = e.label + "@" + std::to_string(k);
        points.push_back(p);
      }
    }

    std::printf("=== Performance points, %s (2%% balance)\n\n",
                name.c_str());
    TextTable all({"point", "cpu (s)", "E[best cut]"});
    for (const PerfPoint& p : points) {
      all.add_row({p.label, fmt_fixed(p.cpu_seconds, 3),
                   fmt_fixed(p.cost, 1)});
    }
    emit(all, opt, "All (cost, runtime) points");

    const auto frontier = pareto_frontier(points);
    TextTable front({"frontier point", "cpu (s)", "E[best cut]"});
    for (const PerfPoint& p : frontier) {
      front.add_row({p.label, fmt_fixed(p.cpu_seconds, 3),
                     fmt_fixed(p.cost, 1)});
    }
    emit(front, opt, "Non-dominated (Pareto) frontier");

    // Ranking diagram at log-spaced budgets spanning the point cloud.
    double max_t = 0.0;
    for (const auto& p : points) max_t = std::max(max_t, p.cpu_seconds);
    std::vector<double> budgets;
    for (double b = 0.001; b <= max_t * 2.0; b *= 2.0) budgets.push_back(b);
    const auto ranking = ranking_diagram(points, budgets);
    TextTable rank({"budget (cpu s)", "winner", "E[best cut]"});
    for (const RankingEntry& e : ranking) {
      rank.add_row({fmt_fixed(e.budget_cpu_seconds, 3),
                    e.winner.empty() ? "-" : e.winner,
                    e.winner.empty() ? "-" : fmt_fixed(e.winner_cost, 1)});
    }
    emit(rank, opt, "Speed-dependent ranking diagram");
  }
  return 0;
}
