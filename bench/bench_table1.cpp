// Regenerates Table 1 of the paper: best/average cuts for four
// partitioner variants (Flat LIFO FM, Flat CLIP FM, ML LIFO FM,
// ML CLIP FM) under the cross-product of two implicit decisions:
//   * zero-delta-gain update policy: All-dgain vs Nonzero
//   * highest-gain-bucket tie-break bias: Away / Part0 / Toward
// on ISPD98-like instances with actual cell areas and 2% balance.
//
// Expected shape: All-dgain can inflate flat-partitioner average cuts by
// startling amounts; the ML engines compress the dynamic range; engine
// strength ordering is ML CLIP > ML LIFO > flat CLIP > flat LIFO.
//
// Paper default: ibm01-03, 100 runs, full sizes (use --full).
#include <memory>

#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  struct Block {
    const char* title;
    /// Engine id stamped into every row (the --engine spelling vpart
    /// uses), so merged/JSON'd tables stay self-describing.
    const char* engine;
    bool ml;
    bool clip;
  };
  const Block blocks[] = {
      {"Flat LIFO FM", "flat", false, false},
      {"Flat CLIP FM", "clip", false, true},
      {"ML LIFO FM", "ml", true, false},
      {"ML CLIP FM", "ml-clip", true, true},
  };
  const ZeroGainUpdate updates[] = {ZeroGainUpdate::kAll,
                                    ZeroGainUpdate::kNonzero};
  const TieBreak biases[] = {TieBreak::kAway, TieBreak::kPart0,
                             TieBreak::kToward};

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  std::printf(
      "Table 1: min/avg cuts, actual areas, 2%% balance, %zu runs, scale "
      "%.2f\n\n",
      opt.runs, opt.scale);

  for (const Block& block : blocks) {
    std::vector<std::string> header = {"Updates", "Bias"};
    for (const auto& name : opt.cases) header.push_back(name);
    // Fraction of incident-net visits the net-state-aware inner loop
    // resolved without a pin walk, aggregated over the row's instances.
    // Structurally 0 under All-dgain (the skip is gated off there).
    // Appended last so positional consumers of the older columns keep
    // working; keyed consumers (emit_json) pick it up by name.
    header.push_back("Skip%");
    header.push_back("Engine");
    TextTable table(std::move(header));

    for (const ZeroGainUpdate update : updates) {
      for (const TieBreak bias : biases) {
        FmConfig cfg;
        cfg.clip = block.clip;
        cfg.zero_gain_update = update;
        cfg.tie_break = bias;
        // The paper's Table 1 engines predate the corking fix; CLIP runs
        // as published (no oversized exclusion) so the corking-induced
        // degradation is part of what the table shows.
        std::vector<std::string> row = {name_of(update), name_of(bias)};
        UpdateWork row_work;
        for (const Hypergraph& h : graphs) {
          const PartitionProblem problem = make_problem(h, 0.02);
          std::unique_ptr<Bipartitioner> engine;
          if (block.ml) {
            engine = std::make_unique<MlPartitioner>(ml_config(cfg));
          } else {
            engine = std::make_unique<FlatFmPartitioner>(cfg);
          }
          const MultistartResult r =
              run_multistart(problem, *engine, opt.runs, opt.seed, opt.threads);
          row_work.absorb(r.update_work);
          row.push_back(fmt_min_avg(static_cast<double>(r.min_cut()),
                                    r.avg_cut()));
        }
        char skip[32];
        std::snprintf(skip, sizeof(skip), "%.1f", 100.0 * row_work.skip_rate());
        row.push_back(skip);
        row.push_back(block.engine);
        table.add_row(std::move(row));
      }
    }
    emit(table, opt, block.title);
  }
  return 0;
}
