// Table 4: hMetis-1.5-like ML partitioner, configurations 1-6, 2% balance.
#include "bench/bench_table45.h"

int main(int argc, char** argv) {
  return vlsipart::bench::run_table45(argc, argv, 0.02,
                                      "Table 4 (2% balance)");
}
