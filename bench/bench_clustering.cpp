// Clustering ablation for multilevel FM — the paper's own named open
// question: "we believe that the effects of clustering in multilevel FM
// and the difficulty of multi-way partitioning are two fundamental gaps
// in knowledge" (Sec. 4).
//
// Sweeps the three clustering knobs of the ML engine — coarsest-level
// target size, maximum cluster weight, and the net-size cap for
// heavy-edge ratings — reporting average cut and CPU.
//
// Expected shape: quality degrades when coarsening is stopped too early
// (huge coarsest graph = expensive, weak initial solutions) or pushed
// too far / with oversized clusters (coarse graph too inflexible to
// balance); rating very large nets costs CPU without helping quality.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

namespace {

void sweep(const std::vector<Hypergraph>& graphs,
           const std::vector<std::string>& names, std::size_t runs,
           std::uint64_t seed, bool csv, const std::string& title,
           const std::vector<std::pair<std::string, MlConfig>>& configs) {
  std::vector<std::string> header = {"setting"};
  for (const auto& n : names) {
    header.push_back(n + " cut");
    header.push_back(n + " cpu");
  }
  TextTable table(std::move(header));
  for (const auto& [label, config] : configs) {
    std::vector<std::string> row = {label};
    for (const Hypergraph& h : graphs) {
      const PartitionProblem problem = make_problem(h, 0.02);
      MlPartitioner engine(config);
      const MultistartResult r =
          run_multistart(problem, engine, runs, seed);
      row.push_back(fmt_fixed(r.avg_cut(), 1));
      row.push_back(fmt_fixed(r.avg_cpu_seconds(), 4));
    }
    table.add_row(std::move(row));
  }
  emit(table, csv, title);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/10,
                                         /*default_scale=*/0.5);

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  std::printf("Clustering ablation (Sec. 4 open question): ML LIFO FM, 2%% "
              "balance, avg over %zu runs, scale %.2f\n\n",
              opt.runs, opt.scale);

  {
    std::vector<std::pair<std::string, MlConfig>> configs;
    for (const std::size_t target : {40, 120, 400, 1200}) {
      MlConfig c = ml_config(our_lifo());
      c.coarsen.coarsen_to = target;
      configs.emplace_back("coarsen_to=" + std::to_string(target), c);
    }
    sweep(graphs, opt.cases, opt.runs, opt.seed, opt.csv,
          "Coarsest-level target size", configs);
  }
  {
    // Cluster-weight caps are instance-relative (total/divisor), so this
    // sweep resolves the cap per instance rather than via sweep().
    std::vector<std::string> header = {"setting"};
    for (const auto& n : opt.cases) {
      header.push_back(n + " cut");
      header.push_back(n + " cpu");
    }
    TextTable table(std::move(header));
    for (const int divisor : {400, 120, 30, 8}) {
      std::vector<std::string> row = {"cap=total/" +
                                      std::to_string(divisor)};
      for (const Hypergraph& h : graphs) {
        MlConfig c = ml_config(our_lifo());
        c.coarsen.max_cluster_weight = std::max<Weight>(
            h.max_vertex_weight(),
            h.total_vertex_weight() / divisor);
        const PartitionProblem problem = make_problem(h, 0.02);
        MlPartitioner engine(c);
        const MultistartResult r =
            run_multistart(problem, engine, opt.runs, opt.seed);
        row.push_back(fmt_fixed(r.avg_cut(), 1));
        row.push_back(fmt_fixed(r.avg_cpu_seconds(), 4));
      }
      table.add_row(std::move(row));
    }
    emit(table, opt.csv, "Maximum cluster weight");
  }
  {
    std::vector<std::pair<std::string, MlConfig>> configs;
    for (const std::size_t cap : {8, 64, 512}) {
      MlConfig c = ml_config(our_lifo());
      c.coarsen.max_rated_net_size = cap;
      configs.emplace_back("rate nets <= " + std::to_string(cap), c);
    }
    sweep(graphs, opt.cases, opt.runs, opt.seed, opt.csv,
          "Heavy-edge rating net-size cap", configs);
  }
  {
    std::vector<std::pair<std::string, MlConfig>> configs;
    {
      MlConfig c = ml_config(our_lifo());
      c.coarsen.scheme = CoarsenScheme::kFirstChoice;
      configs.emplace_back("first-choice clustering", c);
    }
    {
      MlConfig c = ml_config(our_lifo());
      c.coarsen.scheme = CoarsenScheme::kHeavyEdgeMatching;
      configs.emplace_back("heavy-edge matching (pairs)", c);
    }
    sweep(graphs, opt.cases, opt.runs, opt.seed, opt.csv,
          "Clustering scheme", configs);
  }
  return 0;
}
