// Regenerates Table 3 of the paper: "Reported CLIP" vs "Our CLIP".
//
// "Our CLIP FM does not insert cells with area greater than the balance
// constraint into the gain structure" — the zero-overhead corking fix of
// Sec. 2.3.  The "Reported CLIP" model runs CLIP exactly as published
// [15] with weak implicit decisions, which on actual-area instances
// suffers the corking effect.  Corking diagnostics (zero-move passes)
// are printed alongside.
//
// Expected shape: "Our CLIP" substantially better at both tolerances;
// the gap is largest at 2% where more cells exceed the balance window.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  std::vector<std::string> header = {"Tolerance", "Algorithm"};
  for (const auto& name : opt.cases) header.push_back(name);
  TextTable table(header);
  TextTable corked(header);

  const double tolerances[] = {0.02, 0.10};
  struct Variant {
    const char* label;
    FmConfig cfg;
  };
  const Variant variants[] = {
      {"Reported CLIP", reported_clip()},
      {"Our CLIP", our_clip()},
  };

  for (const double tol : tolerances) {
    for (const Variant& variant : variants) {
      std::vector<std::string> row = {
          fmt_fixed(tol * 100.0, 0) + "%", variant.label};
      std::vector<std::string> cork_row = row;
      for (const Hypergraph& h : graphs) {
        const PartitionProblem problem = make_problem(h, tol);
        FlatFmPartitioner engine(variant.cfg);
        std::size_t corked_runs = 0;
        // Run the multistart manually so per-run corking stats are
        // available.
        Rng base(opt.seed);
        Sample cuts;
        Weight best = -1;
        std::vector<PartId> parts;
        for (std::size_t i = 0; i < opt.runs; ++i) {
          Rng rng = base.fork(i);
          const Weight cut = engine.run(problem, rng, parts);
          cuts.add(static_cast<double>(cut));
          if (best < 0 || cut < best) best = cut;
          if (engine.last_result().zero_move_passes > 0) ++corked_runs;
        }
        row.push_back(fmt_min_avg(cuts.min(), cuts.mean()));
        cork_row.push_back(std::to_string(corked_runs) + "/" +
                           std::to_string(opt.runs));
      }
      table.add_row(std::move(row));
      corked.add_row(std::move(cork_row));
    }
  }

  std::printf(
      "Table 3: CLIP FM with and without the corking fix; min/avg over %zu "
      "runs, scale %.2f\n\n",
      opt.runs, opt.scale);
  emit(table, opt, "CLIP FM comparison");
  emit(corked, opt,
       "Corking incidence (runs with at least one zero-move pass)");
  return 0;
}
