// Ablation of gain-bucket insertion order: LIFO vs FIFO vs Random.
//
// Section 2.2 cites Hagen-Huang-Kahng [21]: "inserting moves into gain
// buckets in LIFO order is much preferable to doing so in FIFO order ...
// or at random.  Since the work of [21], all FM implementations that we
// are aware of use LIFO insertion."  This bench reproduces that ranking
// on the flat FM engine.
//
// Expected shape: LIFO < Random < FIFO in average cut (lower is better),
// with a pronounced LIFO advantage.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  std::vector<std::string> header = {"Insertion"};
  for (const auto& name : opt.cases) header.push_back(name);
  TextTable table(std::move(header));

  const InsertOrder orders[] = {InsertOrder::kLifo, InsertOrder::kFifo,
                                InsertOrder::kRandom};
  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  for (const InsertOrder order : orders) {
    FmConfig cfg = our_lifo();
    cfg.insert_order = order;
    std::vector<std::string> row = {name_of(order)};
    for (const Hypergraph& h : graphs) {
      const PartitionProblem problem = make_problem(h, 0.02);
      FlatFmPartitioner engine(cfg);
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      row.push_back(
          fmt_min_avg(static_cast<double>(r.min_cut()), r.avg_cut()));
    }
    table.add_row(std::move(row));
  }

  std::printf(
      "Insertion-order ablation [21]: flat FM, 2%% balance, min/avg over "
      "%zu runs, scale %.2f\n\n",
      opt.runs, opt.scale);
  emit(table, opt.csv, "Gain-bucket insertion order");
  return 0;
}
