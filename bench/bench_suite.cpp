// Whole-suite summary — the classic cross-benchmark comparison table of
// the partitioning literature: per-instance average cuts for every
// engine across all 18 ibm presets, plus the geometric mean of each
// engine's cut ratio to the flat LIFO FM baseline.  "A wide range of
// instance sizes best emulates the actual use model" (Sec. 3.2).
//
// Expected shape: ratio ordering ML CLIP < ML LIFO < flat CLIP < 1.0
// (flat LIFO baseline), stable across the suite.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  std::string all_cases;
  for (const auto& name : ibm_preset_names()) {
    if (!all_cases.empty()) all_cases += ",";
    all_cases += name;
  }
  const BenchOptions opt = parse_options(argc, argv, all_cases,
                                         /*default_runs=*/3,
                                         /*default_scale=*/0.1);

  struct Engine {
    const char* label;
    bool ml;
    FmConfig cfg;
  };
  const Engine engines[] = {
      {"flat-LIFO", false, our_lifo()},
      {"flat-CLIP", false, our_clip()},
      {"ML-LIFO", true, our_lifo()},
      {"ML-CLIP", true, our_clip()},
  };

  std::vector<std::string> header = {"circuit", "vertices"};
  for (const Engine& e : engines) header.push_back(e.label);
  TextTable table(std::move(header));

  Sample ratios[4];
  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, 0.02);
    std::vector<std::string> row = {name,
                                    std::to_string(h.num_vertices())};
    double baseline = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      MultistartResult r;
      if (engines[i].ml) {
        MlPartitioner engine(ml_config(engines[i].cfg));
        r = run_multistart(problem, engine, opt.runs, opt.seed);
      } else {
        FlatFmPartitioner engine(engines[i].cfg);
        r = run_multistart(problem, engine, opt.runs, opt.seed);
      }
      const double avg = r.avg_cut();
      if (i == 0) baseline = avg;
      if (baseline > 0.0 && avg > 0.0) {
        ratios[i].add(avg / baseline);
      }
      row.push_back(fmt_fixed(avg, 1));
    }
    table.add_row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\nSuite summary: avg cut over %zu runs, 2%% balance, scale "
              "%.2f\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv, "Per-instance average cuts");

  TextTable gmeans({"engine", "gmean cut ratio vs flat-LIFO"});
  for (std::size_t i = 0; i < 4; ++i) {
    gmeans.add_row({engines[i].label,
                    fmt_fixed(ratios[i].geometric_mean(), 3)});
  }
  emit(gmeans, opt.csv, "Geometric-mean ratios (lower is better)");
  return 0;
}
