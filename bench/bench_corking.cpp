// Corking incidence traces (Sec. 2.3).
//
// "Traces of CLIP executions show that corking actually occurs fairly
// often, particularly with the more modern ISPD98 actual-area
// benchmarks."  This bench measures, per instance and tolerance, the
// fraction of CLIP runs that suffer at least one zero-move (corked)
// pass, contrasting actual-area instances with unit-area versions of the
// same topology (the MCNC-style setting where corking stays hidden).
//
// Expected shape: frequent corking on actual areas at tight (2%)
// tolerance; none on unit areas; the fix eliminates it everywhere.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

namespace {

Hypergraph unit_area_copy(const Hypergraph& h) {
  HypergraphBuilder b(h.num_vertices());
  std::vector<VertexId> pins;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    const auto span = h.pins(static_cast<EdgeId>(e));
    pins.assign(span.begin(), span.end());
    b.add_edge(pins, h.edge_weight(static_cast<EdgeId>(e)));
  }
  return b.finalize(h.name() + ".unit");
}

struct CorkStats {
  std::size_t corked_runs = 0;
  std::size_t stalled_passes = 0;
  double avg_cut = 0.0;
};

CorkStats measure(const PartitionProblem& problem, const FmConfig& cfg,
                  std::size_t runs, std::uint64_t seed) {
  CorkStats stats;
  FlatFmPartitioner engine(cfg);
  Rng base(seed);
  std::vector<PartId> parts;
  double total_cut = 0.0;
  for (std::size_t i = 0; i < runs; ++i) {
    Rng rng = base.fork(i);
    total_cut += static_cast<double>(engine.run(problem, rng, parts));
    const FmResult& r = engine.last_result();
    if (r.zero_move_passes > 0) ++stats.corked_runs;
    stats.stalled_passes += r.stalled_passes;
  }
  stats.avg_cut = total_cut / static_cast<double>(runs);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  TextTable table({"case", "areas", "tol", "variant", "corked runs",
                   "stalled passes", "avg cut"});

  for (const auto& name : opt.cases) {
    const Hypergraph actual = make_instance(name, opt.scale);
    const Hypergraph unit = unit_area_copy(actual);
    for (const Hypergraph* h : {&actual, &unit}) {
      const bool is_unit = (h == &unit);
      for (const double tol : {0.02, 0.10}) {
        const PartitionProblem problem = make_problem(*h, tol);
        struct Variant {
          const char* label;
          FmConfig cfg;
        };
        const Variant variants[] = {
            {"CLIP as published", reported_clip()},
            {"CLIP + fix", our_clip()},
        };
        for (const Variant& v : variants) {
          const CorkStats s = measure(problem, v.cfg, opt.runs, opt.seed);
          table.add_row({name, is_unit ? "unit" : "actual",
                         fmt_fixed(tol * 100.0, 0) + "%", v.label,
                         std::to_string(s.corked_runs) + "/" +
                             std::to_string(opt.runs),
                         std::to_string(s.stalled_passes),
                         fmt_fixed(s.avg_cut, 1)});
        }
      }
    }
  }

  std::printf("Corking traces: CLIP zero-move passes by area model and "
              "tolerance (%zu runs, scale %.2f)\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv, "Corking incidence");
  return 0;
}
