// Regenerates the paper's prescribed "best-so-far (BSF) curve" reporting
// artifact (Sec. 3.2, after Barr et al. [5]): expected best cut versus
// CPU budget tau in the multistart regime, for each engine.
//
// Expected shape: the ML engine's curve lies below flat FM at every
// budget beyond its first start; flat FM occupies the smallest budgets
// (a single flat start is cheaper than a single ML start).
#include "bench/bench_common.h"
#include "src/eval/bsf.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/30,
                                         /*default_scale=*/0.35);
  const std::vector<std::size_t> ks = {1, 2, 4, 8, 16, 30, 50, 100};

  struct Engine {
    const char* label;
    bool ml;
    FmConfig cfg;
  };
  const Engine engines[] = {
      {"flat-LIFO-FM", false, our_lifo()},
      {"flat-CLIP-FM", false, our_clip()},
      {"ML-LIFO-FM", true, our_lifo()},
      {"ML-CLIP-FM", true, our_clip()},
  };

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, 0.02);
    std::printf("=== BSF curves, %s (2%% balance, %zu sampled starts)\n\n",
                name.c_str(), opt.runs);
    TextTable table({"tau (cpu s)", "starts", "engine", "E[best cut]"});
    for (const Engine& e : engines) {
      MultistartResult r;
      if (e.ml) {
        MlPartitioner engine(ml_config(e.cfg));
        r = run_multistart(problem, engine, opt.runs, opt.seed, opt.threads);
      } else {
        FlatFmPartitioner engine(e.cfg);
        r = run_multistart(problem, engine, opt.runs, opt.seed, opt.threads);
      }
      const Sample cuts = r.cut_sample();
      const auto curve = expected_bsf_curve(
          cuts, r.avg_cpu_seconds(),
          std::vector<std::size_t>(ks.begin(), ks.end()));
      for (const BsfPoint& pt : curve) {
        table.add_row({fmt_fixed(pt.cpu_seconds, 3),
                       std::to_string(pt.starts), e.label,
                       fmt_fixed(pt.expected_cost, 1)});
      }
    }
    emit(table, opt, "BSF data (plot tau vs E[best cut] per engine)");
  }
  return 0;
}
