// Ablation of start pruning (Sec. 3.2): "pruning (early termination of
// starts that appear unpromising relative to previous starts) can be
// applied" — one of the reasons actual CPU time, not number of starts,
// must be the comparison axis.
//
// Expected shape: pruning preserves the best cut (or nearly so) while
// cutting total CPU, with savings growing as the prune factor tightens.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  TextTable table({"case", "variant", "best cut", "avg cut(kept)",
                   "pruned", "total cpu (s)"});

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, 0.02);

    FlatFmPartitioner plain_engine{our_lifo()};
    const MultistartResult plain =
        run_multistart(problem, plain_engine, opt.runs, opt.seed);
    table.add_row({name, "no pruning", std::to_string(plain.best_cut),
                   fmt_fixed(plain.avg_cut(), 1), "0/" +
                       std::to_string(opt.runs),
                   fmt_fixed(plain.total_cpu_seconds, 3)});

    for (const double factor : {1.20, 1.10, 1.02}) {
      PruneConfig prune;
      prune.factor = factor;
      const PrunedMultistartResult pruned = run_multistart_pruned(
          problem, our_lifo(), opt.runs, opt.seed, prune);
      RunningStats kept;
      for (const auto& s : pruned.result.starts) {
        if (s.feasible) kept.add(static_cast<double>(s.cut));
      }
      table.add_row(
          {name, "prune @" + fmt_fixed(factor, 2),
           std::to_string(pruned.result.best_cut),
           fmt_fixed(kept.mean(), 1),
           std::to_string(pruned.pruned_starts) + "/" +
               std::to_string(opt.runs),
           fmt_fixed(pruned.result.total_cpu_seconds, 3)});
    }
  }

  std::printf("Start-pruning ablation: flat LIFO FM, 2%% balance, %zu "
              "starts, scale %.2f\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv, "Pruning quality/CPU tradeoff");
  return 0;
}
