// Service-layer latency bench: cold one-shot requests vs cache-hit
// resubmission against an in-process vpartd, plus a concurrent
// offered-load sweep.
//
// "Cold" measures the full first-contact path: connect, frame, parse,
// instance generation, engine run, response.  "Warm" resubmits the
// identical request, which the deterministic result cache answers
// without re-running the engine — the speedup column is the service's
// value proposition for repeated-query workloads (parameter sweeps,
// dashboards, CI).  The acceptance bar is >= 5x.
//
//   --cases ibm01       presets to serve
//   --runs 8            warm resubmissions / cold samples per case
//   --scale 0.3         instance scale
//   --threads 2         server worker count
//   --seed 1            base request seed
//   --json PATH         append JSON-lines rows (BENCH_service.json)
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/util/histogram.h"
#include "src/util/shutdown.h"

using namespace vlsipart;
using namespace vlsipart::bench;
using namespace vlsipart::service;

namespace {

SubmitRequest case_request(const std::string& name, const BenchOptions& opt,
                           std::uint64_t seed) {
  SubmitRequest req;
  req.instance.preset = name;
  req.instance.scale = opt.scale;
  req.engine = "ml";
  req.starts = 2;
  req.vcycles = 1;
  req.seed = seed;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01",
                                         /*default_runs=*/8,
                                         /*default_scale=*/0.3);
  ServiceConfig config;
  config.endpoint.tcp_port = 0;  // kernel-assigned loopback port
  config.workers = opt.threads;
  config.queue_capacity = 256;
  PartitionService server(std::move(config));
  server.start();
  const Endpoint endpoint = server.bound_endpoint();

  TextTable table({"case", "cold ms", "warm ms", "speedup", "conc rps",
                   "conc p95 ms"});
  for (const std::string& name : opt.cases) {
    // Cold one-shots: a fresh generator seed per sample defeats both
    // caches, so each request pays instance build + engine run.
    LatencyHistogram cold;
    for (std::size_t i = 0; i < opt.runs; ++i) {
      SubmitRequest req = case_request(name, opt, opt.seed);
      req.instance.gen_seed = 1000 + i;
      req.use_result_cache = false;
      ServiceClient client;
      if (!client.connect(endpoint)) {
        std::fprintf(stderr, "bench_service: %s\n", client.error().c_str());
        return 1;
      }
      const WallTimer timer;
      const PartitionReply reply = client.submit_and_wait(req);
      if (!reply.ok) {
        std::fprintf(stderr, "bench_service: cold request failed: %s\n",
                     reply.error.c_str());
        return 1;
      }
      cold.record(timer.elapsed());
    }

    // Warm resubmissions: identical request, answered from the result
    // cache after one priming run.
    const SubmitRequest warm_req = case_request(name, opt, opt.seed);
    {
      ServiceClient client;
      if (!client.connect(endpoint)) return 1;
      const PartitionReply prime = client.submit_and_wait(warm_req);
      if (!prime.ok) {
        std::fprintf(stderr, "bench_service: priming failed: %s\n",
                     prime.error.c_str());
        return 1;
      }
    }
    LatencyHistogram warm;
    for (std::size_t i = 0; i < opt.runs; ++i) {
      ServiceClient client;
      if (!client.connect(endpoint)) return 1;
      const WallTimer timer;
      const PartitionReply reply = client.submit_and_wait(warm_req);
      if (!reply.ok || reply.cache != "result") {
        std::fprintf(stderr,
                     "bench_service: warm request not served from cache "
                     "(cache=%s error=%s)\n",
                     reply.cache.c_str(), reply.error.c_str());
        return 1;
      }
      warm.record(timer.elapsed());
    }

    // Offered load: 2x runs concurrent clients with mixed (cachable)
    // seeds — throughput and tail latency under contention.
    const std::size_t concurrent = opt.runs * 2;
    std::vector<double> latencies(concurrent, -1.0);
    std::vector<std::thread> threads;
    threads.reserve(concurrent);
    const WallTimer sweep_timer;
    for (std::size_t i = 0; i < concurrent; ++i) {
      threads.emplace_back([&, i] {
        SubmitRequest req =
            case_request(name, opt, opt.seed + (i % 4));
        ServiceClient client;
        if (!client.connect(endpoint)) return;
        const WallTimer timer;
        const PartitionReply reply = client.submit_and_wait(req);
        if (reply.ok) latencies[i] = timer.elapsed();
      });
    }
    for (std::thread& t : threads) t.join();
    const double sweep_wall = sweep_timer.elapsed();
    LatencyHistogram conc;
    std::size_t ok = 0;
    for (const double s : latencies) {
      if (s >= 0.0) {
        conc.record(s);
        ++ok;
      }
    }
    if (ok != concurrent) {
      std::fprintf(stderr, "bench_service: %zu/%zu concurrent requests ok\n",
                   ok, concurrent);
      return 1;
    }

    const double cold_ms = cold.mean_seconds() * 1e3;
    const double warm_ms = warm.mean_seconds() * 1e3;
    const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    table.add_row({name, fmt_fixed(cold_ms, 2), fmt_fixed(warm_ms, 3),
                   fmt_fixed(speedup, 1),
                   fmt_fixed(static_cast<double>(ok) / sweep_wall, 1),
                   fmt_fixed(conc.quantile(0.95) * 1e3, 2)});
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "bench_service: FAIL %s cache-hit speedup %.1fx < 5x\n",
                   name.c_str(), speedup);
      server.stop();
      return 1;
    }
  }

  emit(table, opt, "Service latency: cold one-shot vs cache-hit "
                   "resubmission (threads = server workers)");
  server.stop();
  return 0;
}
