// Ablation of Krishnamurthy lookahead tie-breaking [30], one of the FM
// refinements the paper's footnote 1 lists in the heuristic lineage.
//
// Expected shape: depth 2-3 improves average cut over arbitrary LIFO
// tie-breaking at modest runtime cost; deeper lookahead yields
// diminishing returns while the per-selection cost keeps growing.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  std::vector<std::string> header = {"Lookahead"};
  for (const auto& name : opt.cases) {
    header.push_back(name + " cut");
    header.push_back(name + " cpu");
  }
  TextTable table(std::move(header));

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  for (const int depth : {1, 2, 3, 4}) {
    FmConfig cfg = our_lifo();
    cfg.lookahead_depth = depth;
    std::vector<std::string> row = {
        depth == 1 ? "off (FM)" : "depth " + std::to_string(depth)};
    for (const Hypergraph& h : graphs) {
      const PartitionProblem problem = make_problem(h, 0.02);
      FlatFmPartitioner engine(cfg);
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      row.push_back(
          fmt_min_avg(static_cast<double>(r.min_cut()), r.avg_cut()));
      row.push_back(fmt_fixed(r.avg_cpu_seconds(), 4));
    }
    table.add_row(std::move(row));
  }

  std::printf("Krishnamurthy lookahead ablation: flat FM, 2%% balance, "
              "min/avg over %zu runs, scale %.2f\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv, "Lookahead depth sweep");
  return 0;
}
