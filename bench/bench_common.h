// Shared helpers for the table-regeneration bench binaries.
//
// Every bench accepts:
//   --cases ibm01,ibm02,...   instance presets (default per bench)
//   --runs N                  independent starts per cell (default per bench)
//   --scale F                 instance size scale factor (1.0 = published
//                             ISPD98 sizes; defaults < 1 keep default bench
//                             runs to a few minutes)
//   --seed S                  base RNG seed
//   --threads T               worker threads for multistart harnesses
//                             (default 1 = serial; results are bit-identical
//                             at any T, see DESIGN.md "Threading model")
//   --refine-threads N        intra-run refinement threads (default 1 =
//                             serial FM; >1 = the synchronous-round
//                             parallel engine, bit-identical at any N > 1)
//   --coarsen-threads N       intra-run coarsening threads (default 1 =
//                             serial; >1 = deterministic parallel rating)
//   --full                    paper-faithful sizes and run counts
//   --csv                     emit CSV instead of aligned text
//   --json PATH               also append every emitted table to PATH as
//                             JSON lines (per-row metrics + wall/CPU seconds
//                             + thread count), for cross-PR perf tracking
//
// The "Reported ..." configurations of Tables 2 and 3 model a weak
// independent implementation (Alpert [2]) as the same engine with the
// WORST combination of implicit decisions, per the paper's thesis that
// "silent implementation choices can swamp the typical claimed
// improvements of algorithm innovations".
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/hypergraph.h"
#include "src/part/core/fm_config.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace vlsipart::bench {

struct BenchOptions {
  std::vector<std::string> cases;
  std::size_t runs = 10;
  double scale = 0.5;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  std::size_t refine_threads = 1;
  std::size_t coarsen_threads = 1;
  bool csv = false;
  bool full = false;
  std::string json;  // empty = no JSON output

  /// Stamp the intra-run thread knobs onto an engine config (applied by
  /// the shared config helpers below, so every bench honors the flags).
  FmConfig apply(FmConfig fm) const {
    fm.refine_threads = refine_threads;
    return fm;
  }
};

/// Wall/CPU consumed by this bench process so far.  The baseline is set
/// at the first call; parse_options primes it at startup.
inline std::pair<double, double> bench_elapsed() {
  static const WallTimer wall;
  static const double cpu0 = process_cpu_seconds();
  return {wall.elapsed(), process_cpu_seconds() - cpu0};
}

inline BenchOptions parse_options(int argc, char** argv,
                                  const std::string& default_cases,
                                  std::size_t default_runs,
                                  double default_scale,
                                  const std::vector<std::string>& extra = {}) {
  bench_elapsed();  // start the process-wide wall/CPU baseline
  const CliArgs args(argc, argv);
  // Common vocabulary + the caller's bench-specific options; an
  // unrecognized spelling ("--thread 8") aborts with a suggestion
  // instead of silently running the default experiment.
  std::vector<std::string> allowed = {"cases",          "runs",
                                      "scale",          "seed",
                                      "threads",        "refine-threads",
                                      "coarsen-threads", "full",
                                      "csv",            "json"};
  allowed.insert(allowed.end(), extra.begin(), extra.end());
  args.check_known(allowed);
  BenchOptions opt;
  opt.full = args.get_bool("full");
  opt.cases = args.get_list("cases", default_cases);
  opt.runs = static_cast<std::size_t>(args.get_int(
      "runs", opt.full ? 100 : static_cast<std::int64_t>(default_runs)));
  opt.scale = args.get_double("scale", opt.full ? 1.0 : default_scale);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  opt.refine_threads =
      static_cast<std::size_t>(args.get_int("refine-threads", 1));
  opt.coarsen_threads =
      static_cast<std::size_t>(args.get_int("coarsen-threads", 1));
  opt.csv = args.get_bool("csv");
  opt.json = args.get("json", "");
  return opt;
}

inline Hypergraph make_instance(const std::string& name, double scale) {
  return generate_netlist(preset(name).scaled(scale));
}

inline PartitionProblem make_problem(const Hypergraph& h, double tolerance) {
  PartitionProblem p;
  p.graph = &h;
  p.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), tolerance);
  return p;
}

/// "Our LIFO FM": the strong implicit-decision combination.
inline FmConfig our_lifo() {
  FmConfig cfg;
  cfg.zero_gain_update = ZeroGainUpdate::kNonzero;
  cfg.insert_order = InsertOrder::kLifo;
  cfg.tie_break = TieBreak::kAway;
  return cfg;
}

/// "Reported LIFO": the weak-testbed model — All-dgain updates, FIFO
/// reinsertion, Part0 bias.
inline FmConfig reported_lifo() {
  FmConfig cfg;
  cfg.zero_gain_update = ZeroGainUpdate::kAll;
  cfg.insert_order = InsertOrder::kFifo;
  cfg.tie_break = TieBreak::kPart0;
  return cfg;
}

/// "Our CLIP": CLIP with the corking fix (oversized cells excluded from
/// the gain structure).
inline FmConfig our_clip() {
  FmConfig cfg = our_lifo();
  cfg.clip = true;
  cfg.exclude_oversized = true;
  return cfg;
}

/// "Reported CLIP": CLIP exactly as published [15] — susceptible to
/// corking on actual-area instances.
inline FmConfig reported_clip() {
  FmConfig cfg = reported_lifo();
  cfg.clip = true;
  cfg.exclude_oversized = false;
  return cfg;
}

/// ML wrapper with the given flat policy at every level.
inline MlConfig ml_config(const FmConfig& refine) {
  MlConfig config;
  config.refine = refine;
  return config;
}

/// ML wrapper honoring the bench's intra-run thread flags
/// (--refine-threads / --coarsen-threads).
inline MlConfig ml_config(const FmConfig& refine, const BenchOptions& opt) {
  MlConfig config;
  config.refine = opt.apply(refine);
  config.coarsen.coarsen_threads = opt.coarsen_threads;
  return config;
}

inline void emit(const TextTable& table, bool csv, const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", (csv ? table.to_csv() : table.to_string()).c_str());
  std::fflush(stdout);
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Append one JSON-lines object per table to `path`: title, thread count,
/// process wall/CPU seconds at emission time, and every row keyed by its
/// column header.  One line per emit keeps the file trivially appendable
/// and diffable across PRs.
inline void emit_json(const TextTable& table, const BenchOptions& opt,
                      const std::string& title) {
  if (opt.json.empty()) return;
  std::FILE* f = std::fopen(opt.json.c_str(), "a");
  if (!f) {
    std::fprintf(stderr, "bench: cannot open --json file %s\n",
                 opt.json.c_str());
    return;
  }
  const auto [wall, cpu] = bench_elapsed();
  std::fprintf(f,
               "{\"title\":\"%s\",\"threads\":%zu,\"seed\":%llu,"
               "\"scale\":%.4f,\"wall_seconds\":%.6f,\"cpu_seconds\":%.6f,"
               "\"rows\":[",
               json_escape(title).c_str(), opt.threads,
               static_cast<unsigned long long>(opt.seed), opt.scale, wall,
               cpu);
  const auto& header = table.header();
  for (std::size_t r = 0; r < table.data().size(); ++r) {
    const auto& row = table.data()[r];
    std::fprintf(f, "%s{", r == 0 ? "" : ",");
    for (std::size_t c = 0; c < row.size() && c < header.size(); ++c) {
      std::fprintf(f, "%s\"%s\":\"%s\"", c == 0 ? "" : ",",
                   json_escape(header[c]).c_str(),
                   json_escape(row[c]).c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

/// Preferred emitter: text/CSV to stdout plus optional --json sidecar.
inline void emit(const TextTable& table, const BenchOptions& opt,
                 const std::string& title) {
  emit(table, opt.csv, title);
  emit_json(table, opt, title);
}

}  // namespace vlsipart::bench
