// Fixed-vertices study (Sec. 2.1 / companion paper [9]).
//
// "In top-down placement, almost all hypergraph partitioning instances
// have many vertices fixed in partitions due to terminal propagation or
// pad locations.  ...the presence of fixed terminals fundamentally
// changes the nature of the partitioning problem", suggesting heuristics
// "optimized for speed and 'easy' instances".
//
// Protocol: compute a reference solution with the ML engine; fix a
// fraction f of randomly chosen vertices at their reference sides; run a
// flat FM multistart on the constrained instance.
//
// Expected shape: as f grows, average cut and run-to-run spread both
// shrink and runs get faster — fixed instances are "easier".
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  TextTable table({"case", "fixed %", "min cut", "avg cut", "stddev",
                   "avg cpu (s)"});

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem base = make_problem(h, 0.02);

    // Reference solution from the strongest engine.
    MlPartitioner reference_engine(ml_config(our_lifo()));
    const MultistartResult reference =
        run_multistart(base, reference_engine, 4, opt.seed ^ 0xF15EDULL);
    const std::vector<PartId>& ref = reference.best_parts;

    for (const double fraction : {0.0, 0.05, 0.15, 0.30, 0.50}) {
      PartitionProblem problem = base;
      problem.fixed.assign(h.num_vertices(), kNoPart);
      Rng pick(opt.seed + 99);
      const auto target = static_cast<std::size_t>(
          fraction * static_cast<double>(h.num_vertices()));
      std::size_t fixed_count = 0;
      while (fixed_count < target) {
        const auto v = static_cast<VertexId>(pick.below(h.num_vertices()));
        if (problem.fixed[v] == kNoPart) {
          problem.fixed[v] = ref[v];
          ++fixed_count;
        }
      }
      FlatFmPartitioner engine(our_lifo());
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      const Sample cuts = r.cut_sample();
      table.add_row({name, fmt_fixed(fraction * 100.0, 0),
                     std::to_string(r.min_cut()), fmt_fixed(r.avg_cut(), 1),
                     fmt_fixed(cuts.stddev(), 1),
                     fmt_fixed(r.avg_cpu_seconds(), 4)});
    }
  }

  std::printf("Fixed-terminal study [9]: flat LIFO FM, 2%% balance, %zu "
              "runs, scale %.2f\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv,
       "Effect of fixed vertices on solution quality and variance");
  return 0;
}
