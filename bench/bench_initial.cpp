// Initial-solution-generator ablation.
//
// Hauck and Borriello [20] "note the effect of initial solution
// generation" among the hidden implementation decisions (Sec. 2.2).
// Compares randomized-LPT starts against BFS region-growing starts for
// the flat FM engine, and both schemes at the coarsest level of the ML
// engine.
//
// Expected shape: BFS starts give flat FM a much lower *initial* cut but
// converge to similar (sometimes slightly better) final cuts with less
// work; at the ML coarsest level the effect is muted because the coarse
// graph is tiny.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  std::vector<std::string> header = {"engine", "initial"};
  for (const auto& name : opt.cases) {
    header.push_back(name + " cut");
    header.push_back(name + " cpu");
  }
  TextTable table(std::move(header));

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  const InitialScheme schemes[] = {InitialScheme::kRandom,
                                   InitialScheme::kBfs,
                                   InitialScheme::kMixed};

  for (const InitialScheme scheme : schemes) {
    std::vector<std::string> row = {"flat FM", name_of(scheme)};
    for (const Hypergraph& h : graphs) {
      const PartitionProblem problem = make_problem(h, 0.02);
      FlatFmPartitioner engine(our_lifo(), "", scheme);
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      row.push_back(
          fmt_min_avg(static_cast<double>(r.min_cut()), r.avg_cut()));
      row.push_back(fmt_fixed(r.avg_cpu_seconds(), 4));
    }
    table.add_row(std::move(row));
  }
  for (const InitialScheme scheme : schemes) {
    std::vector<std::string> row = {"ML (coarsest)", name_of(scheme)};
    for (const Hypergraph& h : graphs) {
      const PartitionProblem problem = make_problem(h, 0.02);
      MlConfig config = ml_config(our_lifo());
      config.initial_scheme = scheme;
      MlPartitioner engine(config);
      const MultistartResult r =
          run_multistart(problem, engine, opt.runs, opt.seed);
      row.push_back(
          fmt_min_avg(static_cast<double>(r.min_cut()), r.avg_cut()));
      row.push_back(fmt_fixed(r.avg_cpu_seconds(), 4));
    }
    table.add_row(std::move(row));
  }

  std::printf("Initial-solution ablation [20]: 2%% balance, min/avg over "
              "%zu runs, scale %.2f\n\n",
              opt.runs, opt.scale);
  emit(table, opt.csv, "Initial solution generator");
  return 0;
}
