// Google-benchmark microbenchmarks for the performance-critical kernels:
// gain-container operations, incremental partition-state moves, one FM
// pass, and one coarsening level.  These guard the "Do make it fast
// enough / Do measure CPU time" maxims [19] — a slow testbed invalidates
// runtime-regime conclusions.
#include <benchmark/benchmark.h>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/gain_container.h"
#include "src/part/core/initial.h"
#include "src/part/ml/coarsen.h"

namespace vlsipart {
namespace {

void BM_GainContainerInsertRemove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GainContainer c(n, InsertOrder::kLifo);
  Rng rng(1);
  for (auto _ : state) {
    c.reset(64);
    for (VertexId v = 0; v < n; ++v) {
      c.insert(v, static_cast<PartId>(v & 1),
               static_cast<Gain>(v % 129) - 64, rng);
    }
    for (VertexId v = 0; v < n; ++v) c.remove(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_GainContainerInsertRemove)->Arg(1024)->Arg(16384);

void BM_GainContainerUpdateKey(benchmark::State& state) {
  constexpr std::size_t kN = 4096;
  GainContainer c(kN, InsertOrder::kLifo);
  Rng rng(2);
  c.reset(64);
  for (VertexId v = 0; v < kN; ++v) {
    c.insert(v, static_cast<PartId>(v & 1), 0, rng);
  }
  VertexId v = 0;
  for (auto _ : state) {
    c.update_key(v, (v & 1) ? 3 : -3, rng);
    v = (v + 1) % kN;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GainContainerUpdateKey);

void BM_PartitionStateMove(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  PartitionState s(h);
  Rng rng(3);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
  s.assign(parts);
  VertexId v = 0;
  for (auto _ : state) {
    s.move(v);
    v = static_cast<VertexId>((v + 17) % h.num_vertices());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionStateMove);

void BM_FmFullRefine(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  PartitionProblem p;
  p.graph = &h;
  p.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.02);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto parts = random_initial(p, rng);
    PartitionState s(h);
    s.assign(parts);
    FmRefiner refiner(p, FmConfig{});
    benchmark::DoNotOptimize(refiner.refine(s, rng));
  }
}
BENCHMARK(BM_FmFullRefine)->Unit(benchmark::kMillisecond);

// Delta-gain-heavy scenario: a medium instance with many huge clock/
// reset-class nets (the shape vlsipart::gen deliberately produces).  The
// classic per-pin gain-update walk makes every move O(pins of all
// incident nets); the net-state-aware inner loop skips nets whose pin
// counts stay >= 2 on both sides across the move.  Reported rate is
// FM *moves per second* (items/s).
void BM_FmDeltaGainLargeNets(benchmark::State& state) {
  GenConfig cfg = preset("medium");
  cfg.name = "medium-hugenets";
  cfg.num_huge_nets = 16;
  cfg.huge_net_span_fraction = 0.10;
  const Hypergraph h = generate_netlist(cfg);
  PartitionProblem p;
  p.graph = &h;
  p.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.10);
  FmRefiner refiner(p, FmConfig{});
  PartitionState s(h);
  std::uint64_t seed = 0;
  std::size_t moves = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto parts = random_initial(p, rng);
    s.assign(parts);
    const FmResult r = refiner.refine(s, rng);
    moves += r.total_moves;
    benchmark::DoNotOptimize(r.final_cut);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moves));
}
BENCHMARK(BM_FmDeltaGainLargeNets)->Unit(benchmark::kMillisecond);

void BM_CoarsenOneLevel(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(
        coarsen_once(h, CoarsenConfig{}, {}, {}, rng));
  }
}
BENCHMARK(BM_CoarsenOneLevel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vlsipart

BENCHMARK_MAIN();
