// Google-benchmark microbenchmarks for the performance-critical kernels:
// gain-container operations, incremental partition-state moves, one FM
// pass, and one coarsening level.  These guard the "Do make it fast
// enough / Do measure CPU time" maxims [19] — a slow testbed invalidates
// runtime-regime conclusions.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/gain_container.h"
#include "src/part/core/initial.h"
#include "src/part/core/parallel_refine.h"
#include "src/part/evo/evo_partitioner.h"
#include "src/part/ml/coarsen.h"
#include "src/part/ml/parallel_coarsen.h"
#include "src/part/nlevel/nlevel_graph.h"
#include "src/util/prefetch.h"
#include "src/util/thread_pool.h"

namespace vlsipart {
namespace {

void BM_GainContainerInsertRemove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GainContainer c(n, InsertOrder::kLifo);
  Rng rng(1);
  for (auto _ : state) {
    c.reset(64);
    for (VertexId v = 0; v < n; ++v) {
      c.insert(v, static_cast<PartId>(v & 1),
               static_cast<Gain>(v % 129) - 64, rng);
    }
    for (VertexId v = 0; v < n; ++v) c.remove(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_GainContainerInsertRemove)->Arg(1024)->Arg(16384);

void BM_GainContainerUpdateKey(benchmark::State& state) {
  constexpr std::size_t kN = 4096;
  GainContainer c(kN, InsertOrder::kLifo);
  Rng rng(2);
  c.reset(64);
  for (VertexId v = 0; v < kN; ++v) {
    c.insert(v, static_cast<PartId>(v & 1), 0, rng);
  }
  VertexId v = 0;
  for (auto _ : state) {
    c.update_key(v, (v & 1) ? 3 : -3, rng);
    v = (v + 1) % kN;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GainContainerUpdateKey);

void BM_PartitionStateMove(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  PartitionState s(h);
  Rng rng(3);
  std::vector<PartId> parts(h.num_vertices());
  for (auto& p : parts) p = static_cast<PartId>(rng.below(2));
  s.assign(parts);
  VertexId v = 0;
  for (auto _ : state) {
    s.move(v);
    v = static_cast<VertexId>((v + 17) % h.num_vertices());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionStateMove);

void BM_FmFullRefine(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  PartitionProblem p;
  p.graph = &h;
  p.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.02);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto parts = random_initial(p, rng);
    PartitionState s(h);
    s.assign(parts);
    FmRefiner refiner(p, FmConfig{});
    benchmark::DoNotOptimize(refiner.refine(s, rng));
  }
}
BENCHMARK(BM_FmFullRefine)->Unit(benchmark::kMillisecond);

// Delta-gain-heavy scenario: a medium instance with many huge clock/
// reset-class nets (the shape vlsipart::gen deliberately produces).  The
// classic per-pin gain-update walk makes every move O(pins of all
// incident nets); the net-state-aware inner loop skips nets whose pin
// counts stay >= 2 on both sides across the move.  Reported rate is
// FM *moves per second* (items/s).
void BM_FmDeltaGainLargeNets(benchmark::State& state) {
  GenConfig cfg = preset("medium");
  cfg.name = "medium-hugenets";
  cfg.num_huge_nets = 16;
  cfg.huge_net_span_fraction = 0.10;
  const Hypergraph h = generate_netlist(cfg);
  PartitionProblem p;
  p.graph = &h;
  p.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.10);
  FmRefiner refiner(p, FmConfig{});
  PartitionState s(h);
  std::uint64_t seed = 0;
  std::size_t moves = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto parts = random_initial(p, rng);
    s.assign(parts);
    const FmResult r = refiner.refine(s, rng);
    moves += r.total_moves;
    benchmark::DoNotOptimize(r.final_cut);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moves));
}
BENCHMARK(BM_FmDeltaGainLargeNets)->Unit(benchmark::kMillisecond);

// Sparse-reset cost of the SoA gain container: a pass touches a handful
// of buckets out of a key range sized for the max weighted degree, and
// reset() must pay O(touched + contained), not O(key range).  The key
// range here is deliberately huge (max_abs_key = 32768 -> 65537 buckets
// per side) while only Arg(0) vertices are inserted; throughput is
// reported per inserted vertex, so a reset secretly sweeping the bucket
// array would crater the rate at the small Arg.
void BM_GainBucketSparseReset(benchmark::State& state) {
  const auto touched = static_cast<std::size_t>(state.range(0));
  constexpr Gain kMaxAbsKey = 32768;
  GainContainer c(touched, InsertOrder::kLifo);
  Rng rng(7);
  c.reset(kMaxAbsKey);  // first reset pays the full initialization
  for (auto _ : state) {
    for (VertexId v = 0; v < touched; ++v) {
      const Gain key =
          static_cast<Gain>((static_cast<Gain>(v) * 2654435761LL) %
                            (2 * kMaxAbsKey + 1)) -
          kMaxAbsKey;
      c.insert(v, static_cast<PartId>(v & 1), key, rng);
    }
    c.reset(kMaxAbsKey);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(touched));
}
BENCHMARK(BM_GainBucketSparseReset)->Arg(64)->Arg(1024);

// CSR pin-walk gather with and without software prefetch, modelling the
// refiner's delta-gain inner loop on an ibm18-class instance: for each
// net, gather the three per-vertex metadata streams the refiner reads
// per pin (bucket slot, lock byte, part id).  Arg(0) = plain walk,
// Arg(1) = prefetched walk with the refiner's gating (distance 8, nets
// >= 16 pins only).  The combined per-vertex footprint exceeds L1/L2 so
// the gathers genuinely miss; on hardware where they do not (or with a
// compiler that ignores the hint) the two variants simply track.
template <bool kPrefetch>
std::int64_t pin_walk_sum(const Hypergraph& h,
                          const std::vector<std::uint32_t>& bucket,
                          const std::vector<std::uint8_t>& locked,
                          const std::vector<PartId>& parts) {
  constexpr std::size_t kDistance = 8;
  constexpr std::size_t kMinPins = 16;
  std::int64_t sum = 0;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(static_cast<EdgeId>(e));
    if constexpr (kPrefetch) {
      const std::size_t prefetch_end =
          pins.size() >= kMinPins ? pins.size() - kDistance : 0;
      for (std::size_t j = 0; j < pins.size(); ++j) {
        if (j < prefetch_end) {
          const VertexId ahead = pins[j + kDistance];
          VP_PREFETCH_READ(&bucket[ahead]);
          VP_PREFETCH_READ(&locked[ahead]);
          VP_PREFETCH_READ(&parts[ahead]);
        }
        const VertexId v = pins[j];
        sum += bucket[v] + locked[v] + parts[v];
      }
    } else {
      for (const VertexId v : pins) {
        sum += bucket[v] + locked[v] + parts[v];
      }
    }
  }
  return sum;
}

void BM_PinWalkPrefetch(benchmark::State& state) {
  GenConfig cfg = preset("ibm18");
  cfg.num_huge_nets = 16;
  cfg.huge_net_span_fraction = 0.10;
  static const Hypergraph h = generate_netlist(cfg);
  Rng rng(11);
  std::vector<std::uint32_t> bucket(h.num_vertices());
  std::vector<std::uint8_t> locked(h.num_vertices());
  std::vector<PartId> parts(h.num_vertices());
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    bucket[v] = static_cast<std::uint32_t>(rng.below(1 << 16));
    locked[v] = static_cast<std::uint8_t>(rng.below(2));
    parts[v] = static_cast<PartId>(rng.below(2));
  }
  const bool prefetch = state.range(0) != 0;
  std::int64_t pins_walked = 0;
  for (auto _ : state) {
    const std::int64_t sum = prefetch
                                 ? pin_walk_sum<true>(h, bucket, locked, parts)
                                 : pin_walk_sum<false>(h, bucket, locked, parts);
    benchmark::DoNotOptimize(sum);
    pins_walked += static_cast<std::int64_t>(h.num_pins());
  }
  state.SetItemsProcessed(pins_walked);
}
BENCHMARK(BM_PinWalkPrefetch)->Arg(0)->Arg(1);

// Synchronous-round parallel refinement at Arg(0) threads on a medium
// instance.  The result is bit-identical at every arg (the determinism
// ctest enforces that); the arg sweep measures the round protocol's
// scaling — freeze/propose fan out over vertex shards, the prefix-scan
// commit stays serial.  On single-core runners the >1 args measure pure
// round-protocol overhead over the 1-thread-pool case.
void BM_ParallelRefine(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  PartitionProblem p;
  p.graph = &h;
  p.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.02);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto parts = random_initial(p, rng);
    PartitionState s(h);
    s.assign(parts);
    ParallelFmRefiner refiner(p, FmConfig{}, &pool);
    benchmark::DoNotOptimize(refiner.refine(s, rng));
  }
}
BENCHMARK(BM_ParallelRefine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Deterministic parallel heavy-edge coarsening, one level, at Arg(0)
// threads: the rating phase shards over vertices, resolution is serial.
void BM_ParallelCoarsenOneLevel(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  ContractionMemory memory;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel_coarsen_once(h, CoarsenConfig{}, {}, {}, &pool, &memory));
  }
}
BENCHMARK(BM_ParallelCoarsenOneLevel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CoarsenOneLevel(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(
        coarsen_once(h, CoarsenConfig{}, {}, {}, rng));
  }
}
BENCHMARK(BM_CoarsenOneLevel)->Unit(benchmark::kMillisecond);

// The n-level undo log: contract a random half of the medium instance
// one vertex at a time (untimed), then time the full uncontraction
// unwind — the per-uncontraction cost is what keeps n-level viable
// (O(degree of the split vertex), no graph rebuilds).
void BM_NlevelUncontract(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("medium"));
  NlevelGraph g;
  // Deterministic contraction schedule, precomputed once: pair vertex
  // 2i+1 into 2i (both always active at contraction time).
  std::vector<std::pair<VertexId, VertexId>> schedule;
  for (VertexId u = 0; u + 1 < h.num_vertices(); u += 2) {
    schedule.push_back({u, static_cast<VertexId>(u + 1)});
  }
  std::vector<EdgeId> reactivated;
  for (auto _ : state) {
    state.PauseTiming();
    g.bind(h);
    for (const auto& [u, v] : schedule) g.contract(u, v);
    state.ResumeTiming();
    while (g.num_contractions() > 0) {
      reactivated.clear();
      benchmark::DoNotOptimize(g.uncontract(&reactivated));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.size()));
}
BENCHMARK(BM_NlevelUncontract)->Unit(benchmark::kMillisecond);

// One memetic generation over a seeded population on the tiny instance:
// the steady-state cost of the evolutionary loop (offspring V-cycles +
// elitist replacement), dominated by the recombination descents.
void BM_EvoGeneration(benchmark::State& state) {
  const Hypergraph h = generate_netlist(preset("tiny"));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), 0.10);
  EvoConfig config;
  config.population = 4;
  config.generations = 1;
  config.offspring = 4;
  EvoPartitioner engine(config);
  std::uint64_t seed = 0;
  std::vector<PartId> parts;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(engine.run(problem, rng, parts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.offspring));
}
BENCHMARK(BM_EvoGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vlsipart

#ifndef VLSIPART_BUILD_TYPE
#define VLSIPART_BUILD_TYPE "unknown"
#endif
#ifndef VLSIPART_CXX_FLAGS
#define VLSIPART_CXX_FLAGS ""
#endif

// Custom main instead of BENCHMARK_MAIN(): stamp the *repository's*
// build type and optimization flags into the JSON context.  The
// library_build_type field google-benchmark emits describes how
// libbenchmark itself was compiled (the system package is a debug
// build), not this code — comparisons must key off vlsipart_build_type.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("vlsipart_build_type", VLSIPART_BUILD_TYPE);
  benchmark::AddCustomContext("vlsipart_cxx_flags", VLSIPART_CXX_FLAGS);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
