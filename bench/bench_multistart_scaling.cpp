// Scaling report for the deterministic parallel multistart engine:
// wall-clock speedup and per-start CPU invariance at 1/2/4/8 threads.
//
// Every row re-runs the same multistart (same instance, same seed) at a
// different thread count and checks that the per-start cut vector and the
// best cut are bit-identical to the serial run — the determinism
// guarantee of src/part/core/multistart.h, surfaced as a bench column so
// regressions are visible in the output, not just in ctest.
//
// Expected shape: wall seconds drop roughly linearly until memory
// bandwidth and the instance's start-length variance flatten the curve;
// "cpu/start" stays within timer noise of the serial value because starts
// do identical work regardless of scheduling.
//
//   --threads-list 1,2,4,8   thread counts to sweep (default: powers of
//                            two up to the machine width, always
//                            including 2 so the determinism check still
//                            exercises interleaving on one core)
//   --ml                     use the multilevel engine instead of flat FM
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "src/util/thread_pool.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01",
                                         /*default_runs=*/64,
                                         /*default_scale=*/0.5,
                                         {"threads-list", "ml"});
  const CliArgs args(argc, argv);
  // Detect hardware concurrency exactly once.  hardware_concurrency()
  // legitimately returns 0 when the count is unknowable (common in
  // containers); that is NOT the same as a single-core machine, and the
  // single-core warning must not fire for it.
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw == 0 ? 1 : static_cast<std::size_t>(hw_raw);
  std::string default_list = "1,2";
  for (std::size_t t = 4; t <= std::min<std::size_t>(hw, 64); t *= 2) {
    default_list += "," + std::to_string(t);
  }
  std::vector<std::size_t> thread_counts;
  for (const auto& s : args.get_list("threads-list", default_list)) {
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(s, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != s.size() || value == 0) {
      std::fprintf(stderr,
                   "bench_multistart_scaling: bad --threads-list entry "
                   "'%s' (want positive integers, e.g. 1,2,4,8)\n",
                   s.c_str());
      return 2;
    }
    thread_counts.push_back(static_cast<std::size_t>(value));
  }
  const bool use_ml = args.get_bool("ml");

  auto make_engine = [&]() -> std::unique_ptr<Bipartitioner> {
    if (use_ml) return std::make_unique<MlPartitioner>(ml_config(our_lifo()));
    return std::make_unique<FlatFmPartitioner>(our_lifo());
  };

  for (const auto& name : opt.cases) {
    const Hypergraph h = make_instance(name, opt.scale);
    const PartitionProblem problem = make_problem(h, 0.02);
    std::printf(
        "=== multistart scaling, %s (%zu cells, %zu starts, %s, "
        "%s hardware threads)\n\n",
        name.c_str(), h.num_vertices(), opt.runs,
        make_engine()->name().c_str(),
        hw_raw == 0 ? "unknown" : std::to_string(hw).c_str());
    if (hw_raw == 1) {
      std::printf(
          "note: single hardware thread — expect no wall-clock speedup; "
          "the sweep still verifies determinism under interleaving.\n\n");
    }

    TextTable table({"threads", "wall s", "speedup", "cpu s", "cpu/start ms",
                     "best cut", "identical"});
    MultistartResult serial;
    for (const std::size_t t : thread_counts) {
      auto engine = make_engine();
      const MultistartResult r =
          run_multistart(problem, *engine, opt.runs, opt.seed, t);
      if (t == thread_counts.front()) serial = r;
      bool identical = r.best_cut == serial.best_cut &&
                       r.best_parts == serial.best_parts &&
                       r.starts.size() == serial.starts.size();
      for (std::size_t i = 0; identical && i < r.starts.size(); ++i) {
        identical = r.starts[i].cut == serial.starts[i].cut &&
                    r.starts[i].feasible == serial.starts[i].feasible;
      }
      table.add_row(
          {std::to_string(t), fmt_fixed(r.wall_seconds, 3),
           fmt_fixed(serial.wall_seconds / r.wall_seconds, 2) + "x",
           fmt_fixed(r.total_cpu_seconds, 3),
           fmt_fixed(1e3 * r.avg_cpu_seconds(), 3),
           std::to_string(static_cast<long long>(r.best_cut)),
           identical ? "yes" : "NO"});
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at %zu threads on %s\n", t,
                     name.c_str());
        return 1;
      }
    }
    emit(table, opt, "Multistart scaling (serial-relative speedup)");
  }
  return 0;
}
