// Regenerates Table 2 of the paper: "Reported LIFO" vs "Our LIFO" FM.
//
// The paper contrasts its own LIFO FM against the LIFO FM results
// reported by Alpert [2] on the same benchmarks and finds a substantial
// gap — evidence that silent implementation choices swamp claimed
// algorithmic improvements.  We model the "Reported" implementation as
// the same engine with the worst implicit-decision combination (see
// bench_common.h) and print min/avg cuts at 2% and 10% tolerance.
//
// Expected shape: "Our LIFO" beats "Reported LIFO" by a large factor on
// average cut at both tolerances.
#include "bench/bench_common.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5);

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  std::vector<std::string> header = {"Tolerance", "Algorithm"};
  for (const auto& name : opt.cases) header.push_back(name);
  TextTable table(std::move(header));

  const double tolerances[] = {0.02, 0.10};
  struct Variant {
    const char* label;
    FmConfig cfg;
  };
  const Variant variants[] = {
      {"Reported LIFO", reported_lifo()},
      {"Our LIFO", our_lifo()},
  };

  for (const double tol : tolerances) {
    for (const Variant& variant : variants) {
      std::vector<std::string> row = {
          fmt_fixed(tol * 100.0, 0) + "%", variant.label};
      for (const Hypergraph& h : graphs) {
        const PartitionProblem problem = make_problem(h, tol);
        FlatFmPartitioner engine(variant.cfg);
        const MultistartResult r =
            run_multistart(problem, engine, opt.runs, opt.seed, opt.threads);
        row.push_back(
            fmt_min_avg(static_cast<double>(r.min_cut()), r.avg_cut()));
      }
      table.add_row(std::move(row));
    }
  }

  std::printf(
      "Table 2: LIFO FM, weak-implementation model vs ours; min/avg over "
      "%zu runs, scale %.2f\n\n",
      opt.runs, opt.scale);
  emit(table, opt, "LIFO FM comparison");
  return 0;
}
