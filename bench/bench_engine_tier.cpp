// Engine-tier comparison: the five --engine choices of vpart (flat LIFO,
// flat CLIP, ML, n-level, memetic) head to head on ibm-class instances —
// min/avg cut and CPU per engine at equal multistart budgets, plus each
// engine's best-seen cut so the n-level/evo acceptance bar ("beat the
// flat-FM best seen") is read straight off the table.
//
// The evo engine runs fewer starts (each start is an entire population
// evolution, ~population + generations*offspring ML descents); its
// --runs are divided by the configured work factor so the table compares
// comparable CPU, and the CPU column reports what was actually spent.
//
// Default: ibm01-03 at scale 0.3, 20 runs.  EXPERIMENTS.md tables use
// --cases ibm01,ibm02,ibm03 --scale 0.3 --runs 20 --csv.
#include <memory>

#include "bench/bench_common.h"
#include "src/part/evo/evo_partitioner.h"
#include "src/part/nlevel/nlevel_partitioner.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01,ibm02,ibm03",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.3);

  std::vector<Hypergraph> graphs;
  for (const auto& name : opt.cases) {
    graphs.push_back(make_instance(name, opt.scale));
  }

  std::printf(
      "Engine tier: min/avg cut and CPU, 10%% balance, %zu runs, scale "
      "%.2f\n\n",
      opt.runs, opt.scale);

  struct EngineSpec {
    const char* name;
    std::size_t runs_divisor;  // evo amortizes many ML descents per start
  };
  const EngineSpec specs[] = {
      {"flat", 1}, {"clip", 1}, {"ml", 1}, {"nlevel", 1}, {"evo", 4},
  };

  std::vector<std::string> header = {"Engine", "Metric"};
  for (const auto& name : opt.cases) header.push_back(name);
  TextTable table(std::move(header));

  for (const EngineSpec& spec : specs) {
    const std::size_t runs =
        std::max<std::size_t>(1, opt.runs / spec.runs_divisor);
    std::vector<std::string> min_row = {spec.name, "min cut"};
    std::vector<std::string> avg_row = {spec.name, "avg cut"};
    std::vector<std::string> cpu_row = {spec.name, "CPU s"};
    for (const Hypergraph& h : graphs) {
      const PartitionProblem problem = make_problem(h, 0.10);
      std::unique_ptr<Bipartitioner> engine;
      if (std::string(spec.name) == "flat") {
        engine = std::make_unique<FlatFmPartitioner>(opt.apply(our_lifo()));
      } else if (std::string(spec.name) == "clip") {
        engine = std::make_unique<FlatFmPartitioner>(opt.apply(our_clip()));
      } else if (std::string(spec.name) == "ml") {
        engine = std::make_unique<MlPartitioner>(ml_config(our_lifo(), opt));
      } else if (std::string(spec.name) == "nlevel") {
        NlevelConfig config;
        config.refine = opt.apply(our_lifo());
        engine = std::make_unique<NlevelPartitioner>(config);
      } else {
        EvoConfig config;
        config.ml = ml_config(our_lifo(), opt);
        engine = std::make_unique<EvoPartitioner>(config);
      }
      const MultistartResult r =
          run_multistart(problem, *engine, runs, opt.seed, opt.threads);
      min_row.push_back(std::to_string(r.min_cut()));
      avg_row.push_back(fmt_fixed(r.avg_cut(), 1));
      cpu_row.push_back(fmt_fixed(r.total_cpu_seconds, 2));
    }
    table.add_row(std::move(min_row));
    table.add_row(std::move(avg_row));
    table.add_row(std::move(cpu_row));
  }
  emit(table, opt, "Engine tier (" + std::to_string(opt.runs) +
                       " starts; evo amortized)");
  return 0;
}
