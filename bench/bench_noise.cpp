// Randomization-noise decomposition (Brglez [7], cited in Sec. 3.2:
// "Which Improvements Are Due to Improved Heuristic and Which are Merely
// Due to Chance?").
//
// Two variance sources confound partitioner comparisons:
//   * within-instance: multistart spread of the heuristic on one
//     instance (heuristic randomization), and
//   * between-instance: spread across statistically identical instances
//     (benchmark sampling — here, re-seeds of the same generator preset).
// This bench reports both components plus a significance check of a real
// effect (CLIP-fix vs no fix) against the combined noise.
//
// Expected shape: both components are nonzero and of comparable order.
// The corking fix's advantage is large on average but its significance
// depends on the sample size — exactly Brglez's warning: whether a real
// effect survives the noise is a property of the experiment design, not
// just of the algorithm.
#include "bench/bench_common.h"
#include "src/eval/significance.h"

using namespace vlsipart;
using namespace vlsipart::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv, "ibm01",
                                         /*default_runs=*/20,
                                         /*default_scale=*/0.5,
                                         {"instances"});
  const CliArgs args(argc, argv);
  const auto instances =
      static_cast<std::size_t>(args.get_int("instances", 5));

  for (const auto& name : opt.cases) {
    TextTable table({"instance seed", "avg cut", "stddev (within)"});
    Sample instance_means;
    RunningStats pooled_within;
    Sample all_ours;
    Sample all_published;

    for (std::size_t i = 0; i < instances; ++i) {
      GenConfig config = preset(name).scaled(opt.scale);
      config.seed = config.seed * 131 + i;  // statistically identical twin
      const Hypergraph h = generate_netlist(config);
      const PartitionProblem problem = make_problem(h, 0.02);

      FlatFmPartitioner ours(our_clip());
      const MultistartResult r =
          run_multistart(problem, ours, opt.runs, opt.seed);
      const Sample cuts = r.cut_sample();
      instance_means.add(cuts.mean());
      pooled_within.add(cuts.stddev());
      for (const double c : cuts.values()) all_ours.add(c);

      FlatFmPartitioner published(reported_clip());
      const MultistartResult r2 =
          run_multistart(problem, published, opt.runs, opt.seed);
      const Sample published_cuts = r2.cut_sample();
      for (const double c : published_cuts.values()) {
        all_published.add(c);
      }

      table.add_row({std::to_string(config.seed),
                     fmt_fixed(cuts.mean(), 1),
                     fmt_fixed(cuts.stddev(), 1)});
    }

    std::printf("Noise decomposition on %s twins (CLIP+fix engine, 2%%, "
                "%zu starts x %zu instances, scale %.2f)\n\n",
                name.c_str(), opt.runs, instances, opt.scale);
    emit(table, opt.csv, "Per-instance multistart statistics");

    TextTable components({"component", "value"});
    components.add_row({"between-instance stddev of avg cut",
                        fmt_fixed(instance_means.stddev(), 1)});
    components.add_row({"mean within-instance stddev",
                        fmt_fixed(pooled_within.mean(), 1)});
    emit(components, opt.csv, "Variance components");

    std::printf("Effect check (pooled over all twins):\n  %s\n\n",
                describe_comparison("CLIP+fix", all_ours,
                                    "CLIP as published", all_published)
                    .c_str());
  }
  return 0;
}
