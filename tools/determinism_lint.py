#!/usr/bin/env python3
"""DEPRECATED: determinism_lint.py is now a shim around vpart_lint.

The regex lint that lived here was retired in favor of
``tools/vpart_lint``, a token-level C++ analyzer (see DESIGN.md §12)
that covers the same eight determinism rules without the
keyword-in-a-string/comment false-positive class, plus knob-completeness
and lock-discipline checking.  This script remains only so existing
invocations (CI configs, muscle memory) keep working: it locates the
built binary and execs it with the same arguments and the same exit-code
contract (0 clean, 1 findings, 2 usage error).

Set VPART_LINT to the binary path, or build it first:
  cmake -B build -S . && cmake --build build --target vpart_lint
"""

import os
import sys


def find_binary(repo_root):
    env = os.environ.get("VPART_LINT")
    if env:
        return env if os.path.isfile(env) else None
    candidates = []
    for entry in sorted(os.listdir(repo_root)):
        d = os.path.join(repo_root, entry)
        if entry.startswith("build") and os.path.isdir(d):
            candidates.append(os.path.join(d, "tools", "vpart_lint"))
    for path in candidates:
        if os.path.isfile(path) and os.access(path, os.X_OK):
            return path
    return None


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = find_binary(repo_root)
    if binary is None:
        sys.stderr.write(
            "determinism_lint.py is deprecated and now requires the C++ "
            "analyzer.\nBuild it first:\n"
            "  cmake -B build -S . && cmake --build build --target "
            "vpart_lint\nor point VPART_LINT at the binary.\n"
        )
        return 2
    sys.stderr.write(
        "determinism_lint.py is deprecated; running %s\n" % binary
    )
    args = [binary, "--repo-root=" + repo_root] + sys.argv[1:]
    os.execv(binary, args)


if __name__ == "__main__":
    sys.exit(main())
