#!/usr/bin/env python3
"""Determinism lint: reject constructs that break bit-identical results.

The repo promises bit-identical partitioning results for a fixed seed —
across re-runs, thread counts, and platforms.  That guarantee is easy to
lose silently: one `rand()` call, one hash-map iteration whose order
feeds the algorithm, one pointer used as a sort key, and results become
a function of the standard library, ASLR, or the wall clock.  This pass
scans the C++ sources for the known offenders and fails the build when
one appears outside an explicitly annotated exemption.

Rules
-----
  rand              C library rand()/srand(): unseeded global state.
  random-device     std::random_device: hardware entropy, never
                    reproducible.
  std-engine        std::mt19937 & friends: all randomness must flow
                    through the explicitly seeded vlsipart::Rng.
  time-seed         Seeding anything from the clock (time(), ::now(),
                    clock()): ties results to the wall clock.
  wall-clock        Any clock read (::now(), clock_gettime(),
                    gettimeofday()).  Legitimate uses — timers for
                    reporting, service deadlines/idle timeouts, stats
                    cadence — must carry an annotation affirming the
                    reading feeds only observability or admission
                    policy, never a partitioning result.
  unordered-in-core Any std::unordered_{map,set} in src/part/ or
                    src/hypergraph/: the partitioning core must not
                    depend on hash-bucket layout at all.
  unordered-iter    Range-for over a variable declared as an unordered
                    container anywhere in src/: iteration order is a
                    property of the standard library, not the input.
  pointer-sort-key  Sort comparators taking pointer parameters: pointer
                    order is allocation order (ASLR-dependent).

Exemptions: append ``// det-lint: allow(<rule>)`` to the offending line
(or the line directly above it) with a short justification.

Usage:
  tools/determinism_lint.py [--list-rules] [paths...]   (default: src)

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# Directories whose code is the deterministic partitioning core: the
# unordered-in-core rule applies only here.
CORE_DIRS = ("src/part", "src/hypergraph")

ALLOW_RE = re.compile(r"//\s*det-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{]*?>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*(\w+)\s*\)")
SORT_CALL_RE = re.compile(
    r"\bstd::(?:stable_)?sort\s*\(|\bstd::partial_sort\s*\(|\bstd::nth_element\s*\("
)
LAMBDA_PTR_PARAM_RE = re.compile(r"\[[^\]]*\]\s*\(([^)]*\*[^)]*)\)")

SIMPLE_RULES = [
    (
        "rand",
        re.compile(r"\b(?:std::)?s?rand\s*\("),
        "C library rand()/srand() is global, unseeded, nondeterministic state",
    ),
    (
        "random-device",
        re.compile(r"\bstd::random_device\b"),
        "std::random_device draws hardware entropy and is never reproducible",
    ),
    (
        "std-engine",
        re.compile(
            r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
            r"ranlux\w+|knuth_b)\b"
        ),
        "use the explicitly seeded vlsipart::Rng instead of <random> engines",
    ),
    (
        "time-seed",
        re.compile(
            r"(?:\bseed|\bSeed|\breseed|\bRng\b)[^\n]*"
            r"(?:::now\s*\(|\btime\s*\(|\bclock\s*\(|\bclock_gettime\s*\()"
            r"|(?:::now\s*\(|\btime\s*\(|\bclock\s*\()[^\n]*"
            r"(?:\bseed|\bSeed|\breseed|\bRng\b)"
        ),
        "seeding from the clock ties results to the wall clock",
    ),
    (
        "wall-clock",
        re.compile(r"::now\s*\(|\bclock_gettime\s*\(|\bgettimeofday\s*\("),
        "wall-clock read: annotate to affirm timing feeds only "
        "observability or admission policy (timers, deadlines, idle "
        "timeouts), never a partitioning result",
    ),
]


def strip_comments_and_strings(line: str) -> str:
    """Blank out // comments and string/char literals so rule patterns
    only match code.  (Block comments are handled by the caller.)"""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(raw_lines: list[str], idx: int) -> set[str]:
    """Rules exempted for line `idx` (same line or the line above)."""
    rules: set[str] = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path: Path, repo_root: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    rel = path.relative_to(repo_root).as_posix()
    in_core = any(rel.startswith(d + "/") for d in CORE_DIRS)

    # Pre-pass: blank block comments, then per-line comment/string strip.
    code_lines: list[str] = []
    in_block = False
    for line in raw:
        buf = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            start = line.find("/*", i)
            if start == -1:
                buf.append(line[i:])
                break
            buf.append(line[i:start])
            in_block = True
            i = start + 2
        code_lines.append(strip_comments_and_strings("".join(buf)))

    findings: list[Finding] = []

    def report(idx: int, rule: str, message: str) -> None:
        if rule not in allowed_rules(raw, idx):
            findings.append(Finding(path, idx + 1, rule, message))

    unordered_vars: set[str] = set()
    for idx, code in enumerate(code_lines):
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_vars.add(m.group(1))

    for idx, code in enumerate(code_lines):
        for rule, pattern, message in SIMPLE_RULES:
            if pattern.search(code):
                report(idx, rule, message)

        if in_core and re.search(r"\bunordered_(?:multi)?(?:map|set)\b", code):
            report(
                idx,
                "unordered-in-core",
                "hash containers are banned in the partitioning core "
                "(src/part, src/hypergraph): bucket layout is stdlib state",
            )

        m = RANGE_FOR_RE.search(code)
        if m and m.group(1) in unordered_vars:
            report(
                idx,
                "unordered-iter",
                f"iterating unordered container '{m.group(1)}': order is a "
                "property of the standard library, not the input",
            )

        if SORT_CALL_RE.search(code):
            window = " ".join(code_lines[idx : idx + 6])
            lam = LAMBDA_PTR_PARAM_RE.search(window)
            if lam:
                report(
                    idx,
                    "pointer-sort-key",
                    "sort comparator takes pointer parameters; pointer order "
                    "is allocation order (ASLR-dependent) — compare by id or "
                    "value instead",
                )

    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in [r[0] for r in SIMPLE_RULES] + [
            "unordered-in-core",
            "unordered-iter",
            "pointer-sort-key",
        ]:
            print(rule)
        return 0

    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(p) for p in (args.paths or ["src"])]

    files: list[Path] = []
    for root in roots:
        root = root if root.is_absolute() else repo_root / root
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in CXX_SUFFIXES
            )
        else:
            print(f"determinism_lint: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, repo_root))

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"determinism_lint: {len(findings)} finding(s) in "
            f"{len(files)} file(s); annotate intentional uses with "
            "'// det-lint: allow(<rule>)'",
            file=sys.stderr,
        )
        return 1
    print(f"determinism_lint: clean ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
