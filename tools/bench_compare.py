#!/usr/bin/env python3
"""Diff a bench_micro JSON run against the committed baseline.

Per benchmark family, compares throughput (items_per_second when the
family reports it, otherwise inverse cpu_time) between a fresh
``bench_micro --benchmark_format=json`` run and ``BENCH_baseline.json``,
and fails when any family regresses by more than the threshold.

Usage:
  # Compare two existing JSON files:
  tools/bench_compare.py --baseline BENCH_baseline.json --current run.json

  # Run the binary first (repeatable local gate):
  tools/bench_compare.py --baseline BENCH_baseline.json \
      --bench build/bench/bench_micro

Exit status: 0 when no family regresses more than --threshold (default
15%), 1 otherwise.  --warn-only always exits 0 (the CI soft gate; the
hard gate is the ctest registered under -DVLSIPART_BENCH_GATE=ON, label
"bench").  --strict REGEX carves a blocking subset out of --warn-only:
families matching REGEX still fail the run (exit 1) even in warn-only
mode.  CI uses this for the low-variance gain-bucket families
(insert/remove/update-key), whose single-digit-nanosecond operations
are stable enough on shared runners for a hard gate, while the
wall-clock-heavy families stay advisory.  A baseline family missing
from the current capture (renamed or deleted benchmark) always exits 1,
even under --warn-only: losing coverage silently is a configuration
error, not measurement noise.

Baselines are only comparable between identical build types: the script
refuses (exit 2) when the two files carry different
``vlsipart_build_type`` context values.  The ``library_build_type``
field emitted by google-benchmark describes how *libbenchmark* was
compiled, not this repository's code, and is ignored.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def build_type(doc):
    return doc.get("context", {}).get("vlsipart_build_type")


def throughput(entry):
    """Items/s when reported, else inverse cpu_time (runs/s)."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    cpu = float(entry["cpu_time"])
    if cpu <= 0:
        return 0.0
    # cpu_time is in entry["time_unit"] (ns by default).
    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}
    return scale.get(entry.get("time_unit", "ns"), 1e9) / cpu


def families(doc):
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip mean/median/stddev rows from --benchmark_repetitions runs.
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = throughput(entry)
    return out


def run_bench(bench, out_path, min_time):
    cmd = [
        bench,
        f"--benchmark_min_time={min_time}",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    print(f"running: {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--current", help="existing bench_micro JSON run")
    parser.add_argument(
        "--bench", help="bench_micro binary to run when --current is absent"
    )
    parser.add_argument(
        "--min-time",
        default="0.5",
        help="--benchmark_min_time passed to --bench runs (default 0.5)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated fractional slowdown per family (default 0.15)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI soft gate)",
    )
    parser.add_argument(
        "--strict",
        metavar="REGEX",
        help="families matching REGEX block (exit 1) even under --warn-only",
    )
    args = parser.parse_args()
    strict_re = re.compile(args.strict) if args.strict else None

    if bool(args.current) == bool(args.bench):
        parser.error("exactly one of --current / --bench is required")

    if args.bench:
        tmp = tempfile.NamedTemporaryFile(
            suffix=".json", prefix="bench_micro.", delete=False
        )
        tmp.close()
        run_bench(args.bench, tmp.name, args.min_time)
        args.current = tmp.name

    baseline_doc = load_json(args.baseline)
    current_doc = load_json(args.current)

    base_bt = build_type(baseline_doc)
    cur_bt = build_type(current_doc)
    if base_bt and cur_bt and base_bt != cur_bt:
        print(
            f"error: build type mismatch: baseline is '{base_bt}', "
            f"current run is '{cur_bt}' — numbers are not comparable",
            file=sys.stderr,
        )
        return 2

    base = families(baseline_doc)
    cur = families(current_doc)

    width = max((len(n) for n in set(base) | set(cur)), default=10)
    header = (
        f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
        f"{'ratio':>7}  verdict"
    )
    print(header)
    print("-" * len(header))

    regressions = []
    missing = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  {cur[name]:>12.4g}  "
                  f"{'-':>7}  new (no baseline)")
            continue
        if name not in cur:
            print(f"{name:<{width}}  {base[name]:>12.4g}  {'-':>12}  "
                  f"{'-':>7}  MISSING from current run")
            missing.append(name)
            continue
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        if ratio < 1.0 - args.threshold:
            verdict = f"REGRESSION (>{args.threshold:.0%} slower)"
            regressions.append(name)
        elif ratio > 1.0 + args.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        print(
            f"{name:<{width}}  {base[name]:>12.4g}  {cur[name]:>12.4g}  "
            f"{ratio:>6.2f}x  {verdict}"
        )

    if missing:
        # A baseline family absent from the current capture means the
        # benchmark was renamed or deleted without updating the
        # baseline: the comparison silently loses coverage.  That is a
        # configuration error, not a noisy measurement, so it blocks
        # even under --warn-only.
        print(
            f"\n{len(missing)} baseline famil"
            f"{'y' if len(missing) == 1 else 'ies'} missing from the "
            f"current capture: {', '.join(missing)}\n"
            "rename the baseline entry or recapture BENCH_baseline.json",
            file=sys.stderr,
        )
        return 1
    if regressions:
        print(
            f"\n{len(regressions)} famil"
            f"{'y' if len(regressions) == 1 else 'ies'} regressed beyond "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        strict_hits = (
            [n for n in regressions if strict_re.search(n)]
            if strict_re
            else []
        )
        if strict_hits:
            print(
                "strict families regressed (blocking even under "
                f"--warn-only): {', '.join(strict_hits)}",
                file=sys.stderr,
            )
            return 1
        if args.warn_only:
            print("warn-only mode: exiting 0", file=sys.stderr)
            return 0
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
