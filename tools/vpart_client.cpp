// vpart_client — command-line client for vpartd.
//
// Submits one partition request (mirroring the vpart option set) or a
// control op, and prints the response.
//
// Usage:
//   vpart_client --case ibm01 --scale 0.3 --k 2 --engine ml
//   vpart_client --hgr circuit.hgr --starts 8 --seed 7
//   vpart_client --op stats
//   vpart_client --op shutdown
// Options:
//   --socket unix:/tmp/vpartd.sock   where vpartd listens
//   --op submit|stats|ping|shutdown  (default submit)
//   --case NAME / --hgr F / --ispd98 P   instance source
//   --scale 0.5  --gen-seed 0        synthetic preset shaping
//   --k 2  --tolerance 0.02  --engine ml|flat|clip|nlevel|evo
//   --starts 4  --vcycles 1  --seed 1
//   --population 6  --generations 8   (evo engine)
//   --deadline-ms 0                  queue-time budget (0 = none)
//   --parts                          include the assignment in the reply
//   --no-result-cache                force recomputation server-side
//   --timeout-ms 600000              client-side response wait
#include <cstdio>
#include <exception>

#include "src/service/client.h"
#include "src/util/cli.h"

using namespace vlsipart;
using namespace vlsipart::service;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.check_known({"socket", "op", "case", "hgr", "ispd98", "scale",
                      "gen-seed", "k", "tolerance", "engine", "starts",
                      "vcycles", "population", "generations", "seed",
                      "deadline-ms", "parts", "no-result-cache",
                      "timeout-ms"});
    Endpoint endpoint;
    std::string error;
    if (!Endpoint::parse(args.get("socket", "unix:/tmp/vpartd.sock"),
                         endpoint, &error)) {
      std::fprintf(stderr, "vpart_client: %s\n", error.c_str());
      return 2;
    }
    const int timeout_ms =
        static_cast<int>(args.get_int("timeout-ms", 600000));
    ServiceClient client;
    if (!client.connect(endpoint)) {
      std::fprintf(stderr, "vpart_client: cannot connect to %s: %s\n",
                   endpoint.describe().c_str(), client.error().c_str());
      return 1;
    }

    const std::string op = args.get("op", "submit");
    if (op == "stats" || op == "ping") {
      JsonValue request = JsonValue::object();
      request.set("op", JsonValue::string(op));
      JsonValue response;
      if (!client.request(request, response, timeout_ms)) {
        std::fprintf(stderr, "vpart_client: %s\n", client.error().c_str());
        return 1;
      }
      std::printf("%s\n", response.dump().c_str());
      return 0;
    }
    if (op == "shutdown") {
      if (!client.shutdown_server()) {
        std::fprintf(stderr, "vpart_client: shutdown refused: %s\n",
                     client.error().c_str());
        return 1;
      }
      std::printf("vpartd draining\n");
      return 0;
    }
    if (op != "submit") {
      std::fprintf(stderr,
                   "vpart_client: unknown --op (submit|stats|ping|"
                   "shutdown): %s\n",
                   op.c_str());
      return 2;
    }

    SubmitRequest request;
    if (args.has("hgr")) {
      request.instance.hgr_path = args.get("hgr", "");
    } else if (args.has("ispd98")) {
      request.instance.ispd98_path = args.get("ispd98", "");
    } else {
      request.instance.preset = args.get("case", "ibm01");
      request.instance.scale = args.get_double("scale", 0.5);
      request.instance.gen_seed =
          static_cast<std::uint64_t>(args.get_int("gen-seed", 0));
    }
    request.k = static_cast<std::size_t>(args.get_int("k", 2));
    request.tolerance = args.get_double("tolerance", 0.02);
    request.engine = CliArgs::check_known_value(
        "engine", args.get("engine", "ml"),
        {"ml", "flat", "clip", "nlevel", "evo"});
    request.starts = static_cast<std::size_t>(args.get_int("starts", 4));
    request.vcycles = static_cast<std::size_t>(args.get_int("vcycles", 1));
    request.population =
        static_cast<std::size_t>(args.get_int("population", 6));
    request.generations =
        static_cast<std::size_t>(args.get_int("generations", 8));
    request.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    request.deadline_ms = args.get_int("deadline-ms", 0);
    request.include_parts = args.get_bool("parts");
    request.use_result_cache = !args.get_bool("no-result-cache");

    const PartitionReply reply = client.submit_and_wait(request, timeout_ms);
    if (!reply.ok) {
      std::fprintf(stderr, "vpart_client: %s: %s\n",
                   reply.error.empty() ? "request failed"
                                       : reply.error.c_str(),
                   reply.message.c_str());
      return 1;
    }
    std::printf("job %lld: cut=%lld cache=%s queue_wait=%.3fs run=%.3fs\n",
                static_cast<long long>(reply.job),
                static_cast<long long>(reply.cut), reply.cache.c_str(),
                reply.queue_wait_s, reply.run_s);
    if (request.include_parts) {
      for (const PartId p : reply.parts) std::printf("%u\n", p);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vpart_client: %s\n", e.what());
    return 1;
  }
}
