// vpart_lint: static analyzer for the repo's methodology contracts —
// determinism, knob completeness, lock discipline, hot-path purity and
// the parallel-round protocol.  Replaces the regex-based
// tools/determinism_lint.py (which now execs this binary).
//
// Usage:
//   vpart_lint [options] [path ...]
//     paths            files or directories to lint (default: src,
//                      tools, bench, examples, tests — those that exist)
//   --repo-root DIR    repository root for context + relative paths
//                      (default: current directory)
//   --format FMT       human | json | sarif (default: human)
//   --output FILE      write the report to FILE instead of stdout
//   --baseline FILE    baseline file (default: tools/vpart_lint_baseline.txt
//                      under the repo root, when present; "none" disables)
//   --rules a,b,...    run only these rules or families
//                      (e.g. --rules hotpath,lock,round)
//   --list-rules       print the rule catalog and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error —
// the same contract the Python lint had.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/finding.h"
#include "src/analysis/output.h"
#include "src/util/cli.h"

namespace {

int list_rules() {
  for (const vlsipart::analysis::RuleInfo& r :
       vlsipart::analysis::rule_catalog()) {
    std::printf("%-28s %-12s %s\n", r.id, r.family, r.description);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using vlsipart::analysis::AnalysisResult;
  using vlsipart::analysis::AnalyzerOptions;

  vlsipart::CliArgs args(argc, argv);
  try {
    args.check_known({"repo-root", "format", "output", "baseline", "rules",
                      "list-rules", "help"});
  } catch (const std::exception& e) {
    std::cerr << "vpart_lint: " << e.what() << "\n";
    return 2;
  }
  if (args.get_bool("help")) {
    std::cout << "usage: vpart_lint [--repo-root DIR] [--format "
                 "human|json|sarif] [--output FILE]\n"
                 "                  [--baseline FILE|none] [--rules a,b,...] "
                 "[--list-rules] [path ...]\n";
    return 0;
  }
  if (args.get_bool("list-rules")) return list_rules();

  AnalyzerOptions options;
  options.repo_root = args.get("repo-root", ".");
  if (args.has("rules")) {
    options.only_rules = args.get_list("rules", "");
  }

  const std::string baseline = args.get("baseline", "");
  if (baseline == "none") {
    options.baseline_path.clear();
  } else if (!baseline.empty()) {
    options.baseline_path = baseline;
  } else {
    const std::filesystem::path default_baseline =
        std::filesystem::path(options.repo_root) / "tools" /
        "vpart_lint_baseline.txt";
    std::error_code ec;
    if (std::filesystem::is_regular_file(default_baseline, ec)) {
      options.baseline_path = default_baseline.generic_string();
    }
  }

  std::vector<std::string> paths = args.positional();
  if (paths.empty()) {
    // Default scope: every C++ tree of the repo that exists.  src/ is
    // required; the tool, bench and test trees are linted too so their
    // code meets the same determinism bar.
    for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
      const std::filesystem::path d =
          std::filesystem::path(options.repo_root) / dir;
      std::error_code ec;
      if (std::filesystem::is_directory(d, ec)) paths.push_back(dir);
    }
  }

  const std::string format = args.get("format", "human");
  if (format != "human" && format != "json" && format != "sarif") {
    std::cerr << "vpart_lint: unknown --format '" << format
              << "' (want human, json or sarif)\n";
    return 2;
  }

  const AnalysisResult result =
      vlsipart::analysis::analyze_paths(paths, options);
  if (!result.errors.empty()) {
    for (const std::string& e : result.errors) {
      std::cerr << "vpart_lint: error: " << e << "\n";
    }
    return 2;
  }

  std::string report;
  if (format == "json") {
    report = vlsipart::analysis::render_json(result);
  } else if (format == "sarif") {
    report = vlsipart::analysis::render_sarif(result);
  } else {
    report = vlsipart::analysis::render_human(result);
  }

  const std::string output = args.get("output", "");
  if (output.empty()) {
    std::cout << report;
  } else {
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::cerr << "vpart_lint: cannot write " << output << "\n";
      return 2;
    }
    out << report;
    // A findings summary still goes to the terminal when the report is
    // redirected, so CI logs show why the job failed.
    if (!result.findings.empty()) {
      std::cerr << vlsipart::analysis::render_human(result);
    }
  }
  return result.findings.empty() ? 0 : 1;
}
