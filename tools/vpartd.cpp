// vpartd — long-running partitioning daemon.
//
// Serves the length-prefixed JSON protocol of src/service over a Unix
// domain socket (default) or localhost TCP.  Reuses engines and built
// instances across requests, load-sheds when the admission queue fills,
// and drains gracefully on SIGTERM/SIGINT: in-flight requests finish,
// new submits are refused, then the process exits 0.
//
// Usage:
//   vpartd --socket unix:/tmp/vpartd.sock        (default)
//   vpartd --socket tcp:7077                      (127.0.0.1 only)
// Options:
//   --workers 2            concurrent partitioning jobs
//   --queue 64             admission queue capacity (beyond = shed)
//   --max-payload-mb 4     per-frame payload cap
//   --idle-timeout-ms 30000  silent connections are closed
//   --drain-grace-ms 2000  response flush window during graceful stop
//   --stats-interval 0     seconds between stats log lines (0 = off)
//   --instance-cache 8     resident built hypergraphs
//   --result-cache 256     resident finished results
//   --refine-threads 1     intra-run refinement threads per engine
//                          (1 = serial FM; >1 = synchronous-round engine)
//   --coarsen-threads 1    intra-run coarsening threads per engine
//   --verbose              per-event log lines on stderr
#include <cstdio>
#include <exception>

#include "src/service/server.h"
#include "src/util/cli.h"
#include "src/util/shutdown.h"

using namespace vlsipart;
using namespace vlsipart::service;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.check_known({"socket", "workers", "queue", "max-payload-mb",
                      "idle-timeout-ms", "drain-grace-ms", "stats-interval",
                      "instance-cache", "result-cache", "refine-threads",
                      "coarsen-threads", "verbose"});
    ServiceConfig config;
    std::string endpoint_error;
    if (!Endpoint::parse(args.get("socket", "unix:/tmp/vpartd.sock"),
                         config.endpoint, &endpoint_error)) {
      std::fprintf(stderr, "vpartd: %s\n", endpoint_error.c_str());
      return 2;
    }
    config.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    config.queue_capacity =
        static_cast<std::size_t>(args.get_int("queue", 64));
    config.max_payload = static_cast<std::size_t>(
                             args.get_int("max-payload-mb", 4))
                         << 20;
    config.idle_timeout_ms =
        static_cast<int>(args.get_int("idle-timeout-ms", 30000));
    config.drain_grace_ms =
        static_cast<int>(args.get_int("drain-grace-ms", 2000));
    config.stats_log_interval_s = args.get_double("stats-interval", 0.0);
    config.instance_cache_capacity =
        static_cast<std::size_t>(args.get_int("instance-cache", 8));
    config.result_cache_capacity =
        static_cast<std::size_t>(args.get_int("result-cache", 256));
    config.refine_threads =
        static_cast<std::size_t>(args.get_int("refine-threads", 1));
    config.coarsen_threads =
        static_cast<std::size_t>(args.get_int("coarsen-threads", 1));
    config.verbose = args.get_bool("verbose");

    install_shutdown_handler();
    PartitionService server(std::move(config));
    server.start();
    std::printf("vpartd: serving on %s\n",
                server.bound_endpoint().describe().c_str());
    std::fflush(stdout);
    server.serve_until_shutdown();
    std::printf("vpartd: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vpartd: %s\n", e.what());
    return 1;
  }
}
