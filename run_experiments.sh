#!/bin/sh
# Regenerate every experiment artifact: build, test, run all benches.
# Outputs land in test_output.txt and bench_output.txt.
# Pass --full to each bench manually for paper-faithful (hours-long) runs.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/bench_*; do echo "##### $b"; "$b"; echo; done) 2>&1 | tee bench_output.txt
