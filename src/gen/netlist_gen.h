// Synthetic ISPD98-like netlist generator.
//
// SUBSTITUTION (see DESIGN.md): the paper evaluates on the ISPD98 IBM
// benchmark suite [1][2], which is not redistributable here.  This module
// generates seeded synthetic instances that match the suite's *published
// statistical profile* — the attributes Sec. 2.1 of the paper identifies
// as the salient ones:
//   * |E| close to |V|; average degree and net size between 3 and 5;
//   * a small number of extremely large nets (clock/reset class);
//   * wide variation in cell areas, including large macro cells whose
//     area exceeds a 2% balance tolerance window (this is what triggers
//     the CLIP "corking" effect of Sec. 2.3);
//   * hierarchical locality (netlists are clustered, not Erdos-Renyi),
//     which is what makes multilevel methods effective.
//
// Topology model: cells are laid out on a virtual line in bit-reversed
// hierarchical order; each net picks a center cell and draws its other
// pins from a two-scale neighborhood (mostly local, occasionally global).
// This yields a recursive cluster structure similar to a Rent-exponent
// layout hierarchy.
#pragma once

#include <string>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/util/rng.h"

namespace vlsipart {

struct GenConfig {
  std::string name = "synthetic";
  std::size_t num_cells = 10000;
  std::size_t num_pads = 200;
  std::size_t num_nets = 11000;  // before pad nets and huge nets

  // Net-size distribution: size = 2 + TruncGeom(p), truncated at max.
  double net_size_geom_p = 0.55;    // gives mean size near 3.6
  std::size_t max_net_size = 18;

  // Locality: pin offsets from the net center follow a Pareto(1, alpha)
  // magnitude — a power-law "wirelength" distribution that creates
  // cluster structure at every scale (what multilevel methods exploit).
  // Smaller alpha = longer-range nets = higher unavoidable cut.
  double offset_alpha = 0.75;
  // A small fraction of pins is placed uniformly at random (cross-chip
  // control signals).
  double global_pin_fraction = 0.005;

  // Huge nets (clock/reset class).
  std::size_t num_huge_nets = 4;
  double huge_net_span_fraction = 0.02;  // pins = fraction of cells

  // Cell areas: standard cells draw from a small discrete range
  // [1, standard_area_max]; macros draw a Pareto tail.  Macros are
  // assigned to the highest-degree cells — matching the paper's
  // observation that "the cells with the highest gain will tend to be
  // the cells of highest degree, which are also the cells with greatest
  // area" (Sec. 2.3), the precondition for CLIP corking.  The largest
  // macro always gets macro_area_max_fraction, guaranteeing at least one
  // cell above a 2% balance window.
  Weight standard_area_max = 8;
  std::size_t num_macros = 10;
  // Macro areas as fractions of the standard-cell total area.
  double macro_area_min_fraction = 0.005;
  double macro_area_max_fraction = 0.04;

  std::uint64_t seed = 1;

  /// Scale cell/pad/net/macro counts by `factor` (>= 0, clamped to keep
  /// at least a handful of cells).  Used by benches to trade fidelity for
  /// runtime; --full reproduces the preset sizes.
  GenConfig scaled(double factor) const;
};

/// Generate an instance.  Deterministic for a fixed config (incl. seed).
Hypergraph generate_netlist(const GenConfig& config);

/// Named presets: "ibm01".."ibm18" sized after the published ISPD98
/// parameters, plus "tiny" / "small" / "medium" test instances.
/// Throws std::invalid_argument for unknown names.
GenConfig preset(const std::string& name);

/// All ibmXX preset names in suite order.
std::vector<std::string> ibm_preset_names();

}  // namespace vlsipart
