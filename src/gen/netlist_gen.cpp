#include "src/gen/netlist_gen.h"

#include <algorithm>
#include <numeric>
#include <cmath>
#include <stdexcept>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

/// Bit-reverse a value within `bits` bits; used to place consecutively
/// indexed cells at hierarchically interleaved line positions, producing
/// a recursive cluster structure.
std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) {
  std::uint64_t out = 0;
  for (unsigned b = 0; b < bits; ++b) {
    out = (out << 1) | ((x >> b) & 1);
  }
  return out;
}

}  // namespace

GenConfig GenConfig::scaled(double factor) const {
  GenConfig c = *this;
  auto scale = [&](std::size_t v, std::size_t floor_at) {
    const double scaled = static_cast<double>(v) * factor;
    return std::max<std::size_t>(floor_at,
                                 static_cast<std::size_t>(scaled + 0.5));
  };
  c.num_cells = scale(num_cells, 64);
  c.num_pads = scale(num_pads, 4);
  c.num_nets = scale(num_nets, 64);
  c.num_macros = scale(num_macros, factor >= 0.05 ? 2 : 0);
  c.num_huge_nets = std::max<std::size_t>(1, num_huge_nets);
  return c;
}

Hypergraph generate_netlist(const GenConfig& config) {
  VP_CHECK(config.num_cells >= 4, "need at least 4 cells");
  VP_CHECK(config.net_size_geom_p > 0.0 && config.net_size_geom_p <= 1.0,
           "geometric parameter in (0,1]");

  Rng rng(config.seed);
  const std::size_t n_cells = config.num_cells;
  const std::size_t n_pads = config.num_pads;
  const std::size_t n_total = n_cells + n_pads;

  // Hierarchical positions: position_of_cell[i] is where cell i sits on
  // the virtual line; cells_at[p] inverts the map.
  unsigned bits = 1;
  while ((1ULL << bits) < n_cells) ++bits;
  std::vector<std::uint32_t> cell_at_pos(n_cells);
  {
    std::size_t written = 0;
    for (std::uint64_t i = 0; i < (1ULL << bits) && written < n_cells; ++i) {
      const std::uint64_t rev = bit_reverse(i, bits);
      if (rev < n_cells) {
        cell_at_pos[written++] = static_cast<std::uint32_t>(rev);
      }
    }
    VP_CHECK(written == n_cells, "bit-reversal permutation covers all cells");
  }

  HypergraphBuilder builder(n_total);

  auto pick_near = [&](std::size_t center_pos) -> VertexId {
    std::size_t pos;
    if (rng.bernoulli(config.global_pin_fraction)) {
      pos = static_cast<std::size_t>(rng.below(n_cells));
    } else {
      // Power-law offset magnitude (Pareto, heavy tail) with random
      // sign: most pins land next to the center, a few reach across the
      // chip — the multi-scale locality real netlists exhibit.
      const double mag = rng.pareto(1.0, config.offset_alpha);
      const auto cap = static_cast<double>(n_cells / 2);
      auto off = static_cast<std::int64_t>(std::min(mag, cap));
      if (rng.bernoulli(0.5)) off = -off;
      std::int64_t p = static_cast<std::int64_t>(center_pos) + off;
      const auto n = static_cast<std::int64_t>(n_cells);
      p = ((p % n) + n) % n;
      pos = static_cast<std::size_t>(p);
    }
    return cell_at_pos[pos];
  };

  // Regular nets.  Track cell degrees as we go so macros can later be
  // assigned to the highest-degree cells.
  std::vector<std::uint32_t> cell_degree(n_cells, 0);
  std::vector<VertexId> pins;
  auto count_pins = [&]() {
    for (const VertexId v : pins) {
      if (v < n_cells) ++cell_degree[v];
    }
  };
  for (std::size_t e = 0; e < config.num_nets; ++e) {
    const std::size_t size = static_cast<std::size_t>(rng.truncated_geometric(
        2, config.max_net_size, config.net_size_geom_p));
    const std::size_t center = static_cast<std::size_t>(rng.below(n_cells));
    pins.clear();
    pins.push_back(cell_at_pos[center]);
    while (pins.size() < size) {
      pins.push_back(pick_near(center));
    }
    count_pins();
    builder.add_edge(pins);  // duplicates removed; <2 pins dropped
  }

  // Huge nets (clock/reset class): uniformly spread pins.
  const auto huge_size = std::max<std::size_t>(
      32, static_cast<std::size_t>(config.huge_net_span_fraction *
                                   static_cast<double>(n_cells)));
  for (std::size_t e = 0; e < config.num_huge_nets; ++e) {
    pins.clear();
    for (std::size_t k = 0; k < huge_size; ++k) {
      pins.push_back(static_cast<VertexId>(rng.below(n_cells)));
    }
    count_pins();
    builder.add_edge(pins);
  }

  // Pad nets: each pad connects to a small local group of cells near a
  // random anchor (models IO paths entering the core).
  for (std::size_t p = 0; p < n_pads; ++p) {
    const auto pad = static_cast<VertexId>(n_cells + p);
    const std::size_t anchor = static_cast<std::size_t>(rng.below(n_cells));
    const std::size_t fanout = 1 + static_cast<std::size_t>(rng.below(3));
    pins.clear();
    pins.push_back(pad);
    for (std::size_t k = 0; k < fanout; ++k) {
      pins.push_back(pick_near(anchor));
    }
    count_pins();
    builder.add_edge(pins);
  }

  // Areas.  Standard cells: discrete drive-strength-like distribution
  // skewed toward small cells.  Pads: area 1.
  Weight standard_total = 0;
  for (std::size_t v = 0; v < n_cells; ++v) {
    // P(area = a) ~ 1/a over [1, standard_area_max].
    const auto amax = static_cast<double>(config.standard_area_max);
    const double u = rng.uniform();
    const Weight area = std::max<Weight>(
        1, static_cast<Weight>(std::exp(u * std::log(amax))));
    builder.set_vertex_weight(static_cast<VertexId>(v), area);
    standard_total += area;
  }
  for (std::size_t p = 0; p < n_pads; ++p) {
    builder.set_vertex_weight(static_cast<VertexId>(n_cells + p), 1);
  }

  // Macros: overwrite the areas of the highest-degree cells with a
  // Pareto tail in [min_fraction, max_fraction] of the standard-cell
  // total.  High degree -> high initial gain -> head of CLIP's zero-gain
  // bucket, and large area -> illegal move: exactly the corking
  // precondition of Sec. 2.3.  These cells are also what makes
  // "actual areas" instances qualitatively different from unit-area
  // MCNC-style instances (Sec. 2.3, footnote 4).
  const std::size_t n_macros = std::min(config.num_macros, n_cells / 4);
  if (n_macros > 0) {
    std::vector<VertexId> by_degree(n_cells);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::nth_element(by_degree.begin(), by_degree.begin() + n_macros - 1,
                     by_degree.end(), [&](VertexId a, VertexId b) {
                       return cell_degree[a] > cell_degree[b];
                     });
    for (std::size_t m = 0; m < n_macros; ++m) {
      const VertexId v = by_degree[m];
      const double lo = config.macro_area_min_fraction;
      const double hi = config.macro_area_max_fraction;
      // The first macro pins the top of the range so every instance has
      // at least one cell exceeding a 2% balance window.
      double frac = (m == 0) ? hi : std::min(hi, rng.pareto(lo, 1.2));
      const auto area = std::max<Weight>(
          1, static_cast<Weight>(frac * static_cast<double>(standard_total)));
      builder.set_vertex_weight(v, area);
    }
  }

  return builder.finalize(config.name);
}

GenConfig preset(const std::string& name) {
  // Published ISPD98 suite sizes (Alpert [2], Table 1): (cells+pads, nets).
  // We approximate modules ~ cells + pads with the published counts.
  struct IbmPreset {
    const char* name;
    std::size_t modules;
    std::size_t nets;
    std::size_t pads;
  };
  static const IbmPreset kIbm[] = {
      {"ibm01", 12752, 14111, 246},   {"ibm02", 19601, 19584, 259},
      {"ibm03", 23136, 27401, 283},   {"ibm04", 27507, 31970, 287},
      {"ibm05", 29347, 28446, 1201},  {"ibm06", 32498, 34826, 166},
      {"ibm07", 45926, 48117, 287},   {"ibm08", 51309, 50513, 286},
      {"ibm09", 53395, 60902, 285},   {"ibm10", 69429, 75196, 744},
      {"ibm11", 70558, 81454, 406},   {"ibm12", 71076, 77240, 637},
      {"ibm13", 84199, 99666, 490},   {"ibm14", 147605, 152772, 517},
      {"ibm15", 161570, 186608, 383}, {"ibm16", 183484, 190048, 504},
      {"ibm17", 185495, 189581, 743}, {"ibm18", 210613, 201920, 272},
  };

  for (const auto& p : kIbm) {
    if (name == p.name) {
      GenConfig c;
      c.name = p.name;
      c.num_pads = p.pads;
      c.num_cells = p.modules - p.pads;
      // Regular nets = published nets minus the huge/pad nets we add.
      c.num_huge_nets = 3 + (p.modules / 50000);
      c.num_nets = p.nets > (c.num_huge_nets + c.num_pads)
                       ? p.nets - c.num_huge_nets - c.num_pads
                       : p.nets;
      // Macro count grows slowly with design size; larger suite members
      // have more and bigger macros (per the ISPD98 errata discussion).
      c.num_macros = 8 + p.modules / 10000;
      // Distinct seed per instance so the suite is diverse.
      c.seed = 0x1BD0'0000ULL + static_cast<std::uint64_t>(p.modules);
      return c;
    }
  }

  if (name == "tiny") {
    GenConfig c;
    c.name = "tiny";
    c.num_cells = 64;
    c.num_pads = 8;
    c.num_nets = 80;
    c.num_macros = 2;
    c.num_huge_nets = 1;
    c.seed = 7;
    return c;
  }
  if (name == "small") {
    GenConfig c;
    c.name = "small";
    c.num_cells = 600;
    c.num_pads = 24;
    c.num_nets = 700;
    c.num_macros = 4;
    c.num_huge_nets = 2;
    c.seed = 11;
    return c;
  }
  if (name == "medium") {
    GenConfig c;
    c.name = "medium";
    c.num_cells = 4000;
    c.num_pads = 80;
    c.num_nets = 4500;
    c.num_macros = 8;
    c.num_huge_nets = 3;
    c.seed = 13;
    return c;
  }
  throw std::invalid_argument("unknown preset: " + name);
}

std::vector<std::string> ibm_preset_names() {
  std::vector<std::string> names;
  for (int i = 1; i <= 18; ++i) {
    names.push_back("ibm" + std::string(i < 10 ? "0" : "") +
                    std::to_string(i));
  }
  return names;
}

}  // namespace vlsipart
