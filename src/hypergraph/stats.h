// Instance statistics.
//
// Section 2.1 of the paper characterizes "salient attributes of real-world
// inputs" (size, sparsity, degree and net-size averages, huge nets, wide
// area variation).  InstanceStats computes exactly those attributes so the
// synthetic generator can be audited against the published ISPD98
// parameters, and so a user can inspect any loaded instance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

struct InstanceStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t num_pins = 0;

  double avg_vertex_degree = 0.0;
  std::size_t max_vertex_degree = 0;
  double avg_net_size = 0.0;
  std::size_t max_net_size = 0;
  /// Count of nets with at least `huge_net_threshold` pins.
  std::size_t num_huge_nets = 0;
  std::size_t huge_net_threshold = 0;

  Weight total_area = 0;
  Weight max_area = 0;
  Weight min_area = 0;
  double avg_area = 0.0;
  /// max area / average area — the paper's "wide variation in vertex
  /// weights"; > 100 on actual-area ISPD98 instances with macros.
  double area_spread = 0.0;
  /// |E| / |V| — "number of hyperedges very close to number of vertices".
  double edge_vertex_ratio = 0.0;

  /// Histogram of net sizes: net_size_histogram[k] = #nets with k pins
  /// (sizes above the last bucket are clamped into it).
  std::vector<std::size_t> net_size_histogram;

  std::string to_string(const std::string& name = {}) const;
};

/// Compute all statistics in one O(pins) sweep.
/// huge_net_threshold defaults to 100 pins ("clock, reset" class nets).
InstanceStats compute_stats(const Hypergraph& h,
                            std::size_t huge_net_threshold = 100);

}  // namespace vlsipart
