// Immutable weighted hypergraph in compressed sparse row (CSR) form.
//
// The representation stores both directions of the incidence relation:
//   * edge -> pins   (vertices on each net), and
//   * vertex -> nets (nets incident to each vertex),
// because FM gain updates walk nets of a moved vertex and then vertices of
// each such net.  Instances follow the paper's characterization of
// real-world inputs: |E| ~ |V|, average degree/net size 3-5, a few huge
// nets, wide cell-area variation (Sec. 2.1).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/hypergraph/types.h"

namespace vlsipart {

class HypergraphBuilder;

class Hypergraph {
 public:
  Hypergraph() = default;

  std::size_t num_vertices() const { return vertex_weights_.size(); }
  std::size_t num_edges() const { return edge_weights_.size(); }
  std::size_t num_pins() const { return edge_pins_.size(); }

  Weight vertex_weight(VertexId v) const { return vertex_weights_[v]; }
  Weight edge_weight(EdgeId e) const { return edge_weights_[e]; }
  Weight total_vertex_weight() const { return total_vertex_weight_; }
  Weight total_edge_weight() const { return total_edge_weight_; }
  Weight max_vertex_weight() const { return max_vertex_weight_; }

  /// Vertices (pins) on edge e.
  std::span<const VertexId> pins(EdgeId e) const {
    return {edge_pins_.data() + edge_offsets_[e],
            edge_offsets_[e + 1] - edge_offsets_[e]};
  }
  std::size_t edge_size(EdgeId e) const {
    return edge_offsets_[e + 1] - edge_offsets_[e];
  }

  /// Edges incident to vertex v.
  std::span<const EdgeId> incident_edges(VertexId v) const {
    return {vertex_edges_.data() + vertex_offsets_[v],
            vertex_offsets_[v + 1] - vertex_offsets_[v]};
  }
  std::size_t degree(VertexId v) const {
    return vertex_offsets_[v + 1] - vertex_offsets_[v];
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Optional per-vertex names (empty when the instance is anonymous).
  const std::vector<std::string>& vertex_names() const {
    return vertex_names_;
  }

  /// Structural sanity check: offsets monotone, pins in range, both
  /// incidence directions consistent, positive weights.  Throws
  /// std::logic_error on violation.  O(pins).
  void validate() const;

 private:
  friend class HypergraphBuilder;

  std::string name_;
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> edge_weights_;
  // CSR edge -> pins.
  std::vector<std::size_t> edge_offsets_;   // size num_edges()+1
  std::vector<VertexId> edge_pins_;
  // CSR vertex -> incident edges.
  std::vector<std::size_t> vertex_offsets_;  // size num_vertices()+1
  std::vector<EdgeId> vertex_edges_;
  Weight total_vertex_weight_ = 0;
  Weight total_edge_weight_ = 0;
  Weight max_vertex_weight_ = 0;
  std::vector<std::string> vertex_names_;
};

/// Mutable accumulator that finalizes into an immutable Hypergraph.
class HypergraphBuilder {
 public:
  /// num_vertices fixed up front; all weights default to 1.
  explicit HypergraphBuilder(std::size_t num_vertices);

  std::size_t num_vertices() const { return vertex_weights_.size(); }
  std::size_t num_edges() const { return edge_weights_.size(); }

  void set_vertex_weight(VertexId v, Weight w);
  void set_vertex_name(VertexId v, std::string name);

  /// Add a hyperedge over the given pins.  Duplicate pins within one edge
  /// are removed; edges with fewer than 2 distinct pins are dropped
  /// (they can never be cut).  Returns the edge id, or kInvalidEdge if
  /// the edge was dropped.
  EdgeId add_edge(std::span<const VertexId> pins, Weight weight = 1);
  EdgeId add_edge(std::initializer_list<VertexId> pins, Weight weight = 1) {
    return add_edge(std::span<const VertexId>(pins.begin(), pins.size()),
                    weight);
  }

  /// Build the immutable CSR structure.  The builder is left empty.
  Hypergraph finalize(std::string name = {});

 private:
  std::vector<Weight> vertex_weights_;
  std::vector<std::string> vertex_names_;
  bool has_names_ = false;
  std::vector<Weight> edge_weights_;
  std::vector<std::size_t> edge_offsets_{0};
  std::vector<VertexId> edge_pins_;
  std::vector<VertexId> scratch_;
};

}  // namespace vlsipart
