#include "src/hypergraph/stats.h"

#include <algorithm>
#include <sstream>

namespace vlsipart {

InstanceStats compute_stats(const Hypergraph& h,
                            std::size_t huge_net_threshold) {
  InstanceStats s;
  s.num_vertices = h.num_vertices();
  s.num_edges = h.num_edges();
  s.num_pins = h.num_pins();
  s.huge_net_threshold = huge_net_threshold;
  s.net_size_histogram.assign(65, 0);

  for (std::size_t v = 0; v < s.num_vertices; ++v) {
    s.max_vertex_degree =
        std::max(s.max_vertex_degree, h.degree(static_cast<VertexId>(v)));
  }
  for (std::size_t e = 0; e < s.num_edges; ++e) {
    const std::size_t sz = h.edge_size(static_cast<EdgeId>(e));
    s.max_net_size = std::max(s.max_net_size, sz);
    if (sz >= huge_net_threshold) ++s.num_huge_nets;
    const std::size_t bucket = std::min(sz, s.net_size_histogram.size() - 1);
    ++s.net_size_histogram[bucket];
  }
  if (s.num_vertices > 0) {
    s.avg_vertex_degree =
        static_cast<double>(s.num_pins) / static_cast<double>(s.num_vertices);
    s.edge_vertex_ratio = static_cast<double>(s.num_edges) /
                          static_cast<double>(s.num_vertices);
  }
  if (s.num_edges > 0) {
    s.avg_net_size =
        static_cast<double>(s.num_pins) / static_cast<double>(s.num_edges);
  }

  s.total_area = h.total_vertex_weight();
  s.max_area = h.max_vertex_weight();
  s.min_area = s.num_vertices ? h.vertex_weight(0) : 0;
  for (std::size_t v = 0; v < s.num_vertices; ++v) {
    s.min_area = std::min(s.min_area, h.vertex_weight(static_cast<VertexId>(v)));
  }
  if (s.num_vertices > 0) {
    s.avg_area = static_cast<double>(s.total_area) /
                 static_cast<double>(s.num_vertices);
    if (s.avg_area > 0.0) {
      s.area_spread = static_cast<double>(s.max_area) / s.avg_area;
    }
  }
  return s;
}

std::string InstanceStats::to_string(const std::string& name) const {
  std::ostringstream out;
  if (!name.empty()) out << name << ": ";
  out << num_vertices << " vertices, " << num_edges << " nets, " << num_pins
      << " pins\n"
      << "  avg degree " << avg_vertex_degree << " (max "
      << max_vertex_degree << "), avg net size " << avg_net_size << " (max "
      << max_net_size << ")\n"
      << "  nets/vertices " << edge_vertex_ratio << ", huge nets (>="
      << huge_net_threshold << " pins): " << num_huge_nets << "\n"
      << "  area total " << total_area << ", avg " << avg_area << ", max "
      << max_area << " (spread " << area_spread << "x)";
  return out.str();
}

}  // namespace vlsipart
