// Induced sub-hypergraphs and connectivity utilities.
//
// Top-down flows (recursive bisection, placement) repeatedly restrict a
// netlist to a block of cells: nets are projected onto their internal
// pins and dropped when fewer than two remain.  Connected components are
// a standard instance-hygiene check (a disconnected benchmark can make
// cuts of 0 trivially achievable and skew comparisons).
#pragma once

#include <span>
#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

struct Subhypergraph {
  Hypergraph graph;
  /// Sub vertex id -> original vertex id.
  std::vector<VertexId> to_original;
  /// Original edge id of each sub edge.
  std::vector<EdgeId> edge_to_original;
  /// Nets with at least one internal pin that were dropped because
  /// fewer than 2 pins were internal.  (Nets entirely outside the block
  /// are never visited and not counted.)
  std::size_t nets_dropped = 0;
};

/// Restrict `h` to `vertices` (order defines the sub ids; duplicates are
/// rejected).  Each net keeps its internal pins only; nets with < 2
/// internal pins are dropped.  Vertex and edge weights carry over.
Subhypergraph extract_subhypergraph(const Hypergraph& h,
                                    std::span<const VertexId> vertices);

/// Connected components over the "share a net" relation.
/// Returns component id per vertex, dense in [0, num_components).
struct Components {
  std::vector<std::uint32_t> component_of;
  std::size_t num_components = 0;
  /// Vertex count of each component.
  std::vector<std::size_t> sizes;
};

Components connected_components(const Hypergraph& h);

}  // namespace vlsipart
