// Hypergraph contraction: collapse vertex clusters into coarse vertices.
//
// This is the workhorse of multilevel coarsening (Sec. 2.2's "ML" engines
// and the hMetis-like partitioner of Tables 4-5).  Given a cluster map
// (vertex -> cluster id), contraction:
//   * sums vertex weights per cluster,
//   * rewrites each net onto cluster ids, dropping nets that collapse to a
//     single cluster,
//   * merges parallel nets (identical pin sets) by summing their weights.
#pragma once

#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

struct ContractionResult {
  Hypergraph coarse;
  /// fine vertex -> coarse vertex (the normalized cluster map).
  std::vector<VertexId> fine_to_coarse;
  std::size_t num_coarse_vertices = 0;
  /// Nets dropped because all pins landed in one cluster.
  std::size_t nets_collapsed = 0;
  /// Nets merged into an identical surviving net.
  std::size_t nets_merged = 0;
};

/// Contract `h` according to `cluster_of` (size num_vertices; cluster ids
/// need not be dense — they are renumbered).  Edge weights of merged
/// parallel nets are summed so that coarse cut equals fine cut for any
/// partition that respects the clusters.
ContractionResult contract(const Hypergraph& h,
                           const std::vector<VertexId>& cluster_of);

/// Project a coarse 2-way assignment back onto the fine hypergraph.
std::vector<PartId> project_partition(
    const std::vector<VertexId>& fine_to_coarse,
    const std::vector<PartId>& coarse_parts);

}  // namespace vlsipart
