// Hypergraph contraction: collapse vertex clusters into coarse vertices.
//
// This is the workhorse of multilevel coarsening (Sec. 2.2's "ML" engines
// and the hMetis-like partitioner of Tables 4-5).  Given a cluster map
// (vertex -> cluster id), contraction:
//   * sums vertex weights per cluster,
//   * rewrites each net onto cluster ids, dropping nets that collapse to a
//     single cluster,
//   * merges parallel nets (identical pin sets) by summing their weights.
//
// The implementation is allocation-free when the caller threads a
// ContractionMemory through repeated calls (V-cycles, multistart ML):
// cluster renumbering uses a dense array (cluster ids are vertex ids, so
// they are bounded by num_vertices), pending-net pins live in one flat
// pool, and parallel-net detection uses a flat open-addressing table —
// no per-call unordered_map or per-net vector churn.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

/// Reusable scratch buffers for contract().  All buffers grow to the
/// high-water mark of the instances seen and are reused across calls.
/// Not thread-safe: use one per thread (parallel ML multistart gives each
/// worker its own engine clone, hence its own memory).
struct ContractionMemory {
  /// cluster id -> dense coarse id (kInvalidVertex = unseen).
  std::vector<VertexId> renumber;
  std::vector<Weight> cluster_weight;
  /// Dedup'd coarse pins of the net currently being rewritten.
  std::vector<VertexId> coarse_pins;
  /// Flat pin storage of all surviving (pending) nets.
  std::vector<VertexId> pin_pool;
  struct PendingNet {
    std::size_t pins_begin = 0;
    std::uint32_t pins_size = 0;
    Weight weight = 0;
  };
  std::vector<PendingNet> pending;
  /// Open-addressing (linear probing) table over `pending` indices used
  /// to find an identical surviving net; sized to a power of two with
  /// load factor <= 0.5.
  std::vector<std::uint32_t> slots;
};

struct ContractionResult {
  Hypergraph coarse;
  /// fine vertex -> coarse vertex (the normalized cluster map).
  std::vector<VertexId> fine_to_coarse;
  std::size_t num_coarse_vertices = 0;
  /// Nets dropped because all pins landed in one cluster.
  std::size_t nets_collapsed = 0;
  /// Nets merged into an identical surviving net.
  std::size_t nets_merged = 0;
};

/// Contract `h` according to `cluster_of` (size num_vertices; cluster ids
/// need not be dense — they are renumbered in first-appearance order, but
/// must be < num_vertices).  Edge weights of merged parallel nets are
/// summed so that coarse cut equals fine cut for any partition that
/// respects the clusters.  `memory` (optional) supplies reusable scratch;
/// passing nullptr uses call-local buffers.
ContractionResult contract(const Hypergraph& h,
                           const std::vector<VertexId>& cluster_of,
                           ContractionMemory* memory = nullptr);

/// Project a coarse 2-way assignment back onto the fine hypergraph.
std::vector<PartId> project_partition(
    const std::vector<VertexId>& fine_to_coarse,
    const std::vector<PartId>& coarse_parts);

}  // namespace vlsipart
