#include "src/hypergraph/contraction.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

// 64-bit FNV-1a over a pin vector, used to bucket candidate parallel nets.
std::uint64_t hash_pins(const std::vector<VertexId>& pins) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const VertexId v : pins) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ContractionResult contract(const Hypergraph& h,
                           const std::vector<VertexId>& cluster_of) {
  VP_CHECK(cluster_of.size() == h.num_vertices(),
           "cluster map covers all vertices");

  ContractionResult result;

  // Renumber cluster ids densely in order of first appearance so the
  // coarse vertex numbering is deterministic.
  std::unordered_map<VertexId, VertexId> renumber;
  renumber.reserve(cluster_of.size());
  result.fine_to_coarse.resize(cluster_of.size());
  for (std::size_t v = 0; v < cluster_of.size(); ++v) {
    const auto [it, inserted] = renumber.try_emplace(
        cluster_of[v], static_cast<VertexId>(renumber.size()));
    result.fine_to_coarse[v] = it->second;
    (void)inserted;
  }
  const std::size_t nc = renumber.size();
  result.num_coarse_vertices = nc;

  HypergraphBuilder builder(nc);
  {
    std::vector<Weight> weights(nc, 0);
    for (std::size_t v = 0; v < cluster_of.size(); ++v) {
      weights[result.fine_to_coarse[v]] +=
          h.vertex_weight(static_cast<VertexId>(v));
    }
    for (std::size_t c = 0; c < nc; ++c) {
      builder.set_vertex_weight(static_cast<VertexId>(c), weights[c]);
    }
  }

  // Rewrite each net onto coarse ids; dedup pins; collect candidates for
  // parallel-net merging keyed by (hash, size).
  struct PendingNet {
    std::vector<VertexId> pins;
    Weight weight;
  };
  std::vector<PendingNet> pending;
  pending.reserve(h.num_edges());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  std::vector<VertexId> coarse_pins;

  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    coarse_pins.clear();
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      coarse_pins.push_back(result.fine_to_coarse[v]);
    }
    std::sort(coarse_pins.begin(), coarse_pins.end());
    coarse_pins.erase(std::unique(coarse_pins.begin(), coarse_pins.end()),
                      coarse_pins.end());
    if (coarse_pins.size() < 2) {
      ++result.nets_collapsed;
      continue;
    }
    const std::uint64_t hash = hash_pins(coarse_pins);
    bool merged = false;
    if (auto it = by_hash.find(hash); it != by_hash.end()) {
      for (const std::size_t idx : it->second) {
        if (pending[idx].pins == coarse_pins) {
          pending[idx].weight += h.edge_weight(static_cast<EdgeId>(e));
          ++result.nets_merged;
          merged = true;
          break;
        }
      }
    }
    if (!merged) {
      by_hash[hash].push_back(pending.size());
      pending.push_back(
          {coarse_pins, h.edge_weight(static_cast<EdgeId>(e))});
    }
  }

  for (const auto& net : pending) {
    builder.add_edge(net.pins, net.weight);
  }
  result.coarse = builder.finalize(h.name() + ".coarse");
  return result;
}

std::vector<PartId> project_partition(
    const std::vector<VertexId>& fine_to_coarse,
    const std::vector<PartId>& coarse_parts) {
  std::vector<PartId> fine(fine_to_coarse.size(), kNoPart);
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    VP_CHECK(fine_to_coarse[v] < coarse_parts.size(),
             "coarse id in range during projection");
    fine[v] = coarse_parts[fine_to_coarse[v]];
  }
  return fine;
}

}  // namespace vlsipart
