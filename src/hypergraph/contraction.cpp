#include "src/hypergraph/contraction.h"

#include <algorithm>
#include <limits>
#include <span>

#include "src/util/checked_narrow.h"
#include "src/util/logging.h"

namespace vlsipart {
namespace {

constexpr std::uint32_t kEmptySlot = std::numeric_limits<std::uint32_t>::max();

// 64-bit FNV-1a over a pin sequence, used to bucket candidate parallel
// nets in the open-addressing table.
std::uint64_t hash_pins(std::span<const VertexId> pins) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const VertexId v : pins) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ContractionResult contract(const Hypergraph& h,
                           const std::vector<VertexId>& cluster_of,
                           ContractionMemory* memory) {
  VP_CHECK(cluster_of.size() == h.num_vertices(),
           "cluster map covers all vertices");

  ContractionMemory local;
  ContractionMemory& mem = memory != nullptr ? *memory : local;
  const std::size_t n = cluster_of.size();

  ContractionResult result;

  // Renumber cluster ids densely in order of first appearance so the
  // coarse vertex numbering is deterministic.  Cluster ids are vertex ids
  // (representatives), so a dense array replaces the historical hash map;
  // an out-of-range id is a hard error rather than a silently created
  // phantom coarse vertex.
  mem.renumber.assign(n, kInvalidVertex);
  result.fine_to_coarse.resize(n);
  VertexId next_coarse = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const VertexId c = cluster_of[v];
    VP_CHECK(c < n, "cluster id " << c << " of vertex " << v
                                  << " exceeds num_vertices " << n);
    if (mem.renumber[c] == kInvalidVertex) {
      mem.renumber[c] = next_coarse++;
    }
    result.fine_to_coarse[v] = mem.renumber[c];
  }
  const std::size_t nc = next_coarse;
  result.num_coarse_vertices = nc;

  HypergraphBuilder builder(nc);
  {
    mem.cluster_weight.assign(nc, 0);
    for (std::size_t v = 0; v < n; ++v) {
      mem.cluster_weight[result.fine_to_coarse[v]] +=
          h.vertex_weight(static_cast<VertexId>(v));
    }
    for (std::size_t c = 0; c < nc; ++c) {
      builder.set_vertex_weight(static_cast<VertexId>(c),
                                mem.cluster_weight[c]);
    }
  }

  // Rewrite each net onto coarse ids; dedup pins; merge parallel nets
  // (identical pin sets) via a flat linear-probing table over the
  // pending-net list.  At most one pending net exists per distinct pin
  // set at any time, so probing by exact pin comparison reproduces the
  // historical hash-map-of-lists merge exactly.
  VP_CHECK(h.num_edges() < kEmptySlot, "edge count fits table entries");
  std::size_t table_size = 16;
  while (table_size < 2 * h.num_edges()) table_size <<= 1;
  mem.slots.assign(table_size, kEmptySlot);
  const std::size_t mask = table_size - 1;
  mem.pending.clear();
  mem.pin_pool.clear();
  std::vector<VertexId>& coarse_pins = mem.coarse_pins;

  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    coarse_pins.clear();
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      coarse_pins.push_back(result.fine_to_coarse[v]);
    }
    std::sort(coarse_pins.begin(), coarse_pins.end());
    coarse_pins.erase(std::unique(coarse_pins.begin(), coarse_pins.end()),
                      coarse_pins.end());
    if (coarse_pins.size() < 2) {
      ++result.nets_collapsed;
      continue;
    }
    const Weight ew = h.edge_weight(static_cast<EdgeId>(e));
    std::size_t slot = static_cast<std::size_t>(hash_pins(coarse_pins)) & mask;
    while (true) {
      const std::uint32_t idx = mem.slots[slot];
      if (idx == kEmptySlot) {
        // Pending-net count and per-net pin count are bounded by the fine
        // edge/pin counts, which the id contract keeps below 2^32.
        mem.slots[slot] = vp::checked_narrow<std::uint32_t>(mem.pending.size());
        mem.pending.push_back(
            {mem.pin_pool.size(),
             vp::checked_narrow<std::uint32_t>(coarse_pins.size()), ew});
        mem.pin_pool.insert(mem.pin_pool.end(), coarse_pins.begin(),
                            coarse_pins.end());
        break;
      }
      ContractionMemory::PendingNet& net = mem.pending[idx];
      if (net.pins_size == coarse_pins.size() &&
          std::equal(coarse_pins.begin(), coarse_pins.end(),
                     mem.pin_pool.begin() +
                         static_cast<std::ptrdiff_t>(net.pins_begin))) {
        net.weight += ew;
        ++result.nets_merged;
        break;
      }
      slot = (slot + 1) & mask;
    }
  }

  for (const ContractionMemory::PendingNet& net : mem.pending) {
    builder.add_edge(
        std::span<const VertexId>(mem.pin_pool.data() + net.pins_begin,
                                  net.pins_size),
        net.weight);
  }
  result.coarse = builder.finalize(h.name() + ".coarse");
  return result;
}

std::vector<PartId> project_partition(
    const std::vector<VertexId>& fine_to_coarse,
    const std::vector<PartId>& coarse_parts) {
  std::vector<PartId> fine(fine_to_coarse.size(), kNoPart);
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    VP_CHECK(fine_to_coarse[v] < coarse_parts.size(),
             "coarse id in range during projection");
    fine[v] = coarse_parts[fine_to_coarse[v]];
  }
  return fine;
}

}  // namespace vlsipart
