#include "src/hypergraph/hypergraph.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/checked_narrow.h"
#include "src/util/logging.h"

namespace vlsipart {

void Hypergraph::validate() const {
  const std::size_t n = num_vertices();
  const std::size_t m = num_edges();
  VP_CHECK(edge_offsets_.size() == m + 1, "edge offset arity");
  VP_CHECK(vertex_offsets_.size() == n + 1, "vertex offset arity");
  VP_CHECK(edge_offsets_.front() == 0 && edge_offsets_.back() == edge_pins_.size(),
           "edge offsets span pins");
  VP_CHECK(vertex_offsets_.front() == 0 &&
               vertex_offsets_.back() == vertex_edges_.size(),
           "vertex offsets span incidences");
  VP_CHECK(edge_pins_.size() == vertex_edges_.size(),
           "pin count mismatch between directions");
  for (std::size_t e = 0; e + 1 < edge_offsets_.size(); ++e) {
    VP_CHECK(edge_offsets_[e] <= edge_offsets_[e + 1], "edge offsets monotone");
  }
  for (std::size_t v = 0; v + 1 < vertex_offsets_.size(); ++v) {
    VP_CHECK(vertex_offsets_[v] <= vertex_offsets_[v + 1],
             "vertex offsets monotone");
  }
  Weight vw = 0;
  for (std::size_t v = 0; v < n; ++v) {
    VP_CHECK(vertex_weights_[v] > 0, "vertex weight positive, v=" << v);
    vw += vertex_weights_[v];
  }
  VP_CHECK(vw == total_vertex_weight_, "total vertex weight cached correctly");
  Weight ew = 0;
  for (std::size_t e = 0; e < m; ++e) {
    VP_CHECK(edge_weights_[e] > 0, "edge weight positive, e=" << e);
    ew += edge_weights_[e];
    VP_CHECK(edge_size(static_cast<EdgeId>(e)) >= 2,
             "edges have >= 2 pins, e=" << e);
  }
  VP_CHECK(ew == total_edge_weight_, "total edge weight cached correctly");
  for (const VertexId v : edge_pins_) {
    VP_CHECK(v < n, "pin vertex in range");
  }
  for (const EdgeId e : vertex_edges_) {
    VP_CHECK(e < m, "incident edge in range");
  }
  // Cross-check the two incidence directions by counting (v,e) pairs.
  std::vector<std::size_t> deg_from_edges(n, 0);
  for (std::size_t e = 0; e < m; ++e) {
    for (const VertexId v : pins(static_cast<EdgeId>(e))) {
      ++deg_from_edges[v];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    VP_CHECK(deg_from_edges[v] == degree(static_cast<VertexId>(v)),
             "incidence directions agree, v=" << v);
  }
}

HypergraphBuilder::HypergraphBuilder(std::size_t num_vertices)
    : vertex_weights_(num_vertices, 1) {
  // Compact-CSR id contract: every vertex id must fit VertexId, with the
  // all-ones value reserved as the kInvalidVertex sentinel.
  VP_CHECK(num_vertices <= kInvalidVertex,
           "vertex count " << num_vertices << " exceeds the 32-bit id space");
}

void HypergraphBuilder::set_vertex_weight(VertexId v, Weight w) {
  VP_CHECK(v < vertex_weights_.size(), "vertex in range");
  VP_CHECK(w > 0, "vertex weight must be positive");
  vertex_weights_[v] = w;
}

void HypergraphBuilder::set_vertex_name(VertexId v, std::string name) {
  VP_CHECK(v < vertex_weights_.size(), "vertex in range");
  if (!has_names_) {
    vertex_names_.resize(vertex_weights_.size());
    has_names_ = true;
  }
  vertex_names_[v] = std::move(name);
}

EdgeId HypergraphBuilder::add_edge(std::span<const VertexId> pins,
                                   Weight weight) {
  VP_CHECK(weight > 0, "edge weight must be positive");
  scratch_.assign(pins.begin(), pins.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  for (const VertexId v : scratch_) {
    VP_CHECK(v < vertex_weights_.size(), "edge pin in range");
  }
  if (scratch_.size() < 2) return kInvalidEdge;
  // The new edge's id is the current edge count; checked_narrow enforces
  // that it stays below the kInvalidEdge sentinel.
  const auto id = vp::checked_narrow<EdgeId>(edge_weights_.size());
  edge_pins_.insert(edge_pins_.end(), scratch_.begin(), scratch_.end());
  edge_offsets_.push_back(edge_pins_.size());
  edge_weights_.push_back(weight);
  return id;
}

Hypergraph HypergraphBuilder::finalize(std::string name) {
  Hypergraph h;
  h.name_ = std::move(name);
  h.vertex_weights_ = std::move(vertex_weights_);
  h.edge_weights_ = std::move(edge_weights_);
  h.edge_offsets_ = std::move(edge_offsets_);
  h.edge_pins_ = std::move(edge_pins_);
  if (has_names_) h.vertex_names_ = std::move(vertex_names_);

  const std::size_t n = h.vertex_weights_.size();
  const std::size_t m = h.edge_weights_.size();

  // Counting sort to build the vertex -> edges direction.
  h.vertex_offsets_.assign(n + 1, 0);
  for (const VertexId v : h.edge_pins_) {
    ++h.vertex_offsets_[v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    h.vertex_offsets_[v + 1] += h.vertex_offsets_[v];
  }
  h.vertex_edges_.resize(h.edge_pins_.size());
  std::vector<std::size_t> cursor(h.vertex_offsets_.begin(),
                                  h.vertex_offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    for (std::size_t p = h.edge_offsets_[e]; p < h.edge_offsets_[e + 1]; ++p) {
      const VertexId v = h.edge_pins_[p];
      h.vertex_edges_[cursor[v]++] = static_cast<EdgeId>(e);
    }
  }

  h.total_vertex_weight_ = 0;
  h.max_vertex_weight_ = 0;
  for (const Weight w : h.vertex_weights_) {
    h.total_vertex_weight_ += w;
    h.max_vertex_weight_ = std::max(h.max_vertex_weight_, w);
  }
  h.total_edge_weight_ = 0;
  for (const Weight w : h.edge_weights_) h.total_edge_weight_ += w;

  // Leave the builder reusable-but-empty.
  *this = HypergraphBuilder(0);
  return h;
}

}  // namespace vlsipart
