#include "src/hypergraph/subgraph.h"

#include <vector>

#include "src/util/logging.h"

namespace vlsipart {

Subhypergraph extract_subhypergraph(const Hypergraph& h,
                                    std::span<const VertexId> vertices) {
  Subhypergraph sub;
  sub.to_original.assign(vertices.begin(), vertices.end());

  std::vector<VertexId> local_of(h.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    VP_CHECK(v < h.num_vertices(), "subgraph vertex in range");
    VP_CHECK(local_of[v] == kInvalidVertex,
             "duplicate vertex in subgraph selection: " << v);
    local_of[v] = static_cast<VertexId>(i);
  }

  HypergraphBuilder builder(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    builder.set_vertex_weight(static_cast<VertexId>(i),
                              h.vertex_weight(vertices[i]));
  }

  // Visit each net once via its first internal pin (in block order).
  std::vector<VertexId> pins;
  for (const VertexId v : vertices) {
    for (const EdgeId e : h.incident_edges(v)) {
      const auto span = h.pins(e);
      VertexId owner = kInvalidVertex;
      for (const VertexId u : span) {
        if (local_of[u] != kInvalidVertex) {
          owner = u;
          break;
        }
      }
      if (owner != v) continue;
      pins.clear();
      for (const VertexId u : span) {
        if (local_of[u] != kInvalidVertex) pins.push_back(local_of[u]);
      }
      if (pins.size() < 2) {
        ++sub.nets_dropped;
        continue;
      }
      const EdgeId id = builder.add_edge(pins, h.edge_weight(e));
      if (id != kInvalidEdge) {
        sub.edge_to_original.push_back(e);
      } else {
        ++sub.nets_dropped;
      }
    }
  }
  sub.graph = builder.finalize(h.name() + ".sub");
  return sub;
}

Components connected_components(const Hypergraph& h) {
  Components result;
  result.component_of.assign(h.num_vertices(), ~0u);
  std::vector<VertexId> stack;
  for (std::size_t seed = 0; seed < h.num_vertices(); ++seed) {
    if (result.component_of[seed] != ~0u) continue;
    const auto id = static_cast<std::uint32_t>(result.num_components++);
    std::size_t size = 0;
    stack.push_back(static_cast<VertexId>(seed));
    result.component_of[seed] = id;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      ++size;
      for (const EdgeId e : h.incident_edges(v)) {
        for (const VertexId u : h.pins(e)) {
          if (result.component_of[u] == ~0u) {
            result.component_of[u] = id;
            stack.push_back(u);
          }
        }
      }
    }
    result.sizes.push_back(size);
  }
  return result;
}

}  // namespace vlsipart
