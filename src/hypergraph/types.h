// Fundamental identifier and weight types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace vlsipart {

/// Vertex (cell/module) index, dense in [0, num_vertices).
using VertexId = std::uint32_t;
/// Hyperedge (net) index, dense in [0, num_edges).
using EdgeId = std::uint32_t;
/// Vertex/edge weight.  Signed 64-bit: areas of ISPD98-scale instances
/// sum far beyond 32 bits and gain arithmetic needs signed values.
using Weight = std::int64_t;
/// FM gain value (signed; bounded by +-max weighted degree).
using Gain = std::int64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Partition block index for 2-way partitioning.
using PartId = std::uint8_t;
inline constexpr PartId kNoPart = 255;

}  // namespace vlsipart
