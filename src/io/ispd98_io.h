// Reader/writer for the ISPD98 circuit benchmark netlist format [1][2].
//
// A benchmark is a pair of files:
//   <name>.netD — netlist:
//     line 1: 0   (ignored legacy field)
//     line 2: <#pins>
//     line 3: <#nets>
//     line 4: <#modules>
//     line 5: <pad offset>  (modules with index > pad offset are pads;
//                            pads are named p1..pP, cells a0..a(C-1))
//     then one line per pin: "<modname> <s|l> [<I|O|B>]" where 's' starts
//     a new net and 'l' continues the current net.
//   <name>.are — one line per module: "<modname> <area>".
//
// We map modules to dense VertexIds with cells first (a0 -> 0, ...)
// followed by pads (p1 -> C, ...).  Pin directions are parsed and ignored
// (the partitioning formulation is undirected, as in the paper).
#pragma once

#include <iosfwd>
#include <string>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

struct Ispd98Instance {
  Hypergraph hypergraph;
  /// Number of cell modules (aN); pads follow at ids [num_cells, total).
  std::size_t num_cells = 0;
  std::size_t num_pads = 0;
};

Ispd98Instance read_ispd98(std::istream& net_in, std::istream& are_in,
                           std::string name = {});
/// Reads <basepath>.netD and <basepath>.are.
Ispd98Instance read_ispd98_files(const std::string& basepath);

void write_ispd98(const Ispd98Instance& inst, std::ostream& net_out,
                  std::ostream& are_out);
void write_ispd98_files(const Ispd98Instance& inst,
                        const std::string& basepath);

}  // namespace vlsipart
