#include "src/io/ispd98_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

std::size_t read_count_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(std::string("ispd98: missing ") + what);
  }
  std::istringstream row(line);
  std::size_t value = 0;
  row >> value;
  if (!row) {
    throw std::runtime_error(std::string("ispd98: bad ") + what + ": " + line);
  }
  return value;
}

/// Translate an ISPD98 module name to a dense vertex id.
/// Cells "aN" map to N; pads "pN" (1-based) map to num_cells + N - 1.
VertexId module_to_vertex(const std::string& name, std::size_t num_cells,
                          std::size_t num_pads) {
  if (name.size() < 2 || (name[0] != 'a' && name[0] != 'p')) {
    throw std::runtime_error("ispd98: unrecognized module name " + name);
  }
  const std::size_t index = std::stoull(name.substr(1));
  if (name[0] == 'a') {
    if (index >= num_cells) {
      throw std::runtime_error("ispd98: cell index out of range: " + name);
    }
    return static_cast<VertexId>(index);
  }
  if (index < 1 || index > num_pads) {
    throw std::runtime_error("ispd98: pad index out of range: " + name);
  }
  return static_cast<VertexId>(num_cells + index - 1);
}

std::string vertex_to_module(VertexId v, std::size_t num_cells) {
  // Built via += rather than operator+(const char*, string&&), which
  // trips GCC 12's -Wrestrict false positive (PR105329) under -Werror.
  std::string out(1, v < num_cells ? 'a' : 'p');
  out += std::to_string(v < num_cells ? v : v - num_cells + 1);
  return out;
}

}  // namespace

Ispd98Instance read_ispd98(std::istream& net_in, std::istream& are_in,
                           std::string name) {
  // Header.
  (void)read_count_line(net_in, "ignore field");
  const std::size_t num_pins = read_count_line(net_in, "pin count");
  const std::size_t num_nets = read_count_line(net_in, "net count");
  const std::size_t num_modules = read_count_line(net_in, "module count");
  const std::size_t pad_offset = read_count_line(net_in, "pad offset");
  // By ISPD98 convention pad_offset is the index of the last cell module;
  // modules beyond it are pads.  Files use pad_offset = num_cells - 1.
  const std::size_t num_cells = pad_offset + 1;
  if (num_cells > num_modules) {
    throw std::runtime_error("ispd98: pad offset beyond module count");
  }
  const std::size_t num_pads = num_modules - num_cells;

  HypergraphBuilder builder(num_modules);

  // Pin lines.
  std::vector<VertexId> current_net;
  std::vector<std::vector<VertexId>> nets;
  nets.reserve(num_nets);
  std::string line;
  std::size_t pins_seen = 0;
  while (pins_seen < num_pins && std::getline(net_in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string module;
    std::string marker;
    row >> module >> marker;
    if (!row && marker.empty()) continue;
    if (marker != "s" && marker != "l") {
      throw std::runtime_error("ispd98: bad pin marker: " + line);
    }
    if (marker == "s" && !current_net.empty()) {
      nets.push_back(current_net);
      current_net.clear();
    }
    current_net.push_back(module_to_vertex(module, num_cells, num_pads));
    ++pins_seen;
  }
  if (!current_net.empty()) nets.push_back(current_net);
  if (pins_seen != num_pins) {
    throw std::runtime_error("ispd98: pin count mismatch: header says " +
                             std::to_string(num_pins) + ", saw " +
                             std::to_string(pins_seen));
  }
  if (nets.size() != num_nets) {
    // Some distributions count degenerate nets differently; warn, accept.
    VP_WARN("ispd98: header net count " << num_nets << " but parsed "
                                        << nets.size());
  }
  for (const auto& net : nets) builder.add_edge(net);

  // Areas.
  std::size_t areas_seen = 0;
  while (std::getline(are_in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string module;
    Weight area = 0;
    row >> module >> area;
    if (!row) throw std::runtime_error("ispd98: bad area line: " + line);
    if (area <= 0) area = 1;  // pads commonly have area 0; clamp to 1
    builder.set_vertex_weight(module_to_vertex(module, num_cells, num_pads),
                              area);
    ++areas_seen;
  }
  if (areas_seen != num_modules) {
    VP_WARN("ispd98: module count " << num_modules << " but " << areas_seen
                                    << " area lines");
  }

  Ispd98Instance inst;
  inst.hypergraph = builder.finalize(std::move(name));
  inst.num_cells = num_cells;
  inst.num_pads = num_pads;
  return inst;
}

Ispd98Instance read_ispd98_files(const std::string& basepath) {
  std::ifstream net_in(basepath + ".netD");
  if (!net_in) {
    net_in.open(basepath + ".net");
  }
  if (!net_in) {
    throw std::runtime_error("ispd98: cannot open " + basepath +
                             ".netD or .net");
  }
  std::ifstream are_in(basepath + ".are");
  if (!are_in) throw std::runtime_error("ispd98: cannot open " + basepath + ".are");
  std::string name = basepath;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return read_ispd98(net_in, are_in, name);
}

void write_ispd98(const Ispd98Instance& inst, std::ostream& net_out,
                  std::ostream& are_out) {
  const Hypergraph& h = inst.hypergraph;
  net_out << 0 << '\n'
          << h.num_pins() << '\n'
          << h.num_edges() << '\n'
          << h.num_vertices() << '\n'
          << (inst.num_cells == 0 ? 0 : inst.num_cells - 1) << '\n';
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    bool first = true;
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      net_out << vertex_to_module(v, inst.num_cells) << ' '
              << (first ? 's' : 'l') << '\n';
      first = false;
    }
  }
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    are_out << vertex_to_module(static_cast<VertexId>(v), inst.num_cells)
            << ' ' << h.vertex_weight(static_cast<VertexId>(v)) << '\n';
  }
}

void write_ispd98_files(const Ispd98Instance& inst,
                        const std::string& basepath) {
  std::ofstream net_out(basepath + ".netD");
  std::ofstream are_out(basepath + ".are");
  if (!net_out || !are_out) {
    throw std::runtime_error("ispd98: cannot write " + basepath);
  }
  write_ispd98(inst, net_out, are_out);
}

}  // namespace vlsipart
