// Reader/writer for the hMetis .hgr hypergraph format.
//
// Format (hMetis-1.5 manual [28]):
//   line 1: <#hyperedges> <#vertices> [fmt]
//     fmt: omitted/0 = unweighted, 1 = edge weights,
//          10 = vertex weights, 11 = both.
//   next #hyperedges lines: [edge-weight] v1 v2 ... (1-based vertex ids)
//   if vertex weights: #vertices further lines with one weight each.
// Lines starting with '%' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

Hypergraph read_hmetis(std::istream& in, std::string name = {});
Hypergraph read_hmetis_file(const std::string& path);

void write_hmetis(const Hypergraph& h, std::ostream& out);
void write_hmetis_file(const Hypergraph& h, const std::string& path);

}  // namespace vlsipart
