// Partition-solution file IO (one part id per line, vertex order),
// matching the output convention of hMetis' .part files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/hypergraph/types.h"

namespace vlsipart {

std::vector<PartId> read_partition(std::istream& in);
std::vector<PartId> read_partition_file(const std::string& path);

void write_partition(const std::vector<PartId>& parts, std::ostream& out);
void write_partition_file(const std::vector<PartId>& parts,
                          const std::string& path);

}  // namespace vlsipart
