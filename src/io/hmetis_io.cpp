#include "src/io/hmetis_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

/// Read the next non-comment, non-blank line; false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Hypergraph read_hmetis(std::istream& in, std::string name) {
  std::string line;
  if (!next_content_line(in, line)) {
    throw std::runtime_error("hmetis: empty input");
  }
  std::istringstream header(line);
  std::size_t num_edges = 0;
  std::size_t num_vertices = 0;
  int fmt = 0;
  header >> num_edges >> num_vertices;
  if (!header) throw std::runtime_error("hmetis: bad header line");
  header >> fmt;  // optional
  const bool edge_weights = (fmt == 1 || fmt == 11);
  const bool vertex_weights = (fmt == 10 || fmt == 11);
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11) {
    throw std::runtime_error("hmetis: unsupported fmt " + std::to_string(fmt));
  }

  HypergraphBuilder builder(num_vertices);
  std::vector<VertexId> pins;
  for (std::size_t e = 0; e < num_edges; ++e) {
    if (!next_content_line(in, line)) {
      throw std::runtime_error("hmetis: truncated edge list at edge " +
                               std::to_string(e));
    }
    std::istringstream row(line);
    Weight w = 1;
    if (edge_weights) {
      row >> w;
      if (!row) throw std::runtime_error("hmetis: missing edge weight");
    }
    pins.clear();
    std::size_t v1 = 0;
    while (row >> v1) {
      if (v1 < 1 || v1 > num_vertices) {
        throw std::runtime_error("hmetis: pin out of range: " +
                                 std::to_string(v1));
      }
      pins.push_back(static_cast<VertexId>(v1 - 1));
    }
    builder.add_edge(pins, w);
  }
  if (vertex_weights) {
    for (std::size_t v = 0; v < num_vertices; ++v) {
      if (!next_content_line(in, line)) {
        throw std::runtime_error("hmetis: truncated vertex weights");
      }
      std::istringstream row(line);
      Weight w = 0;
      row >> w;
      if (!row || w <= 0) {
        throw std::runtime_error("hmetis: bad vertex weight at vertex " +
                                 std::to_string(v + 1));
      }
      builder.set_vertex_weight(static_cast<VertexId>(v), w);
    }
  }
  return builder.finalize(std::move(name));
}

Hypergraph read_hmetis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("hmetis: cannot open " + path);
  // Instance name = basename without extension.
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_hmetis(in, name);
}

void write_hmetis(const Hypergraph& h, std::ostream& out) {
  bool any_edge_weight = false;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    if (h.edge_weight(static_cast<EdgeId>(e)) != 1) {
      any_edge_weight = true;
      break;
    }
  }
  bool any_vertex_weight = false;
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    if (h.vertex_weight(static_cast<VertexId>(v)) != 1) {
      any_vertex_weight = true;
      break;
    }
  }
  int fmt = 0;
  if (any_edge_weight) fmt += 1;
  if (any_vertex_weight) fmt += 10;

  out << h.num_edges() << ' ' << h.num_vertices();
  if (fmt != 0) out << ' ' << fmt;
  out << '\n';
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    if (any_edge_weight) out << h.edge_weight(static_cast<EdgeId>(e)) << ' ';
    bool first = true;
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  if (any_vertex_weight) {
    for (std::size_t v = 0; v < h.num_vertices(); ++v) {
      out << h.vertex_weight(static_cast<VertexId>(v)) << '\n';
    }
  }
}

void write_hmetis_file(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("hmetis: cannot write " + path);
  write_hmetis(h, out);
}

}  // namespace vlsipart
