#include "src/io/partition_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vlsipart {

std::vector<PartId> read_partition(std::istream& in) {
  std::vector<PartId> parts;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    int p = -1;
    row >> p;
    if (!row || p < 0 || p > 254) {
      throw std::runtime_error("partition: bad part id line: " + line);
    }
    parts.push_back(static_cast<PartId>(p));
  }
  return parts;
}

std::vector<PartId> read_partition_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("partition: cannot open " + path);
  return read_partition(in);
}

void write_partition(const std::vector<PartId>& parts, std::ostream& out) {
  for (const PartId p : parts) {
    out << static_cast<int>(p) << '\n';
  }
}

void write_partition_file(const std::vector<PartId>& parts,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("partition: cannot write " + path);
  write_partition(parts, out);
}

}  // namespace vlsipart
