#include "src/eval/pareto.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace vlsipart {

bool dominates(const PerfPoint& b, const PerfPoint& a) {
  return b.cost < a.cost && b.cpu_seconds < a.cpu_seconds;
}

std::vector<PerfPoint> pareto_frontier(std::vector<PerfPoint> points) {
  // Sort by runtime ascending, cost ascending; sweep keeping the running
  // minimum cost.  A point is dominated iff some strictly faster point
  // has strictly lower cost.
  std::sort(points.begin(), points.end(),
            [](const PerfPoint& x, const PerfPoint& y) {
              if (x.cpu_seconds != y.cpu_seconds) {
                return x.cpu_seconds < y.cpu_seconds;
              }
              return x.cost < y.cost;
            });
  std::vector<PerfPoint> frontier;
  double best_cost_strictly_faster = std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  while (i < points.size()) {
    // Process ties in runtime together: they cannot dominate each other.
    std::size_t j = i;
    while (j < points.size() &&
           points[j].cpu_seconds == points[i].cpu_seconds) {
      ++j;
    }
    for (std::size_t k = i; k < j; ++k) {
      if (points[k].cost < best_cost_strictly_faster) {
        frontier.push_back(points[k]);
      }
    }
    for (std::size_t k = i; k < j; ++k) {
      best_cost_strictly_faster =
          std::min(best_cost_strictly_faster, points[k].cost);
    }
    i = j;
  }
  return frontier;
}

std::vector<RankingEntry> ranking_diagram(
    const std::vector<PerfPoint>& points,
    const std::vector<double>& budgets) {
  std::vector<RankingEntry> ranking;
  ranking.reserve(budgets.size());
  for (const double budget : budgets) {
    RankingEntry entry;
    entry.budget_cpu_seconds = budget;
    double best = std::numeric_limits<double>::infinity();
    for (const PerfPoint& p : points) {
      if (p.cpu_seconds <= budget && p.cost < best) {
        best = p.cost;
        entry.winner = p.label;
        entry.winner_cost = p.cost;
      }
    }
    ranking.push_back(entry);
  }
  return ranking;
}

std::string format_frontier(const std::vector<PerfPoint>& frontier) {
  std::ostringstream out;
  out << "# non-dominated frontier: cpu_sec cost label\n";
  for (const PerfPoint& p : frontier) {
    out << p.cpu_seconds << ' ' << p.cost << ' ' << p.label << '\n';
  }
  return out.str();
}

}  // namespace vlsipart
