// Partitioning objective functions beyond plain cut size.
//
// Section 1 of the paper lists the standard objectives proposed in the
// literature: cut size, ratio cut [37], scaled cost [11] and absorption
// [36].  The FM testbed optimizes cut; these evaluators let experiments
// report any of them on a finished solution ("Do measure with many
// instruments", Gent et al. [19]).
#pragma once

#include <span>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

/// Number (weighted sum) of hyperedges spanning both parts.
Weight cut_size(const Hypergraph& h, std::span<const PartId> parts);

/// Wei-Cheng ratio cut [37]: cut / (w(P0) * w(P1)).
/// Lower is better; balance emerges from the denominator.
double ratio_cut(const Hypergraph& h, std::span<const PartId> parts);

/// Chan-Schlag-Zien scaled cost [11] for k = 2:
///   (1 / (n (k-1))) * sum_p cut / w(P_p).
double scaled_cost(const Hypergraph& h, std::span<const PartId> parts);

/// Sun-Sechen absorption [36]: sum over nets e, parts p of
///   (pins(e, p) - 1) / (|e| - 1), counting only parts with pins.
/// Higher is better (a fully absorbed net contributes 1).
double absorption(const Hypergraph& h, std::span<const PartId> parts);

/// Sum of (|e| - 1) over cut nets — the "SOED minus net count" style
/// k-way generalization specialized to 2 parts; reported by several of
/// the surveyed papers.
Weight sum_of_external_degrees(const Hypergraph& h,
                               std::span<const PartId> parts);

}  // namespace vlsipart
