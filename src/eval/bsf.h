// Best-so-far (BSF) curves and speed-dependent ranking (Sec. 3.2).
//
// Barr et al. [5] describe the BSF curve — expected best solution cost
// versus CPU budget tau in a multistart regime — as the standard
// metaheuristic reporting style; Schreiber-Martin [33][34] build
// speed-dependent rankings from the distribution of c_tau.  Both are
// computed here from the retained per-start samples of a multistart run.
#pragma once

#include <string>
#include <vector>

#include "src/part/core/multistart.h"
#include "src/util/stats.h"

namespace vlsipart {

struct BsfPoint {
  double cpu_seconds = 0.0;  ///< budget tau
  double expected_cost = 0.0;
  std::size_t starts = 0;  ///< number of starts the budget affords
};

/// Expected BSF curve under the independent-multistart model: a budget
/// tau affords k = floor(tau / avg_start_time) starts ("a given time
/// bound tau can be converted to a bound on the number of starts",
/// Sec. 3.2 footnote 6), and the expected cost is E[min of k draws] from
/// the empirical cut distribution.  Points are emitted for each k in
/// `start_counts`.
std::vector<BsfPoint> expected_bsf_curve(
    const Sample& cuts, double avg_start_seconds,
    const std::vector<std::size_t>& start_counts);

/// Observed BSF trajectory of one actual multistart run: after each
/// start, (cumulative CPU, best cut so far).
std::vector<BsfPoint> observed_bsf_curve(
    const std::vector<StartRecord>& starts);

/// Probability that k starts reach cost <= threshold (used for the
/// "P(c_tau = C0)"-style ranking diagnostics of [33][34]).
double prob_reach(const Sample& cuts, std::size_t k, double threshold);

/// Render a curve as "tau expected_cost starts" rows (CSV-friendly).
std::string format_bsf(const std::vector<BsfPoint>& curve,
                       const std::string& label);

}  // namespace vlsipart
