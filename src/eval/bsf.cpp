#include "src/eval/bsf.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace vlsipart {

std::vector<BsfPoint> expected_bsf_curve(
    const Sample& cuts, double avg_start_seconds,
    const std::vector<std::size_t>& start_counts) {
  std::vector<BsfPoint> curve;
  curve.reserve(start_counts.size());
  for (const std::size_t k : start_counts) {
    if (k == 0) continue;
    BsfPoint p;
    p.starts = k;
    p.cpu_seconds = avg_start_seconds * static_cast<double>(k);
    p.expected_cost = cuts.expected_min_of(k);
    curve.push_back(p);
  }
  return curve;
}

std::vector<BsfPoint> observed_bsf_curve(
    const std::vector<StartRecord>& starts) {
  std::vector<BsfPoint> curve;
  curve.reserve(starts.size());
  double cpu = 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::size_t k = 0;
  for (const StartRecord& s : starts) {
    cpu += s.cpu_seconds;
    ++k;
    if (s.feasible) best = std::min(best, static_cast<double>(s.cut));
    BsfPoint p;
    p.cpu_seconds = cpu;
    p.expected_cost = best;
    p.starts = k;
    curve.push_back(p);
  }
  return curve;
}

double prob_reach(const Sample& cuts, std::size_t k, double threshold) {
  return cuts.prob_min_leq(k, threshold);
}

std::string format_bsf(const std::vector<BsfPoint>& curve,
                       const std::string& label) {
  std::ostringstream out;
  out << "# BSF curve: " << label << "\n";
  out << "# tau_cpu_sec expected_best_cut starts\n";
  for (const BsfPoint& p : curve) {
    out << p.cpu_seconds << ' ' << p.expected_cost << ' ' << p.starts
        << '\n';
  }
  return out.str();
}

}  // namespace vlsipart
