#include "src/eval/significance.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

/// Continued-fraction core for the incomplete beta (Lentz's algorithm),
/// following the classic numerical-recipes formulation.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  VP_CHECK(a > 0.0 && b > 0.0, "beta parameters positive");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double normal_two_sided_p(double z) {
  // 2 * (1 - Phi(|z|)) via erfc.
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

double student_t_two_sided_p(double t, double dof) {
  if (dof <= 0.0) return 1.0;
  const double x = dof / (dof + t * t);
  return regularized_incomplete_beta(dof / 2.0, 0.5, x);
}

TestResult welch_t_test(const Sample& a, const Sample& b) {
  TestResult result;
  if (a.size() < 2 || b.size() < 2) return result;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = a.stddev() * a.stddev();
  const double vb = b.stddev() * b.stddev();
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    // Identical constant samples: no evidence of difference unless the
    // means differ exactly (then it is "infinitely" significant).
    result.p_value = (a.mean() == b.mean()) ? 1.0 : 0.0;
    return result;
  }
  result.statistic = (a.mean() - b.mean()) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double dof =
      se2 * se2 /
      (va * va / (na * na * (na - 1.0)) + vb * vb / (nb * nb * (nb - 1.0)));
  result.p_value = student_t_two_sided_p(result.statistic, dof);
  return result;
}

TestResult mann_whitney_u(const Sample& a, const Sample& b) {
  TestResult result;
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  if (na < 2 || nb < 2) return result;

  // Pool, rank with midranks for ties.
  struct Obs {
    double value;
    bool from_a;
  };
  std::vector<Obs> pool;
  pool.reserve(na + nb);
  for (double v : a.values()) pool.push_back({v, true});
  for (double v : b.values()) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Obs& x, const Obs& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].value == pool[i].value) ++j;
    const double midrank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    const auto ties = static_cast<double>(j - i);
    if (j - i > 1) tie_correction += ties * ties * ties - ties;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_a) rank_sum_a += midrank;
    }
    i = j;
  }

  const double dna = static_cast<double>(na);
  const double dnb = static_cast<double>(nb);
  const double u_a = rank_sum_a - dna * (dna + 1.0) / 2.0;
  const double mean_u = dna * dnb / 2.0;
  const double n = dna + dnb;
  const double var_u =
      dna * dnb / 12.0 *
      ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    result.p_value = 1.0;  // all observations tied
    return result;
  }
  result.statistic = (u_a - mean_u) / std::sqrt(var_u);
  result.p_value = normal_two_sided_p(result.statistic);
  return result;
}

std::string describe_comparison(const std::string& label_a, const Sample& a,
                                const std::string& label_b, const Sample& b,
                                double alpha) {
  const TestResult t = welch_t_test(a, b);
  const TestResult u = mann_whitney_u(a, b);
  std::ostringstream out;
  const bool a_better = a.mean() < b.mean();
  out << (a_better ? label_a : label_b) << " better on average ("
      << (a_better ? a.mean() : b.mean()) << " vs "
      << (a_better ? b.mean() : a.mean()) << "); Welch p=" << t.p_value
      << ", Mann-Whitney p=" << u.p_value << " — "
      << (t.significant_at(alpha) && u.significant_at(alpha)
              ? "significant"
              : "NOT significant")
      << " at alpha=" << alpha;
  return out.str();
}

}  // namespace vlsipart
