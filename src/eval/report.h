// Structured multi-engine comparison reports.
//
// Bundles the paper's whole reporting prescription (Sec. 3.2) into one
// call: run every engine under an identical multistart regime, then emit
//   * a min/avg/stddev/CPU summary table,
//   * expected best-so-far curves,
//   * the non-dominated (cost, runtime) frontier,
//   * pairwise significance tests against a chosen baseline.
// This is what a paper's "comparison section" should compute — wired up
// so downstream users cannot accidentally compare on number-of-starts
// instead of CPU time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/eval/bsf.h"
#include "src/eval/pareto.h"
#include "src/eval/significance.h"
#include "src/part/core/multistart.h"

namespace vlsipart {

struct ComparisonConfig {
  std::size_t runs = 20;
  std::uint64_t seed = 1;
  /// Multistart budgets (in starts) for BSF/frontier points.
  std::vector<std::size_t> budgets = {1, 2, 4, 8, 16};
  /// Index (into the engines vector) of the significance baseline.
  std::size_t baseline = 0;
  double alpha = 0.05;
};

struct EngineReport {
  std::string name;
  MultistartResult multistart;
  std::vector<BsfPoint> bsf;
  /// Welch/Mann-Whitney comparison against the baseline engine
  /// (empty string for the baseline itself).
  std::string versus_baseline;
};

struct ComparisonReport {
  std::vector<EngineReport> engines;
  std::vector<PerfPoint> points;
  std::vector<PerfPoint> frontier;

  /// Aligned-text rendering of the whole report.
  std::string to_string() const;
};

/// Run the full comparison.  Engines are owned by the caller and run
/// sequentially (deterministic per engine given config.seed).
ComparisonReport compare_engines(
    const PartitionProblem& problem,
    const std::vector<std::pair<std::string, Bipartitioner*>>& engines,
    const ComparisonConfig& config);

}  // namespace vlsipart
