#include "src/eval/objectives.h"

#include <array>

#include "src/part/core/partition_state.h"

namespace vlsipart {

Weight cut_size(const Hypergraph& h, std::span<const PartId> parts) {
  return compute_cut(h, parts);
}

double ratio_cut(const Hypergraph& h, std::span<const PartId> parts) {
  const Weight cut = compute_cut(h, parts);
  const auto w = compute_part_weights(h, parts);
  if (w[0] == 0 || w[1] == 0) return 0.0;
  return static_cast<double>(cut) /
         (static_cast<double>(w[0]) * static_cast<double>(w[1]));
}

double scaled_cost(const Hypergraph& h, std::span<const PartId> parts) {
  const Weight cut = compute_cut(h, parts);
  const auto w = compute_part_weights(h, parts);
  if (w[0] == 0 || w[1] == 0) return 0.0;
  const double n = static_cast<double>(h.num_vertices());
  // k = 2, so n(k-1) = n.
  return (static_cast<double>(cut) / static_cast<double>(w[0]) +
          static_cast<double>(cut) / static_cast<double>(w[1])) /
         n;
}

double absorption(const Hypergraph& h, std::span<const PartId> parts) {
  double total = 0.0;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    std::array<std::size_t, 2> pins{0, 0};
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      ++pins[parts[v]];
    }
    const double denom =
        static_cast<double>(h.edge_size(static_cast<EdgeId>(e)) - 1);
    for (int p = 0; p < 2; ++p) {
      if (pins[p] > 0) {
        total += static_cast<double>(pins[p] - 1) / denom;
      }
    }
  }
  return total;
}

Weight sum_of_external_degrees(const Hypergraph& h,
                               std::span<const PartId> parts) {
  Weight total = 0;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    bool in0 = false;
    bool in1 = false;
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      (parts[v] == 0 ? in0 : in1) = true;
    }
    if (in0 && in1) {
      total += static_cast<Weight>(h.edge_size(static_cast<EdgeId>(e)) - 1) *
               h.edge_weight(static_cast<EdgeId>(e));
    }
  }
  return total;
}

}  // namespace vlsipart
