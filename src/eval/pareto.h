// Non-dominated (Pareto) frontier of (solution cost, runtime) points.
//
// The paper defines: "a particular (solution cost, runtime) performance
// point A is dominated by another performance point B if and only if B
// has both lower cost and lower runtime than A", and the non-dominated
// frontier as the set of points not dominated by any other (Sec. 3.2).
// It also describes a "ranking diagram" of which heuristic wins in each
// runtime regime.
#pragma once

#include <string>
#include <vector>

namespace vlsipart {

struct PerfPoint {
  double cost = 0.0;
  double cpu_seconds = 0.0;
  std::string label;  ///< heuristic / configuration identifier
};

/// Strict dominance per the paper's definition: B dominates A iff B has
/// both lower cost AND lower runtime (strictly).
bool dominates(const PerfPoint& b, const PerfPoint& a);

/// All points not dominated by any other, sorted by ascending runtime.
/// Duplicate (cost, time) pairs are all retained (none dominates the
/// other under strict dominance).
std::vector<PerfPoint> pareto_frontier(std::vector<PerfPoint> points);

struct RankingEntry {
  double budget_cpu_seconds = 0.0;
  std::string winner;   ///< label of the best point affordable in budget
  double winner_cost = 0.0;
};

/// Speed-dependent ranking: for each CPU budget, the point with the
/// lowest cost among those with runtime <= budget.  Budgets with no
/// affordable point yield an entry with an empty winner label.
std::vector<RankingEntry> ranking_diagram(
    const std::vector<PerfPoint>& points, const std::vector<double>& budgets);

std::string format_frontier(const std::vector<PerfPoint>& frontier);

}  // namespace vlsipart
