#include "src/eval/report.h"

#include <sstream>

#include "src/util/logging.h"
#include "src/util/table.h"

namespace vlsipart {

ComparisonReport compare_engines(
    const PartitionProblem& problem,
    const std::vector<std::pair<std::string, Bipartitioner*>>& engines,
    const ComparisonConfig& config) {
  VP_CHECK(!engines.empty(), "at least one engine");
  VP_CHECK(config.baseline < engines.size(), "baseline index in range");

  ComparisonReport report;
  report.engines.reserve(engines.size());

  for (const auto& [name, engine] : engines) {
    EngineReport er;
    er.name = name;
    er.multistart =
        run_multistart(problem, *engine, config.runs, config.seed);
    const Sample cuts = er.multistart.cut_sample();
    er.bsf = expected_bsf_curve(cuts, er.multistart.avg_cpu_seconds(),
                                config.budgets);
    for (const BsfPoint& p : er.bsf) {
      report.points.push_back(
          {p.expected_cost, p.cpu_seconds,
           name + "@" + std::to_string(p.starts)});
    }
    report.engines.push_back(std::move(er));
  }

  const Sample baseline_cuts =
      report.engines[config.baseline].multistart.cut_sample();
  for (std::size_t i = 0; i < report.engines.size(); ++i) {
    if (i == config.baseline) continue;
    report.engines[i].versus_baseline = describe_comparison(
        report.engines[i].name, report.engines[i].multistart.cut_sample(),
        report.engines[config.baseline].name, baseline_cuts, config.alpha);
  }

  report.frontier = pareto_frontier(report.points);
  return report;
}

std::string ComparisonReport::to_string() const {
  std::ostringstream out;

  TextTable summary(
      {"engine", "min cut", "avg cut", "stddev", "avg cpu (s)"});
  for (const EngineReport& er : engines) {
    const Sample cuts = er.multistart.cut_sample();
    summary.add_row({er.name, std::to_string(er.multistart.min_cut()),
                     fmt_fixed(er.multistart.avg_cut(), 1),
                     fmt_fixed(cuts.stddev(), 1),
                     fmt_fixed(er.multistart.avg_cpu_seconds(), 4)});
  }
  out << "== Multistart summary\n" << summary.to_string() << '\n';

  out << "== Expected best-so-far curves\n";
  for (const EngineReport& er : engines) {
    out << format_bsf(er.bsf, er.name);
  }
  out << '\n';

  out << "== Non-dominated (cost, runtime) frontier\n"
      << format_frontier(frontier) << '\n';

  out << "== Significance vs baseline\n";
  for (const EngineReport& er : engines) {
    if (er.versus_baseline.empty()) continue;
    out << "  " << er.versus_baseline << '\n';
  }
  return out.str();
}

}  // namespace vlsipart
