// Statistical significance tests for heuristic comparison.
//
// Section 3.2: "Statistical analyses (e.g., significance tests) are also
// recognized as helpful in evaluating the significance of solution cost
// variation in diverse circumstances; Brglez has recently pointed this
// out, along with effects of randomizations, in the VLSI CAD literature
// [7]."  These tests answer Brglez's question — "which improvements are
// due to improved heuristic and which are merely due to chance?" — for
// two samples of per-start cuts.
#pragma once

#include <string>

#include "src/util/stats.h"

namespace vlsipart {

struct TestResult {
  double statistic = 0.0;
  /// Two-sided p-value.
  double p_value = 1.0;
  /// Convenience: p_value < alpha for the chosen alpha.
  bool significant_at(double alpha) const { return p_value < alpha; }
};

/// Welch's unequal-variance t-test on the means of two samples.
/// Requires at least 2 observations per sample.
TestResult welch_t_test(const Sample& a, const Sample& b);

/// Mann-Whitney U test (rank-sum), normal approximation with tie
/// correction.  Distribution-free — appropriate for cut distributions,
/// which are typically skewed.  Requires at least 2 observations per
/// sample.
TestResult mann_whitney_u(const Sample& a, const Sample& b);

/// Two-sided p-value of a standard normal deviate.
double normal_two_sided_p(double z);

/// Two-sided p-value of Student's t with (possibly fractional) degrees
/// of freedom, via the regularized incomplete beta function.
double student_t_two_sided_p(double t, double dof);

/// Regularized incomplete beta function I_x(a, b) (continued-fraction
/// evaluation); exposed for tests.
double regularized_incomplete_beta(double a, double b, double x);

/// Human-readable verdict ("A better, p=0.003 (significant at 0.05)").
std::string describe_comparison(const std::string& label_a, const Sample& a,
                                const std::string& label_b, const Sample& b,
                                double alpha = 0.05);

}  // namespace vlsipart
