// Quadrisection placement (Suaris-Kedem [35]) — the paper's second cited
// terminal-propagation flow: regions are split into four quadrants at
// once with a direct 4-way FM engine, rather than by two successive
// bisections.  Crossing nets become terminals fixed to the nearest
// quadrant.  Compared against recursive bisection, quadrisection sees
// both cutline directions simultaneously and avoids committing to a
// vertical split before knowing the horizontal one.
#pragma once

#include "src/flows/topdown_place.h"

namespace vlsipart {

struct QuadPlacerConfig {
  double core_width = 0.0;   ///< 0 = derive square core from total area
  double core_height = 0.0;
  std::size_t leaf_cells = 24;
  /// Per-quadrant weight tolerance for the 4-way subproblems.
  double tolerance = 0.20;
  /// Direct k-way FM passes per region.
  int refine_passes = 4;
  std::uint64_t seed = 1;
};

/// Run the quadrisection flow; report has the same shape as the
/// bisection placer's so the two flows can be compared directly.
PlacementReport quadrisection_place(const Hypergraph& h,
                                    const QuadPlacerConfig& config);

}  // namespace vlsipart
