// Top-down min-cut placement flow — the driving application of Sec. 2.1.
//
// "A modern top-down standard-cell placement tool might perform ...
// recursive min-cut bisection of a cell-level netlist to obtain a coarse
// placement."  This flow reproduces that use model: regions are
// recursively bisected with the FM engine, and nets crossing a region
// boundary are modeled by fixed terminal vertices (terminal propagation,
// Dunlop-Kernighan [14] / Suaris-Kedem [35]).  It is also the reason
// "almost all hypergraph partitioning instances have many vertices fixed
// in partitions" in practice — each recursive subproblem below the top
// level carries fixed terminals.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/part/core/fm_config.h"

namespace vlsipart {

struct PlacerConfig {
  /// Core region; 0 = derive a square sized by total cell area.
  double core_width = 0.0;
  double core_height = 0.0;
  /// Stop recursing when a region holds at most this many cells.
  std::size_t leaf_cells = 24;
  /// Balance tolerance per bisection (vertical cutlines tolerate more,
  /// Sec. 3.2 footnote 8).
  double tolerance = 0.10;
  /// FM policy for every bisection.
  FmConfig fm;
  /// Independent starts per region — "realistic runtime regimes support
  /// at most a few starts" (Sec. 3.2).
  std::size_t starts_per_region = 2;
  std::uint64_t seed = 1;
};

struct Placement {
  std::vector<double> x;
  std::vector<double> y;
};

struct PlacementReport {
  Placement placement;
  double hpwl = 0.0;
  std::size_t regions_partitioned = 0;
  std::size_t terminals_created = 0;
  double cpu_seconds = 0.0;
};

/// Run the full top-down flow.  Deterministic for a fixed config.
PlacementReport topdown_place(const Hypergraph& h,
                              const PlacerConfig& config);

/// Half-perimeter wirelength of a placement.
double hpwl(const Hypergraph& h, const Placement& placement);

}  // namespace vlsipart
