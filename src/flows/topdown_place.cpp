#include "src/flows/topdown_place.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace vlsipart {
namespace {

struct Region {
  double x0, y0, x1, y1;
  std::vector<VertexId> cells;
  std::uint64_t seed;
};

class TopdownPlacer {
 public:
  TopdownPlacer(const Hypergraph& h, const PlacerConfig& config)
      : h_(h), config_(config) {
    report_.placement.x.assign(h.num_vertices(), 0.0);
    report_.placement.y.assign(h.num_vertices(), 0.0);
  }

  PlacementReport run() {
    CpuTimer timer;
    double width = config_.core_width;
    double height = config_.core_height;
    if (width <= 0.0 || height <= 0.0) {
      const double side =
          std::sqrt(static_cast<double>(h_.total_vertex_weight()));
      width = height = std::max(1.0, side);
    }
    Region top{0.0, 0.0, width, height, {}, config_.seed};
    top.cells.reserve(h_.num_vertices());
    for (std::size_t v = 0; v < h_.num_vertices(); ++v) {
      top.cells.push_back(static_cast<VertexId>(v));
    }
    // Seed initial positions at the region center so terminal propagation
    // in early bisections sees sensible external locations.
    for (const VertexId v : top.cells) {
      report_.placement.x[v] = width / 2.0;
      report_.placement.y[v] = height / 2.0;
    }
    place_region(top);
    report_.hpwl = hpwl(h_, report_.placement);
    report_.cpu_seconds = timer.elapsed();
    return std::move(report_);
  }

 private:
  void place_region(const Region& region) {
    if (region.cells.size() <= config_.leaf_cells) {
      place_leaf(region);
      return;
    }
    const bool vertical = (region.x1 - region.x0) >= (region.y1 - region.y0);
    const double cut = vertical ? (region.x0 + region.x1) / 2.0
                                : (region.y0 + region.y1) / 2.0;

    // Build the sub-hypergraph: region cells first, then one fixed
    // terminal per crossing net.
    std::unordered_map<VertexId, VertexId> local_id;
    local_id.reserve(region.cells.size());
    for (std::size_t i = 0; i < region.cells.size(); ++i) {
      local_id.emplace(region.cells[i], static_cast<VertexId>(i));
    }

    struct SubNet {
      EdgeId edge = kInvalidEdge;
      std::vector<VertexId> internal;  // local ids
      bool has_external = false;
      double external_pos_sum = 0.0;
      std::size_t external_count = 0;
    };
    // Sub-nets are collected in deterministic first-encounter order (a
    // pure function of cell order and the CSR layout); iterating a hash
    // map here would order the sub-hypergraph's nets — and therefore the
    // FM result — by the standard library's bucket layout.
    std::vector<SubNet> subnets;
    std::unordered_map<EdgeId, std::size_t> subnet_index;  // lookup only
    for (const VertexId v : region.cells) {
      for (const EdgeId e : h_.incident_edges(v)) {
        auto [it, inserted] = subnet_index.try_emplace(e, subnets.size());
        if (inserted) {
          SubNet& net = subnets.emplace_back();
          net.edge = e;
          for (const VertexId u : h_.pins(e)) {
            const auto lit = local_id.find(u);
            if (lit != local_id.end()) {
              net.internal.push_back(lit->second);
            } else {
              net.has_external = true;
              net.external_pos_sum += vertical ? report_.placement.x[u]
                                               : report_.placement.y[u];
              ++net.external_count;
            }
          }
        }
      }
    }

    // Count terminals (one per crossing net) and build the builder.
    std::size_t num_terminals = 0;
    for (const SubNet& net : subnets) {
      if (net.has_external && !net.internal.empty()) ++num_terminals;
    }
    const std::size_t n_local = region.cells.size();
    HypergraphBuilder builder(n_local + num_terminals);
    for (std::size_t i = 0; i < n_local; ++i) {
      builder.set_vertex_weight(static_cast<VertexId>(i),
                                h_.vertex_weight(region.cells[i]));
    }
    std::vector<PartId> fixed(n_local + num_terminals, kNoPart);
    std::size_t next_terminal = n_local;
    std::vector<VertexId> pins;
    for (const SubNet& net : subnets) {
      if (net.internal.empty()) continue;
      pins = net.internal;
      if (net.has_external) {
        const auto t = static_cast<VertexId>(next_terminal++);
        builder.set_vertex_weight(t, 1);
        const double mean =
            net.external_pos_sum / static_cast<double>(net.external_count);
        fixed[t] = (mean < cut) ? 0 : 1;
        pins.push_back(t);
        ++report_.terminals_created;
      }
      builder.add_edge(pins, h_.edge_weight(net.edge));
    }
    Hypergraph sub = builder.finalize();

    PartitionProblem problem;
    problem.graph = &sub;
    problem.balance = BalanceConstraint::from_tolerance(
        sub.total_vertex_weight(), config_.tolerance);
    problem.fixed = std::move(fixed);

    FlatFmPartitioner partitioner(config_.fm);
    MultistartResult result = run_multistart(
        problem, partitioner, config_.starts_per_region, region.seed);
    ++report_.regions_partitioned;

    std::vector<PartId> parts = result.best_parts;
    if (parts.empty()) {
      // All starts infeasible (tiny skewed regions): fall back to LPT.
      parts = lpt_initial(problem);
    }

    Region low = region;
    Region high = region;
    if (vertical) {
      low.x1 = cut;
      high.x0 = cut;
    } else {
      low.y1 = cut;
      high.y0 = cut;
    }
    low.cells.clear();
    high.cells.clear();
    low.seed = region.seed * 2654435761u + 1;
    high.seed = region.seed * 2654435761u + 2;
    for (std::size_t i = 0; i < n_local; ++i) {
      (parts[i] == 0 ? low : high).cells.push_back(region.cells[i]);
    }
    // Update coarse positions so deeper terminal propagation sees the
    // new side assignment.
    for (const VertexId v : low.cells) {
      report_.placement.x[v] = (low.x0 + low.x1) / 2.0;
      report_.placement.y[v] = (low.y0 + low.y1) / 2.0;
    }
    for (const VertexId v : high.cells) {
      report_.placement.x[v] = (high.x0 + high.x1) / 2.0;
      report_.placement.y[v] = (high.y0 + high.y1) / 2.0;
    }
    place_region(low);
    place_region(high);
  }

  void place_leaf(const Region& region) {
    // Spread cells on a simple row grid inside the region, in id order.
    const std::size_t n = region.cells.size();
    if (n == 0) return;
    const auto cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    const std::size_t rows = (n + cols - 1) / cols;
    const double dx = (region.x1 - region.x0) / static_cast<double>(cols);
    const double dy = (region.y1 - region.y0) / static_cast<double>(rows);
    std::vector<VertexId> ordered = region.cells;
    std::sort(ordered.begin(), ordered.end());
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = i / cols;
      const std::size_t c = i % cols;
      report_.placement.x[ordered[i]] =
          region.x0 + (static_cast<double>(c) + 0.5) * dx;
      report_.placement.y[ordered[i]] =
          region.y0 + (static_cast<double>(r) + 0.5) * dy;
    }
  }

  const Hypergraph& h_;
  PlacerConfig config_;
  PlacementReport report_;
};

}  // namespace

PlacementReport topdown_place(const Hypergraph& h,
                              const PlacerConfig& config) {
  TopdownPlacer placer(h, config);
  return placer.run();
}

double hpwl(const Hypergraph& h, const Placement& placement) {
  double total = 0.0;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    double min_x = 0.0;
    double max_x = 0.0;
    double min_y = 0.0;
    double max_y = 0.0;
    bool first = true;
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      const double x = placement.x[v];
      const double y = placement.y[v];
      if (first) {
        min_x = max_x = x;
        min_y = max_y = y;
        first = false;
      } else {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
    total += static_cast<double>(h.edge_weight(static_cast<EdgeId>(e))) *
             ((max_x - min_x) + (max_y - min_y));
  }
  return total;
}

}  // namespace vlsipart
