#include "src/flows/quadrisection.h"

#include <algorithm>
#include <cmath>
#include <numeric>


#include "src/part/kway/kway_refiner.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace vlsipart {
namespace {

// Quadrant ids: 0 = SW, 1 = SE, 2 = NW, 3 = NE.
struct QuadRegion {
  double x0, y0, x1, y1;
  std::vector<VertexId> cells;
  std::uint64_t seed;
};

class QuadPlacer {
 public:
  QuadPlacer(const Hypergraph& h, const QuadPlacerConfig& config)
      : h_(h), config_(config) {
    report_.placement.x.assign(h.num_vertices(), 0.0);
    report_.placement.y.assign(h.num_vertices(), 0.0);
  }

  PlacementReport run() {
    CpuTimer timer;
    double width = config_.core_width;
    double height = config_.core_height;
    if (width <= 0.0 || height <= 0.0) {
      const double side =
          std::sqrt(static_cast<double>(h_.total_vertex_weight()));
      width = height = std::max(1.0, side);
    }
    QuadRegion top{0.0, 0.0, width, height, {}, config_.seed};
    top.cells.reserve(h_.num_vertices());
    for (std::size_t v = 0; v < h_.num_vertices(); ++v) {
      top.cells.push_back(static_cast<VertexId>(v));
      report_.placement.x[v] = width / 2.0;
      report_.placement.y[v] = height / 2.0;
    }
    place_region(top);
    report_.hpwl = hpwl(h_, report_.placement);
    report_.cpu_seconds = timer.elapsed();
    return std::move(report_);
  }

 private:
  void place_region(const QuadRegion& region) {
    if (region.cells.size() <= config_.leaf_cells) {
      place_leaf(region);
      return;
    }
    const double cx = (region.x0 + region.x1) / 2.0;
    const double cy = (region.y0 + region.y1) / 2.0;

    // Sub-netlist over this region's cells plus one fixed terminal per
    // crossing net, assigned to the quadrant nearest the external pins'
    // mean position.
    const std::size_t n_local = region.cells.size();
    std::vector<VertexId> local_of(h_.num_vertices(), kInvalidVertex);
    for (std::size_t i = 0; i < region.cells.size(); ++i) {
      local_of[region.cells[i]] = static_cast<VertexId>(i);
    }
    struct CrossNet {
      std::vector<VertexId> internal;
      double sum_x = 0.0;
      double sum_y = 0.0;
      std::size_t externals = 0;
      Weight weight = 1;
    };
    std::vector<CrossNet> nets;
    for (const VertexId v : region.cells) {
      for (const EdgeId e : h_.incident_edges(v)) {
        const auto span = h_.pins(e);
        VertexId owner = kInvalidVertex;
        for (const VertexId u : span) {
          if (local_of[u] != kInvalidVertex) {
            owner = u;
            break;
          }
        }
        if (owner != v) continue;
        CrossNet net;
        net.weight = h_.edge_weight(e);
        for (const VertexId u : span) {
          if (local_of[u] != kInvalidVertex) {
            net.internal.push_back(local_of[u]);
          } else {
            net.sum_x += report_.placement.x[u];
            net.sum_y += report_.placement.y[u];
            ++net.externals;
          }
        }
        if (net.internal.empty()) continue;
        if (net.internal.size() + (net.externals > 0 ? 1 : 0) < 2) continue;
        nets.push_back(std::move(net));
      }
    }
    std::size_t num_terminals = 0;
    for (const CrossNet& net : nets) {
      if (net.externals > 0) ++num_terminals;
    }

    HypergraphBuilder builder(n_local + num_terminals);
    for (std::size_t i = 0; i < n_local; ++i) {
      builder.set_vertex_weight(static_cast<VertexId>(i),
                                h_.vertex_weight(region.cells[i]));
    }
    std::vector<PartId> fixed(n_local + num_terminals, kNoPart);
    std::size_t next_terminal = n_local;
    std::vector<VertexId> pins;
    for (const CrossNet& net : nets) {
      pins = net.internal;
      if (net.externals > 0) {
        const auto t = static_cast<VertexId>(next_terminal++);
        builder.set_vertex_weight(t, 1);
        const double mx = net.sum_x / static_cast<double>(net.externals);
        const double my = net.sum_y / static_cast<double>(net.externals);
        fixed[t] = static_cast<PartId>((mx < cx ? 0 : 1) +
                                       (my < cy ? 0 : 2));
        pins.push_back(t);
        ++report_.terminals_created;
      }
      builder.add_edge(pins, net.weight);
    }
    Hypergraph quad_graph = builder.finalize();

    KwayProblem problem =
        KwayProblem::uniform(quad_graph, 4, config_.tolerance);
    problem.fixed = std::move(fixed);

    // Initial: largest-first to the lightest quadrant (fixed terminals
    // pre-assigned).
    std::vector<PartId> parts(quad_graph.num_vertices(), kNoPart);
    std::vector<Weight> quad_weight(4, 0);
    for (std::size_t v = 0; v < parts.size(); ++v) {
      if (problem.is_fixed(static_cast<VertexId>(v))) {
        parts[v] = problem.fixed[v];
        quad_weight[parts[v]] +=
            quad_graph.vertex_weight(static_cast<VertexId>(v));
      }
    }
    std::vector<VertexId> order;
    for (std::size_t v = 0; v < parts.size(); ++v) {
      if (parts[v] == kNoPart) order.push_back(static_cast<VertexId>(v));
    }
    Rng rng(region.seed);
    rng.shuffle(order);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                       return quad_graph.vertex_weight(a) >
                              quad_graph.vertex_weight(b);
                     });
    for (const VertexId v : order) {
      const auto lightest = static_cast<PartId>(
          std::min_element(quad_weight.begin(), quad_weight.end()) -
          quad_weight.begin());
      parts[v] = lightest;
      quad_weight[lightest] += quad_graph.vertex_weight(v);
    }

    KwayState state(quad_graph, 4);
    state.assign(parts);
    KwayFmConfig refine;
    refine.max_passes = config_.refine_passes;
    KwayFmRefiner refiner(problem, refine);
    refiner.refine(state, rng);
    ++report_.regions_partitioned;

    QuadRegion quads[4] = {
        {region.x0, region.y0, cx, cy, {}, region.seed * 4 + 1},
        {cx, region.y0, region.x1, cy, {}, region.seed * 4 + 2},
        {region.x0, cy, cx, region.y1, {}, region.seed * 4 + 3},
        {cx, cy, region.x1, region.y1, {}, region.seed * 4 + 4},
    };
    for (std::size_t i = 0; i < n_local; ++i) {
      quads[state.part(static_cast<VertexId>(i))].cells.push_back(
          region.cells[i]);
    }
    for (QuadRegion& quad : quads) {
      for (const VertexId v : quad.cells) {
        report_.placement.x[v] = (quad.x0 + quad.x1) / 2.0;
        report_.placement.y[v] = (quad.y0 + quad.y1) / 2.0;
      }
    }
    for (const QuadRegion& quad : quads) {
      place_region(quad);
    }
  }

  void place_leaf(const QuadRegion& region) {
    const std::size_t n = region.cells.size();
    if (n == 0) return;
    const auto cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    const std::size_t rows = (n + cols - 1) / cols;
    const double dx = (region.x1 - region.x0) / static_cast<double>(cols);
    const double dy = (region.y1 - region.y0) / static_cast<double>(rows);
    std::vector<VertexId> ordered = region.cells;
    std::sort(ordered.begin(), ordered.end());
    for (std::size_t i = 0; i < n; ++i) {
      report_.placement.x[ordered[i]] =
          region.x0 + (static_cast<double>(i % cols) + 0.5) * dx;
      report_.placement.y[ordered[i]] =
          region.y0 + (static_cast<double>(i / cols) + 0.5) * dy;
    }
  }

  const Hypergraph& h_;
  QuadPlacerConfig config_;
  PlacementReport report_;
};

}  // namespace

PlacementReport quadrisection_place(const Hypergraph& h,
                                    const QuadPlacerConfig& config) {
  QuadPlacer placer(h, config);
  return placer.run();
}

}  // namespace vlsipart
