// Token model for the in-repo C++ static analyzer (vpart_lint).
//
// The regex lint this subsystem replaces could not see token boundaries:
// a rule keyword inside a string literal, a comment, or a preprocessor
// line tripped it exactly like real code.  The lexer produces a stream
// of *code* tokens (identifiers, numbers, literals, punctuation,
// whole preprocessor lines) plus a separate comment list, so rules match
// only against code and annotations are read only from comments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vlsipart::analysis {

enum class TokenKind : std::uint8_t {
  kIdentifier = 0,
  kNumber = 1,
  kString = 2,        ///< string literal, including raw strings
  kCharLiteral = 3,
  kPunct = 4,
  kPreprocessor = 5,  ///< one whole logical #-line (continuations joined)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based

  bool is_ident(const char* s) const {
    return kind == TokenKind::kIdentifier && text == s;
  }
  bool is_punct(const char* s) const {
    return kind == TokenKind::kPunct && text == s;
  }
};

/// One comment (// to end of line, or /* ... */ possibly spanning
/// lines).  `line` is the line the comment *starts* on — lint
/// annotations inside a multi-line block comment attach there.
struct Comment {
  std::string text;  ///< contents without the comment markers
  int line = 0;
};

struct LexedFile {
  std::string path;  ///< repo-relative POSIX path when under the root
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

}  // namespace vlsipart::analysis
