#include "src/analysis/dataflow.h"

#include <algorithm>
#include <map>
#include <set>

namespace vlsipart::analysis {

bool BitSet::merge_union(const BitSet& other) {
  bool changed = false;
  for (std::size_t i = 0; i < w_.size() && i < other.w_.size(); ++i) {
    const std::uint64_t next = w_[i] | other.w_[i];
    changed |= next != w_[i];
    w_[i] = next;
  }
  return changed;
}

bool BitSet::merge_intersect(const BitSet& other) {
  bool changed = false;
  for (std::size_t i = 0; i < w_.size() && i < other.w_.size(); ++i) {
    const std::uint64_t next = w_[i] & other.w_[i];
    changed |= next != w_[i];
    w_[i] = next;
  }
  return changed;
}

bool BitSet::transfer(const BitSet& in, const BitSet& gen,
                      const BitSet& kill) {
  bool changed = false;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    const std::uint64_t next = gen.w_[i] | (in.w_[i] & ~kill.w_[i]);
    changed |= next != w_[i];
    w_[i] = next;
  }
  return changed;
}

DataflowResult solve_forward(const Cfg& cfg, const GenKill& problem,
                             std::size_t num_facts, MeetOp meet) {
  const std::size_t n = cfg.blocks.size();
  DataflowResult r;
  r.in.assign(n, BitSet(num_facts));
  r.out.assign(n, BitSet(num_facts));
  if (meet == MeetOp::kIntersect) {
    for (std::size_t b = 0; b < n; ++b) {
      if (static_cast<int>(b) != cfg.entry) r.in[b].set_all();
    }
  }

  // Reverse postorder so most facts flow in one sweep.
  std::vector<int> order;
  std::vector<char> seen(n, 0);
  std::vector<std::pair<int, std::size_t>> stack{{cfg.entry, 0}};
  seen[cfg.entry] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < cfg.blocks[b].succs.size()) {
      const int s = cfg.blocks[b].succs[next++];
      if (!seen[s]) {
        seen[s] = 1;
        stack.push_back({s, 0});
      }
    } else {
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());

  bool changed = true;
  while (changed) {
    changed = false;
    for (const int b : order) {
      if (b != cfg.entry) {
        BitSet in(num_facts);
        if (meet == MeetOp::kIntersect) in.set_all();
        bool first = true;
        for (const int p : cfg.blocks[b].preds) {
          if (meet == MeetOp::kUnion) {
            in.merge_union(r.out[p]);
          } else if (first) {
            in = r.out[p];
          } else {
            in.merge_intersect(r.out[p]);
          }
          first = false;
        }
        r.in[b] = std::move(in);
      }
      changed |= r.out[b].transfer(r.in[b], problem.gen[b], problem.kill[b]);
    }
  }
  return r;
}

// ---------------------------------------------------------------------
// Reaching definitions

namespace {

bool is_decl_qualifier(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "static" ||
         s == "volatile" || s == "mutable" || s == "register" ||
         s == "thread_local" || s == "inline";
}

bool is_builtin_type_word(const std::string& s) {
  return s == "unsigned" || s == "signed" || s == "long" || s == "short";
}

/// Statements that can never open a declaration.
bool stmt_start_blocklist(const std::string& s) {
  return s == "return" || s == "break" || s == "continue" || s == "goto" ||
         s == "case" || s == "default" || s == "else" || s == "delete" ||
         s == "throw" || s == "using" || s == "typedef" || s == "if" ||
         s == "while" || s == "switch" || s == "do" || s == "co_return" ||
         s == "new" || s == "sizeof" || s == "public" || s == "private" ||
         s == "protected" || s == "template" || s == "friend" ||
         s == "extern" || s == "static_assert";
}

bool is_assign_punct(const Token& t) {
  return t.is_punct("=") || t.is_punct("+=") || t.is_punct("-=") ||
         t.is_punct("*=") || t.is_punct("/=") || t.is_punct("%=") ||
         t.is_punct("&=") || t.is_punct("|=") || t.is_punct("^=") ||
         t.is_punct("<<=") || t.is_punct(">>=");
}

class ReachBuilder {
 public:
  ReachBuilder(const std::vector<Token>& tokens, const ParsedFile& parsed,
               int fn, const Cfg& cfg)
      : T(tokens), parsed_(parsed), fn_(fn), cfg_(cfg) {}

  ReachingDefs run() {
    collect_lambda_ranges();
    collect_params();
    for (std::size_t s = 0; s < cfg_.stmts.size(); ++s) {
      collect_declarations(static_cast<int>(s));
    }
    for (std::size_t s = 0; s < cfg_.stmts.size(); ++s) {
      collect_defs_uses(static_cast<int>(s));
    }
    solve();
    return std::move(r_);
  }

 private:
  bool in_lambda(std::size_t tok) const {
    for (const auto& [b, e] : lambda_ranges_) {
      if (tok > b && tok < e) return true;
    }
    return false;
  }

  void collect_lambda_ranges() {
    const FunctionDef& self = parsed_.functions[fn_];
    for (const FunctionDef& g : parsed_.functions) {
      if (&g == &self) continue;
      if (g.body_begin > self.body_begin && g.body_end < self.body_end) {
        lambda_ranges_.push_back({g.body_begin, g.body_end});
      }
    }
  }

  int add_var(VarInfo info) {
    const auto it = var_of_.find(info.name);
    if (it != var_of_.end()) return it->second;  // shadowing: merged
    const int id = static_cast<int>(r_.vars.size());
    var_of_[info.name] = id;
    r_.vars.push_back(std::move(info));
    return id;
  }

  void add_def(Def d) { r_.defs.push_back(d); }

  void collect_params() {
    const FunctionDef& def = parsed_.functions[fn_];
    if (def.params_end <= def.params_begin) return;
    std::size_t seg_begin = def.params_begin + 1;
    int depth = 0;
    for (std::size_t i = seg_begin; i <= def.params_end; ++i) {
      const bool closes = i == def.params_end;
      if (!closes) {
        const Token& t = T[i];
        if (t.is_punct("(") || t.is_punct("[") || t.is_punct("{") ||
            t.is_punct("<")) {
          ++depth;
          continue;
        }
        if (t.is_punct(")") || t.is_punct("]") || t.is_punct("}") ||
            t.is_punct(">")) {
          --depth;
          continue;
        }
        if (!(depth == 0 && t.is_punct(","))) continue;
      }
      finish_param(seg_begin, i);
      seg_begin = i + 1;
    }
  }

  void finish_param(std::size_t begin, std::size_t end) {
    // Name = last identifier at angle/paren depth 0 before any '='.
    std::size_t name_tok = T.size();
    std::string type_name;
    bool pointer = false;
    bool reference = false;
    int depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = T[i];
      if (t.is_punct("=")) break;
      if (t.is_punct("<") || t.is_punct("(") || t.is_punct("[")) ++depth;
      if (t.is_punct(">") || t.is_punct(")") || t.is_punct("]")) --depth;
      if (depth != 0) continue;
      if (t.is_punct("*")) pointer = true;
      if (t.is_punct("&") || t.is_punct("&&")) reference = true;
      if (t.kind == TokenKind::kIdentifier && !is_decl_qualifier(t.text)) {
        if (name_tok < T.size()) {
          const Token& prev = T[name_tok];
          if (!is_builtin_type_word(prev.text) || is_builtin_type_word(t.text)) {
            type_name = prev.text;
          }
        }
        name_tok = i;
      }
    }
    if (name_tok >= T.size()) return;  // unnamed parameter
    VarInfo info;
    info.name = T[name_tok].text;
    info.type_name = type_name;
    info.is_pointer = pointer;
    info.is_reference = reference;
    info.is_param = true;
    const int var = add_var(std::move(info));
    Def d;
    d.var = var;
    d.stmt = -1;
    d.token = name_tok;
    add_def(d);
    decl_name_tokens_.insert(name_tok);
  }

  /// Scan one statement for local-variable declarations:
  /// `qualifiers type declarator [= init] [, declarator ...]`.
  void collect_declarations(int s) {
    const CfgStmt& stmt = cfg_.stmts[s];
    std::size_t i = stmt.begin;
    std::size_t end = stmt.end;
    bool range_for = false;
    if (i < end && T[i].is_ident("for")) {
      // Range-for header: the declaration sits between '(' and the
      // top-level ':'.  (Classic-for init clauses are their own
      // statements and never reach here starting with `for`.)
      if (i + 1 >= end || !T[i + 1].is_punct("(")) return;
      std::size_t colon = end;
      int depth = 0;
      for (std::size_t k = i + 2; k < end; ++k) {
        if (T[k].is_punct("(") || T[k].is_punct("[") || T[k].is_punct("{")) {
          ++depth;
        } else if (T[k].is_punct(")") || T[k].is_punct("]") ||
                   T[k].is_punct("}")) {
          --depth;
        } else if (depth == 0 && T[k].is_punct(":")) {
          colon = k;
          break;
        } else if (depth == -1) {
          break;
        }
      }
      if (colon == end) return;
      i += 2;
      end = colon;
      range_for = true;
    }
    if (i >= end) return;
    if (T[i].kind == TokenKind::kPreprocessor) return;
    if (T[i].kind == TokenKind::kIdentifier &&
        stmt_start_blocklist(T[i].text)) {
      return;
    }

    while (i < end && T[i].kind == TokenKind::kIdentifier &&
           is_decl_qualifier(T[i].text)) {
      ++i;
    }
    // Type: identifier chain with optional :: and template arguments.
    if (i >= end || T[i].kind != TokenKind::kIdentifier) return;
    std::string type_name = T[i].text;
    ++i;
    while (i < end) {
      if (T[i].is_punct("::") && i + 1 < end &&
          T[i + 1].kind == TokenKind::kIdentifier) {
        type_name = T[i + 1].text;
        i += 2;
        continue;
      }
      if (T[i].kind == TokenKind::kIdentifier &&
          is_builtin_type_word(type_name) &&
          (is_builtin_type_word(T[i].text) || T[i].text == "int" ||
           T[i].text == "char" || T[i].text == "double")) {
        type_name = T[i].text;  // `unsigned long`, `long long`, ...
        ++i;
        continue;
      }
      if (T[i].is_punct("<")) {
        int depth = 0;
        std::size_t k = i;
        for (; k < end; ++k) {
          if (T[k].is_punct("<")) ++depth;
          if (T[k].is_punct(">") && --depth == 0) break;
          if (T[k].is_punct(";") || T[k].is_punct("=")) break;
        }
        if (k >= end || !T[k].is_punct(">")) return;  // comparison
        i = k + 1;
        continue;
      }
      break;
    }
    // Declarator list.
    while (i < end) {
      bool pointer = false;
      bool reference = false;
      while (i < end && (T[i].is_punct("*") || T[i].is_punct("&") ||
                         T[i].is_punct("&&") || T[i].is_ident("const"))) {
        if (T[i].is_punct("*")) pointer = true;
        if (T[i].is_punct("&") || T[i].is_punct("&&")) reference = true;
        ++i;
      }
      if (i >= end || T[i].kind != TokenKind::kIdentifier) return;
      const std::size_t name_tok = i;
      const std::size_t after = i + 1;
      const bool at_end = after >= end || T[after].is_punct(";");
      const bool inits = after < end && (T[after].is_punct("=") ||
                                         T[after].is_punct("{") ||
                                         T[after].is_punct("("));
      const bool continues = after < end && T[after].is_punct(",");
      if (!at_end && !inits && !continues) return;  // not a declaration
      VarInfo info;
      info.name = T[name_tok].text;
      info.type_name = type_name;
      info.is_pointer = pointer;
      info.is_reference = reference;
      info.decl_stmt = s;
      const int var = add_var(std::move(info));
      Def d;
      d.var = var;
      d.stmt = s;
      d.token = name_tok;
      d.uninit = !range_for && !inits && at_end;
      add_def(d);
      decl_name_tokens_.insert(name_tok);
      if (!continues && !inits) return;
      // Skip the initializer to a top-level ',' or the end.
      i = after;
      int depth = 0;
      while (i < end) {
        const Token& t = T[i];
        if (t.is_punct("(") || t.is_punct("[") || t.is_punct("{")) ++depth;
        if (t.is_punct(")") || t.is_punct("]") || t.is_punct("}")) --depth;
        if (depth == 0 && t.is_punct(",")) break;
        if (depth == 0 && t.is_punct(";")) return;
        ++i;
      }
      if (i >= end) return;
      ++i;  // past the ','
    }
  }

  /// True when '&' at `k` reads as address-of (prefix), not binary and.
  bool is_address_of(std::size_t k) const {
    if (k == 0) return true;
    const Token& p = T[k - 1];
    if (p.kind == TokenKind::kIdentifier) {
      return p.text == "return" || is_decl_qualifier(p.text);
    }
    if (p.kind == TokenKind::kNumber || p.kind == TokenKind::kString) {
      return false;
    }
    return !(p.is_punct(")") || p.is_punct("]"));
  }

  /// True when the token at `k` sits directly inside a call's argument
  /// list as a bare argument (neighbors are '(' or ',' and ',' or ')'),
  /// which may bind to a non-const reference out-parameter.
  bool is_bare_call_arg(std::size_t k, std::size_t begin,
                        std::size_t end) const {
    const bool left_ok =
        k > begin && (T[k - 1].is_punct("(") || T[k - 1].is_punct(","));
    const bool right_ok = k + 1 < end && (T[k + 1].is_punct(",") ||
                                          T[k + 1].is_punct(")"));
    if (!left_ok || !right_ok) return false;
    // Walk back to the innermost unmatched '(' and require a call-like
    // prefix (identifier or '>').
    int depth = 0;
    for (std::size_t j = k; j > begin; --j) {
      const Token& t = T[j - 1];
      if (t.is_punct(")")) ++depth;
      if (t.is_punct("(")) {
        if (depth == 0) {
          if (j - 1 == begin) return false;
          const Token& before = T[j - 2];
          return before.kind == TokenKind::kIdentifier ||
                 before.is_punct(">");
        }
        --depth;
      }
    }
    return false;
  }

  void collect_defs_uses(int s) {
    const CfgStmt& stmt = cfg_.stmts[s];
    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (T[k].kind != TokenKind::kIdentifier) continue;
      const auto it = var_of_.find(T[k].text);
      if (it == var_of_.end()) continue;
      const int var = it->second;
      if (in_lambda(k)) {
        r_.vars[var].captured = true;
        continue;
      }
      if (k > stmt.begin &&
          (T[k - 1].is_punct(".") || T[k - 1].is_punct("->") ||
           T[k - 1].is_punct("::"))) {
        continue;  // member or qualified name, not this local
      }
      if (decl_name_tokens_.count(k) != 0) continue;  // the decl itself

      const bool next_assign =
          k + 1 < stmt.end && is_assign_punct(T[k + 1]);
      const bool incr = (k + 1 < stmt.end && (T[k + 1].is_punct("++") ||
                                              T[k + 1].is_punct("--"))) ||
                        (k > stmt.begin && (T[k - 1].is_punct("++") ||
                                            T[k - 1].is_punct("--")));
      const bool addr = k > stmt.begin && T[k - 1].is_punct("&") &&
                        is_address_of(k - 1);
      const bool streamed =
          k > stmt.begin && T[k - 1].is_punct(">>");

      if (next_assign && T[k + 1].is_punct("=")) {
        Def d;
        d.var = var;
        d.stmt = s;
        d.token = k;
        d.plain_assign =
            k == stmt.begin && stmt.end > stmt.begin &&
            T[stmt.end - 1].is_punct(";");
        add_def(d);
        continue;  // pure definition, the name itself is not read
      }
      if (next_assign || incr) {  // compound assignment reads then writes
        Def d;
        d.var = var;
        d.stmt = s;
        d.token = k;
        add_def(d);
        add_use(var, s, k);
        continue;
      }
      if (addr || streamed || is_bare_call_arg(k, stmt.begin, stmt.end)) {
        // May be written through the pointer / reference: a
        // conservative definition that also counts as a use.
        if (addr) r_.vars[var].address_taken = true;
        Def d;
        d.var = var;
        d.stmt = s;
        d.token = k;
        d.conservative = true;
        add_def(d);
        add_use(var, s, k);
        continue;
      }
      add_use(var, s, k);
    }
  }

  void add_use(int var, int s, std::size_t token) {
    Use u;
    u.var = var;
    u.stmt = s;
    u.token = token;
    r_.uses.push_back(u);
  }

  void solve() {
    const std::size_t nd = r_.defs.size();
    GenKill gk;
    gk.gen.assign(cfg_.blocks.size(), BitSet(nd));
    gk.kill.assign(cfg_.blocks.size(), BitSet(nd));

    // Defs of the same variable, for kill sets.
    std::vector<std::vector<int>> defs_of_var(r_.vars.size());
    for (std::size_t d = 0; d < nd; ++d) {
      defs_of_var[r_.defs[d].var].push_back(static_cast<int>(d));
    }
    std::vector<std::vector<int>> defs_in_stmt(cfg_.stmts.size());
    for (std::size_t d = 0; d < nd; ++d) {
      if (r_.defs[d].stmt >= 0) {
        defs_in_stmt[r_.defs[d].stmt].push_back(static_cast<int>(d));
      } else {
        gk.gen[cfg_.entry].set(d);  // parameters reach from entry
      }
    }

    auto apply = [&](BitSet& gen, BitSet& kill, int d) {
      const Def& def = r_.defs[d];
      if (!def.conservative) {
        // A strong definition kills every other def of the variable.
        for (const int other : defs_of_var[def.var]) {
          if (other == d) continue;
          gen.reset(other);
          kill.set(other);
        }
        kill.reset(d);
      }
      gen.set(d);
    };
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      for (const int s : cfg_.blocks[b].stmts) {
        for (const int d : defs_in_stmt[s]) {
          apply(gk.gen[b], gk.kill[b], d);
        }
      }
    }

    const DataflowResult flow =
        solve_forward(cfg_, gk, nd, MeetOp::kUnion);

    // Statement-level IN: replay each block.
    r_.in_stmt.assign(cfg_.stmts.size(), BitSet(nd));
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      BitSet live = flow.in[b];
      for (const int s : cfg_.blocks[b].stmts) {
        r_.in_stmt[s] = live;
        for (const int d : defs_in_stmt[s]) {
          const Def& def = r_.defs[d];
          if (!def.conservative) {
            for (const int other : defs_of_var[def.var]) {
              if (other != d) live.reset(other);
            }
          }
          live.set(d);
        }
      }
    }

    // Def-use chains: a use sees the defs of its variable reaching its
    // statement (parameters reach everywhere their bit survives).
    r_.uses_of_def.assign(nd, {});
    r_.defs_of_use.assign(r_.uses.size(), {});
    for (std::size_t u = 0; u < r_.uses.size(); ++u) {
      const Use& use = r_.uses[u];
      const BitSet& live = r_.in_stmt[use.stmt];
      for (const int d : defs_of_var[use.var]) {
        if (live.test(d)) {
          r_.uses_of_def[d].push_back(static_cast<int>(u));
          r_.defs_of_use[u].push_back(d);
        }
      }
    }
  }

  const std::vector<Token>& T;
  const ParsedFile& parsed_;
  int fn_;
  const Cfg& cfg_;
  ReachingDefs r_;
  std::map<std::string, int> var_of_;
  std::set<std::size_t> decl_name_tokens_;
  std::vector<std::pair<std::size_t, std::size_t>> lambda_ranges_;
};

}  // namespace

int ReachingDefs::var_index(const std::string& name) const {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (vars[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

ReachingDefs compute_reaching_defs(const std::vector<Token>& tokens,
                                   const ParsedFile& parsed, int fn,
                                   const Cfg& cfg) {
  return ReachBuilder(tokens, parsed, fn, cfg).run();
}

}  // namespace vlsipart::analysis
