// Scope/function extractor over the lexer's token stream.
//
// Recovers, without a real C++ frontend:
//   * function definitions with their scope-qualified name, owning
//     class (lexical class scope or explicit `Class::` qualifier),
//     parameter count range (default arguments lower the minimum) and
//     the token range of the body;
//   * lambda bodies, attributed to the enclosing function, with their
//     capture list and (when written as `auto name = [..]`) the local
//     name they were bound to.
//
// This is a heuristic single-pass recognizer: it tracks namespace /
// class / function brace scopes and recognizes the declarator shape
// `name ( params ) trailer {`.  Templates are recognized by skipping
// the `template<...>` header; overload sets are kept (one FunctionDef
// per definition).  Known limits are documented in DESIGN.md §12.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/token.h"

namespace vlsipart::analysis {

struct FunctionDef {
  std::string name;            ///< unqualified ("run_pass", "operator<")
  std::string qualified_name;  ///< scope-qualified ("FmRefiner::run_pass")
  std::string owner;           ///< owning class when known, else ""
  std::size_t min_arity = 0;   ///< parameters without default arguments
  std::size_t max_arity = 0;   ///< all parameters
  std::vector<std::string> param_names;
  int line = 0;  ///< line of the name token (annotation anchor)
  int col = 0;
  std::size_t params_begin = 0;  ///< token index of the parameter-list '('
  std::size_t params_end = 0;    ///< token index of the matching ')'
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  bool is_lambda = false;
  int parent = -1;  ///< index of the enclosing FunctionDef, -1 at top level
  std::vector<std::string> captures;  ///< lambda captures: "&", "=", "this", names
};

struct ParsedFile {
  std::vector<FunctionDef> functions;  ///< in body_begin order

  /// Innermost function whose body range contains token index `tok`;
  /// -1 at namespace/class scope.  With `named_only`, lambdas are
  /// skipped and their enclosing named function is returned.
  int enclosing(std::size_t tok, bool named_only) const;
};

ParsedFile parse_file(const LexedFile& file);

}  // namespace vlsipart::analysis
