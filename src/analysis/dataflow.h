// Generic forward dataflow over a Cfg, and its first client: reaching
// definitions with def-use chains over the token stream.
//
// The solver is a classic iterative gen-kill fixed point: each basic
// block carries a GEN and a KILL bit set over an abstract fact space,
// IN[b] is the join of predecessors' OUT (union for may-analyses,
// intersection for must-analyses), OUT[b] = GEN[b] | (IN[b] & ~KILL[b]).
// Blocks are iterated in reverse postorder until no OUT changes, which
// terminates because the transfer functions are monotone over a finite
// lattice.
//
// ReachingDefs instantiates it with facts = definitions of function-
// local variables (declarations, assignments, ++/--, conservative
// writes through & / out-parameters).  A declaration without an
// initializer contributes an "uninitialized" pseudo-definition, which
// is how the use-before-init rule asks its question.  Statement-level
// precision is recovered from block-level IN by replaying the block's
// statements in order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/parser.h"
#include "src/analysis/token.h"

namespace vlsipart::analysis {

/// Dense bit set sized at construction; the solver's fact container.
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t bits) : bits_(bits), w_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  bool test(std::size_t i) const {
    return (w_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { w_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) {
    w_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void set_all() {
    for (auto& w : w_) w = ~std::uint64_t{0};
    trim();
  }

  /// this |= other.  Returns true when a bit changed.
  bool merge_union(const BitSet& other);
  /// this &= other.  Returns true when a bit changed.
  bool merge_intersect(const BitSet& other);
  /// this = gen | (in & ~kill).  Returns true when a bit changed.
  bool transfer(const BitSet& in, const BitSet& gen, const BitSet& kill);

  bool operator==(const BitSet& other) const { return w_ == other.w_; }

 private:
  void trim() {
    if (bits_ % 64 != 0 && !w_.empty()) {
      w_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
    }
  }
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> w_;
};

enum class MeetOp { kUnion, kIntersect };

/// Per-block transfer functions for a forward problem.
struct GenKill {
  std::vector<BitSet> gen;   ///< one per block
  std::vector<BitSet> kill;  ///< one per block
};

struct DataflowResult {
  std::vector<BitSet> in;   ///< facts at block entry
  std::vector<BitSet> out;  ///< facts at block exit
};

/// Solve the forward problem.  `num_facts` sizes every bit set; with
/// kIntersect, unreached INs start at top (all ones) so the meet is
/// well-defined.  The entry block's IN starts empty in both modes.
DataflowResult solve_forward(const Cfg& cfg, const GenKill& problem,
                             std::size_t num_facts, MeetOp meet);

// ---------------------------------------------------------------------
// Reaching definitions

/// What the declaration scan could tell about one local variable.
struct VarInfo {
  std::string name;
  std::string type_name;   ///< last type identifier ("size_t", "int", ...)
  bool is_pointer = false;   ///< declarator contained '*'
  bool is_reference = false; ///< declarator contained '&'
  bool address_taken = false;  ///< '&name' seen anywhere in the function
  bool captured = false;       ///< appears inside a nested lambda body
  bool is_param = false;
  int decl_stmt = -1;  ///< statement of the declaration, -1 for params
};

struct Def {
  int var = -1;
  int stmt = -1;          ///< -1 for parameter entry definitions
  std::size_t token = 0;  ///< the defined name's token index
  bool uninit = false;    ///< declaration without initializer
  /// Whole statement is exactly `name = expr ;` (the dead-store shape).
  bool plain_assign = false;
  /// Conservative definition: '&name' or bare name as a call argument
  /// (a potential out-parameter).  Counts as a def AND a use.
  bool conservative = false;
};

struct Use {
  int var = -1;
  int stmt = -1;
  std::size_t token = 0;
};

struct ReachingDefs {
  std::vector<VarInfo> vars;
  std::vector<Def> defs;
  std::vector<Use> uses;
  /// Definitions reaching the start of each statement (bit = def id).
  std::vector<BitSet> in_stmt;
  std::vector<std::vector<int>> uses_of_def;  ///< def-use chains
  std::vector<std::vector<int>> defs_of_use;  ///< use-def chains

  int var_index(const std::string& name) const;
};

/// Compute reaching definitions for function `fn` over its CFG.
/// Nested lambda body ranges (from `parsed`) are treated as opaque:
/// variables referenced inside them are marked `captured` and their
/// inner writes are ignored.
ReachingDefs compute_reaching_defs(const std::vector<Token>& tokens,
                                   const ParsedFile& parsed, int fn,
                                   const Cfg& cfg);

}  // namespace vlsipart::analysis
