// vpart_lint analyzer: orchestration, suppressions, baseline.
//
// Three rule families (see DESIGN.md §12 for the catalog):
//   * determinism — token-level port of the retired regex lint
//     (tools/determinism_lint.py) plus new token-aware rules;
//   * knob completeness — cross-file check that every field of the
//     partitioning/service config structs is reachable from CLI parsing
//     and mentioned in the docs ("no implicit decisions");
//   * lock discipline — lockset-lite checking of // guarded_by(<mutex>)
//     annotations in the concurrent service layer.
//
// Suppressions: append "// det-lint: allow(<rule>[, <rule>...])" to the
// offending line or the line directly above it, with a justification.
// Baseline: a checked-in file of known findings (rule|path|justification
// per line) silences whole-rule/file pairs during incremental adoption;
// the repo ships an empty baseline and intends to keep it empty.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/analysis/token.h"

namespace vlsipart::analysis {

/// An in-memory source file.  Paths use '/' separators; rules that are
/// scoped by directory (e.g. unordered-in-core) test path prefixes, so
/// fixture tests pick paths like "src/part/fixture.cpp" to opt in.
struct SourceBuffer {
  std::string path;
  std::string content;
};

struct AnalyzerOptions {
  /// Repository root: relative lint paths resolve against it, and the
  /// knob rule loads its cross-file context (tools/examples/bench
  /// sources, DESIGN.md, README.md) from it.  Empty = current directory.
  std::string repo_root;
  /// Restrict to these rule ids (empty = all rules).
  std::vector<std::string> only_rules;
  /// Baseline file path ("" = no baseline).
  std::string baseline_path;
};

struct AnalysisResult {
  std::vector<Finding> findings;  ///< surviving findings, sorted
  std::size_t files_scanned = 0;  ///< linted files (context excluded)
  std::size_t suppressed = 0;     ///< silenced by allow() annotations
  std::size_t baselined = 0;      ///< silenced by baseline entries
  /// Fatal configuration problems (unknown rule, malformed baseline,
  /// unreadable path).  Non-empty means "exit 2", not "findings".
  std::vector<std::string> errors;

  bool clean() const { return findings.empty() && errors.empty(); }
};

/// Lint `files`.  `context` supplies cross-file facts (CLI parse sites
/// for the knob rule, pair headers for the lock rule, .md docs) without
/// being linted itself.  Entries of `context` whose path ends in ".md"
/// are treated as documentation text, everything else is lexed as C++.
AnalysisResult analyze_buffers(const std::vector<SourceBuffer>& files,
                               const std::vector<SourceBuffer>& context,
                               const AnalyzerOptions& options);

/// Expand `paths` (files or directories, relative paths resolved
/// against options.repo_root) into C++ sources, auto-load the knob
/// rule's context from the repo root, and lint.  Directory traversal is
/// sorted, so output order is deterministic.
AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalyzerOptions& options);

}  // namespace vlsipart::analysis
