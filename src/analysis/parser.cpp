#include "src/analysis/parser.h"

#include <algorithm>
#include <set>

namespace vlsipart::analysis {

namespace {

const std::set<std::string>& non_function_keywords() {
  static const std::set<std::string> kSet = {
      "if",      "for",          "while",      "switch",     "catch",
      "return",  "sizeof",       "alignof",    "alignas",    "decltype",
      "noexcept", "new",         "delete",     "throw",      "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast", "typeid",
      "co_await", "co_yield",    "co_return",  "defined",    "requires",
      "static_assert", "assert", "and",        "or",         "not"};
  return kSet;
}

class Parser {
 public:
  explicit Parser(const LexedFile& file) : T_(file.tokens) {}

  ParsedFile run() {
    parse_decls(0, T_.size());
    std::sort(out_.functions.begin(), out_.functions.end(),
              [](const FunctionDef& a, const FunctionDef& b) {
                return a.body_begin < b.body_begin;
              });
    return std::move(out_);
  }

 private:
  bool is(std::size_t i, const char* p) const {
    return i < T_.size() && T_[i].is_punct(p);
  }
  bool is_ident(std::size_t i) const {
    return i < T_.size() && T_[i].kind == TokenKind::kIdentifier;
  }

  /// Index of the '}' matching the '{' at `open` (or end of stream).
  std::size_t match_brace(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < T_.size(); ++i) {
      if (T_[i].is_punct("{")) ++depth;
      if (T_[i].is_punct("}") && --depth == 0) return i;
    }
    return T_.size();
  }

  /// Index of the ')'/']' matching the opener at `open`.
  std::size_t match_paren(std::size_t open, const char* o,
                          const char* c) const {
    int depth = 0;
    for (std::size_t i = open; i < T_.size(); ++i) {
      if (T_[i].is_punct(o)) ++depth;
      if (T_[i].is_punct(c) && --depth == 0) return i;
    }
    return T_.size();
  }

  /// Skip past a balanced template argument list starting at '<'.
  /// Returns the index after the closing '>', or `open` when the
  /// angle run does not look like template arguments.
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    std::size_t steps = 0;
    for (std::size_t i = open; i < T_.size() && steps < 64; ++i, ++steps) {
      if (T_[i].is_punct("<")) ++depth;
      if (T_[i].is_punct(">") && --depth == 0) return i + 1;
      if (T_[i].is_punct(";") || T_[i].is_punct("{")) break;
      if (T_[i].is_punct("(")) i = match_paren(i, "(", ")");
    }
    return open;
  }

  std::size_t skip_to_semicolon(std::size_t i) const {
    for (; i < T_.size(); ++i) {
      if (T_[i].is_punct(";")) return i + 1;
      if (T_[i].is_punct("{")) i = match_brace(i);
      if (T_[i].is_punct("(")) i = match_paren(i, "(", ")");
    }
    return i;
  }

  std::string scope_qualifier() const {
    std::string q;
    for (const std::string& s : class_scopes_) {
      if (s.empty()) continue;
      if (!q.empty()) q += "::";
      q += s;
    }
    return q;
  }

  /// Declaration-scope walker: namespaces, classes, and function
  /// definitions.  `end` points at the matching '}' of the caller (or
  /// the end of the stream); returns the index of that '}'.
  std::size_t parse_decls(std::size_t i, std::size_t end) {
    while (i < end && i < T_.size()) {
      const Token& t = T_[i];
      if (t.is_punct("}")) return i;
      if (t.kind == TokenKind::kPreprocessor) {
        ++i;
        continue;
      }
      if (t.is_punct("[")) {  // [[attribute]]
        i = match_paren(i, "[", "]") + 1;
        continue;
      }
      if (t.is_ident("namespace")) {
        i = parse_namespace(i, end);
        continue;
      }
      if (t.is_ident("class") || t.is_ident("struct") || t.is_ident("union")) {
        i = parse_class(i, end);
        continue;
      }
      if (t.is_ident("enum")) {
        i = skip_to_semicolon(i);
        continue;
      }
      if (t.is_ident("using") || t.is_ident("typedef") ||
          t.is_ident("friend") || t.is_ident("static_assert")) {
        i = skip_to_semicolon(i);
        continue;
      }
      if (t.is_ident("template")) {
        ++i;
        if (is(i, "<")) i = skip_angles(i);
        continue;
      }
      if (t.is_ident("extern") && i + 2 < T_.size() &&
          T_[i + 1].kind == TokenKind::kString && T_[i + 2].is_punct("{")) {
        const std::size_t close = match_brace(i + 2);
        parse_decls(i + 3, close);
        i = close + 1;
        continue;
      }
      if (t.is_punct("{")) {  // stray block at decl scope
        i = match_brace(i) + 1;
        continue;
      }
      if (t.is_punct(";")) {
        ++i;
        continue;
      }
      i = parse_declaration(i, end);
    }
    return std::min(i, T_.size());
  }

  std::size_t parse_namespace(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    std::vector<std::string> names;
    while (j < end && (is_ident(j) || is(j, "::"))) {
      if (is_ident(j)) names.push_back(T_[j].text);
      ++j;
    }
    if (is(j, "=")) return skip_to_semicolon(j);  // namespace alias
    if (!is(j, "{")) return j + 1;
    // Namespace names do not qualify: repo code lives in one project
    // namespace and rules match the class-qualified name.
    const std::size_t close = match_brace(j);
    parse_decls(j + 1, close);
    return close + 1;
  }

  std::size_t parse_class(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    std::string name;
    int angle = 0;
    while (j < end) {
      const Token& u = T_[j];
      if (angle == 0 && (u.is_punct(";") || u.is_punct("{") ||
                         u.is_punct(":") || u.is_punct("("))) {
        break;
      }
      if (u.is_punct("<")) ++angle;
      if (u.is_punct(">")) --angle;
      if (u.kind == TokenKind::kIdentifier && u.text != "final" &&
          u.text != "alignas") {
        name = u.text;
      }
      ++j;
    }
    if (is(j, ":")) {  // base clause
      int a = 0;
      while (j < end && !(a == 0 && T_[j].is_punct("{")) &&
             !T_[j].is_punct(";")) {
        if (T_[j].is_punct("<")) ++a;
        if (T_[j].is_punct(">")) --a;
        ++j;
      }
    }
    if (!is(j, "{")) return skip_to_semicolon(j);  // forward declaration
    const std::size_t close = match_brace(j);
    class_scopes_.push_back(name);
    parse_decls(j + 1, close);
    class_scopes_.pop_back();
    return skip_to_semicolon(close + 1);  // past `} name;` / `};`
  }

  /// Generic declaration at namespace/class scope: find a declarator
  /// `name ( params ) trailer {` before the statement ends, else skip
  /// the statement.
  std::size_t parse_declaration(std::size_t i, std::size_t end) {
    std::size_t j = i;
    int angle = 0;
    while (j < end) {
      const Token& u = T_[j];
      if (u.is_punct(";")) return j + 1;
      if (angle == 0 && u.is_punct("=")) return skip_to_semicolon(j);
      if (u.is_punct("<")) ++angle;
      if (u.is_punct(">")) --angle;
      if (u.is_ident("operator")) {
        // `operator()` / `operator<` / `operator bool`: jump to the
        // parameter list that follows the operator name.
        std::size_t k = j + 1;
        if (is(k, "(") && is(k + 1, ")")) {
          k += 2;  // operator()
        } else {
          while (k < end && T_[k].kind == TokenKind::kPunct &&
                 !T_[k].is_punct("(")) {
            ++k;
          }
          while (k < end && T_[k].kind == TokenKind::kIdentifier) ++k;
        }
        if (is(k, "(") && k > 0) {
          const std::size_t r = try_function(i, k - 1, k, end);
          if (r != 0) return r;
        }
        return skip_to_semicolon(j);
      }
      if (angle == 0 && u.is_punct("(") && j > i) {
        std::size_t name_tok = j - 1;
        if (T_[name_tok].kind == TokenKind::kIdentifier &&
            non_function_keywords().count(T_[name_tok].text) == 0) {
          const std::size_t r = try_function(i, name_tok, j, end);
          if (r != 0) return r;
        }
        // Not a function definition here; skip the parens and keep
        // scanning the same statement (e.g. `int x(5), y(6);`).
        j = match_paren(j, "(", ")") + 1;
        continue;
      }
      if (u.is_punct("{")) return match_brace(j) + 1;
      ++j;
    }
    return j;
  }

  /// Try to complete a function definition whose name token is at
  /// `name_tok` and whose parameter list opens at `open_paren`.
  /// Returns the index past the body, or 0 when this is not a
  /// function definition.
  std::size_t try_function(std::size_t stmt_begin, std::size_t name_tok,
                           std::size_t open_paren, std::size_t end) {
    (void)stmt_begin;
    const std::size_t close_paren = match_paren(open_paren, "(", ")");
    if (close_paren >= T_.size()) return 0;
    const std::size_t body = find_body(close_paren + 1, end);
    if (body == 0) return 0;

    FunctionDef def;
    def.body_begin = body;
    def.body_end = match_brace(body);

    // Name and explicit qualifiers (`A::B::name`, `~name`).
    std::size_t k = name_tok;
    if (T_[k].kind == TokenKind::kIdentifier) {
      def.name = T_[k].text;
      if (k > 0 && T_[k - 1].is_punct("~")) def.name = "~" + def.name;
      if (k > 0 && T_[k - 1].is_ident("operator")) {
        def.name = "operator " + def.name;  // conversion operator
        k -= 1;
      }
    } else {
      // operator symbol form: collect `operator` + punctuation.
      std::size_t op = name_tok;
      while (op > 0 && T_[op].kind == TokenKind::kPunct) --op;
      if (!T_[op].is_ident("operator")) return 0;
      def.name = "operator";
      for (std::size_t p = op + 1; p <= name_tok; ++p) def.name += T_[p].text;
      k = op;
    }
    def.line = T_[name_tok].line;
    def.col = T_[name_tok].col;

    std::vector<std::string> quals;
    std::size_t q = k;
    while (q >= 2 && T_[q - 1].is_punct("::") &&
           T_[q - 2].kind == TokenKind::kIdentifier) {
      quals.insert(quals.begin(), T_[q - 2].text);
      q -= 2;
    }
    std::string qualified = scope_qualifier();
    for (const std::string& s : quals) {
      if (!qualified.empty()) qualified += "::";
      qualified += s;
    }
    def.owner = !quals.empty() ? quals.back()
                : !class_scopes_.empty() ? class_scopes_.back()
                                         : "";
    def.qualified_name =
        qualified.empty() ? def.name : qualified + "::" + def.name;

    def.params_begin = open_paren;
    def.params_end = close_paren;
    parse_params(open_paren, close_paren, def);
    const int self = static_cast<int>(out_.functions.size());
    out_.functions.push_back(def);
    parse_body(def.body_begin + 1, def.body_end, self);
    return def.body_end + 1;
  }

  /// Scan a declarator trailer after the parameter list; return the
  /// index of the body '{' or 0 when the declarator has no body.
  std::size_t find_body(std::size_t j, std::size_t end) {
    while (j < end) {
      const Token& u = T_[j];
      if (u.is_punct("{")) return j;
      if (u.is_punct(";") || u.is_punct(",") || u.is_punct(")")) return 0;
      if (u.is_punct("=")) return 0;  // = default / = delete / initializer
      if (u.is_ident("const") || u.is_ident("noexcept") ||
          u.is_ident("override") || u.is_ident("final") ||
          u.is_ident("mutable") || u.is_ident("try") ||
          u.is_ident("requires") || u.is_punct("&") || u.is_punct("&&")) {
        ++j;
        if (is(j, "(")) j = match_paren(j, "(", ")") + 1;
        continue;
      }
      if (u.is_punct("->")) {  // trailing return type
        ++j;
        while (j < end && !T_[j].is_punct("{") && !T_[j].is_punct(";")) {
          if (T_[j].is_punct("(")) {
            j = match_paren(j, "(", ")");
          }
          ++j;
        }
        continue;
      }
      if (u.is_punct(":")) {  // constructor initializer list
        ++j;
        while (j < end) {
          // member or base name (possibly qualified / templated)
          while (j < end && (T_[j].kind == TokenKind::kIdentifier ||
                             T_[j].is_punct("::"))) {
            ++j;
          }
          if (is(j, "<")) j = skip_angles(j);
          if (is(j, "(")) {
            j = match_paren(j, "(", ")") + 1;
          } else if (is(j, "{")) {
            j = match_brace(j) + 1;
          } else {
            return 0;
          }
          if (is(j, ",")) {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      return 0;  // unexpected token: not a function definition
    }
    return 0;
  }

  void parse_params(std::size_t open, std::size_t close, FunctionDef& def) {
    if (close <= open + 1) return;  // ()
    std::size_t params = 0;
    std::size_t defaults = 0;
    int pdepth = 0;
    bool any_token = false;
    bool in_default = false;
    std::string last_ident;
    std::string name;
    auto finish = [&] {
      if (!any_token) return;
      ++params;
      if (in_default) ++defaults;
      def.param_names.push_back(name.empty() ? last_ident : name);
      any_token = false;
      in_default = false;
      last_ident.clear();
      name.clear();
    };
    for (std::size_t j = open + 1; j < close; ++j) {
      const Token& u = T_[j];
      if (u.is_punct("(") || u.is_punct("[") || u.is_punct("{")) ++pdepth;
      if (u.is_punct(")") || u.is_punct("]") || u.is_punct("}")) --pdepth;
      if (pdepth == 0 && u.is_punct(",")) {
        finish();
        continue;
      }
      any_token = true;
      if (pdepth == 0 && u.is_punct("=") && !in_default) {
        in_default = true;
        name = last_ident;
        continue;
      }
      if (!in_default && u.kind == TokenKind::kIdentifier) {
        last_ident = u.text;
      }
    }
    finish();
    if (params == 1 && def.param_names.size() == 1 &&
        def.param_names[0] == "void") {
      def.param_names.clear();
      params = 0;
      defaults = 0;
    }
    def.max_arity = params;
    def.min_arity = params - defaults;
  }

  /// Function-body walker: finds lambda expressions and records them
  /// as nested FunctionDefs.
  void parse_body(std::size_t i, std::size_t end, int parent) {
    while (i < end && i < T_.size()) {
      const Token& t = T_[i];
      if (!t.is_punct("[")) {
        ++i;
        continue;
      }
      if (is(i + 1, "[")) {  // [[attribute]]
        i = match_paren(i + 1, "[", "]") + 2;
        continue;
      }
      // A '[' opens a lambda only in expression-start position.
      if (i > 0) {
        const Token& p = T_[i - 1];
        const bool expr_start =
            p.kind == TokenKind::kPunct
                ? !(p.is_punct("]") || p.is_punct(")"))
                : (p.is_ident("return") || p.is_ident("co_return") ||
                   p.is_ident("case") || p.is_ident("else") ||
                   p.is_ident("do"));
        if (!expr_start) {  // subscript
          i = match_paren(i, "[", "]") + 1;
          continue;
        }
      }
      const std::size_t close_cap = match_paren(i, "[", "]");
      if (close_cap >= T_.size()) return;
      FunctionDef def;
      def.is_lambda = true;
      def.parent = parent;
      def.line = T_[i].line;
      def.col = T_[i].col;
      parse_captures(i + 1, close_cap, def);
      std::size_t j = close_cap + 1;
      std::size_t op = 0;
      std::size_t cp = 0;
      if (is(j, "(")) {
        op = j;
        cp = match_paren(j, "(", ")");
        j = cp + 1;
      }
      // lambda trailer: mutable/noexcept/attributes/-> type
      while (j < end) {
        if (T_[j].is_ident("mutable") || T_[j].is_ident("noexcept") ||
            T_[j].is_ident("constexpr")) {
          ++j;
          if (is(j, "(")) j = match_paren(j, "(", ")") + 1;
          continue;
        }
        if (T_[j].is_punct("->")) {
          ++j;
          while (j < end && !T_[j].is_punct("{") && !T_[j].is_punct(";")) ++j;
          continue;
        }
        break;
      }
      if (!is(j, "{")) {  // not a lambda after all
        i = close_cap + 1;
        continue;
      }
      if (op != 0) {
        def.params_begin = op;
        def.params_end = cp;
        parse_params(op, cp, def);
      }
      def.body_begin = j;
      def.body_end = match_brace(j);
      // `auto name = [..]` binds the lambda to a local name.
      def.name = "<lambda>";
      if (i >= 2 && T_[i - 1].is_punct("=") &&
          T_[i - 2].kind == TokenKind::kIdentifier) {
        def.name = T_[i - 2].text;
      }
      const FunctionDef& host = out_.functions[parent];
      def.qualified_name = host.qualified_name + "::" + def.name;
      def.owner = host.owner;
      const int self = static_cast<int>(out_.functions.size());
      out_.functions.push_back(def);
      parse_body(def.body_begin + 1, def.body_end, self);
      i = def.body_end + 1;
    }
  }

  void parse_captures(std::size_t i, std::size_t end, FunctionDef& def) {
    std::string current;
    bool in_init = false;
    int depth = 0;
    auto finish = [&] {
      if (!current.empty()) def.captures.push_back(current);
      current.clear();
      in_init = false;
    };
    for (std::size_t j = i; j < end; ++j) {
      const Token& u = T_[j];
      if (u.is_punct("(") || u.is_punct("[") || u.is_punct("{")) ++depth;
      if (u.is_punct(")") || u.is_punct("]") || u.is_punct("}")) --depth;
      if (depth == 0 && u.is_punct(",")) {
        finish();
        continue;
      }
      if (in_init) continue;
      if (depth == 0 && u.is_punct("=") && !current.empty()) {
        in_init = true;  // init capture: keep the name only
        continue;
      }
      if (u.kind == TokenKind::kIdentifier || u.is_punct("&") ||
          u.is_punct("=") || u.is_punct("*") || u.is_ident("this")) {
        current += u.text;
      }
    }
    finish();
  }

  const std::vector<Token>& T_;
  std::vector<std::string> class_scopes_;
  ParsedFile out_;
};

}  // namespace

int ParsedFile::enclosing(std::size_t tok, bool named_only) const {
  int best = -1;
  std::size_t best_span = 0;
  for (std::size_t f = 0; f < functions.size(); ++f) {
    const FunctionDef& d = functions[f];
    if (tok < d.body_begin || tok > d.body_end) continue;
    if (named_only && d.is_lambda) continue;
    const std::size_t span = d.body_end - d.body_begin;
    if (best == -1 || span < best_span) {
      best = static_cast<int>(f);
      best_span = span;
    }
  }
  return best;
}

ParsedFile parse_file(const LexedFile& file) { return Parser(file).run(); }

}  // namespace vlsipart::analysis
