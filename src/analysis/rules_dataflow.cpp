// Dataflow rule families over the CFG + reaching-definitions engine.
//
// Three clients of src/analysis/{cfg,dataflow}, all intraprocedural:
//
//   * index-width — the compact-CSR gate.  A value is "size-derived"
//     when it comes from .size()/num_vertices()/... directly or through
//     assignments; narrowing such a value into int/uint32_t (by
//     assignment, static_cast, or an int loop counter bounded by a
//     size) truncates silently past 2^32 pins.  Sites wrapped in
//     vp::checked_narrow<T>() or dominated by a VP_CHECK that mentions
//     the narrowed value are exempt: the dominance query is what the
//     CFG exists for.
//   * flow-determinism — taint propagation of pointer values (T* decls,
//     &x, .data(), reinterpret_cast) and clock reads (::now(),
//     clock_gettime) through assignments into ordering decisions: sort
//     comparators and RNG seeds.  This upgrades the token-level
//     determinism rules, which only see the sink expression itself and
//     miss one hop of indirection.
//   * dead-store / use-before-init — the cheap third client that proves
//     the solver is generic: a plain `x = expr;` whose definition
//     reaches no use, and a read reached by the "uninitialized"
//     pseudo-definition of its declaration.
//
// All heuristics here are deliberately biased against false positives:
// captured and address-taken variables are excluded from the dead-store
// family, pointer differences (p - q, the index-recovery idiom) do not
// propagate pointer taint, and only bare (non-dereferenced) tainted
// names count as comparator operands — keys[a] < keys[b] compares
// values, keys + a < keys + b compares addresses.
#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/parser.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

namespace {

// Directories gated by the index-width family (the compact-CSR core).
const char* const kIndexDirs[] = {"src/part", "src/hypergraph"};
// Directories whose values flow into reported results.
const char* const kFlowDirs[] = {"src/part", "src/hypergraph", "src/eval"};

bool in_dirs(const std::string& path, const char* const (&dirs)[2]) {
  return path_under(path, dirs[0]) || path_under(path, dirs[1]);
}

bool in_dirs(const std::string& path, const char* const (&dirs)[3]) {
  return path_under(path, dirs[0]) || path_under(path, dirs[1]) ||
         path_under(path, dirs[2]);
}

/// Member calls returning container/graph sizes: the index-width taint
/// sources.  Matched as `name (` — qualifier agnostic.
bool is_size_call_name(const std::string& s) {
  return s == "size" || s == "capacity" || s == "length" ||
         s == "num_vertices" || s == "num_edges" || s == "num_pins" ||
         s == "edge_size" || s == "degree";
}

/// Integer types that cannot hold a 64-bit size.
bool is_narrow_int(const std::string& s) {
  return s == "int" || s == "unsigned" || s == "short" || s == "char" ||
         s == "int32_t" || s == "uint32_t" || s == "int16_t" ||
         s == "uint16_t" || s == "int8_t" || s == "uint8_t" ||
         s == "VertexId" || s == "EdgeId";
}

/// Integer types wide enough to carry a size; taint flows through them.
bool is_wide_int(const std::string& s) {
  return s == "size_t" || s == "uint64_t" || s == "int64_t" ||
         s == "ptrdiff_t" || s == "uintptr_t" || s == "intptr_t" ||
         s == "long" || s == "auto" || s == "Weight" || s == "Gain";
}

/// Types for which an uninitialized read is meaningful (no default
/// constructor runs).
bool is_scalar_type(const VarInfo& v) {
  if (v.is_pointer) return true;
  const std::string& s = v.type_name;
  return is_narrow_int(s) || s == "size_t" || s == "uint64_t" ||
         s == "int64_t" || s == "ptrdiff_t" || s == "uintptr_t" ||
         s == "intptr_t" || s == "long" || s == "float" || s == "double" ||
         s == "bool" || s == "Weight" || s == "Gain" || s == "VertexId" ||
         s == "EdgeId";
}

bool is_sort_name(const std::string& s) {
  return s == "sort" || s == "stable_sort" || s == "partial_sort" ||
         s == "nth_element";
}

bool is_comparison(const Token& t) {
  return t.is_punct("<") || t.is_punct(">") || t.is_punct("<=") ||
         t.is_punct(">=");
}

bool contains_seed_word(const std::string& s) {
  return s.find("seed") != std::string::npos ||
         s.find("Seed") != std::string::npos;
}

class DataflowPass {
 public:
  DataflowPass(const FileUnit& unit, const RuleFilter& filter,
               std::vector<Finding>& out)
      : lexed_(unit.lexed),
        T(unit.lexed.tokens),
        path_(unit.lexed.path),
        filter_(filter),
        out_(out) {}

  void run() {
    index_scope_ = in_dirs(path_, kIndexDirs);
    flow_scope_ = in_dirs(path_, kFlowDirs);
    const bool any_index = index_scope_ &&
                           (filter_.enabled("narrowing-assign") ||
                            filter_.enabled("narrowing-cast") ||
                            filter_.enabled("narrow-loop-counter"));
    const bool any_flow = flow_scope_ &&
                          (filter_.enabled("tainted-comparator") ||
                           filter_.enabled("tainted-seed"));
    const bool any_dead = filter_.enabled("dead-store") ||
                          filter_.enabled("use-before-init");
    if (!any_index && !any_flow && !any_dead) return;

    parsed_ = parse_file(lexed_);
    for (int fn = 0; fn < static_cast<int>(parsed_.functions.size()); ++fn) {
      analyze_function(fn, any_index, any_flow, any_dead);
    }
  }

 private:
  void report(std::size_t tok, const char* rule, std::string message) {
    if (!filter_.enabled(rule)) return;
    out_.push_back(Finding{path_, T[tok].line, T[tok].col, rule,
                           std::move(message)});
  }

  void analyze_function(int fn, bool any_index, bool any_flow,
                        bool any_dead) {
    const FunctionDef& def = parsed_.functions[fn];
    if (def.body_end <= def.body_begin + 1) return;
    cfg_ = build_cfg(T, parsed_, fn);
    if (cfg_.stmts.empty()) return;
    rd_ = compute_reaching_defs(T, parsed_, fn, cfg_);
    fn_ = fn;
    collect_guards();

    if (any_index) {
      compute_size_taint();
      check_narrowing_defs();
      check_narrowing_casts();
      check_narrow_loop_counters();
    }
    if (any_flow) {
      compute_flow_taint();
      check_sort_comparators();
      check_seed_sinks();
    }
    if (any_dead) {
      check_dead_stores();
      check_use_before_init();
    }
  }

  // -- shared helpers -------------------------------------------------

  /// Statement containing token index `tok`, or -1.
  int stmt_of_token(std::size_t tok) const {
    for (std::size_t s = 0; s < cfg_.stmts.size(); ++s) {
      if (tok >= cfg_.stmts[s].begin && tok < cfg_.stmts[s].end) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }

  /// VP_CHECK / VP_DCHECK / assert statements and the identifiers they
  /// mention — the range-guard vocabulary for dominance exemptions.
  void collect_guards() {
    guards_.clear();
    for (std::size_t s = 0; s < cfg_.stmts.size(); ++s) {
      const CfgStmt& stmt = cfg_.stmts[s];
      if (stmt.begin >= stmt.end) continue;
      const Token& first = T[stmt.begin];
      if (!(first.is_ident("VP_CHECK") || first.is_ident("VP_DCHECK") ||
            first.is_ident("assert"))) {
        continue;
      }
      Guard g;
      g.stmt = static_cast<int>(s);
      for (std::size_t i = stmt.begin + 1; i < stmt.end; ++i) {
        if (T[i].kind == TokenKind::kIdentifier) g.names.insert(T[i].text);
      }
      guards_.push_back(std::move(g));
    }
  }

  /// True when a guard mentioning one of `names` dominates statement s.
  bool guarded(int s, const std::set<std::string>& names) const {
    if (s < 0) return false;
    for (const Guard& g : guards_) {
      if (!cfg_.stmt_dominates(g.stmt, s)) continue;
      for (const std::string& n : names) {
        if (g.names.count(n) != 0) return true;
      }
    }
    return false;
  }

  /// Identifier at `i` used as a plain value: not a member access on
  /// something else, not itself dereferenced or called.
  bool is_bare_value(std::size_t i) const {
    if (T[i].kind != TokenKind::kIdentifier) return false;
    if (i > 0 && (T[i - 1].is_punct(".") || T[i - 1].is_punct("->") ||
                  T[i - 1].is_punct("::") || T[i - 1].is_punct("*"))) {
      return false;
    }
    if (i + 1 < T.size() &&
        (T[i + 1].is_punct("[") || T[i + 1].is_punct("(") ||
         T[i + 1].is_punct(".") || T[i + 1].is_punct("->") ||
         T[i + 1].is_punct("::"))) {
      return false;
    }
    return true;
  }

  /// `name (` with the call shape at index i.
  bool is_call_at(std::size_t i) const {
    return T[i].kind == TokenKind::kIdentifier && i + 1 < T.size() &&
           T[i + 1].is_punct("(");
  }

  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < T.size(); ++i) {
      if (T[i].is_punct("(")) ++depth;
      if (T[i].is_punct(")") && --depth == 0) return i;
    }
    return T.size();
  }

  /// Collect identifier names in [begin, end).
  std::set<std::string> idents_in(std::size_t begin, std::size_t end) const {
    std::set<std::string> names;
    for (std::size_t i = begin; i < end && i < T.size(); ++i) {
      if (T[i].kind == TokenKind::kIdentifier) names.insert(T[i].text);
    }
    return names;
  }

  /// RHS token range of a definition: everything after the defined name
  /// within its statement (covers `= expr`, `+= expr`, `{expr}` and the
  /// `: range` of a range-for header).
  std::pair<std::size_t, std::size_t> rhs_of(const Def& d) const {
    if (d.stmt < 0) return {0, 0};
    return {d.token + 1, cfg_.stmts[d.stmt].end};
  }

  // -- index-width ----------------------------------------------------

  /// Subscript contents produce elements, not sizes: `arr[i]` yields
  /// arr's element type regardless of i, so taint inside `[...]` never
  /// makes the surrounding expression size-derived.
  bool range_has_size_call(std::size_t begin, std::size_t end) const {
    int sub = 0;
    for (std::size_t i = begin; i < end && i < T.size(); ++i) {
      if (T[i].is_punct("[")) ++sub;
      if (T[i].is_punct("]") && sub > 0) --sub;
      if (sub > 0) continue;
      if (is_call_at(i) && is_size_call_name(T[i].text)) return true;
    }
    return false;
  }

  bool range_has_taint(std::size_t begin, std::size_t end,
                       const std::set<int>& tainted) const {
    int sub = 0;
    for (std::size_t i = begin; i < end && i < T.size(); ++i) {
      if (T[i].is_punct("[")) ++sub;
      if (T[i].is_punct("]") && sub > 0) --sub;
      if (sub > 0 || T[i].kind != TokenKind::kIdentifier) continue;
      const int v = var_at(i);
      if (v >= 0 && tainted.count(v) != 0 && is_bare_value(i)) return true;
    }
    return false;
  }

  /// One hop of definition sources: for each variable named in `names`,
  /// add the identifiers of its defining RHSs.  A VP_CHECK over `n`
  /// then covers a counter bounded by `n` and a cast of a value drawn
  /// from `rng.below(n)` — the one-hop version of a range analysis.
  void augment_with_sources(std::set<std::string>& names) const {
    std::set<std::string> extra;
    for (const std::string& nm : names) {
      const int v = rd_.var_index(nm);
      if (v < 0) continue;
      for (const Def& d : rd_.defs) {
        if (d.var != v || d.stmt < 0) continue;
        const auto [b, e] = rhs_of(d);
        for (std::size_t i = b; i < e && i < T.size(); ++i) {
          if (T[i].kind == TokenKind::kIdentifier) extra.insert(T[i].text);
        }
      }
    }
    names.insert(extra.begin(), extra.end());
  }

  /// `static_cast < wide-int > (` inside the range: the author computed
  /// in 64 bits on purpose, so truncating the result is suspect.
  bool range_has_wide_cast(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end && i < T.size(); ++i) {
      if (!T[i].is_ident("static_cast")) continue;
      const auto [type, open] = cast_type_at(i);
      if (open != 0 && is_wide_int(type)) return true;
    }
    return false;
  }

  int var_at(std::size_t i) const {
    if (T[i].kind != TokenKind::kIdentifier) return -1;
    return rd_.var_index(T[i].text);
  }

  /// Size-derived wide variables, to a fixed point over assignments.
  void compute_size_taint() {
    size_tainted_.clear();
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Def& d : rd_.defs) {
        if (d.stmt < 0 || d.uninit) continue;
        if (size_tainted_.count(d.var) != 0) continue;
        if (!is_wide_int(rd_.vars[d.var].type_name)) continue;
        const auto [b, e] = rhs_of(d);
        if (range_has_size_call(b, e) ||
            range_has_taint(b, e, size_tainted_)) {
          size_tainted_.insert(d.var);
          changed = true;
        }
      }
    }
  }

  /// Definitions of narrow-typed variables fed by size-derived values
  /// with no explicit cast: implicit truncation.
  void check_narrowing_defs() {
    for (const Def& d : rd_.defs) {
      if (d.stmt < 0 || d.uninit || d.conservative) continue;
      const VarInfo& var = rd_.vars[d.var];
      if (!is_narrow_int(var.type_name) || var.is_reference ||
          var.is_pointer) {
        continue;
      }
      // A range-for element has the container's element type; taint in
      // the range expression (an index, a bound) is not the element.
      const CfgStmt& stmt = cfg_.stmts[d.stmt];
      if (stmt.begin < T.size() && T[stmt.begin].is_ident("for")) continue;
      const auto [b, e] = rhs_of(d);
      bool explicit_cast = false;
      for (std::size_t i = b; i < e && i < T.size(); ++i) {
        if (T[i].is_ident("static_cast") || T[i].is_ident("checked_narrow") ||
            T[i].is_ident("narrow_cast")) {
          explicit_cast = true;
          break;
        }
      }
      if (explicit_cast) continue;  // narrowing-cast owns explicit casts
      if (!range_has_size_call(b, e) &&
          !range_has_taint(b, e, size_tainted_)) {
        continue;
      }
      std::set<std::string> names = idents_in(b, e);
      names.insert(var.name);
      augment_with_sources(names);
      if (guarded(d.stmt, names)) continue;
      report(d.token, "narrowing-assign",
             "size-derived value assigned to " + var.type_name + " '" +
                 var.name +
                 "' truncates silently past 32 bits — use "
                 "vp::checked_narrow<" +
                 var.type_name + ">() or guard with VP_CHECK");
    }
  }

  /// Type name and operand '(' index of `static_cast<...>(`, or {"",0}.
  std::pair<std::string, std::size_t> cast_type_at(std::size_t i) const {
    if (!T[i].is_ident("static_cast") || i + 1 >= T.size() ||
        !T[i + 1].is_punct("<")) {
      return {"", 0};
    }
    std::string type;
    std::size_t j = i + 2;
    for (; j < T.size(); ++j) {
      if (T[j].is_punct(">")) break;
      if (T[j].is_punct(";") || T[j].is_punct("{")) return {"", 0};
      if (T[j].kind == TokenKind::kIdentifier && !T[j].is_ident("const")) {
        type = T[j].text;
      }
    }
    if (j >= T.size() || j + 1 >= T.size() || !T[j + 1].is_punct("(")) {
      return {"", 0};
    }
    return {type, j + 1};
  }

  void check_narrowing_casts() {
    const FunctionDef& def = parsed_.functions[fn_];
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      if (!T[i].is_ident("static_cast")) continue;
      if (parsed_.enclosing(i, false) != fn_) continue;  // nested lambda
      const auto [type, open] = cast_type_at(i);
      if (open == 0 || !is_narrow_int(type)) continue;
      const std::size_t close = match_paren(open);
      if (close >= T.size()) continue;
      if (!range_has_size_call(open + 1, close) &&
          !range_has_taint(open + 1, close, size_tainted_) &&
          !range_has_wide_cast(open + 1, close)) {
        continue;
      }
      const int s = stmt_of_token(i);
      std::set<std::string> names = idents_in(open + 1, close);
      if (s >= 0) {
        // The assigned-to name, for guards phrased over the result.
        const CfgStmt& stmt = cfg_.stmts[s];
        if (stmt.begin < T.size() &&
            T[stmt.begin].kind == TokenKind::kIdentifier) {
          names.insert(T[stmt.begin].text);
        }
      }
      augment_with_sources(names);
      if (guarded(s, names)) continue;
      report(i, "narrowing-cast",
             "static_cast<" + type +
                 "> of a size-derived 64-bit expression truncates "
                 "silently — use vp::checked_narrow<" +
                 type + ">() or prove the range with a dominating VP_CHECK");
    }
  }

  void check_narrow_loop_counters() {
    const FunctionDef& def = parsed_.functions[fn_];
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      if (!T[i].is_ident("for") || i + 1 >= T.size() ||
          !T[i + 1].is_punct("(")) {
        continue;
      }
      if (parsed_.enclosing(i, false) != fn_) continue;
      const std::size_t close = match_paren(i + 1);
      if (close >= T.size()) continue;
      // Clause boundaries: two top-level ';' (a range-for has none).
      std::size_t semi1 = 0, semi2 = 0;
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (T[j].is_punct("(") || T[j].is_punct("[") || T[j].is_punct("{")) {
          ++depth;
        } else if (T[j].is_punct(")") || T[j].is_punct("]") ||
                   T[j].is_punct("}")) {
          --depth;
        } else if (depth == 0 && T[j].is_punct(";")) {
          if (semi1 == 0) {
            semi1 = j;
          } else if (semi2 == 0) {
            semi2 = j;
          }
        }
      }
      if (semi1 == 0 || semi2 == 0) continue;
      // Init clause: `narrow-type name = ...`.
      std::size_t p = i + 2;
      while (p < semi1 && T[p].kind == TokenKind::kIdentifier &&
             (T[p].is_ident("const") || T[p].is_ident("auto"))) {
        if (T[p].is_ident("auto")) break;
        ++p;
      }
      std::string type;
      std::size_t type_tok = p;
      while (p < semi1) {
        if (T[p].kind == TokenKind::kIdentifier) {
          type = T[p].text;
          type_tok = p;
          ++p;
          if (p < semi1 && T[p].is_punct("::")) {
            ++p;
            continue;
          }
          break;
        }
        break;
      }
      if (!is_narrow_int(type)) continue;
      if (p >= semi1 || T[p].kind != TokenKind::kIdentifier) continue;
      const std::string counter = T[p].text;
      // Condition clause mentions the counter against a size bound.
      bool counter_in_cond = false;
      for (std::size_t j = semi1 + 1; j < semi2; ++j) {
        if (T[j].is_ident(counter.c_str())) counter_in_cond = true;
      }
      if (!counter_in_cond) continue;
      if (!range_has_size_call(semi1 + 1, semi2) &&
          !range_has_taint(semi1 + 1, semi2, size_tainted_)) {
        continue;
      }
      const int s = stmt_of_token(semi1 + 1 < semi2 ? semi1 + 1 : i);
      std::set<std::string> names = idents_in(semi1 + 1, semi2);
      names.insert(counter);
      augment_with_sources(names);
      if (guarded(s, names)) continue;
      report(type_tok, "narrow-loop-counter",
             "loop counter '" + counter + "' is " + type +
                 " but its bound is a 64-bit size — the counter wraps on "
                 "huge instances; use std::size_t or checked_narrow the "
                 "bound");
    }
  }

  // -- flow-determinism -----------------------------------------------

  bool rhs_is_pointer_source(std::size_t b, std::size_t e) const {
    for (std::size_t i = b; i < e && i < T.size(); ++i) {
      if (is_call_at(i) && T[i].is_ident("data") && i > b &&
          (T[i - 1].is_punct(".") || T[i - 1].is_punct("->"))) {
        return true;
      }
      if (T[i].is_ident("reinterpret_cast")) return true;
      if (T[i].is_punct("&") && i + 1 < e &&
          T[i + 1].kind == TokenKind::kIdentifier &&
          (i == b || !(T[i - 1].kind == TokenKind::kIdentifier ||
                       T[i - 1].kind == TokenKind::kNumber ||
                       T[i - 1].is_punct(")") || T[i - 1].is_punct("]")))) {
        return true;  // address-of, not binary and
      }
    }
    return false;
  }

  bool rhs_is_clock_source(std::size_t b, std::size_t e) const {
    for (std::size_t i = b; i < e && i < T.size(); ++i) {
      if (T[i].is_ident("now") && i > b && T[i - 1].is_punct("::") &&
          i + 1 < e && T[i + 1].is_punct("(")) {
        return true;
      }
      if ((T[i].is_ident("clock_gettime") || T[i].is_ident("gettimeofday")) &&
          i + 1 < e && T[i + 1].is_punct("(")) {
        return true;
      }
    }
    return false;
  }

  /// Pointer difference recovers an index deterministically; such an
  /// RHS does not propagate pointer taint.
  bool is_pointer_difference(std::size_t b, std::size_t e) const {
    int tainted_count = 0;
    bool minus = false;
    int depth = 0;
    for (std::size_t i = b; i < e && i < T.size(); ++i) {
      if (T[i].is_punct("(")) ++depth;
      if (T[i].is_punct(")")) --depth;
      if (depth == 0 && T[i].is_punct("-")) minus = true;
      const int v = var_at(i);
      if (v >= 0 && ptr_tainted_.count(v) != 0 && is_bare_value(i)) {
        ++tainted_count;
      }
    }
    return minus && tainted_count >= 2;
  }

  void compute_flow_taint() {
    ptr_tainted_.clear();
    clock_tainted_.clear();
    for (std::size_t v = 0; v < rd_.vars.size(); ++v) {
      const VarInfo& var = rd_.vars[v];
      if (var.is_pointer || var.type_name == "uintptr_t" ||
          var.type_name == "intptr_t") {
        ptr_tainted_.insert(static_cast<int>(v));
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Def& d : rd_.defs) {
        if (d.stmt < 0 || d.uninit) continue;
        const auto [b, e] = rhs_of(d);
        if (ptr_tainted_.count(d.var) == 0) {
          const bool src = rhs_is_pointer_source(b, e);
          const bool prop =
              range_has_taint(b, e, ptr_tainted_) &&
              !is_pointer_difference(b, e);
          if (src || prop) {
            ptr_tainted_.insert(d.var);
            changed = true;
          }
        }
        if (clock_tainted_.count(d.var) == 0 &&
            (rhs_is_clock_source(b, e) ||
             range_has_taint(b, e, clock_tainted_))) {
          clock_tainted_.insert(d.var);
          changed = true;
        }
      }
    }
  }

  /// Comparator body ranges of std::sort-family calls whose call token
  /// belongs to this function: inline lambdas, or locals that name a
  /// lambda bound earlier (`auto cmp = [..](..){..}`).
  std::vector<std::pair<std::size_t, std::size_t>> comparator_bodies() {
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    const FunctionDef& def = parsed_.functions[fn_];
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      if (!is_call_at(i) || !is_sort_name(T[i].text)) continue;
      if (parsed_.enclosing(i, false) != fn_) continue;
      const std::size_t close = match_paren(i + 1);
      if (close >= T.size()) continue;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (T[j].is_punct("[")) {
          // Inline comparator lambda: its body is a nested FunctionDef.
          for (const FunctionDef& g : parsed_.functions) {
            if (g.is_lambda && g.body_begin > j && g.body_begin < close &&
                g.parent == fn_) {
              bodies.push_back({g.body_begin + 1, g.body_end});
            }
          }
          break;
        }
        // Named comparator: last bare argument naming a local lambda.
        if (T[j].kind == TokenKind::kIdentifier && j + 1 <= close &&
            (T[j + 1].is_punct(")") || T[j + 1].is_punct(","))) {
          for (const FunctionDef& g : parsed_.functions) {
            if (g.is_lambda && g.parent == fn_ && g.name == T[j].text) {
              bodies.push_back({g.body_begin + 1, g.body_end});
            }
          }
        }
      }
    }
    std::sort(bodies.begin(), bodies.end());
    bodies.erase(std::unique(bodies.begin(), bodies.end()), bodies.end());
    return bodies;
  }

  void check_sort_comparators() {
    if (ptr_tainted_.empty() && clock_tainted_.empty()) return;
    for (const auto& [b, e] : comparator_bodies()) {
      for (std::size_t j = b; j < e && j < T.size(); ++j) {
        if (!is_comparison(T[j])) continue;
        // Operand ranges: scan out to the enclosing expression edges.
        const std::size_t lo = operand_begin(j, b);
        const std::size_t hi = operand_end(j, e);
        for (std::size_t k = lo; k < hi; ++k) {
          if (k == j) continue;
          const int v = var_at(k);
          if (v < 0 || !is_bare_value(k)) continue;
          const bool ptr = ptr_tainted_.count(v) != 0;
          const bool clk = clock_tainted_.count(v) != 0;
          if (!ptr && !clk) continue;
          report(k, "tainted-comparator",
                 std::string(ptr ? "pointer-derived '" : "clock-derived '") +
                     rd_.vars[v].name +
                     "' is a sort-comparator operand — ordering becomes " +
                     (ptr ? "allocation" : "time") +
                     "-dependent; compare by id or value");
          j = hi;  // one finding per comparison
          break;
        }
      }
    }
  }

  std::size_t operand_begin(std::size_t cmp, std::size_t lo) const {
    int depth = 0;
    std::size_t i = cmp;
    while (i > lo) {
      const Token& t = T[i - 1];
      if (t.is_punct(")") || t.is_punct("]")) ++depth;
      if (t.is_punct("(") || t.is_punct("[")) {
        if (depth == 0) break;
        --depth;
      }
      if (depth == 0 &&
          (t.is_punct(";") || t.is_punct(",") || t.is_punct("{") ||
           t.is_punct("&&") || t.is_punct("||") || t.is_punct("?") ||
           t.is_punct(":") || t.is_ident("return"))) {
        break;
      }
      --i;
    }
    return i;
  }

  std::size_t operand_end(std::size_t cmp, std::size_t hi) const {
    int depth = 0;
    std::size_t i = cmp + 1;
    while (i < hi) {
      const Token& t = T[i];
      if (t.is_punct("(") || t.is_punct("[")) ++depth;
      if (t.is_punct(")") || t.is_punct("]")) {
        if (depth == 0) break;
        --depth;
      }
      if (depth == 0 &&
          (t.is_punct(";") || t.is_punct(",") || t.is_punct("&&") ||
           t.is_punct("||") || t.is_punct("?") || t.is_punct(":"))) {
        break;
      }
      ++i;
    }
    return i;
  }

  void check_seed_sinks() {
    if (ptr_tainted_.empty() && clock_tainted_.empty()) return;
    const FunctionDef& def = parsed_.functions[fn_];
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      if (!is_call_at(i)) continue;
      if (parsed_.enclosing(i, false) != fn_) continue;
      const std::string& name = T[i].text;
      const bool seedish = name == "Rng" || name == "reseed" ||
                           name == "fork" || contains_seed_word(name);
      if (!seedish) continue;
      const std::size_t close = match_paren(i + 1);
      if (close >= T.size()) continue;
      for (std::size_t k = i + 2; k < close; ++k) {
        const int v = var_at(k);
        if (v < 0 || !is_bare_value(k)) continue;
        const bool ptr = ptr_tainted_.count(v) != 0;
        const bool clk = clock_tainted_.count(v) != 0;
        if (!ptr && !clk) continue;
        report(i, "tainted-seed",
               std::string(ptr ? "pointer-derived '" : "clock-derived '") +
                   rd_.vars[v].name + "' flows into RNG seed call '" + name +
                   "' — the stream is irreproducible; seed from the run "
                   "configuration");
        break;  // one finding per call
      }
    }
  }

  // -- dead-store / use-before-init -----------------------------------

  void check_dead_stores() {
    for (std::size_t d = 0; d < rd_.defs.size(); ++d) {
      const Def& def = rd_.defs[d];
      if (!def.plain_assign || def.conservative || def.stmt < 0) continue;
      const VarInfo& var = rd_.vars[def.var];
      if (var.captured || var.address_taken || var.is_reference) continue;
      if (!rd_.uses_of_def[d].empty()) continue;
      report(def.token, "dead-store",
             "value assigned to '" + var.name +
                 "' is never read — dead code or a missing use");
    }
  }

  void check_use_before_init() {
    std::set<int> reported_vars;
    for (std::size_t u = 0; u < rd_.uses.size(); ++u) {
      const Use& use = rd_.uses[u];
      const VarInfo& var = rd_.vars[use.var];
      if (var.captured || var.address_taken || var.is_reference ||
          var.is_param || !is_scalar_type(var)) {
        continue;
      }
      if (reported_vars.count(use.var) != 0) continue;
      bool uninit_reaches = false;
      bool conservative_reaches = false;
      for (const int d : rd_.defs_of_use[u]) {
        if (rd_.defs[d].uninit) uninit_reaches = true;
        if (rd_.defs[d].conservative) conservative_reaches = true;
      }
      if (!uninit_reaches || conservative_reaches) continue;
      reported_vars.insert(use.var);
      report(use.token, "use-before-init",
             "'" + var.name +
                 "' may be read before initialization on some path — "
                 "initialize at the declaration");
    }
  }

  struct Guard {
    int stmt = -1;
    std::set<std::string> names;
  };

  const LexedFile& lexed_;
  const std::vector<Token>& T;
  const std::string& path_;
  const RuleFilter& filter_;
  std::vector<Finding>& out_;
  ParsedFile parsed_;
  Cfg cfg_;
  ReachingDefs rd_;
  int fn_ = -1;
  bool index_scope_ = false;
  bool flow_scope_ = false;
  std::vector<Guard> guards_;
  std::set<int> size_tainted_;
  std::set<int> ptr_tainted_;
  std::set<int> clock_tainted_;
};

}  // namespace

void run_dataflow_rules(const FileUnit& unit, const RuleFilter& filter,
                        std::vector<Finding>& out) {
  DataflowPass(unit, filter, out).run();
}

}  // namespace vlsipart::analysis
