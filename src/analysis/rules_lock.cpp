// Lock-discipline rule: lockset-lite checking for the concurrent
// service layer (src/service/), the thread pool (src/util/
// thread_pool) and the synchronous-round refiner state.
//
// Contract: a field annotated
//     Type field_;  // guarded_by(some_mutex_)
// (annotation on the declaration line or the line directly above) may
// only be accessed at points where a textually enclosing scope holds a
// std::lock_guard / std::unique_lock / std::scoped_lock of that mutex.
// Helper functions that run with the lock already held declare it with
// a comment inside the function body:
//     // det-lint: holds(some_mutex_)
//
// `holds()` facts also propagate through the call graph: a helper
// whose in-scope call sites ALL occur while a mutex is held (lexically
// or through a caller's own effective holds) is checked as if it held
// that mutex — so a `*_locked` helper calling a second helper is
// checked transitively without annotating every level.  Worker-lambda
// bodies are lexically inside their defining function, so they inherit
// the capture context's lockset (documented approximation: a lambda
// executed after its scope unlocked is not modeled).
//
// "Lite" means token-positional, not path-sensitive; the documented
// limitations (DESIGN.md §12):
//   * unlock()/relock on a unique_lock is invisible — the lock is
//     assumed held until its scope ends (condition-variable waits are
//     therefore fine);
//   * matching is by mutex *name*; a member access like shared.mutex
//     matches an annotation guarded_by(mutex) by its last segment;
//   * annotations bind to field *names* within one header/source pair
//     (X.h + X.cpp), so same-named fields of two classes in one pair
//     share their annotation;
//   * call sites outside the lock-scope directories (e.g. tests) do
//     not weaken propagated holds — public entry points that need
//     checking should keep explicit annotations.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

namespace {

bool in_lock_scope(const std::string& path) {
  return path_under(path, "src/service") ||
         path_under(path, "src/util/thread_pool.h") ||
         path_under(path, "src/util/thread_pool.cpp") ||
         path_under(path, "src/part/core/parallel_refine.h") ||
         path_under(path, "src/part/core/parallel_refine.cpp");
}

/// "src/service/server.cpp" -> "src/service/server".
std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

/// Last '.'-or-'->'-separated segment of a mutex spec:
/// "shared.mutex" -> "mutex", "mutex_" -> "mutex_".
std::string last_segment(const std::string& spec) {
  std::size_t pos = spec.size();
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (spec[i] == '.' ||
        (spec[i] == '>' && i > 0 && spec[i - 1] == '-')) {
      pos = i + 1;
    }
  }
  return pos < spec.size() ? spec.substr(pos) : spec;
}

bool mutex_matches(const std::string& held, const std::string& required) {
  return held == required || last_segment(held) == last_segment(required);
}

/// Parse "directive(arg)" occurrences of `directive` in comment text.
std::vector<std::string> directive_args(const std::string& text,
                                        const std::string& directive) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = text.find(directive, pos)) != std::string::npos) {
    std::size_t i = pos + directive.size();
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i < text.size() && text[i] == '(') {
      const std::size_t close = text.find(')', i);
      if (close != std::string::npos) {
        std::string arg = text.substr(i + 1, close - i - 1);
        // trim
        while (!arg.empty() && (arg.front() == ' ' || arg.front() == '\t')) {
          arg.erase(arg.begin());
        }
        while (!arg.empty() && (arg.back() == ' ' || arg.back() == '\t')) {
          arg.pop_back();
        }
        if (!arg.empty()) out.push_back(arg);
      }
    }
    pos += directive.size();
  }
  return out;
}

bool is_lock_holder_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock";
}

struct GuardedField {
  std::string mutex;
};

/// (path, line) pairs that are annotation/declaration sites, exempt
/// from access checking.  A field name may be annotated in several
/// classes of one header (e.g. two caches with the same member names),
/// so this is a set, not one site per field.
using DeclSites = std::set<std::pair<std::string, int>>;

/// Effective ambient lockset per CallGraph function index, computed by
/// intersecting the locksets of all in-scope call sites.
using AmbientHolds = std::map<int, std::vector<std::string>>;

/// Locksets observed at call sites of each function.
using CallSiteLocks = std::map<int, std::vector<std::vector<std::string>>>;

/// Field name declared on `line` of `file`: the last identifier before
/// the first '=', '{' or ';' among that line's tokens.
bool field_name_on_line(const LexedFile& file, int line, std::string* name) {
  std::size_t last_ident = file.tokens.size();
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.line != line) continue;
    if (t.is_punct("=") || t.is_punct("{") || t.is_punct(";")) break;
    if (t.kind == TokenKind::kIdentifier) last_ident = i;
  }
  if (last_ident >= file.tokens.size()) return false;
  *name = file.tokens[last_ident].text;
  return true;
}

/// guarded_by annotations of one file: field name -> guard info.
void collect_guards(const LexedFile& file,
                    std::map<std::string, GuardedField>& guards,
                    DeclSites& decl_sites) {
  for (const Comment& c : file.comments) {
    for (const std::string& mutex : directive_args(c.text, "guarded_by")) {
      std::string name;
      // Trailing comment on the declaration line, or a standalone
      // comment on the line above the declaration.
      if (field_name_on_line(file, c.line, &name)) {
        guards[name] = GuardedField{mutex};
        decl_sites.insert({file.path, c.line});
      } else if (field_name_on_line(file, c.line + 1, &name)) {
        guards[name] = GuardedField{mutex};
        decl_sites.insert({file.path, c.line + 1});
      }
    }
  }
}

/// One lexical scan of a unit.  In collect mode (`sites` non-null) it
/// records the lockset at every resolved in-scope call site; in check
/// mode (`guards` non-empty, `out` non-null) it reports unguarded
/// accesses.  Both modes consume `ambient` holds: when the scan enters
/// a function body, that function's propagated lockset is pushed at
/// the body's depth.
class LockPass {
 public:
  LockPass(const LexedFile& file, int unit_index, const CallGraph& graph,
           const AmbientHolds& ambient,
           const std::map<std::string, GuardedField>& guards,
           const DeclSites& decl_sites, const RuleFilter& filter,
           std::vector<Finding>* out, CallSiteLocks* sites)
      : file_(file),
        graph_(graph),
        ambient_(ambient),
        guards_(guards),
        decl_sites_(decl_sites),
        filter_(filter),
        out_(out),
        sites_(sites) {
    for (const Comment& c : file.comments) {
      for (const std::string& m : directive_args(c.text, "holds")) {
        holds_.emplace_back(c.line, m);
      }
    }
    if (unit_index >= 0 &&
        unit_index < static_cast<int>(graph.unit_functions.size())) {
      for (int f : graph.unit_functions[unit_index]) {
        body_starts_[graph.functions[f].body_begin] = f;
        if (sites_ != nullptr) {
          for (const CallSite& site : graph.calls[f]) {
            if (!site.callees.empty()) call_at_[site.token] = &site;
          }
        }
      }
    }
  }

  void run() {
    const std::vector<Token>& T = file_.tokens;
    std::size_t next_hold = 0;
    for (std::size_t i = 0; i < T.size(); ++i) {
      const Token& t = T[i];
      while (next_hold < holds_.size() &&
             holds_[next_hold].first <= t.line) {
        locks_.emplace_back(depth_, holds_[next_hold].second);
        ++next_hold;
      }
      if (t.is_punct("{")) {
        ++depth_;
        const auto start = body_starts_.find(i);
        if (start != body_starts_.end()) {
          const auto amb = ambient_.find(start->second);
          if (amb != ambient_.end()) {
            for (const std::string& m : amb->second) {
              locks_.emplace_back(depth_, m);
            }
          }
        }
        continue;
      }
      if (t.is_punct("}")) {
        --depth_;
        while (!locks_.empty() && locks_.back().first > depth_) {
          locks_.pop_back();
        }
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && is_lock_holder_type(t.text)) {
        record_lock_acquisition(i);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        if (sites_ != nullptr) {
          const auto call = call_at_.find(i);
          if (call != call_at_.end()) record_call_site(*call->second);
        }
        if (out_ != nullptr) check_access(i);
      }
    }
  }

 private:
  /// T[i] is lock_guard/unique_lock/scoped_lock.  Skip the template
  /// argument list and the holder's name, then record every mutex
  /// argument of the constructor call.
  void record_lock_acquisition(std::size_t i) {
    const std::vector<Token>& T = file_.tokens;
    std::size_t j = i + 1;
    if (j < T.size() && T[j].is_punct("<")) {
      int depth = 0;
      for (; j < T.size(); ++j) {
        if (T[j].is_punct("<")) ++depth;
        if (T[j].is_punct(">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < T.size() && T[j].kind == TokenKind::kIdentifier) ++j;
    if (j >= T.size() || !T[j].is_punct("(")) return;
    // Arguments: identifiers joined by '.'/'->'/'::', split on ','.
    std::string current;
    int depth = 1;
    for (++j; j < T.size() && depth > 0; ++j) {
      if (T[j].is_punct("(")) ++depth;
      if (T[j].is_punct(")")) {
        if (--depth == 0) break;
      }
      if (depth == 1 && T[j].is_punct(",")) {
        push_lock(current);
        current.clear();
        continue;
      }
      if (T[j].kind == TokenKind::kIdentifier || T[j].is_punct(".") ||
          T[j].is_punct("->") || T[j].is_punct("::")) {
        current += T[j].text;
      }
    }
    push_lock(current);
  }

  void push_lock(const std::string& spec) {
    if (!spec.empty()) locks_.emplace_back(depth_, spec);
  }

  void record_call_site(const CallSite& site) {
    std::vector<std::string> lockset;
    for (const auto& [d, held] : locks_) {
      (void)d;
      lockset.push_back(held);
    }
    for (int callee : site.callees) {
      (*sites_)[callee].push_back(lockset);
    }
  }

  void check_access(std::size_t i) {
    const std::vector<Token>& T = file_.tokens;
    const auto it = guards_.find(T[i].text);
    if (it == guards_.end()) return;
    const GuardedField& g = it->second;
    // The declaration itself is not a use.
    if (decl_sites_.count({file_.path, T[i].line}) != 0) return;
    for (const auto& [d, held] : locks_) {
      (void)d;
      if (mutex_matches(held, g.mutex)) return;
    }
    if (!filter_.enabled("lock-discipline")) return;
    out_->push_back(Finding{
        file_.path, T[i].line, T[i].col, "lock-discipline",
        "field '" + T[i].text + "' (guarded_by " + g.mutex +
            ") accessed without holding " + g.mutex +
            " — wrap the access in a lock_guard/unique_lock scope or mark "
            "the function '// det-lint: holds(" + g.mutex + ")'"});
  }

  const LexedFile& file_;
  const CallGraph& graph_;
  const AmbientHolds& ambient_;
  const std::map<std::string, GuardedField>& guards_;
  const DeclSites& decl_sites_;
  const RuleFilter& filter_;
  std::vector<Finding>* out_;
  CallSiteLocks* sites_;
  std::map<std::size_t, int> body_starts_;            // token -> function
  std::map<std::size_t, const CallSite*> call_at_;    // token -> call
  std::vector<std::pair<int, std::string>> locks_;  // (decl depth, mutex)
  std::vector<std::pair<int, std::string>> holds_;  // (line, mutex)
  int depth_ = 0;
};

/// Intersection of locksets with fuzzy (last-segment) matching: a spec
/// survives when every lockset contains a matching one.
std::vector<std::string> intersect_locksets(
    const std::vector<std::vector<std::string>>& sets) {
  std::vector<std::string> result = sets.front();
  for (std::size_t k = 1; k < sets.size(); ++k) {
    std::vector<std::string> kept;
    for (const std::string& h : result) {
      for (const std::string& other : sets[k]) {
        if (mutex_matches(h, other)) {
          kept.push_back(h);
          break;
        }
      }
    }
    result = std::move(kept);
    if (result.empty()) break;
  }
  return result;
}

}  // namespace

void run_lock_rule(const Corpus& corpus, const CallGraph& graph,
                   const RuleFilter& filter, std::vector<Finding>& out) {
  if (!filter.enabled("lock-discipline")) return;

  // In-scope units, and the in-scope function set for callee filtering.
  std::vector<int> scope_units;
  std::set<int> scope_functions;
  for (std::size_t u = 0; u < corpus.units.size(); ++u) {
    if (!in_lock_scope(corpus.units[u].lexed.path)) continue;
    scope_units.push_back(static_cast<int>(u));
    for (int f : graph.unit_functions[u]) scope_functions.insert(f);
  }
  if (scope_units.empty()) return;

  static const std::map<std::string, GuardedField> kNoGuards;
  static const DeclSites kNoDecls;

  // Fixed point: each iteration scans every in-scope unit with the
  // current ambient map, collects call-site locksets, and intersects
  // them per callee.  Holds can only grow, so this converges; the cap
  // bounds pathological chains.
  AmbientHolds ambient;
  for (int iter = 0; iter < 8; ++iter) {
    CallSiteLocks sites;
    for (int u : scope_units) {
      LockPass(corpus.units[u].lexed, u, graph, ambient, kNoGuards, kNoDecls,
               filter, nullptr, &sites)
          .run();
    }
    AmbientHolds next;
    for (const auto& [callee, locksets] : sites) {
      if (scope_functions.count(callee) == 0) continue;
      std::vector<std::string> held = intersect_locksets(locksets);
      if (!held.empty()) next[callee] = std::move(held);
    }
    if (next == ambient) break;
    ambient = std::move(next);
  }

  // Group in-scope files by stem so X.h annotations govern X.cpp.
  std::map<std::string, std::vector<int>> groups;
  for (int u : scope_units) {
    groups[stem_of(corpus.units[u].lexed.path)].push_back(u);
  }
  for (const auto& [stem, units] : groups) {
    (void)stem;
    std::map<std::string, GuardedField> guards;
    DeclSites decl_sites;
    for (int u : units) {
      collect_guards(corpus.units[u].lexed, guards, decl_sites);
    }
    if (guards.empty()) continue;
    for (int u : units) {
      if (!corpus.units[u].linted) continue;
      LockPass(corpus.units[u].lexed, u, graph, ambient, guards, decl_sites,
               filter, &out, nullptr)
          .run();
    }
  }
}

}  // namespace vlsipart::analysis
