// Parallel-round protocol rules for the synchronous-round engines
// (parallel_refine.cpp, parallel_coarsen.cpp — any `parallel_*` unit).
//
// The round protocol's determinism lemma (src/util/shard.h) requires
// that worker shards write only to slots they own: every write to a
// captured array must be indexed by a variable derived from the
// shard's contiguous range (the lambda's shard parameter, a loop
// variable seeded from `range.begin`, or a value computed from one).
// It also forbids RNG draws inside worker lambdas — per-shard draws
// make the stream depend on the shard count.
//
//   round-frozen-write  captured-array write not indexed by the
//                       shard's range variable (or growth of a
//                       captured container) inside a worker lambda
//   round-rng-in-shard  RNG type/object use inside a worker lambda
//
// Worker lambdas are those passed (directly or by name) to
// `parallel_for_dynamic` / `submit` / `submit_with_slot`, plus any
// lambda bound to a `*_shard` name.
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

namespace {

constexpr char kFrozenRule[] = "round-frozen-write";
constexpr char kRngRule[] = "round-rng-in-shard";

bool in_round_scope(const std::string& path) {
  if (!path_under(path, "src")) return false;
  const std::size_t slash = path.rfind('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return base.compare(0, 9, "parallel_") == 0;
}

bool is_dispatch_name(const std::string& s) {
  return s == "parallel_for_dynamic" || s == "submit" ||
         s == "submit_with_slot";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool rng_object_name(const std::string& s) {
  std::string lower;
  for (char c : s) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return lower == "rng" || lower == "rng_" || ends_with(lower, "_rng") ||
         ends_with(lower, "_rng_") || ends_with(lower, "rng");
}

const std::set<std::string>& growth_calls() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "emplace", "insert", "resize",
      "reserve",   "assign",       "clear",   "erase",  "push_front"};
  return kSet;
}

/// Identifiers that introduce declarations when seen before a name.
bool decl_prev_blocklist(const std::string& s) {
  return s == "return" || s == "else" || s == "case" || s == "do" ||
         s == "goto" || s == "break" || s == "continue" || s == "new" ||
         s == "delete" || s == "sizeof" || s == "co_return";
}

std::size_t match_close(const std::vector<Token>& T, std::size_t open,
                        const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < T.size(); ++i) {
    if (T[i].is_punct(o)) ++depth;
    if (T[i].is_punct(c) && --depth == 0) return i;
  }
  return T.size();
}

bool is_assign_op(const Token& t) {
  return t.is_punct("=") || t.is_punct("+=") || t.is_punct("-=") ||
         t.is_punct("*=") || t.is_punct("/=") || t.is_punct("%=") ||
         t.is_punct("&=") || t.is_punct("|=") || t.is_punct("^=") ||
         t.is_punct("++") || t.is_punct("--");
}

class RoundPass {
 public:
  RoundPass(const Corpus& corpus, const CallGraph& graph,
            const RuleFilter& filter, std::vector<Finding>& out)
      : corpus_(corpus), graph_(graph), filter_(filter), out_(out) {}

  void run() {
    for (std::size_t f = 0; f < graph_.functions.size(); ++f) {
      const FunctionDef& def = graph_.functions[f];
      if (!def.is_lambda || def.parent < 0) continue;
      const int unit = graph_.unit_of[f];
      if (!corpus_.units[unit].linted) continue;
      if (!in_round_scope(corpus_.units[unit].lexed.path)) continue;
      if (!is_worker_lambda(static_cast<int>(f))) continue;
      check_lambda(static_cast<int>(f));
    }
  }

 private:
  /// A lambda is a worker when its body sits inside the argument list
  /// of a dispatch call, its bound name is passed to one, or its bound
  /// name ends in `_shard`.
  bool is_worker_lambda(int f) {
    const FunctionDef& def = graph_.functions[f];
    if (ends_with(def.name, "_shard")) return true;
    const int unit = graph_.unit_of[f];
    const std::vector<Token>& T = corpus_.units[unit].lexed.tokens;
    // Dispatch calls anywhere in this unit.
    for (int g : graph_.unit_functions[unit]) {
      for (const CallSite& site : graph_.calls[g]) {
        if (!is_dispatch_name(site.name)) continue;
        const std::size_t open = site.token + 1 < T.size() &&
                                         T[site.token + 1].is_punct("(")
                                     ? site.token + 1
                                     : 0;
        if (open == 0) continue;
        const std::size_t close = match_close(T, open, "(", ")");
        if (def.body_begin > open && def.body_end < close) return true;
        if (def.name != "<lambda>") {
          for (std::size_t i = open + 1; i < close && i < T.size(); ++i) {
            if (T[i].is_ident(def.name.c_str())) return true;
          }
        }
      }
    }
    return false;
  }

  void check_lambda(int f) {
    const FunctionDef& def = graph_.functions[f];
    const int unit = graph_.unit_of[f];
    const std::vector<Token>& T = corpus_.units[unit].lexed.tokens;
    const std::string& path = corpus_.units[unit].lexed.path;

    // Names owned by the shard: parameters plus anything derived from
    // the range (`v = r.begin`, `u = static_cast<...>(v)`).  Iterate
    // to a fixed point so chained derivations resolve regardless of
    // pass order.
    std::set<std::string> derived(def.param_names.begin(),
                                  def.param_names.end());
    std::set<std::string> locals;
    for (int round = 0; round < 3; ++round) {
      const std::size_t before = derived.size() + locals.size();
      collect_names(T, def, derived, locals);
      if (derived.size() + locals.size() == before) break;
    }

    for (std::size_t i = def.body_begin + 1; i < def.body_end; ++i) {
      const Token& t = T[i];
      if (t.kind != TokenKind::kIdentifier) continue;

      // RNG use: type token or method call on an rng-named object.
      if (filter_.enabled(kRngRule)) {
        const bool rng_type = t.text == "Rng";
        const bool rng_call =
            (rng_object_name(t.text) && i + 1 < T.size() &&
             (T[i + 1].is_punct(".") || T[i + 1].is_punct("->"))) ||
            ((t.text == "splitmix64" || t.text == "rand") && i + 1 < T.size() &&
             T[i + 1].is_punct("("));
        if (rng_type || rng_call) {
          out_.push_back(Finding{
              path, t.line, t.col, kRngRule,
              "RNG use ('" + t.text + "') inside worker-shard lambda '" +
                  graph_.functions[f].qualified_name +
                  "' — per-shard draws make results depend on the shard "
                  "count; draw before the round or fork a per-vertex "
                  "stream outside the pool"});
          continue;
        }
      }

      if (!filter_.enabled(kFrozenRule)) continue;
      const bool object_pos =
          i == 0 || !(T[i - 1].is_punct(".") || T[i - 1].is_punct("->"));
      if (!object_pos) continue;
      if (locals.count(t.text) != 0 || derived.count(t.text) != 0) continue;

      // Captured-container growth: obj.push_back(...) etc.
      if (i + 2 < T.size() &&
          (T[i + 1].is_punct(".") || T[i + 1].is_punct("->")) &&
          T[i + 2].kind == TokenKind::kIdentifier &&
          growth_calls().count(T[i + 2].text) != 0 && i + 3 < T.size() &&
          T[i + 3].is_punct("(")) {
        report_frozen(path, t, f,
                      "'" + t.text + "." + T[i + 2].text +
                          "' mutates a captured container");
        continue;
      }

      // Subscripted write: obj[index...] <assign>.
      if (i + 1 >= T.size() || !T[i + 1].is_punct("[")) continue;
      const std::size_t close = match_close(T, i + 1, "[", "]");
      if (close >= T.size() || close >= def.body_end) continue;
      const bool pre_incr = i >= 1 && is_assign_op(T[i - 1]) &&
                            (T[i - 1].is_punct("++") || T[i - 1].is_punct("--"));
      const bool post_op =
          close + 1 < T.size() && is_assign_op(T[close + 1]) &&
          !(T[close + 1].is_punct("=") && close + 2 < T.size() &&
            T[close + 2].is_punct("="));
      if (!pre_incr && !post_op) continue;
      bool indexed_by_range = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (T[j].kind == TokenKind::kIdentifier &&
            derived.count(T[j].text) != 0) {
          indexed_by_range = true;
          break;
        }
      }
      if (indexed_by_range) continue;
      report_frozen(path, t, f,
                    "write to captured array '" + t.text +
                        "' is not indexed by the shard's range variable");
    }
  }

  void report_frozen(const std::string& path, const Token& t, int f,
                     const std::string& what) {
    out_.push_back(Finding{
        path, t.line, t.col, kFrozenRule,
        what + " inside worker-shard lambda '" +
            graph_.functions[f].qualified_name +
            "' — shards may only write slots they own (indexed by the "
            "shard range); merge per-shard buffers serially instead"});
  }

  /// One pass of local-declaration and range-derivation collection.
  void collect_names(const std::vector<Token>& T, const FunctionDef& def,
                     std::set<std::string>& derived,
                     std::set<std::string>& locals) {
    for (std::size_t i = def.body_begin + 1; i < def.body_end; ++i) {
      const Token& t = T[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (i == 0) continue;
      const Token& p = T[i - 1];
      const bool decl_pos =
          (p.kind == TokenKind::kIdentifier && !decl_prev_blocklist(p.text)) ||
          p.is_punct("&") || p.is_punct("*") || p.is_punct(">");
      if (!decl_pos || i + 1 >= T.size()) continue;
      const Token& n = T[i + 1];
      // ':' covers range-for declarations (`for (const T x : xs)`); the
      // element is local scratch but deliberately NOT range-derived —
      // net ids reached through a vertex's pin list are shared across
      // shards.
      const bool declares = n.is_punct("=") || n.is_punct(";") ||
                            n.is_punct("{") || n.is_punct(",") ||
                            n.is_punct(":");
      if (!declares) continue;
      locals.insert(t.text);
      if (!n.is_punct("=")) continue;
      // Initializer tokens up to ';' (or ',' in a for-init) at depth 0.
      int depth = 0;
      for (std::size_t j = i + 2; j < def.body_end; ++j) {
        const Token& u = T[j];
        if (u.is_punct("(") || u.is_punct("[") || u.is_punct("{")) ++depth;
        if (u.is_punct(")") || u.is_punct("]") || u.is_punct("}")) --depth;
        if (depth < 0) break;
        if (depth == 0 && (u.is_punct(";") || u.is_punct(","))) break;
        const bool from_range =
            (u.is_ident("begin") && j >= 1 &&
             (T[j - 1].is_punct(".") || T[j - 1].is_punct("->"))) ||
            (u.kind == TokenKind::kIdentifier && derived.count(u.text) != 0);
        if (from_range) {
          derived.insert(t.text);
          break;
        }
      }
    }
  }

  const Corpus& corpus_;
  const CallGraph& graph_;
  const RuleFilter& filter_;
  std::vector<Finding>& out_;
};

}  // namespace

void run_round_rules(const Corpus& corpus, const CallGraph& graph,
                     const RuleFilter& filter, std::vector<Finding>& out) {
  if (!filter.enabled(kFrozenRule) && !filter.enabled(kRngRule)) return;
  RoundPass(corpus, graph, filter, out).run();
}

}  // namespace vlsipart::analysis
