// Knob-completeness rule: mechanizes the repo's "no implicit decisions"
// contract (paper, Sec. 2.2).  Every field of the partitioning and
// service configuration structs must be
//   (a) reachable from command-line parsing — some source under tools/,
//       examples/ or bench/ that parses options (get_int / get_double /
//       get_bool / check_known / parse_options) also touches the field
//       as a member access; and
//   (b) mentioned by name in DESIGN.md or README.md.
// A field failing either leg is an implicit implementation decision: it
// changes results but cannot be swept or cited from the documentation.
//
// Matching is by field *name* (token-level member access `.name` /
// `->name`), not by type — a documented lockset-lite-style limitation:
// a same-named member of an unrelated struct can satisfy the check.
#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

namespace {

/// The structs under contract — the knobs of the FM engine, the
/// multilevel pipeline, the multistart harness and the service layer.
const char* const kTargetStructs[] = {
    "FmConfig",    "MlConfig",    "CoarsenConfig", "PruneConfig",
    "AuditConfig", "ServiceConfig", "NlevelConfig", "EvoConfig",
};

bool is_target_struct(const std::string& name) {
  for (const char* s : kTargetStructs) {
    if (name == s) return true;
  }
  return false;
}

bool is_cli_parse_ident(const std::string& s) {
  return s == "get_int" || s == "get_double" || s == "get_bool" ||
         s == "get_list" || s == "check_known" || s == "parse_options";
}

bool is_cli_dir(const std::string& path) {
  return path_under(path, "tools") || path_under(path, "examples") ||
         path_under(path, "bench");
}

struct ConfigField {
  std::string struct_name;
  std::string field;
  std::string path;
  int line = 0;
  int col = 0;
};

/// Statement classifier: tokens [begin, end) form one member
/// declaration at struct depth 1 (terminated by ';').  A field has no
/// '(' before the '=' (or before the ';' when there is no initializer)
/// and is named by the last identifier before '='/';' — skipping any
/// trailing array extent.
bool extract_field_name(const std::vector<Token>& T, std::size_t begin,
                        std::size_t end, std::size_t* name_idx) {
  if (begin >= end) return false;
  if (T[begin].kind == TokenKind::kIdentifier &&
      (T[begin].text == "using" || T[begin].text == "static" ||
       T[begin].text == "friend" || T[begin].text == "typedef" ||
       T[begin].text == "enum" || T[begin].text == "struct" ||
       T[begin].text == "class")) {
    return false;
  }
  std::size_t eq = end;
  for (std::size_t i = begin; i < end; ++i) {
    if (T[i].is_punct("=")) {
      eq = i;
      break;
    }
  }
  const std::size_t scan_end = eq;
  std::size_t last_ident = end;
  for (std::size_t i = begin; i < scan_end; ++i) {
    if (T[i].is_punct("(")) return false;  // a function declaration
    if (T[i].is_punct("[")) break;         // name precedes the extent
    if (T[i].kind == TokenKind::kIdentifier) last_ident = i;
  }
  if (last_ident >= end) return false;
  *name_idx = last_ident;
  return true;
}

/// Collect every field of every target struct defined in `unit`.
void collect_fields(const FileUnit& unit, std::vector<ConfigField>& out) {
  const std::vector<Token>& T = unit.lexed.tokens;
  for (std::size_t i = 0; i + 2 < T.size(); ++i) {
    if (!T[i].is_ident("struct")) continue;
    if (T[i + 1].kind != TokenKind::kIdentifier ||
        !is_target_struct(T[i + 1].text)) {
      continue;
    }
    if (!T[i + 2].is_punct("{")) continue;
    const std::string& struct_name = T[i + 1].text;
    int depth = 1;
    std::size_t stmt_begin = i + 3;
    for (std::size_t j = i + 3; j < T.size() && depth > 0; ++j) {
      if (T[j].is_punct("{")) {
        ++depth;
      } else if (T[j].is_punct("}")) {
        --depth;
        if (depth == 1) stmt_begin = j + 1;  // end of a member function
      } else if (T[j].is_punct(";") && depth == 1) {
        std::size_t name_idx = 0;
        if (extract_field_name(T, stmt_begin, j, &name_idx)) {
          out.push_back(ConfigField{struct_name, T[name_idx].text,
                                    unit.lexed.path, T[name_idx].line,
                                    T[name_idx].col});
        }
        stmt_begin = j + 1;
      }
    }
  }
}

/// Identifiers used as member accesses (`.x` / `->x`) in sources under
/// tools/, examples/ or bench/ that also parse CLI options.
std::set<std::string> collect_cli_members(const Corpus& corpus) {
  std::set<std::string> members;
  for (const FileUnit& unit : corpus.units) {
    if (!is_cli_dir(unit.lexed.path)) continue;
    const std::vector<Token>& T = unit.lexed.tokens;
    bool parses_cli = false;
    for (const Token& t : T) {
      if (t.kind == TokenKind::kIdentifier && is_cli_parse_ident(t.text)) {
        parses_cli = true;
        break;
      }
    }
    if (!parses_cli) continue;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if ((T[i].is_punct(".") || T[i].is_punct("->")) &&
          T[i + 1].kind == TokenKind::kIdentifier) {
        members.insert(T[i + 1].text);
      }
    }
  }
  return members;
}

bool word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Whole-word occurrence of `word` in `text`.
bool mentions_word(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !word_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !word_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

}  // namespace

void run_knob_rule(const Corpus& corpus, const RuleFilter& filter,
                   std::vector<Finding>& out) {
  if (!filter.enabled("knob-completeness")) return;

  std::vector<ConfigField> fields;
  for (const FileUnit& unit : corpus.units) {
    if (unit.linted) collect_fields(unit, fields);
  }
  if (fields.empty()) return;

  const std::set<std::string> cli_members = collect_cli_members(corpus);
  std::string docs;
  for (const SourceBuffer& doc : corpus.docs) {
    docs += doc.content;
    docs += '\n';
  }

  for (const ConfigField& f : fields) {
    const bool reachable = cli_members.count(f.field) != 0;
    const bool documented = mentions_word(docs, f.field);
    if (reachable && documented) continue;
    std::string missing;
    if (!reachable) {
      missing +=
          "not reachable from any CLI parse site under tools/, examples/ or "
          "bench/";
    }
    if (!documented) {
      if (!missing.empty()) missing += " and ";
      missing += "not mentioned in DESIGN.md or README.md";
    }
    out.push_back(Finding{
        f.path, f.line, f.col, "knob-completeness",
        "config field '" + f.struct_name + "::" + f.field + "' is " +
            missing +
            " — every knob must be sweepable and documented (no implicit "
            "decisions)"});
  }
}

}  // namespace vlsipart::analysis
