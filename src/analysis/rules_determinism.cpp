// Determinism rule family: token-level port of the 8 rules of the
// retired regex lint (tools/determinism_lint.py) plus three new
// token-aware rules.  Matching against the token stream (never against
// string literals, comments or preprocessor text) eliminates the false-
// positive class the regex lint had, and token patterns make the new
// rules (pointer-keyed ordered containers, operator< on pointers,
// float accumulation over unordered iteration) expressible at all.
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

namespace {

// Directories whose code is the deterministic partitioning core.
const char* const kCoreDirs[] = {"src/part", "src/hypergraph"};
// Directories whose values flow into reported results (core + metrics).
const char* const kResultDirs[] = {"src/part", "src/hypergraph", "src/eval"};

bool in_any_dir(const std::string& path, const char* const (&dirs)[2]) {
  return path_under(path, dirs[0]) || path_under(path, dirs[1]);
}

bool in_any_dir(const std::string& path, const char* const (&dirs)[3]) {
  return path_under(path, dirs[0]) || path_under(path, dirs[1]) ||
         path_under(path, dirs[2]);
}

bool is_unordered_container(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

bool is_std_engine(const std::string& s) {
  return s == "mt19937" || s == "mt19937_64" || s == "minstd_rand" ||
         s == "minstd_rand0" || s == "default_random_engine" ||
         s == "ranlux24" || s == "ranlux48" || s == "ranlux24_base" ||
         s == "ranlux48_base" || s == "knuth_b";
}

bool is_sort_algorithm(const std::string& s) {
  return s == "sort" || s == "stable_sort" || s == "partial_sort" ||
         s == "nth_element";
}

bool contains_seed_word(const std::string& s) {
  return s.find("seed") != std::string::npos ||
         s.find("Seed") != std::string::npos || s == "Rng";
}

/// Index of the punct matching T[open] (one of () [] {} <>), or
/// T.size() when unbalanced.  For <> any ; or { aborts the match (a
/// comparison, not a template argument list).
std::size_t match_close(const std::vector<Token>& T, std::size_t open,
                        const char* open_p, const char* close_p) {
  const bool angles = open_p[0] == '<';
  int depth = 0;
  for (std::size_t i = open; i < T.size(); ++i) {
    if (T[i].is_punct(open_p)) {
      ++depth;
    } else if (T[i].is_punct(close_p)) {
      if (--depth == 0) return i;
    } else if (angles &&
               (T[i].is_punct(";") || T[i].is_punct("{"))) {
      return T.size();
    }
  }
  return T.size();
}

bool range_contains_star(const std::vector<Token>& T, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end && i < T.size(); ++i) {
    if (T[i].is_punct("*")) return true;
  }
  return false;
}

class DeterminismPass {
 public:
  DeterminismPass(const FileUnit& unit, const RuleFilter& filter,
                  std::vector<Finding>& out)
      : T(unit.lexed.tokens),
        path_(unit.lexed.path),
        filter_(filter),
        out_(out) {}

  void run() {
    collect_declarations();
    for (std::size_t i = 0; i < T.size(); ++i) {
      check_rand(i);
      check_random_device(i);
      check_std_engine(i);
      check_wall_clock_and_time_seed(i);
      check_unordered_in_core(i);
      check_range_for(i);
      check_pointer_sort_key(i);
      check_pointer_keyed_container(i);
      check_pointer_compare(i);
    }
  }

 private:
  void report(const Token& at, const char* rule, std::string message) {
    if (!filter_.enabled(rule)) return;
    out_.push_back(Finding{path_, at.line, at.col, rule, std::move(message)});
  }

  bool prev_is_member_access(std::size_t i) const {
    return i > 0 && (T[i - 1].is_punct(".") || T[i - 1].is_punct("->"));
  }

  /// Variables declared as unordered containers and as float/double —
  /// the cross-statement facts the range-for rules need.
  void collect_declarations() {
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (T[i].kind != TokenKind::kIdentifier) continue;
      if (is_unordered_container(T[i].text) && T[i + 1].is_punct("<")) {
        std::size_t close = match_close(T, i + 1, "<", ">");
        std::size_t j = close + 1;
        while (j < T.size() && (T[j].is_punct("&") || T[j].is_punct("*") ||
                                T[j].is_punct("&&") ||
                                T[j].is_ident("const"))) {
          ++j;
        }
        if (j < T.size() && T[j].kind == TokenKind::kIdentifier) {
          unordered_vars_.insert(T[j].text);
        }
      }
      if ((T[i].is_ident("double") || T[i].is_ident("float")) &&
          !prev_is_member_access(i)) {
        std::size_t j = i + 1;
        while (j < T.size() && (T[j].is_punct("&") || T[j].is_punct("*"))) {
          ++j;
        }
        if (j < T.size() && T[j].kind == TokenKind::kIdentifier &&
            !(j + 1 < T.size() && T[j + 1].is_punct("("))) {
          float_vars_.insert(T[j].text);
        }
      }
    }
  }

  void check_rand(std::size_t i) {
    if (T[i].kind != TokenKind::kIdentifier) return;
    if (T[i].text != "rand" && T[i].text != "srand") return;
    if (i + 1 >= T.size() || !T[i + 1].is_punct("(")) return;
    if (prev_is_member_access(i)) return;  // some_obj.rand() is not libc
    report(T[i], "rand",
           "C library rand()/srand() is global, unseeded, nondeterministic "
           "state");
  }

  void check_random_device(std::size_t i) {
    if (!T[i].is_ident("random_device")) return;
    report(T[i], "random-device",
           "std::random_device draws hardware entropy and is never "
           "reproducible");
  }

  void check_std_engine(std::size_t i) {
    if (T[i].kind != TokenKind::kIdentifier || !is_std_engine(T[i].text)) {
      return;
    }
    report(T[i], "std-engine",
           "use the explicitly seeded vlsipart::Rng instead of <random> "
           "engines");
  }

  /// One scan serves both clock rules: any clock read fires wall-clock;
  /// a clock read on a line that also mentions seeding fires time-seed.
  void check_wall_clock_and_time_seed(std::size_t i) {
    bool clock_read = false;
    if (T[i].is_ident("now") && i > 0 && T[i - 1].is_punct("::") &&
        i + 1 < T.size() && T[i + 1].is_punct("(")) {
      clock_read = true;
    }
    if ((T[i].is_ident("clock_gettime") || T[i].is_ident("gettimeofday")) &&
        i + 1 < T.size() && T[i + 1].is_punct("(")) {
      clock_read = true;
    }
    if (clock_read) {
      report(T[i], "wall-clock",
             "wall-clock read: annotate to affirm timing feeds only "
             "observability or admission policy (timers, deadlines, idle "
             "timeouts), never a partitioning result");
      if (line_mentions_seed(T[i].line)) {
        report(T[i], "time-seed",
               "seeding from the clock ties results to the wall clock");
      }
      return;
    }
    // time()/clock() calls are not wall-clock by themselves in the
    // legacy rule set, but seeding from them is a time-seed.
    if ((T[i].is_ident("time") || T[i].is_ident("clock")) &&
        i + 1 < T.size() && T[i + 1].is_punct("(") &&
        !prev_is_member_access(i) && line_mentions_seed(T[i].line)) {
      report(T[i], "time-seed",
             "seeding from the clock ties results to the wall clock");
    }
  }

  bool line_mentions_seed(int line) const {
    for (const Token& t : T) {
      if (t.line != line) continue;
      if (t.kind == TokenKind::kIdentifier && contains_seed_word(t.text)) {
        return true;
      }
    }
    return false;
  }

  void check_unordered_in_core(std::size_t i) {
    if (!in_any_dir(path_, kCoreDirs)) return;
    if (T[i].kind != TokenKind::kIdentifier ||
        !is_unordered_container(T[i].text)) {
      return;
    }
    report(T[i], "unordered-in-core",
           "hash containers are banned in the partitioning core (src/part, "
           "src/hypergraph): bucket layout is stdlib state");
  }

  /// Range-for over an unordered container: iteration-order rule, plus
  /// the float-accumulation rule inside the loop body.
  void check_range_for(std::size_t i) {
    if (!T[i].is_ident("for") || i + 1 >= T.size() ||
        !T[i + 1].is_punct("(")) {
      return;
    }
    const std::size_t close = match_close(T, i + 1, "(", ")");
    if (close >= T.size()) return;
    // The range expression begins after the last top-level ':'.
    std::size_t colon = T.size();
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (T[j].is_punct("(") || T[j].is_punct("[") || T[j].is_punct("{")) {
        ++depth;
      } else if (T[j].is_punct(")") || T[j].is_punct("]") ||
                 T[j].is_punct("}")) {
        --depth;
      } else if (depth == 0 && T[j].is_punct(":")) {
        colon = j;
      }
    }
    if (colon >= close) return;
    // Plain-variable range only (same scope as the regex lint had).
    if (colon + 2 != close || T[colon + 1].kind != TokenKind::kIdentifier) {
      return;
    }
    const std::string& var = T[colon + 1].text;
    if (unordered_vars_.count(var) == 0) return;
    report(T[colon + 1], "unordered-iter",
           "iterating unordered container '" + var +
               "': order is a property of the standard library, not the "
               "input");
    check_float_accumulation(close + 1);
  }

  /// Body of a range-for over an unordered container starts at `begin`:
  /// accumulating into a float/double there makes the result depend on
  /// hash-bucket order (float addition is not associative).
  void check_float_accumulation(std::size_t begin) {
    if (begin >= T.size()) return;
    std::size_t end;
    if (T[begin].is_punct("{")) {
      end = match_close(T, begin, "{", "}");
    } else {  // single-statement body
      end = begin;
      while (end < T.size() && !T[end].is_punct(";")) ++end;
    }
    for (std::size_t j = begin + 1; j < end && j < T.size(); ++j) {
      if (!(T[j].is_punct("+=") || T[j].is_punct("-="))) continue;
      if (j == 0 || T[j - 1].kind != TokenKind::kIdentifier) continue;
      if (float_vars_.count(T[j - 1].text) == 0) continue;
      report(T[j - 1], "float-accumulate-unordered",
             "accumulating into floating-point '" + T[j - 1].text +
                 "' while iterating an unordered container: float addition "
                 "is not associative, so the sum depends on hash-bucket "
                 "order");
    }
  }

  void check_pointer_sort_key(std::size_t i) {
    if (T[i].kind != TokenKind::kIdentifier ||
        !is_sort_algorithm(T[i].text)) {
      return;
    }
    if (i < 2 || !T[i - 1].is_punct("::") || !T[i - 2].is_ident("std")) {
      return;
    }
    if (i + 1 >= T.size() || !T[i + 1].is_punct("(")) return;
    const std::size_t close = match_close(T, i + 1, "(", ")");
    // A lambda comparator with a pointer parameter: [...] ( ...*... )
    for (std::size_t j = i + 2; j < close && j < T.size(); ++j) {
      if (!T[j].is_punct("[")) continue;
      const std::size_t cap_close = match_close(T, j, "[", "]");
      if (cap_close >= T.size() || cap_close + 1 >= T.size() ||
          !T[cap_close + 1].is_punct("(")) {
        continue;
      }
      const std::size_t par_close = match_close(T, cap_close + 1, "(", ")");
      if (range_contains_star(T, cap_close + 2, par_close)) {
        report(T[i], "pointer-sort-key",
               "sort comparator takes pointer parameters; pointer order is "
               "allocation order (ASLR-dependent) — compare by id or value "
               "instead");
        return;
      }
      j = cap_close;
    }
  }

  /// std::map/std::set keyed on a pointer type in the partitioning
  /// core: ordered iteration over pointer keys is allocation order.
  void check_pointer_keyed_container(std::size_t i) {
    if (!in_any_dir(path_, kCoreDirs)) return;
    if (T[i].kind != TokenKind::kIdentifier) return;
    const std::string& s = T[i].text;
    if (s != "map" && s != "set" && s != "multimap" && s != "multiset") {
      return;
    }
    if (i < 2 || !T[i - 1].is_punct("::") || !T[i - 2].is_ident("std")) {
      return;
    }
    if (i + 1 >= T.size() || !T[i + 1].is_punct("<")) return;
    // Scan the key type: up to the first ',' at angle depth 1, or the
    // closing '>' for std::set<Key>.
    int depth = 0;
    for (std::size_t j = i + 1; j < T.size(); ++j) {
      if (T[j].is_punct("<")) {
        ++depth;
      } else if (T[j].is_punct(">")) {
        if (--depth == 0) break;
      } else if (T[j].is_punct(";") || T[j].is_punct("{")) {
        break;  // not a template argument list after all
      } else if (depth == 1 && T[j].is_punct(",")) {
        break;
      } else if (depth >= 1 && T[j].is_punct("*")) {
        report(T[i], "pointer-keyed-container",
               "std::" + s +
                   " keyed on a pointer in the partitioning core: ordered "
                   "iteration over pointer keys is allocation order "
                   "(ASLR-dependent) — key by id instead");
        return;
      }
    }
  }

  /// operator< taking pointer parameters in result paths: such a
  /// comparison orders by address, which is ASLR-dependent.
  void check_pointer_compare(std::size_t i) {
    if (!in_any_dir(path_, kResultDirs)) return;
    if (!T[i].is_ident("operator")) return;
    if (i + 2 >= T.size() || !T[i + 1].is_punct("<")) return;
    if (T[i + 2].is_punct("<")) return;  // operator<<
    const std::size_t open = i + 2;
    if (!T[open].is_punct("(")) return;
    const std::size_t close = match_close(T, open, "(", ")");
    if (range_contains_star(T, open + 1, close)) {
      report(T[i], "pointer-compare",
             "operator< over pointer parameters in a result path orders by "
             "address (ASLR-dependent) — compare by id or value instead");
    }
  }

  const std::vector<Token>& T;
  const std::string& path_;
  const RuleFilter& filter_;
  std::vector<Finding>& out_;
  std::set<std::string> unordered_vars_;
  std::set<std::string> float_vars_;
};

}  // namespace

void run_determinism_rules(const FileUnit& unit, const RuleFilter& filter,
                           std::vector<Finding>& out) {
  DeterminismPass(unit, filter, out).run();
}

}  // namespace vlsipart::analysis
