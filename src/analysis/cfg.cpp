#include "src/analysis/cfg.h"

#include <algorithm>

namespace vlsipart::analysis {

namespace {

class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Token>& tokens, const FunctionDef& def)
      : T(tokens), def_(def) {}

  Cfg run() {
    cfg_.blocks.resize(2);  // entry, exit
    const int first = new_block();
    edge(cfg_.entry, first);
    const int fall =
        parse_stmts(def_.body_begin + 1, def_.body_end, first);
    if (fall != -1) edge(fall, cfg_.exit);
    compute_dominators();
    return std::move(cfg_);
  }

 private:
  bool is(std::size_t i, const char* p) const {
    return i < limit() && T[i].is_punct(p);
  }
  bool is_kw(std::size_t i, const char* s) const {
    return i < limit() && T[i].is_ident(s);
  }
  std::size_t limit() const { return std::min(def_.body_end, T.size()); }

  std::size_t match(std::size_t open, const char* o, const char* c) const {
    int depth = 0;
    for (std::size_t i = open; i < limit(); ++i) {
      if (T[i].is_punct(o)) ++depth;
      if (T[i].is_punct(c) && --depth == 0) return i;
    }
    return limit();
  }

  int new_block() {
    cfg_.blocks.emplace_back();
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }

  void edge(int a, int b) {
    std::vector<int>& s = cfg_.blocks[a].succs;
    if (std::find(s.begin(), s.end(), b) != s.end()) return;
    s.push_back(b);
    cfg_.blocks[b].preds.push_back(a);
  }

  /// Record tokens [begin, end) as one statement of block `blk`.
  /// Empty ranges are ignored (empty for-clauses, bare `;`).
  void add_stmt(std::size_t begin, std::size_t end, int blk) {
    if (begin >= end) return;
    CfgStmt s;
    s.begin = begin;
    s.end = end;
    s.line = T[begin].line;
    s.col = T[begin].col;
    cfg_.stmts.push_back(s);
    cfg_.blocks[blk].stmts.push_back(
        static_cast<int>(cfg_.stmts.size()) - 1);
    cfg_.block_of_stmt.push_back(blk);
  }

  /// End of the simple statement starting at `i`: past the ';' that
  /// terminates it at nesting depth 0 (lambda bodies and initializer
  /// braces nest), or at the closing position `end`.
  std::size_t simple_stmt_end(std::size_t i, std::size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (T[i].is_punct("(") || T[i].is_punct("[") || T[i].is_punct("{")) {
        ++depth;
      } else if (T[i].is_punct(")") || T[i].is_punct("]") ||
                 T[i].is_punct("}")) {
        if (depth == 0) return i;  // unbalanced close: statement ends
        --depth;
      } else if (depth == 0 && T[i].is_punct(";")) {
        return i + 1;
      }
    }
    return end;
  }

  /// Parse statements in [i, end) starting in block `cur`.  Returns the
  /// block control falls out of, or -1 when no path falls through.
  int parse_stmts(std::size_t i, std::size_t end, int cur) {
    while (i < end) {
      if (cur == -1) cur = new_block();  // unreachable code still gets blocks
      const auto [next, fall] = parse_one(i, end, cur);
      if (next <= i) break;  // no progress: malformed input, stop
      i = next;
      cur = fall;
    }
    return cur;
  }

  /// Parse exactly one statement at `i`.  Returns {index past it,
  /// fall-through block or -1}.
  std::pair<std::size_t, int> parse_one(std::size_t i, std::size_t end,
                                        int cur) {
    const Token& t = T[i];
    if (t.is_punct(";")) return {i + 1, cur};
    if (t.is_punct("{")) {
      const std::size_t close = match(i, "{", "}");
      const int fall = parse_stmts(i + 1, std::min(close, end), cur);
      return {close + 1, fall};
    }
    if (t.is_ident("if")) return parse_if(i, end, cur);
    if (t.is_ident("while")) return parse_while(i, end, cur);
    if (t.is_ident("do")) return parse_do(i, end, cur);
    if (t.is_ident("for")) return parse_for(i, end, cur);
    if (t.is_ident("switch")) return parse_switch(i, end, cur);
    if (t.is_ident("try")) return parse_try(i, end, cur);
    if (t.is_ident("return") || t.is_ident("co_return")) {
      const std::size_t stop = simple_stmt_end(i, end);
      add_stmt(i, stop, cur);
      edge(cur, cfg_.exit);
      return {stop, -1};
    }
    if (t.is_ident("break") && !break_targets_.empty()) {
      const std::size_t stop = simple_stmt_end(i, end);
      add_stmt(i, stop, cur);
      edge(cur, break_targets_.back());
      return {stop, -1};
    }
    if (t.is_ident("continue") && !continue_targets_.empty()) {
      const std::size_t stop = simple_stmt_end(i, end);
      add_stmt(i, stop, cur);
      edge(cur, continue_targets_.back());
      return {stop, -1};
    }
    if (t.is_ident("goto")) {  // not modeled: stop propagation here
      const std::size_t stop = simple_stmt_end(i, end);
      add_stmt(i, stop, cur);
      edge(cur, cfg_.exit);
      return {stop, -1};
    }
    if (t.is_ident("throw")) {
      const std::size_t stop = simple_stmt_end(i, end);
      add_stmt(i, stop, cur);
      edge(cur, cfg_.exit);
      return {stop, -1};
    }
    // Simple statement (declaration, expression, label).
    const std::size_t stop = simple_stmt_end(i, end);
    add_stmt(i, stop, cur);
    return {stop, cur};
  }

  std::pair<std::size_t, int> parse_if(std::size_t i, std::size_t end,
                                       int cur) {
    std::size_t j = i + 1;
    if (is_kw(j, "constexpr")) ++j;
    if (!is(j, "(")) return {simple_stmt_end(i, end), cur};
    const std::size_t close = match(j, "(", ")");
    add_stmt(i, close + 1, cur);  // condition (and any init-statement)
    const int then_block = new_block();
    edge(cur, then_block);
    auto [after_then, then_fall] = parse_one(close + 1, end, then_block);
    std::size_t next = after_then;
    int else_fall = cur;  // condition-false path falls straight through
    if (is_kw(after_then, "else")) {
      const int else_block = new_block();
      edge(cur, else_block);
      auto [after_else, ef] = parse_one(after_then + 1, end, else_block);
      next = after_else;
      else_fall = ef;
    }
    if (then_fall == -1 && else_fall == -1) return {next, -1};
    const int join = new_block();
    if (then_fall != -1) edge(then_fall, join);
    if (else_fall != -1) edge(else_fall, join);
    return {next, join};
  }

  std::pair<std::size_t, int> parse_while(std::size_t i, std::size_t end,
                                          int cur) {
    std::size_t j = i + 1;
    if (!is(j, "(")) return {simple_stmt_end(i, end), cur};
    const std::size_t close = match(j, "(", ")");
    const int head = new_block();
    edge(cur, head);
    add_stmt(i, close + 1, head);
    const int body = new_block();
    const int after = new_block();
    edge(head, body);
    edge(head, after);
    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    auto [next, body_fall] = parse_one(close + 1, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (body_fall != -1) edge(body_fall, head);
    return {next, after};
  }

  std::pair<std::size_t, int> parse_do(std::size_t i, std::size_t end,
                                       int cur) {
    const int body = new_block();
    edge(cur, body);
    const int cond = new_block();
    const int after = new_block();
    break_targets_.push_back(after);
    continue_targets_.push_back(cond);
    auto [after_body, body_fall] = parse_one(i + 1, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (body_fall != -1) edge(body_fall, cond);
    std::size_t next = after_body;
    if (is_kw(next, "while")) {
      const std::size_t open = next + 1;
      const std::size_t close = is(open, "(") ? match(open, "(", ")") : open;
      add_stmt(next, close + 1, cond);
      next = close + 1;
      if (is(next, ";")) ++next;
    }
    edge(cond, body);
    edge(cond, after);
    return {next, after};
  }

  std::pair<std::size_t, int> parse_for(std::size_t i, std::size_t end,
                                        int cur) {
    std::size_t j = i + 1;
    if (!is(j, "(")) return {simple_stmt_end(i, end), cur};
    const std::size_t close = match(j, "(", ")");
    // Top-level ';' positions split the classic for header; a header
    // with none is a range-for.
    std::vector<std::size_t> semis;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (T[k].is_punct("(") || T[k].is_punct("[") || T[k].is_punct("{")) {
        ++depth;
      } else if (T[k].is_punct(")") || T[k].is_punct("]") ||
                 T[k].is_punct("}")) {
        --depth;
      } else if (depth == 0 && T[k].is_punct(";")) {
        semis.push_back(k);
      }
    }
    if (semis.size() < 2) {  // range-for: one header statement
      const int head = new_block();
      edge(cur, head);
      add_stmt(i, close + 1, head);
      const int body = new_block();
      const int after = new_block();
      edge(head, body);
      edge(head, after);
      break_targets_.push_back(after);
      continue_targets_.push_back(head);
      auto [next, body_fall] = parse_one(close + 1, end, body);
      break_targets_.pop_back();
      continue_targets_.pop_back();
      if (body_fall != -1) edge(body_fall, head);
      return {next, after};
    }
    add_stmt(j + 1, semis[0], cur);  // init clause runs once
    const int head = new_block();
    edge(cur, head);
    add_stmt(semis[0] + 1, semis[1], head);  // condition (may be empty)
    const int body = new_block();
    const int after = new_block();
    const int incr = new_block();
    edge(head, body);
    edge(head, after);
    add_stmt(semis[1] + 1, close, incr);
    break_targets_.push_back(after);
    continue_targets_.push_back(incr);
    auto [next, body_fall] = parse_one(close + 1, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (body_fall != -1) edge(body_fall, incr);
    edge(incr, head);
    return {next, after};
  }

  std::pair<std::size_t, int> parse_switch(std::size_t i, std::size_t end,
                                           int cur) {
    std::size_t j = i + 1;
    if (!is(j, "(")) return {simple_stmt_end(i, end), cur};
    const std::size_t close = match(j, "(", ")");
    add_stmt(i, close + 1, cur);  // selector expression
    if (!is(close + 1, "{")) return {simple_stmt_end(close + 1, end), cur};
    const std::size_t body_close = match(close + 1, "{", "}");
    const int after = new_block();
    break_targets_.push_back(after);
    bool has_default = false;
    int seg = -1;  // current case segment's running block
    std::size_t k = close + 2;
    while (k < body_close) {
      const bool is_case = is_kw(k, "case");
      const bool is_default = is_kw(k, "default") && is(k + 1, ":");
      if (is_case || is_default) {
        std::size_t colon = k + 1;
        while (colon < body_close && !T[colon].is_punct(":")) ++colon;
        const int nb = new_block();
        edge(cur, nb);                    // dispatch from the selector
        if (seg != -1) edge(seg, nb);     // fall-through from above
        add_stmt(k, colon + 1, nb);       // the label (case expression)
        if (is_default) has_default = true;
        seg = nb;
        k = colon + 1;
        continue;
      }
      if (seg == -1) seg = new_block();  // code before any label: dead
      const auto [next, fall] = parse_one(k, body_close, seg);
      if (next <= k) break;
      k = next;
      seg = fall;
      if (seg == -1 && k < body_close && !is_kw(k, "case") &&
          !(is_kw(k, "default") && is(k + 1, ":"))) {
        seg = new_block();  // unreachable tail of a broken segment
      }
    }
    if (seg != -1) edge(seg, after);
    if (!has_default) edge(cur, after);
    break_targets_.pop_back();
    return {body_close + 1, after};
  }

  std::pair<std::size_t, int> parse_try(std::size_t i, std::size_t end,
                                        int cur) {
    auto [next, try_fall] = parse_one(i + 1, end, cur);
    const int join = new_block();
    if (try_fall != -1) edge(try_fall, join);
    while (is_kw(next, "catch")) {
      std::size_t open = next + 1;
      const std::size_t close =
          is(open, "(") ? match(open, "(", ")") : open;
      const int handler = new_block();
      edge(cur, handler);  // approximation: the throw can skip the body
      add_stmt(next, close + 1, handler);
      auto [after_handler, h_fall] = parse_one(close + 1, end, handler);
      if (h_fall != -1) edge(h_fall, join);
      next = after_handler;
    }
    return {next, join};
  }

  void compute_dominators() {
    const int n = static_cast<int>(cfg_.blocks.size());
    // Reverse postorder from entry.
    std::vector<int> order;
    std::vector<int> state(n, 0);
    std::vector<std::pair<int, std::size_t>> stack{{cfg_.entry, 0}};
    state[cfg_.entry] = 1;
    while (!stack.empty()) {
      auto& [b, next_succ] = stack.back();
      if (next_succ < cfg_.blocks[b].succs.size()) {
        const int s = cfg_.blocks[b].succs[next_succ++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.push_back({s, 0});
        }
      } else {
        order.push_back(b);
        stack.pop_back();
      }
    }
    std::reverse(order.begin(), order.end());
    std::vector<int> rpo_index(n, -1);
    for (std::size_t k = 0; k < order.size(); ++k) rpo_index[order[k]] = k;

    cfg_.idom.assign(n, -1);
    cfg_.idom[cfg_.entry] = cfg_.entry;
    auto intersect = [&](int a, int b) {
      while (a != b) {
        while (rpo_index[a] > rpo_index[b]) a = cfg_.idom[a];
        while (rpo_index[b] > rpo_index[a]) b = cfg_.idom[b];
      }
      return a;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (const int b : order) {
        if (b == cfg_.entry) continue;
        int new_idom = -1;
        for (const int p : cfg_.blocks[b].preds) {
          if (cfg_.idom[p] == -1) continue;  // pred not yet processed
          new_idom = new_idom == -1 ? p : intersect(p, new_idom);
        }
        if (new_idom != -1 && cfg_.idom[b] != new_idom) {
          cfg_.idom[b] = new_idom;
          changed = true;
        }
      }
    }
  }

  const std::vector<Token>& T;
  const FunctionDef& def_;
  Cfg cfg_;
  std::vector<int> break_targets_;
  std::vector<int> continue_targets_;
};

}  // namespace

bool Cfg::dominates(int a, int b) const {
  if (b < 0 || a < 0 || b >= static_cast<int>(blocks.size())) return false;
  if (idom[b] == -1) return false;  // unreachable
  int walk = b;
  while (true) {
    if (walk == a) return true;
    if (walk == entry) return a == entry;
    walk = idom[walk];
    if (walk == -1) return false;
  }
}

bool Cfg::stmt_dominates(int a, int b) const {
  if (a < 0 || b < 0) return false;
  const int ba = block_of_stmt[a];
  const int bb = block_of_stmt[b];
  if (ba == bb) return a <= b;
  return ba != bb && dominates(ba, bb);
}

Cfg build_cfg(const std::vector<Token>& tokens, const ParsedFile& parsed,
              int fn) {
  return CfgBuilder(tokens, parsed.functions[fn]).run();
}

}  // namespace vlsipart::analysis
