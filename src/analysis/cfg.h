// Statement-level control-flow graph over one function's token range.
//
// Built on the parser's FunctionDef (src/analysis/parser.h): statements
// are token ranges, basic blocks are maximal straight-line statement
// sequences, and edges follow the structured control flow the heuristic
// recognizer can see — if/else, while, do-while, for (classic and
// range), switch/case with fall-through, break, continue, and early
// return.  Nested lambda bodies are opaque: their tokens belong to the
// statement that contains the lambda expression, and each lambda gets
// its own CFG when a rule asks for one.
//
// The graph always has a synthetic entry block (index 0, no
// statements) and a synthetic exit block (index 1); `return` edges go
// to the exit, and falling off the end of the body does too.  `goto`
// is not modeled (the repo has none); a `goto` statement conservatively
// edges to exit so no fact is propagated past it.
//
// Dominators (`idom`, `dominates()`) are computed eagerly with the
// standard iterative algorithm over a reverse-postorder; rules use them
// for "is this narrowing dominated by a VP_CHECK guard" queries.
#pragma once

#include <cstddef>
#include <vector>

#include "src/analysis/parser.h"
#include "src/analysis/token.h"

namespace vlsipart::analysis {

struct CfgStmt {
  std::size_t begin = 0;  ///< first token index (inclusive)
  std::size_t end = 0;    ///< one past the last token index
  int line = 0;           ///< line of the first token
  int col = 0;
};

struct CfgBlock {
  std::vector<int> stmts;  ///< statement indices, execution order
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<CfgStmt> stmts;
  std::vector<CfgBlock> blocks;
  int entry = 0;  ///< synthetic, empty
  int exit = 1;   ///< synthetic, empty
  std::vector<int> block_of_stmt;  ///< parallel to stmts
  /// Immediate dominator per block; entry's is itself, unreachable
  /// blocks carry -1.
  std::vector<int> idom;

  /// True when every path from entry to `b` passes through `a`
  /// (reflexive: dominates(b, b) is true for reachable b).
  bool dominates(int a, int b) const;
  /// Statement-level dominance: `a` dominates `b` when a's block
  /// strictly dominates b's, or both share a block and a comes first.
  bool stmt_dominates(int a, int b) const;
};

/// Build the CFG of `fn` (an index into `parsed.functions`) over the
/// file's token stream.  Directly nested lambdas' body ranges are
/// skipped, not traversed.
Cfg build_cfg(const std::vector<Token>& tokens, const ParsedFile& parsed,
              int fn);

}  // namespace vlsipart::analysis
