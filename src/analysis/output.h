// Output renderers for vpart_lint: human-readable, JSON, SARIF 2.1.0.
#pragma once

#include <string>

#include "src/analysis/analyzer.h"

namespace vlsipart::analysis {

/// One finding per line ("path:line:col: [rule] message") followed by a
/// summary line.
std::string render_human(const AnalysisResult& result);

/// Machine-readable summary: {"findings": [...], "files_scanned": N,
/// "suppressed": N, "baselined": N}.
std::string render_json(const AnalysisResult& result);

/// Minimal SARIF 2.1.0 log: one run, the rule catalog as
/// reportingDescriptors, one result per finding.
std::string render_sarif(const AnalysisResult& result);

}  // namespace vlsipart::analysis
