// Finding model and rule catalog for vpart_lint.
#pragma once

#include <string>
#include <vector>

namespace vlsipart::analysis {

struct Finding {
  std::string path;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  std::string to_string() const;
};

/// One rule in the catalog (drives --list-rules and the SARIF rule
/// table).  `family` is "determinism", "knob", "lock", "hotpath" or
/// "round".
struct RuleInfo {
  const char* id;
  const char* family;
  const char* description;
};

/// Every rule the analyzer knows, in stable catalog order.
const std::vector<RuleInfo>& rule_catalog();

/// nullptr when `id` names no known rule.
const RuleInfo* find_rule(const std::string& id);

/// True when `name` is the family of at least one catalog rule
/// (--rules accepts family names as well as rule ids).
bool is_rule_family(const std::string& name);

}  // namespace vlsipart::analysis
