// Hot-path purity rule: every function reachable from a
// `// hot-path: root` annotation must not allocate, lock, throw or do
// IO.  The FM inner loop's speed contract (DESIGN.md §8) is exactly
// "no per-move heap traffic"; this rule makes the contract checkable.
//
// Mechanics:
//   * `// hot-path: root` on (or directly above) a function definition
//     line seeds a reachability walk over the call graph.  Lambdas
//     defined inside a reached function are walked too — the FM loop
//     runs its comparators and shard bodies inline.
//   * Calls that resolve to repo functions are followed, not flagged;
//     unresolved calls are treated as opaque primitives and checked
//     against the banned-name list (growing container ops, allocating
//     algorithms, malloc family, IO, lock methods).
//   * Banned tokens inside a reached body (`new`, `throw`, mutex/lock
//     types, stream objects) are flagged with the root-to-offender
//     call chain in the message.
//   * `// hot-path: allow(<reason>)` on the line (or the line above)
//     suppresses a site AND prunes call edges from that line — the
//     reason documents an amortized or cold branch (e.g. geometric
//     vector growth, audit-mode-only calls).  An empty reason does not
//     suppress.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

namespace {

constexpr char kRule[] = "hot-path-purity";

/// Unresolved call names that allocate, lock or perform IO.
const std::set<std::string>& banned_calls() {
  static const std::set<std::string> kSet = {
      // container growth
      "push_back", "emplace_back", "emplace", "resize", "reserve", "assign",
      "insert", "append", "push_front", "emplace_front", "shrink_to_fit",
      // allocating algorithms / factories
      "stable_sort", "inplace_merge", "stable_partition", "make_unique",
      "make_shared", "to_string",
      // C allocation
      "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
      // IO
      "printf", "fprintf", "fopen", "fwrite", "fread", "puts", "fputs",
      "getline"};
  return kSet;
}

/// Mutex member functions, banned only as `obj.lock()` style calls so
/// that plain functions named `lock` in unrelated code do not trip.
const std::set<std::string>& banned_member_calls() {
  static const std::set<std::string> kSet = {"lock", "unlock", "try_lock"};
  return kSet;
}

/// Identifier tokens banned anywhere in a hot body.
const std::set<std::string>& banned_idents() {
  static const std::set<std::string> kSet = {
      "new",        "delete",      "throw",        "mutex",  "lock_guard",
      "unique_lock", "scoped_lock", "condition_variable",
      "cout",       "cerr",        "clog",         "ofstream",
      "ifstream",   "fstream",     "stringstream", "ostringstream",
      "istringstream"};
  return kSet;
}

/// Per-line `hot-path:` annotations of one unit.
struct HotAnnotations {
  std::set<int> root_lines;                 ///< lines carrying `root`
  std::map<int, std::string> allow_reason;  ///< covered line -> reason
};

HotAnnotations collect_annotations(const LexedFile& file) {
  HotAnnotations a;
  for (const Comment& c : file.comments) {
    const std::size_t tag = c.text.find("hot-path:");
    if (tag == std::string::npos) continue;
    std::size_t pos = c.text.find_first_not_of(" \t", tag + 9);
    if (pos == std::string::npos) continue;
    if (c.text.compare(pos, 4, "root") == 0) {
      a.root_lines.insert(c.line);
      continue;
    }
    if (c.text.compare(pos, 5, "allow") == 0) {
      const std::size_t open = c.text.find('(', pos + 5);
      if (open == std::string::npos) continue;
      const std::size_t close = c.text.find(')', open);
      if (close == std::string::npos) continue;
      std::string reason = c.text.substr(open + 1, close - open - 1);
      const std::size_t b = reason.find_first_not_of(" \t");
      if (b == std::string::npos) continue;  // empty reason: no suppression
      const std::size_t e = reason.find_last_not_of(" \t");
      reason = reason.substr(b, e - b + 1);
      a.allow_reason[c.line] = reason;
      a.allow_reason[c.line + 1] = reason;
    }
  }
  return a;
}

class HotPathPass {
 public:
  HotPathPass(const Corpus& corpus, const CallGraph& graph,
              const RuleFilter& filter, std::vector<Finding>& out,
              std::size_t& suppressed)
      : corpus_(corpus),
        graph_(graph),
        filter_(filter),
        out_(out),
        suppressed_(suppressed) {}

  void run() {
    annotations_.reserve(corpus_.units.size());
    for (const FileUnit& unit : corpus_.units) {
      annotations_.push_back(collect_annotations(unit.lexed));
    }
    seed_roots();
    while (!queue_.empty()) {
      const int f = queue_.back();
      queue_.pop_back();
      visit(f);
    }
  }

 private:
  void seed_roots() {
    for (std::size_t f = 0; f < graph_.functions.size(); ++f) {
      const FunctionDef& def = graph_.functions[f];
      if (def.is_lambda) continue;
      const HotAnnotations& a = annotations_[graph_.unit_of[f]];
      // Annotation on the definition line or the line directly above.
      if (a.root_lines.count(def.line) == 0 &&
          a.root_lines.count(def.line - 1) == 0) {
        continue;
      }
      enqueue(static_cast<int>(f), /*pred=*/-1);
    }
  }

  void enqueue(int f, int pred) {
    if (visited_.count(f) != 0) return;
    visited_.insert(f);
    pred_[f] = pred;
    queue_.push_back(f);
  }

  /// Root-to-`f` chain of qualified names, " -> " joined.
  std::string chain(int f) const {
    std::vector<const std::string*> names;
    for (int cur = f; cur >= 0; cur = pred_.at(cur)) {
      names.push_back(&graph_.functions[cur].qualified_name);
    }
    std::string s;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
      if (!s.empty()) s += " -> ";
      s += **it;
    }
    return s;
  }

  void report(int f, int line, int col, const std::string& what) {
    if (!filter_.enabled(kRule)) return;
    const int unit = graph_.unit_of[f];
    if (!corpus_.units[unit].linted) return;
    if (!reported_.insert({unit, line}).second) return;  // one per line
    out_.push_back(Finding{
        corpus_.units[unit].lexed.path, line, col, kRule,
        "hot path reaches '" + what + "' via " + chain(f) +
            " — code reachable from a // hot-path: root must not "
            "allocate, lock, throw or do IO; restructure or justify "
            "with // hot-path: allow(<reason>)"});
  }

  /// True (and counted) when an allow annotation covers `line`.
  bool allowed(int unit, int line) {
    const auto& reasons = annotations_[unit].allow_reason;
    if (reasons.count(line) == 0) return false;
    ++suppressed_;
    return true;
  }

  void visit(int f) {
    const FunctionDef& def = graph_.functions[f];
    const int unit = graph_.unit_of[f];
    const std::vector<Token>& T = corpus_.units[unit].lexed.tokens;

    // Lambdas defined in a hot body execute in it.
    for (int child : graph_.children[f]) enqueue(child, f);

    // Call sites: follow resolved edges, check opaque names.
    std::set<std::size_t> call_tokens;
    for (const CallSite& site : graph_.calls[f]) {
      call_tokens.insert(site.token);
      if (allowed(unit, site.line)) continue;
      if (!site.callees.empty()) {
        for (int callee : site.callees) enqueue(callee, f);
        continue;
      }
      if (banned_calls().count(site.name) != 0 ||
          (site.member && banned_member_calls().count(site.name) != 0)) {
        report(f, site.line, site.col, site.name);
      }
    }

    // Banned identifier tokens in the function's direct body (child
    // lambda bodies are visited as their own functions).
    std::vector<std::pair<std::size_t, std::size_t>> holes;
    for (int child : graph_.children[f]) {
      holes.push_back({graph_.functions[child].body_begin,
                       graph_.functions[child].body_end});
    }
    for (std::size_t i = def.body_begin; i <= def.body_end && i < T.size();
         ++i) {
      bool in_hole = false;
      for (const auto& [b, e] : holes) in_hole |= (i >= b && i <= e);
      if (in_hole) continue;
      const Token& t = T[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (banned_idents().count(t.text) == 0) continue;
      if (call_tokens.count(i) != 0) continue;  // handled as call site
      if (allowed(unit, t.line)) continue;
      report(f, t.line, t.col, t.text);
    }
  }

  const Corpus& corpus_;
  const CallGraph& graph_;
  const RuleFilter& filter_;
  std::vector<Finding>& out_;
  std::size_t& suppressed_;
  std::vector<HotAnnotations> annotations_;
  std::set<int> visited_;
  std::map<int, int> pred_;
  std::vector<int> queue_;
  std::set<std::pair<int, int>> reported_;  // (unit, line)
};

}  // namespace

void run_hotpath_rule(const Corpus& corpus, const CallGraph& graph,
                      const RuleFilter& filter, std::vector<Finding>& out,
                      std::size_t& suppressed) {
  if (!filter.enabled("hot-path-purity")) return;
  HotPathPass(corpus, graph, filter, out, suppressed).run();
}

}  // namespace vlsipart::analysis
