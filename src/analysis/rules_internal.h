// Internal interface between the analyzer driver and the rule passes.
// Not installed; include only from src/analysis/ sources and tests that
// exercise individual passes.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/finding.h"
#include "src/analysis/token.h"

namespace vlsipart::analysis {

struct FileUnit {
  LexedFile lexed;
  bool linted = true;  ///< false = context only (cross-file facts)
};

/// Everything one analysis run can see: lexed C++ units (linted and
/// context) plus raw documentation text for the knob rule.
struct Corpus {
  std::vector<FileUnit> units;
  std::vector<SourceBuffer> docs;
};

struct RuleFilter {
  std::set<std::string> only;  ///< empty = all rules enabled
  bool enabled(const char* id) const {
    return only.empty() || only.count(id) != 0;
  }
};

/// True when `path` is `prefix` itself or lies underneath it.
bool path_under(const std::string& path, const std::string& prefix);

/// Per-file token rules: the determinism family.
void run_determinism_rules(const FileUnit& unit, const RuleFilter& filter,
                           std::vector<Finding>& out);

/// Cross-file knob-completeness pass over the whole corpus.
void run_knob_rule(const Corpus& corpus, const RuleFilter& filter,
                   std::vector<Finding>& out);

/// Lockset-lite lock-discipline pass over the whole corpus.
void run_lock_rule(const Corpus& corpus, const RuleFilter& filter,
                   std::vector<Finding>& out);

}  // namespace vlsipart::analysis
