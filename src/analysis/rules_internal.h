// Internal interface between the analyzer driver and the rule passes.
// Not installed; include only from src/analysis/ sources and tests that
// exercise individual passes.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/finding.h"
#include "src/analysis/token.h"

namespace vlsipart::analysis {

struct FileUnit {
  LexedFile lexed;
  bool linted = true;  ///< false = context only (cross-file facts)
};

/// Everything one analysis run can see: lexed C++ units (linted and
/// context) plus raw documentation text for the knob rule.
struct Corpus {
  std::vector<FileUnit> units;
  std::vector<SourceBuffer> docs;
};

struct RuleFilter {
  std::set<std::string> only;  ///< empty = all rules enabled
  /// A rule is enabled when the filter is empty, names the rule id, or
  /// names the rule's family ("determinism", "hotpath", "lock", ...).
  bool enabled(const char* id) const {
    if (only.empty() || only.count(id) != 0) return true;
    const RuleInfo* info = find_rule(id);
    return info != nullptr && only.count(info->family) != 0;
  }
};

/// True when `path` is `prefix` itself or lies underneath it.
bool path_under(const std::string& path, const std::string& prefix);

/// Per-file token rules: the determinism family.
void run_determinism_rules(const FileUnit& unit, const RuleFilter& filter,
                           std::vector<Finding>& out);

/// CFG + reaching-definitions rule families (index-width,
/// flow-determinism, dead-store) over one linted unit.
void run_dataflow_rules(const FileUnit& unit, const RuleFilter& filter,
                        std::vector<Finding>& out);

/// Cross-file knob-completeness pass over the whole corpus.
void run_knob_rule(const Corpus& corpus, const RuleFilter& filter,
                   std::vector<Finding>& out);

struct CallGraph;  // callgraph.h

/// Lockset-lite lock-discipline pass over the whole corpus.  `holds()`
/// facts propagate through the call graph: a helper whose in-scope call
/// sites all hold a mutex is checked as if it held it too.
void run_lock_rule(const Corpus& corpus, const CallGraph& graph,
                   const RuleFilter& filter, std::vector<Finding>& out);

/// Hot-path purity: no allocation/locking/IO/throw token reachable from
/// a `// hot-path: root` function.  `// hot-path: allow(<reason>)`
/// suppressions are counted in `suppressed`.
void run_hotpath_rule(const Corpus& corpus, const CallGraph& graph,
                      const RuleFilter& filter, std::vector<Finding>& out,
                      std::size_t& suppressed);

/// Parallel-round protocol checks on worker-shard lambdas in
/// parallel_* translation units.
void run_round_rules(const Corpus& corpus, const CallGraph& graph,
                     const RuleFilter& filter, std::vector<Finding>& out);

}  // namespace vlsipart::analysis
