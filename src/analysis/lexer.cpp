#include "src/analysis/lexer.h"

#include <cctype>

namespace vlsipart::analysis {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Encoding prefixes that may precede a raw string literal.
bool raw_string_prefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

/// Multi-character punctuators, longest first.  "<<" and ">>" are
/// deliberately absent: lexing angle brackets one at a time keeps
/// template-argument matching in the rules simple, and no rule needs
/// shift operators as a unit.
const char* const kPuncts3[] = {"...", "->*", "<=>"};
const char* const kPuncts2[] = {"::", "->", "++", "--", "+=", "-=", "*=",
                                "/=", "%=", "&=", "|=", "^=", "==", "!=",
                                "<=", ">=", "&&", "||", "##"};

class Lexer {
 public:
  Lexer(const std::string& path, const std::string& src) : src_(src) {
    out_.path = path;
  }

  LexedFile run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        advance_line();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        ++col_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        lex_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (ident_start(c)) {
        lex_identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void advance_line() {
    ++i_;
    ++line_;
    col_ = 1;
    at_line_start_ = true;
  }

  void emit(TokenKind kind, std::string text, int line, int col) {
    out_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  void lex_line_comment() {
    const int line = line_;
    const std::size_t start = i_ + 2;
    while (i_ < src_.size() && src_[i_] != '\n') {
      ++i_;
      ++col_;
    }
    out_.comments.push_back(Comment{src_.substr(start, i_ - start), line});
  }

  void lex_block_comment() {
    const int line = line_;
    i_ += 2;
    col_ += 2;
    const std::size_t start = i_;
    std::size_t end = src_.size();
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        end = i_;
        i_ += 2;
        col_ += 2;
        break;
      }
      if (src_[i_] == '\n') {
        advance_line();
        at_line_start_ = false;
      } else {
        ++i_;
        ++col_;
      }
    }
    out_.comments.push_back(Comment{src_.substr(start, end - start), line});
  }

  /// One logical preprocessor line: backslash-newline continuations are
  /// consumed; a trailing // comment is left for the comment lexer so
  /// annotations on #-lines still work.  String, char and raw-string
  /// literals on the line are skipped whole, so `#define URL "http://x"`
  /// keeps its full replacement text and a raw string containing `*/`
  /// does not open a phantom comment.
  void lex_preprocessor() {
    const int line = line_;
    const int col = col_;
    const std::size_t start = i_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '/' && (peek(1) == '/' || peek(1) == '*')) break;
      if (c == '\\' && peek(1) == '\n') {
        i_ += 1;  // consume the backslash; advance_line eats the newline
        advance_line();
        at_line_start_ = false;
        continue;
      }
      if (c == '\n') break;
      if (c == '"' && raw_prefix_ends_at(i_)) {
        skip_raw_string_body();
        continue;
      }
      if (c == '"' || c == '\'') {
        skip_quoted_in_line(c);
        continue;
      }
      ++i_;
      ++col_;
    }
    emit(TokenKind::kPreprocessor, src_.substr(start, i_ - start), line, col);
  }

  /// Does a raw-string encoding prefix (R, u8R, ...) end right before
  /// position `pos` (which holds a '"')?
  bool raw_prefix_ends_at(std::size_t pos) const {
    std::size_t b = pos;
    while (b > 0 && ident_char(src_[b - 1])) --b;
    if (b == pos) return false;
    return raw_string_prefix(src_.substr(b, pos - b));
  }

  /// Advance past a quoted literal without emitting (used inside
  /// preprocessor lines).  i_ points at the opening quote.
  void skip_quoted_in_line(char quote) {
    ++i_;
    ++col_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size()) {
        if (peek(1) == '\n') {
          ++i_;
          advance_line();
          at_line_start_ = false;
        } else {
          i_ += 2;
          col_ += 2;
        }
        continue;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      ++i_;
      ++col_;
      if (c == quote) break;
    }
  }

  /// Advance past R"delim( ... )delim" without emitting.  i_ points at
  /// the opening '"'.
  void skip_raw_string_body() {
    ++i_;
    ++col_;
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(' && src_[i_] != '\n' &&
           delim.size() < 16) {
      delim.push_back(src_[i_]);
      ++i_;
      ++col_;
    }
    const std::string close = ")" + delim + "\"";
    while (i_ < src_.size()) {
      if (src_[i_] == ')' && src_.compare(i_, close.size(), close) == 0) {
        i_ += close.size();
        col_ += static_cast<int>(close.size());
        return;
      }
      if (src_[i_] == '\n') {
        advance_line();
        at_line_start_ = false;
      } else {
        ++i_;
        ++col_;
      }
    }
  }

  void lex_quoted(char quote, TokenKind kind) {
    const int line = line_;
    const int col = col_;
    const std::size_t start = i_;
    ++i_;
    ++col_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size()) {
        if (peek(1) == '\n') {
          ++i_;
          advance_line();
          at_line_start_ = false;
        } else {
          i_ += 2;
          col_ += 2;
        }
        continue;
      }
      if (c == '\n') {  // unterminated literal: stop at end of line
        break;
      }
      ++i_;
      ++col_;
      if (c == quote) break;
    }
    emit(kind, src_.substr(start, i_ - start), line, col);
  }

  void lex_string() { lex_quoted('"', TokenKind::kString); }
  void lex_char() { lex_quoted('\'', TokenKind::kCharLiteral); }

  /// i_ points at the opening '"' of R"delim( ... )delim".
  void lex_raw_string(int line, int col, std::size_t prefix_start) {
    ++i_;
    ++col_;
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(' && src_[i_] != '\n' &&
           delim.size() < 16) {
      delim.push_back(src_[i_]);
      ++i_;
      ++col_;
    }
    const std::string close = ")" + delim + "\"";
    while (i_ < src_.size()) {
      if (src_[i_] == ')' && src_.compare(i_, close.size(), close) == 0) {
        i_ += close.size();
        col_ += static_cast<int>(close.size());
        break;
      }
      if (src_[i_] == '\n') {
        advance_line();
        at_line_start_ = false;
      } else {
        ++i_;
        ++col_;
      }
    }
    emit(TokenKind::kString, src_.substr(prefix_start, i_ - prefix_start),
         line, col);
  }

  void lex_identifier() {
    const int line = line_;
    const int col = col_;
    const std::size_t start = i_;
    while (i_ < src_.size() && ident_char(src_[i_])) {
      ++i_;
      ++col_;
    }
    std::string text = src_.substr(start, i_ - start);
    const bool encoding_prefix =
        text == "u8" || text == "u" || text == "U" || text == "L";
    if (i_ < src_.size() && src_[i_] == '"') {
      if (raw_string_prefix(text)) {
        lex_raw_string(line, col, start);
        return;
      }
      if (encoding_prefix) {
        lex_string();  // encoding-prefixed ordinary string
        out_.tokens.back().line = line;
        out_.tokens.back().col = col;
        out_.tokens.back().text = text + out_.tokens.back().text;
        return;
      }
    }
    if (i_ < src_.size() && src_[i_] == '\'' && encoding_prefix) {
      lex_char();  // encoding-prefixed char literal: u8'a', L'x'
      out_.tokens.back().line = line;
      out_.tokens.back().col = col;
      out_.tokens.back().text = text + out_.tokens.back().text;
      return;
    }
    emit(TokenKind::kIdentifier, std::move(text), line, col);
  }

  void lex_number() {
    const int line = line_;
    const int col = col_;
    const std::size_t start = i_;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
          (peek(1) == '+' || peek(1) == '-')) {
        i_ += 2;
        col_ += 2;
        continue;
      }
      if (ident_char(c) || c == '.' ||
          (c == '\'' && ident_char(peek(1)))) {  // digit separator
        ++i_;
        ++col_;
        continue;
      }
      break;
    }
    emit(TokenKind::kNumber, src_.substr(start, i_ - start), line, col);
  }

  void lex_punct() {
    const int line = line_;
    const int col = col_;
    for (const char* p : kPuncts3) {
      if (src_.compare(i_, 3, p) == 0) {
        i_ += 3;
        col_ += 3;
        emit(TokenKind::kPunct, p, line, col);
        return;
      }
    }
    for (const char* p : kPuncts2) {
      if (src_.compare(i_, 2, p) == 0) {
        i_ += 2;
        col_ += 2;
        emit(TokenKind::kPunct, p, line, col);
        return;
      }
    }
    emit(TokenKind::kPunct, std::string(1, src_[i_]), line, col);
    ++i_;
    ++col_;
  }

  const std::string& src_;
  LexedFile out_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexedFile lex(const std::string& path, const std::string& content) {
  return Lexer(path, content).run();
}

}  // namespace vlsipart::analysis
