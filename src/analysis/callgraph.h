// Call graph over the corpus, built on the parser's function extractor.
//
// Call sites are recognized as `name(`, `obj.name(`, `obj->name(`,
// `Qual::name(` and `name<...>(` inside function bodies and resolved to
// repo-defined functions by a name + arity heuristic:
//   * candidates share the unqualified name and accept the argument
//     count (default arguments lower a definition's minimum arity);
//   * an explicit `Qual::` qualifier restricts to definitions owned by
//     that class (or a namespace segment of the qualified name) when
//     any match; `std::`-qualified calls never resolve to repo code;
//   * when candidates exist in the caller's own translation unit, the
//     cross-file candidates are dropped (out-of-line members and file-
//     local helpers win over same-named functions elsewhere).
// Unresolvable names produce no edge; rules treat them as opaque
// primitives.  Lambdas are nested FunctionDefs reachable through
// `children`, so reachability passes can include a function's lambda
// bodies without pretending to track std::function values.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/parser.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

struct CallSite {
  std::string name;       ///< unqualified callee name
  std::string qualifier;  ///< "std", a class name, or ""
  bool member = false;    ///< object.name( / object->name(
  std::size_t args = 0;
  std::size_t token = 0;  ///< index of the name token in the unit
  int line = 0;
  int col = 0;
  std::vector<int> callees;  ///< resolved CallGraph::functions indices
};

struct CallGraph {
  /// All function definitions across the corpus (lambdas included).
  std::vector<FunctionDef> functions;
  std::vector<int> unit_of;                ///< parallel: corpus unit index
  std::vector<std::vector<int>> children;  ///< nested defs (lambdas)
  std::vector<std::vector<CallSite>> calls;  ///< per function, token order
  /// Function indices per corpus unit, in body order.
  std::vector<std::vector<int>> unit_functions;

  /// Innermost function of `unit` containing token index `tok`, or -1.
  int function_at(int unit, std::size_t tok) const;
};

CallGraph build_call_graph(const Corpus& corpus);

}  // namespace vlsipart::analysis
