#include "src/analysis/output.h"

#include <sstream>
#include <string>

#include "src/analysis/finding.h"

namespace vlsipart::analysis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_human(const AnalysisResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.to_string() << "\n";
  }
  if (result.findings.empty()) {
    out << "vpart_lint: clean (" << result.files_scanned << " files";
  } else {
    out << "vpart_lint: " << result.findings.size() << " finding"
        << (result.findings.size() == 1 ? "" : "s") << " ("
        << result.files_scanned << " files";
  }
  if (result.suppressed != 0) {
    out << ", " << result.suppressed << " suppressed";
  }
  if (result.baselined != 0) {
    out << ", " << result.baselined << " baselined";
  }
  out << ")\n";
  return out.str();
}

std::string render_json(const AnalysisResult& result) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"path\": \"" << json_escape(f.path)
        << "\", \"line\": " << f.line << ", \"col\": " << f.col
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  if (!first) out << "\n  ";
  out << "],\n";
  out << "  \"files_scanned\": " << result.files_scanned << ",\n";
  out << "  \"suppressed\": " << result.suppressed << ",\n";
  out << "  \"baselined\": " << result.baselined << "\n";
  out << "}\n";
  return out.str();
}

std::string render_sarif(const AnalysisResult& result) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"vpart_lint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/vlsipart\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const RuleInfo& r : rule_catalog()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "            {\"id\": \"" << r.id
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.description)
        << "\"}, \"properties\": {\"family\": \"" << r.family << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& f : result.findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.path)
        << "\"}, \"region\": {\"startLine\": " << f.line
        << ", \"startColumn\": " << f.col << "}}}]}";
  }
  if (!first) out << "\n      ";
  out << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace vlsipart::analysis
