#include "src/analysis/finding.h"

namespace vlsipart::analysis {

std::string Finding::to_string() const {
  return path + ":" + std::to_string(line) + ":" + std::to_string(col) +
         ": [" + rule + "] " + message;
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"rand", "determinism",
       "call of rand()/srand() — use util::SplitMix64 seeded from the run "
       "configuration"},
      {"random-device", "determinism",
       "std::random_device use — nondeterministic hardware entropy; derive "
       "seeds from the run configuration"},
      {"std-engine", "determinism",
       "standard <random> engine (mt19937, default_random_engine, ...) — "
       "engine streams differ across standard libraries; use "
       "util::SplitMix64"},
      {"time-seed", "determinism",
       "seed derived from wall-clock time — seeds must come from the run "
       "configuration"},
      {"wall-clock", "determinism",
       "wall-clock read (chrono ::now(), clock_gettime, gettimeofday) — "
       "results must not depend on time; allowed only for reporting, with "
       "an annotation"},
      {"unordered-in-core", "determinism",
       "unordered container in core partitioning code (src/part/, "
       "src/hypergraph/) — iteration order is unspecified; use sorted or "
       "index-keyed containers"},
      {"unordered-iter", "determinism",
       "range-for over a variable declared as an unordered container — "
       "iteration order is unspecified"},
      {"pointer-sort-key", "determinism",
       "sort with a pointer-typed comparator parameter — pointer order is "
       "allocation order; compare by id or value"},
      {"float-accumulate-unordered", "determinism",
       "floating-point accumulation inside iteration over an unordered "
       "container — summation order changes the result"},
      {"pointer-keyed-container", "determinism",
       "std::map/std::set keyed by pointer in core partitioning code — "
       "iteration order is allocation order; key by id"},
      {"pointer-compare", "determinism",
       "operator< over pointer parameters in a result path — pointer order "
       "is allocation order"},
      {"knob-completeness", "knob",
       "config struct field not reachable from CLI parsing or not "
       "documented — every knob must be sweepable and documented"},
      {"lock-discipline", "lock",
       "field annotated guarded_by(<mutex>) accessed without holding that "
       "mutex"},
      {"hot-path-purity", "hotpath",
       "allocation, locking, IO or throw in code reachable from a "
       "// hot-path: root function — the FM inner loop must not touch the "
       "heap; justify amortized sites with // hot-path: allow(<reason>)"},
      {"round-frozen-write", "round",
       "worker-shard lambda writes a captured array at an index not "
       "derived from its shard range (or grows a captured container) — "
       "shards may only write slots they own"},
      {"round-rng-in-shard", "round",
       "RNG draw inside a worker-shard lambda — per-shard draws make the "
       "stream depend on the shard count; draw before the round"},
      {"narrowing-assign", "index-width",
       "size-derived 64-bit value assigned to a narrower integer — "
       "truncates silently past 2^32 pins; use vp::checked_narrow<T>() or "
       "guard with VP_CHECK"},
      {"narrowing-cast", "index-width",
       "static_cast of a size-derived or explicitly widened expression to "
       "a narrower integer — use vp::checked_narrow<T>() or prove the "
       "range with a dominating VP_CHECK"},
      {"narrow-loop-counter", "index-width",
       "loop counter narrower than its .size()/num_*() bound — the "
       "comparison promotes but the counter wraps on huge instances"},
      {"tainted-comparator", "flow-determinism",
       "pointer- or clock-derived value flows into a sort comparator — "
       "ordering becomes allocation- or time-dependent; compare by id or "
       "value"},
      {"tainted-seed", "flow-determinism",
       "pointer- or clock-derived value flows into an RNG seed — the "
       "stream is irreproducible; seed from the run configuration"},
      {"dead-store", "dead-store",
       "assignment whose value no later statement reads — dead code or a "
       "missing use"},
      {"use-before-init", "dead-store",
       "variable may be read before any initialization on some path"},
  };
  return kCatalog;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalog()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

bool is_rule_family(const std::string& name) {
  for (const RuleInfo& r : rule_catalog()) {
    if (name == r.family) return true;
  }
  return false;
}

}  // namespace vlsipart::analysis
