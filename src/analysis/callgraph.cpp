#include "src/analysis/callgraph.h"

#include <map>
#include <set>

namespace vlsipart::analysis {

namespace {

const std::set<std::string>& call_keyword_blocklist() {
  static const std::set<std::string> kSet = {
      "if",      "for",      "while",       "switch",       "catch",
      "return",  "sizeof",   "alignof",     "alignas",      "decltype",
      "noexcept", "new",     "delete",      "throw",        "typeid",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "co_await", "co_yield", "co_return",  "defined",      "requires",
      "static_assert", "and", "or",         "not",          "operator"};
  return kSet;
}

/// Identifiers that read as declaration context before a name: a call
/// after one of these is still a call (`return f(x)`), anything else
/// (`Type name(args)`) is a declaration with constructor arguments.
bool decl_context_exempt(const std::string& s) {
  return s == "return" || s == "co_return" || s == "case" || s == "else" ||
         s == "do" || s == "co_yield" || s == "co_await" || s == "throw";
}

std::size_t match_close(const std::vector<Token>& T, std::size_t open,
                        const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < T.size(); ++i) {
    if (T[i].is_punct(o)) ++depth;
    if (T[i].is_punct(c) && --depth == 0) return i;
  }
  return T.size();
}

/// After `name`, skip a balanced template argument list if one leads
/// to a '(' within a short window.  Returns the index of the '(' or 0.
std::size_t paren_after_optional_angles(const std::vector<Token>& T,
                                        std::size_t i) {
  if (i < T.size() && T[i].is_punct("(")) return i;
  if (i >= T.size() || !T[i].is_punct("<")) return 0;
  int depth = 0;
  std::size_t steps = 0;
  for (std::size_t j = i; j < T.size() && steps < 48; ++j, ++steps) {
    if (T[j].is_punct("<")) ++depth;
    if (T[j].is_punct(">") && --depth == 0) {
      return (j + 1 < T.size() && T[j + 1].is_punct("(")) ? j + 1 : 0;
    }
    if (T[j].is_punct(";") || T[j].is_punct("{") || T[j].is_punct("}")) break;
  }
  return 0;
}

std::size_t count_args(const std::vector<Token>& T, std::size_t open,
                       std::size_t close) {
  if (close <= open + 1) return 0;
  std::size_t commas = 0;
  int depth = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    if (T[j].is_punct("(") || T[j].is_punct("[") || T[j].is_punct("{")) {
      ++depth;
    }
    if (T[j].is_punct(")") || T[j].is_punct("]") || T[j].is_punct("}")) {
      --depth;
    }
    if (depth == 0 && T[j].is_punct(",")) ++commas;
  }
  return commas + 1;
}

}  // namespace

int CallGraph::function_at(int unit, std::size_t tok) const {
  if (unit < 0 || unit >= static_cast<int>(unit_functions.size())) return -1;
  int best = -1;
  std::size_t best_span = 0;
  for (int f : unit_functions[unit]) {
    const FunctionDef& d = functions[f];
    if (tok < d.body_begin || tok > d.body_end) continue;
    const std::size_t span = d.body_end - d.body_begin;
    if (best == -1 || span < best_span) {
      best = f;
      best_span = span;
    }
  }
  return best;
}

CallGraph build_call_graph(const Corpus& corpus) {
  CallGraph g;
  g.unit_functions.resize(corpus.units.size());

  // Parse every unit; flatten definitions into one table.
  for (std::size_t u = 0; u < corpus.units.size(); ++u) {
    ParsedFile parsed = parse_file(corpus.units[u].lexed);
    const int base = static_cast<int>(g.functions.size());
    for (FunctionDef& def : parsed.functions) {
      if (def.parent >= 0) def.parent += base;
      g.functions.push_back(std::move(def));
      g.unit_of.push_back(static_cast<int>(u));
      g.unit_functions[u].push_back(static_cast<int>(g.functions.size()) - 1);
    }
  }
  g.children.resize(g.functions.size());
  g.calls.resize(g.functions.size());
  for (std::size_t f = 0; f < g.functions.size(); ++f) {
    if (g.functions[f].parent >= 0) {
      g.children[g.functions[f].parent].push_back(static_cast<int>(f));
    }
  }

  // Candidate index: unqualified name -> definitions (lambdas excluded).
  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t f = 0; f < g.functions.size(); ++f) {
    if (!g.functions[f].is_lambda) {
      by_name[g.functions[f].name].push_back(static_cast<int>(f));
    }
  }

  // Extract and resolve call sites per unit.
  for (std::size_t u = 0; u < corpus.units.size(); ++u) {
    const std::vector<Token>& T = corpus.units[u].lexed.tokens;
    if (g.unit_functions[u].empty()) continue;
    for (std::size_t i = 0; i < T.size(); ++i) {
      if (T[i].kind != TokenKind::kIdentifier) continue;
      if (call_keyword_blocklist().count(T[i].text) != 0) continue;
      const std::size_t open = paren_after_optional_angles(T, i + 1);
      if (open == 0) continue;
      const int caller = g.function_at(static_cast<int>(u), i);
      if (caller < 0) continue;

      CallSite site;
      site.name = T[i].text;
      site.token = i;
      site.line = T[i].line;
      site.col = T[i].col;
      if (i > 0) {
        const Token& p = T[i - 1];
        if (p.is_punct(".") || p.is_punct("->")) {
          site.member = true;
        } else if (p.is_punct("::") && i >= 2 &&
                   T[i - 2].kind == TokenKind::kIdentifier) {
          site.qualifier = T[i - 2].text;
        } else if (p.kind == TokenKind::kIdentifier &&
                   !decl_context_exempt(p.text)) {
          continue;  // `Type name(args)` — a declaration, not a call
        } else if (p.is_punct(">") || p.is_punct("*") || p.is_punct("&")) {
          // `Type<T>* name(` / `Type& name(`: declarator position.  A
          // '>' can also close a comparison, but resolving through one
          // is far more often a declaration than a call.
          continue;
        }
      }
      const std::size_t close = match_close(T, open, "(", ")");
      site.args = count_args(T, open, close);

      if (site.qualifier != "std") {
        const auto it = by_name.find(site.name);
        if (it != by_name.end()) {
          std::vector<int> candidates;
          for (int f : it->second) {
            const FunctionDef& d = g.functions[f];
            if (site.args < d.min_arity || site.args > d.max_arity) continue;
            candidates.push_back(f);
          }
          if (!site.qualifier.empty()) {
            std::vector<int> owned;
            for (int f : candidates) {
              const FunctionDef& d = g.functions[f];
              if (d.owner == site.qualifier ||
                  d.qualified_name.find(site.qualifier + "::") !=
                      std::string::npos) {
                owned.push_back(f);
              }
            }
            if (!owned.empty()) candidates = owned;
          }
          std::vector<int> local;
          for (int f : candidates) {
            if (g.unit_of[f] == static_cast<int>(u)) local.push_back(f);
          }
          site.callees = local.empty() ? candidates : local;
        }
      }
      g.calls[caller].push_back(std::move(site));
    }
  }
  return g;
}

}  // namespace vlsipart::analysis
