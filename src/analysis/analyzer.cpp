#include "src/analysis/analyzer.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/lexer.h"
#include "src/analysis/rules_internal.h"

namespace vlsipart::analysis {

bool path_under(const std::string& path, const std::string& prefix) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/' ||
         prefix.back() == '/';
}

namespace {

namespace fs = std::filesystem;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_cpp_source(const std::string& path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp") ||
         ends_with(path, ".cpp") || ends_with(path, ".cc") ||
         ends_with(path, ".cxx");
}

/// Lines silenced per rule by "det-lint: allow(<rule>[, <rule>...])"
/// annotations.  An annotation on line C covers findings on C (trailing
/// comment) and C + 1 (comment on the line above).
std::map<std::string, std::set<int>> collect_allows(const LexedFile& file) {
  std::map<std::string, std::set<int>> allows;
  for (const Comment& c : file.comments) {
    const std::size_t tag = c.text.find("det-lint:");
    if (tag == std::string::npos) continue;
    std::size_t pos = c.text.find("allow", tag);
    if (pos == std::string::npos) continue;
    pos += 5;
    while (pos < c.text.size() &&
           (c.text[pos] == ' ' || c.text[pos] == '\t')) {
      ++pos;
    }
    if (pos >= c.text.size() || c.text[pos] != '(') continue;
    const std::size_t close = c.text.find(')', pos);
    if (close == std::string::npos) continue;
    std::string args = c.text.substr(pos + 1, close - pos - 1);
    std::string rule;
    std::istringstream stream(args);
    while (std::getline(stream, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      rule = rule.substr(b, e - b + 1);
      allows[rule].insert(c.line);
      allows[rule].insert(c.line + 1);
    }
  }
  return allows;
}

struct Baseline {
  /// (rule, path) pairs silenced by the checked-in baseline file.
  std::set<std::pair<std::string, std::string>> entries;
};

void load_baseline(const std::string& path, Baseline& baseline,
                   std::vector<std::string>& errors) {
  std::ifstream in(path);
  if (!in) {
    errors.push_back("cannot read baseline file: " + path);
    return;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    const std::size_t p1 = line.find('|');
    const std::size_t p2 =
        p1 == std::string::npos ? std::string::npos : line.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": malformed baseline entry (want "
                       "rule|path|justification): " +
                       line);
      continue;
    }
    const std::string rule = line.substr(0, p1);
    const std::string file = line.substr(p1 + 1, p2 - p1 - 1);
    std::string just = line.substr(p2 + 1);
    const std::size_t jb = just.find_first_not_of(" \t");
    if (jb == std::string::npos) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": baseline entry for " + rule + "|" + file +
                       " has no justification — baselining without a "
                       "written reason is not allowed");
      continue;
    }
    if (find_rule(rule) == nullptr) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": unknown rule in baseline: " + rule);
      continue;
    }
    baseline.entries.insert({rule, file});
  }
}

std::string normalize_slashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

/// Path shown in findings: relative to the repo root when the file lies
/// underneath it, with '/' separators.
std::string display_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path abs_file = fs::weakly_canonical(file, ec);
  if (!ec && !root.empty()) {
    const fs::path abs_root = fs::weakly_canonical(root, ec);
    if (!ec) {
      const fs::path rel = abs_file.lexically_relative(abs_root);
      if (!rel.empty() && rel.native()[0] != '.') {
        return normalize_slashes(rel.generic_string());
      }
    }
  }
  return normalize_slashes(file.generic_string());
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Files under `dir`, sorted, filtered by `pred`.
template <typename Pred>
std::vector<fs::path> sorted_files_under(const fs::path& dir, Pred pred) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec) && pred(it->path().generic_string())) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

AnalysisResult analyze_buffers(const std::vector<SourceBuffer>& files,
                               const std::vector<SourceBuffer>& context,
                               const AnalyzerOptions& options) {
  AnalysisResult result;

  RuleFilter filter;
  for (const std::string& id : options.only_rules) {
    if (find_rule(id) == nullptr && !is_rule_family(id)) {
      result.errors.push_back("unknown rule or family: " + id);
    }
    filter.only.insert(id);
  }

  Baseline baseline;
  if (!options.baseline_path.empty()) {
    load_baseline(options.baseline_path, baseline, result.errors);
  }
  if (!result.errors.empty()) return result;

  Corpus corpus;
  for (const SourceBuffer& f : files) {
    corpus.units.push_back(FileUnit{lex(f.path, f.content), true});
  }
  for (const SourceBuffer& c : context) {
    if (ends_with(c.path, ".md")) {
      corpus.docs.push_back(c);
    } else {
      corpus.units.push_back(FileUnit{lex(c.path, c.content), false});
    }
  }
  result.files_scanned = files.size();

  std::vector<Finding> raw;
  for (const FileUnit& unit : corpus.units) {
    if (unit.linted) {
      run_determinism_rules(unit, filter, raw);
      run_dataflow_rules(unit, filter, raw);
    }
  }
  run_knob_rule(corpus, filter, raw);

  // The semantic rule families share one call graph over the corpus.
  const CallGraph graph = build_call_graph(corpus);
  run_lock_rule(corpus, graph, filter, raw);
  run_hotpath_rule(corpus, graph, filter, raw, result.suppressed);
  run_round_rules(corpus, graph, filter, raw);

  // Per-file allow() maps, built once.
  std::map<std::string, std::map<std::string, std::set<int>>> allows;
  for (const FileUnit& unit : corpus.units) {
    if (unit.linted) allows[unit.lexed.path] = collect_allows(unit.lexed);
  }

  std::set<std::pair<std::string, std::string>> used_baseline;
  for (Finding& f : raw) {
    const auto file_it = allows.find(f.path);
    if (file_it != allows.end()) {
      const auto rule_it = file_it->second.find(f.rule);
      if (rule_it != file_it->second.end() &&
          rule_it->second.count(f.line) != 0) {
        ++result.suppressed;
        continue;
      }
    }
    if (baseline.entries.count({f.rule, f.path}) != 0) {
      ++result.baselined;
      used_baseline.insert({f.rule, f.path});
      continue;
    }
    result.findings.push_back(std::move(f));
  }

  // Stale-baseline detection: an entry whose rule ran and whose file was
  // linted must have matched at least one finding, or it is dead weight
  // that would silently mask a future regression.  Entries for files
  // outside this invocation's lint set (or rules filtered out by
  // --rules) are not judged — partial runs must not invalidate the
  // shared baseline.
  std::set<std::string> linted_paths;
  for (const FileUnit& unit : corpus.units) {
    if (unit.linted) linted_paths.insert(unit.lexed.path);
  }
  for (const auto& entry : baseline.entries) {
    if (used_baseline.count(entry) != 0) continue;
    if (!filter.enabled(entry.first.c_str())) continue;
    if (linted_paths.count(entry.second) == 0) continue;
    result.errors.push_back("stale baseline entry (matches no finding): " +
                            entry.first + "|" + entry.second);
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return result;
}

AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalyzerOptions& options) {
  const fs::path root = options.repo_root.empty()
                            ? fs::current_path()
                            : fs::path(options.repo_root);

  AnalysisResult bad;
  std::vector<fs::path> lint_files;
  for (const std::string& p : paths) {
    fs::path candidate(p);
    if (candidate.is_relative() && !fs::exists(candidate)) {
      const fs::path under_root = root / candidate;
      if (fs::exists(under_root)) candidate = under_root;
    }
    std::error_code ec;
    if (fs::is_directory(candidate, ec)) {
      for (fs::path& f : sorted_files_under(candidate, is_cpp_source)) {
        lint_files.push_back(std::move(f));
      }
    } else if (fs::is_regular_file(candidate, ec)) {
      lint_files.push_back(candidate);
    } else {
      bad.errors.push_back("no such file or directory: " + p);
    }
  }
  if (!bad.errors.empty()) return bad;

  std::vector<SourceBuffer> files;
  std::set<std::string> lint_paths;
  for (const fs::path& f : lint_files) {
    std::string content;
    if (!read_file(f, content)) {
      bad.errors.push_back("cannot read: " + f.generic_string());
      continue;
    }
    const std::string shown = display_path(f, root);
    if (!lint_paths.insert(shown).second) continue;  // listed twice
    files.push_back(SourceBuffer{shown, std::move(content)});
  }
  if (!bad.errors.empty()) return bad;

  // Cross-file context the knob rule needs even when linting only a
  // subset: CLI parse sites under tools/, examples/ and bench/, plus
  // the documentation files.  Files already in the lint set are not
  // duplicated.
  std::vector<SourceBuffer> context;
  for (const char* dir : {"tools", "examples", "bench"}) {
    std::error_code ec;
    const fs::path d = root / dir;
    if (!fs::is_directory(d, ec)) continue;
    for (const fs::path& f : sorted_files_under(d, is_cpp_source)) {
      const std::string shown = display_path(f, root);
      if (lint_paths.count(shown) != 0) continue;
      std::string content;
      if (read_file(f, content)) {
        context.push_back(SourceBuffer{shown, std::move(content)});
      }
    }
  }
  for (const char* doc : {"DESIGN.md", "README.md"}) {
    std::string content;
    if (read_file(root / doc, content)) {
      context.push_back(SourceBuffer{doc, std::move(content)});
    }
  }

  return analyze_buffers(files, context, options);
}

}  // namespace vlsipart::analysis
