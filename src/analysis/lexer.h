// C++ lexer for vpart_lint.
//
// Scope: enough of the C++ lexical grammar to never confuse code with
// non-code.  Handled correctly: // and /* */ comments (comments are
// captured, not discarded — annotations live there), string and char
// literals with escapes, raw string literals R"delim(...)delim" with
// encoding prefixes, preprocessor logical lines (backslash
// continuations joined into one token), digit separators and exponents
// in numeric literals, and the multi-character punctuators rules need
// ("::", "->", "+=", ...).  Not a parser: no templates, no name lookup
// — rules work on token patterns (see DESIGN.md §12 for the limits).
#pragma once

#include <string>

#include "src/analysis/token.h"

namespace vlsipart::analysis {

/// Tokenize `content` as C++.  Never fails: bytes that fit nothing
/// (stray backslashes, unterminated literals at EOF) become single-char
/// punct tokens or terminate the literal at end of input.
LexedFile lex(const std::string& path, const std::string& content);

}  // namespace vlsipart::analysis
