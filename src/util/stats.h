// Streaming statistics accumulators and sample-based descriptors.
//
// The paper's reporting sections call for min/average-over-starts tables
// (Tables 1-5) plus distributional descriptors ("standard deviations and
// other descriptors of the distributions").  RunningStats is a Welford
// accumulator; Sample keeps the raw values for order statistics (needed by
// best-so-far curves, Sec. 3.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vlsipart {

/// Numerically stable streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merge another accumulator into this one (parallel composition).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A retained sample supporting order statistics and multistart math.
class Sample {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Expected minimum of k independent draws from the empirical
  /// distribution, computed exactly from order statistics:
  ///   E[min of k] = sum_i x_(i) * [C(n-i, k)-C(n-i-1, k)] / C(n, k)
  /// evaluated in a numerically stable product form.  This is the
  /// building block of the best-so-far (BSF) curve of Barr et al. that
  /// the paper recommends for multistart reporting.
  double expected_min_of(std::size_t k) const;

  /// Empirical probability that the best of k draws is <= threshold.
  double prob_min_leq(std::size_t k, double threshold) const;

  /// Geometric mean; all values must be positive.  The standard
  /// cross-instance summary in the partitioning literature (ratios to a
  /// baseline averaged multiplicatively).
  double geometric_mean() const;

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace vlsipart
