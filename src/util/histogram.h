// Power-of-two latency histogram for service observability.
//
// The partitioning service reports request-latency quantiles (p50/p95/
// p99) from a fixed set of exponential buckets: bucket 0 holds samples
// below 1 microsecond, bucket i >= 1 holds [2^(i-1), 2^i) microseconds.
// Quantiles return the upper bound of the bucket containing the rank, so
// reported percentiles are conservative (they never under-state latency)
// and, for a given multiset of samples, independent of arrival order —
// the same determinism discipline as the rest of the library, applied to
// observability.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vlsipart {

class LatencyHistogram {
 public:
  void record(double seconds);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double total_seconds() const { return total_seconds_; }
  double max_seconds() const { return max_seconds_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(count_);
  }

  /// Upper bound in seconds of the bucket containing the q-quantile
  /// (0 < q <= 1) of the recorded samples; 0 when empty.
  double quantile(double q) const;

  /// One-line digest: "n=12 mean=1.2ms p50=1.0ms p95=4.1ms p99=8.2ms
  /// max=7.9ms".
  std::string summary() const;

 private:
  // 44 buckets cover up to ~2^42 us (~51 days); the last bucket absorbs
  // anything larger.
  static constexpr std::size_t kBuckets = 44;

  static std::size_t bucket_index(double seconds);
  static double bucket_upper_seconds(std::size_t index);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double total_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

/// Human-friendly duration: "870us", "3.41ms", "1.250s".
std::string format_duration(double seconds);

}  // namespace vlsipart
