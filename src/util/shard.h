// Contiguous index-range sharding for deterministic parallel phases.
//
// The synchronous-round engines (parallel_refine.h, parallel_coarsen.h)
// split the vertex id space into contiguous ascending ranges, hand one
// range to each worker, and merge per-shard outputs by shard index.
// Because every shard scans its range in ascending id order and the
// merge concatenates shards in range order, the merged stream is the
// full ascending id scan regardless of HOW MANY shards the work was cut
// into — this is the lemma behind "bit-identical at any thread count":
// the shard count may change scheduling, never the merged sequence.
#pragma once

#include <cstddef>

namespace vlsipart {

struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Range of shard `i` of `num_shards` over [0, n): the first n %
/// num_shards shards get one extra element, so sizes differ by at most
/// one and the union is exactly [0, n) in order.
inline ShardRange shard_range(std::size_t n, std::size_t num_shards,
                              std::size_t i) {
  if (num_shards == 0) num_shards = 1;
  const std::size_t base = n / num_shards;
  const std::size_t extra = n % num_shards;
  ShardRange r;
  r.begin = i * base + (i < extra ? i : extra);
  r.end = r.begin + base + (i < extra ? 1 : 0);
  return r;
}

}  // namespace vlsipart
