#include "src/util/cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace vlsipart {
namespace {

/// Levenshtein distance, used only for "did you mean" hints on unknown
/// options (names are short, so the O(n*m) DP is trivial).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t previous = row[j];
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself an option;
    // otherwise a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                text + "'");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                text + "'");
  }
  return value;
}

void CliArgs::check_known(const std::vector<std::string>& allowed) const {
  for (const auto& [name, value] : options_) {
    if (std::find(allowed.begin(), allowed.end(), name) != allowed.end()) {
      continue;
    }
    std::string message = "unknown option --" + name;
    std::size_t best = 4;  // suggest only close matches
    const std::string* suggestion = nullptr;
    for (const std::string& candidate : allowed) {
      const std::size_t d = edit_distance(name, candidate);
      if (d < best) {
        best = d;
        suggestion = &candidate;
      }
    }
    if (suggestion != nullptr) {
      message += " (did you mean --" + *suggestion + "?)";
    }
    throw std::invalid_argument(message);
  }
}

const std::string& CliArgs::check_known_value(
    const std::string& flag, const std::string& value,
    const std::vector<std::string>& allowed) {
  if (std::find(allowed.begin(), allowed.end(), value) != allowed.end()) {
    return value;
  }
  std::string vocabulary;
  for (const std::string& candidate : allowed) {
    if (!vocabulary.empty()) vocabulary += "|";
    vocabulary += candidate;
  }
  std::string message =
      "unknown --" + flag + " (" + vocabulary + "): " + value;
  std::size_t best = 4;
  const std::string* suggestion = nullptr;
  for (const std::string& candidate : allowed) {
    const std::size_t d = edit_distance(value, candidate);
    if (d < best) {
      best = d;
      suggestion = &candidate;
    }
  }
  if (suggestion != nullptr) {
    message += " (did you mean --" + flag + " " + *suggestion + "?)";
  }
  throw std::invalid_argument(message);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> CliArgs::get_list(const std::string& name,
                                           const std::string& fallback) const {
  const std::string joined = get(name, fallback);
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= joined.size()) {
    const auto comma = joined.find(',', start);
    const std::string token =
        joined.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace vlsipart
