#include "src/util/cli.h"

#include <cstdlib>

namespace vlsipart {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself an option;
    // otherwise a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> CliArgs::get_list(const std::string& name,
                                           const std::string& fallback) const {
  const std::string joined = get(name, fallback);
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= joined.size()) {
    const auto comma = joined.find(',', start);
    const std::string token =
        joined.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace vlsipart
