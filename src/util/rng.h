// Deterministic, seedable pseudo-random number generation.
//
// The paper (Sec. 3.1) stresses that "randomizers ... can be very large"
// contributors to experimental variance, and reproducibility requires that
// every stochastic component be explicitly seeded.  All randomized code in
// this library takes a Rng (or a seed) explicitly; there is no hidden
// global random state anywhere.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace vlsipart {

/// splitmix64: used to expand a single 64-bit seed into the xoshiro state.
/// Reference: Sebastiano Vigna, public-domain implementation.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Fast, high-quality, tiny state; satisfies the
/// UniformRandomBitGenerator requirements so it can also be handed to
/// <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal deviate (Marsaglia polar method).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0.
  /// Used for cell-area distributions with "wide variation in vertex
  /// weights" as the paper describes for deep-submicron libraries.
  double pareto(double xm, double alpha);

  /// Geometric-like net-size sample: lo + Geometric(p), truncated to hi.
  std::uint64_t truncated_geometric(std::uint64_t lo, std::uint64_t hi,
                                    double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index; v must be nonempty.
  template <typename T>
  std::size_t pick_index(const std::vector<T>& v) {
    return static_cast<std::size_t>(below(v.size()));
  }

  /// Derive an independent child stream (for per-run seeding in
  /// multistart experiments, so run i is reproducible in isolation).
  Rng fork(std::uint64_t stream_id) const;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vlsipart
