#include "src/util/audit_config.h"

#include <cstdlib>

#include "src/util/logging.h"

namespace vlsipart {

const char* name_of(AuditMode mode) {
  switch (mode) {
    case AuditMode::kOff:
      return "off";
    case AuditMode::kPerPass:
      return "pass";
    case AuditMode::kPerMoves:
      return "moves";
  }
  return "?";
}

std::optional<AuditConfig> AuditConfig::from_env() {
  const char* raw = std::getenv("VLSIPART_AUDIT");
  if (raw == nullptr) return std::nullopt;
  const std::string value(raw);
  if (value.empty()) return std::nullopt;
  AuditConfig config;
  if (value == "off" || value == "0" || value == "none") {
    config.mode = AuditMode::kOff;
    return config;
  }
  if (value == "pass" || value == "1" || value == "per-pass") {
    config.mode = AuditMode::kPerPass;
    return config;
  }
  if (value == "moves") {
    config.mode = AuditMode::kPerMoves;
    return config;
  }
  if (value.rfind("moves:", 0) == 0 || value.rfind("moves=", 0) == 0) {
    const std::string number = value.substr(6);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(number.c_str(), &end, 10);
    VP_CHECK(end != nullptr && *end == '\0' && n >= 1,
             "VLSIPART_AUDIT cadence must be a positive integer, got '"
                 << value << "'");
    config.mode = AuditMode::kPerMoves;
    config.every_moves = static_cast<std::size_t>(n);
    return config;
  }
  VP_CHECK(false, "unrecognized VLSIPART_AUDIT value '"
                      << value
                      << "' (expected off, pass, moves, or moves:N)");
  return std::nullopt;  // unreachable
}

AuditConfig AuditConfig::resolve(const AuditConfig& base) {
  const std::optional<AuditConfig> env = from_env();
  return env.has_value() ? *env : base;
}

std::string AuditConfig::to_string() const {
  std::string out = name_of(mode);
  if (mode == AuditMode::kPerMoves) {
    out += ':';
    out += std::to_string(every_moves);
  }
  return out;
}

}  // namespace vlsipart
