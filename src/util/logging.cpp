#include "src/util/logging.h"

#include <cstdio>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace vlsipart {
namespace {

LogLevel g_level = LogLevel::kWarn;

/// Serializes check_failed() stderr output so failures raised on worker
/// threads (parallel multistart) never interleave mid-line.
std::mutex g_check_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::string what = std::string("VP_CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!message.empty()) what += " — " + message;
  {
    // One atomic, thread-id-prefixed line per failure: concurrent checks
    // from pool workers must stay readable on a shared stderr.
    std::ostringstream tid;
    tid << std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(g_check_mutex);
    std::fprintf(stderr, "[CHECK][tid %s] %s\n", tid.str().c_str(),
                 what.c_str());
    std::fflush(stderr);
  }
  throw std::logic_error(what);
}

}  // namespace vlsipart
