#include "src/util/logging.h"

#include <cstdio>
#include <stdexcept>

namespace vlsipart {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::string what = std::string("VP_CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!message.empty()) what += " — " + message;
  throw std::logic_error(what);
}

}  // namespace vlsipart
