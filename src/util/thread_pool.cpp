#include "src/util/thread_pool.h"

#include <atomic>
#include <exception>
#include <utility>

namespace vlsipart {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  submit_with_slot(
      [task = std::move(task)](std::size_t /*worker*/) { task(); });
}

void ThreadPool::submit_with_slot(
    std::function<void(std::size_t worker)> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(std::size_t slot) {
  while (true) {
    std::function<void(std::size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n,
    const std::function<void(std::size_t worker, std::size_t index)>& body) {
  if (n == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // guarded_by(mutex)
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t drivers_left = 0;  // guarded_by(mutex)
  };
  Shared shared;
  const std::size_t drivers = std::min(num_threads(), n);
  // Published to the driver tasks only by the submit() calls below,
  // which synchronize through the pool mutex.
  // det-lint: allow(lock-discipline)
  shared.drivers_left = drivers;

  for (std::size_t w = 0; w < drivers; ++w) {
    submit([&shared, &body, w, n] {
      while (!shared.failed.load(std::memory_order_relaxed)) {
        const std::size_t i =
            shared.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          body(w, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared.mutex);
          if (!shared.error) shared.error = std::current_exception();
          shared.failed.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.drivers_left == 0) shared.done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock, [&shared] { return shared.drivers_left == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n, const std::function<void(std::size_t index)>& body) {
  parallel_for_dynamic(
      n, [&body](std::size_t /*worker*/, std::size_t index) { body(index); });
}

}  // namespace vlsipart
