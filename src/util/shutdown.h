// Async-signal-safe shutdown latch for graceful daemon drain.
//
// vpartd must finish in-flight partition requests when the operator
// sends SIGTERM/SIGINT (deploy rollover, ctrl-C) instead of dying with
// work half-done.  The classic self-pipe pattern: the handler sets an
// atomic flag and writes one byte to a non-blocking pipe, so the main
// loop can poll() the pipe fd alongside its sockets and react within one
// poll tick.  Also ignores SIGPIPE process-wide, so a client that
// disconnects mid-response surfaces as an EPIPE write error instead of
// killing the daemon.
#pragma once

namespace vlsipart {

/// Install SIGTERM/SIGINT handlers (and ignore SIGPIPE).  Idempotent;
/// call once near the top of main().
void install_shutdown_handler();

/// True once a handled signal arrived or request_shutdown() was called.
bool shutdown_requested();

/// Programmatic trigger with the same effect as receiving SIGTERM
/// (used by the service's {"op":"shutdown"} handler and by tests).
void request_shutdown();

/// Readable fd that becomes ready when shutdown is requested; poll() it
/// alongside sockets.  Returns -1 before install_shutdown_handler().
int shutdown_fd();

/// Test hook: clear the latch and drain the wake pipe.  Not
/// signal-safe; call only when no handled signal can arrive
/// concurrently.
void reset_shutdown_for_test();

}  // namespace vlsipart
