#include "src/util/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace vlsipart {

std::size_t LatencyHistogram::bucket_index(double seconds) {
  const double us = seconds * 1e6;
  if (!(us >= 1.0)) return 0;  // also catches NaN and negatives
  const auto u = static_cast<std::uint64_t>(us);
  // bit_width(u) == floor(log2(u)) + 1, so us in [2^(i-1), 2^i) lands in
  // bucket i.
  const std::size_t index = std::bit_width(u);
  return index < kBuckets ? index : kBuckets - 1;
}

double LatencyHistogram::bucket_upper_seconds(std::size_t index) {
  if (index == 0) return 1e-6;
  return std::ldexp(1.0, static_cast<int>(index)) * 1e-6;
}

void LatencyHistogram::record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;
  ++buckets_[bucket_index(seconds)];
  ++count_;
  total_seconds_ += seconds;
  if (seconds > max_seconds_) max_seconds_ = seconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_seconds_ += other.total_seconds_;
  if (other.max_seconds_ > max_seconds_) max_seconds_ = other.max_seconds_;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kBuckets - 1);
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%s p50=%s p95=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                format_duration(mean_seconds()).c_str(),
                format_duration(quantile(0.50)).c_str(),
                format_duration(quantile(0.95)).c_str(),
                format_duration(quantile(0.99)).c_str(),
                format_duration(max_seconds_).c_str());
  return buf;
}

std::string format_duration(double seconds) {
  char buf[48];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

}  // namespace vlsipart
