#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace vlsipart {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ += delta * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Sample::ensure_sorted() const {
  if (sorted_) return;
  auto& v = const_cast<std::vector<double>&>(values_);
  std::sort(v.begin(), v.end());
  sorted_ = true;
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::stddev() const {
  const std::size_t n = values_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(n - 1));
}

double Sample::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (q <= 0.0) return values_.front();
  if (q >= 1.0) return values_.back();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

double Sample::expected_min_of(std::size_t k) const {
  if (values_.empty() || k == 0) return 0.0;
  ensure_sorted();
  const std::size_t n = values_.size();
  if (k >= n) return values_.front();
  // P(min of k > x_(i)) = C(n-i, k) / C(n, k) where i is 1-based rank.
  // E[min] = sum_i x_(i) * [P(min >= x_(i)) - P(min >= x_(i+1))]
  // Compute tail probabilities p_i = C(n-i+1, k)/C(n, k) iteratively:
  //   p_1 = ... easier: q_i = P(all k draws have rank > i)
  //        = prod_{j=0}^{k-1} (n-i-j)/(n-j)
  // and the weight of x_(i) is q_{i-1} - q_i.
  double expectation = 0.0;
  double q_prev = 1.0;  // q_0
  for (std::size_t i = 1; i <= n; ++i) {
    double q_i = 1.0;
    if (n - i >= k) {
      q_i = q_prev;
      // q_i = q_{i-1} * (n-i-k+1)/(n-i+1)
      q_i *= static_cast<double>(n - i - k + 1) /
             static_cast<double>(n - i + 1);
    } else {
      q_i = 0.0;
    }
    expectation += values_[i - 1] * (q_prev - q_i);
    q_prev = q_i;
    if (q_prev <= 0.0) break;
  }
  return expectation;
}

double Sample::geometric_mean() const {
  if (values_.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values_) {
    if (v <= 0.0) return 0.0;  // undefined; callers check positivity
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values_.size()));
}

double Sample::prob_min_leq(std::size_t k, double threshold) const {
  if (values_.empty() || k == 0) return 0.0;
  ensure_sorted();
  const auto it =
      std::upper_bound(values_.begin(), values_.end(), threshold);
  const auto c = static_cast<std::size_t>(it - values_.begin());
  const std::size_t n = values_.size();
  if (c == 0) return 0.0;
  // P(min <= t) = 1 - P(all k draws > t) = 1 - ((n-c)/n)^k with
  // replacement semantics (empirical distribution).
  const double miss = static_cast<double>(n - c) / static_cast<double>(n);
  return 1.0 - std::pow(miss, static_cast<double>(k));
}

}  // namespace vlsipart
