// Fixed-size worker pool for deterministic parallel harnesses.
//
// The multistart regimes of Sec. 3.2 run hundreds of *independent* FM
// starts; the pool lets those starts execute concurrently while the
// harness keeps results bit-identical to the serial schedule (start i is
// a pure function of base_rng.fork(i), so only the *assignment* of
// starts to threads varies with the thread count, never the outcome).
//
// parallel_for_dynamic hands out indices 0..n-1 from a shared atomic
// counter ("dynamic" / work-stealing-style scheduling), which keeps all
// workers busy even when per-index runtimes vary wildly (pruned starts
// vs full refinements).  The two-argument form also passes a stable
// worker slot id in [0, num_threads) so callers can maintain per-worker
// scratch (e.g. a private partitioning engine) without locking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vlsipart {

/// Best-effort hardware thread count; always >= 1.
std::size_t hardware_threads();

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue one task.  Tasks run in FIFO order across idle workers.
  /// Tasks must not throw — an escaping exception terminates the process
  /// (parallel_for_dynamic captures and rethrows for you).
  void submit(std::function<void()> task);

  /// Like submit(), but the task receives the stable worker slot id in
  /// [0, num_threads()) it executes on.  Two tasks observing the same
  /// slot never overlap, so per-slot scratch (e.g. a resident
  /// partitioning engine in the service layer) needs no locking.
  void submit_with_slot(std::function<void(std::size_t worker)> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Run body(worker, index) for every index in [0, n), distributing
  /// indices dynamically over the workers.  `worker` is a stable slot id
  /// in [0, num_threads()): two invocations of `body` with the same slot
  /// never overlap, so per-slot scratch needs no synchronization.
  /// Blocks until all indices are done.  If any invocation throws, the
  /// remaining indices are abandoned and the first captured exception is
  /// rethrown here.
  void parallel_for_dynamic(
      std::size_t n,
      const std::function<void(std::size_t worker, std::size_t index)>& body);

  /// Convenience form without the worker slot id.
  void parallel_for_dynamic(std::size_t n,
                            const std::function<void(std::size_t index)>& body);

 private:
  void worker_loop(std::size_t slot);

  std::vector<std::thread> workers_;
  std::deque<std::function<void(std::size_t)>> queue_;  // guarded_by(mutex_)
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;  // guarded_by(mutex_)
  bool stop_ = false;       // guarded_by(mutex_)
};

}  // namespace vlsipart
