#include "src/util/shutdown.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>

namespace vlsipart {
namespace {

// std::atomic<bool> is lock-free on every platform we target, which
// makes it safe to store from a signal handler (the standard's
// async-signal-safety condition for atomics).
std::atomic<bool> g_shutdown_requested{false};
int g_wake_pipe[2] = {-1, -1};
bool g_installed = false;

void wake() {
  if (g_wake_pipe[1] >= 0) {
    const char byte = 's';
    // The pipe is non-blocking; a full pipe already wakes the poller, so
    // a failed write is harmless.
    [[maybe_unused]] const ssize_t rc = ::write(g_wake_pipe[1], &byte, 1);
  }
}

void on_signal(int /*signo*/) {
  // NOLINTNEXTLINE(bugprone-signal-handler) lock-free atomic store and
  // write() are both async-signal-safe.
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  wake();
}

}  // namespace

void install_shutdown_handler() {
  if (g_installed) return;
  g_installed = true;
  if (::pipe(g_wake_pipe) == 0) {
    for (const int fd : g_wake_pipe) {
      ::fcntl(fd, F_SETFL, O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  } else {
    g_wake_pipe[0] = g_wake_pipe[1] = -1;
  }
  struct sigaction action = {};
  action.sa_handler = &on_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

bool shutdown_requested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void request_shutdown() {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  wake();
}

int shutdown_fd() { return g_wake_pipe[0]; }

void reset_shutdown_for_test() {
  g_shutdown_requested.store(false, std::memory_order_relaxed);
  if (g_wake_pipe[0] >= 0) {
    char buf[64];
    while (::read(g_wake_pipe[0], buf, sizeof(buf)) > 0) {
    }
  }
}

}  // namespace vlsipart
