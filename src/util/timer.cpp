#include "src/util/timer.h"

#include <ctime>

namespace vlsipart {

double process_cpu_seconds() {
  timespec ts{};
  // CPU-time reading for reports only.  // det-lint: allow(wall-clock)
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double thread_cpu_seconds() {
  timespec ts{};
  // CPU-time reading for reports only.  // det-lint: allow(wall-clock)
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  return process_cpu_seconds();
}

}  // namespace vlsipart
