#include "src/util/rng.h"

#include <cmath>

namespace vlsipart {

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * mul;
  has_cached_normal_ = true;
  return u * mul;
}

double Rng::exponential(double lambda) {
  // Inverse transform; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(1.0 - u) / lambda;
}

double Rng::pareto(double xm, double alpha) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

std::uint64_t Rng::truncated_geometric(std::uint64_t lo, std::uint64_t hi,
                                       double p) {
  if (lo >= hi) return lo;
  std::uint64_t k = lo;
  while (k < hi && !bernoulli(p)) ++k;
  return k;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64 so that
  // distinct stream ids give statistically independent child generators.
  std::uint64_t mix = state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (stream_id + 1));
  return Rng(splitmix64(mix));
}

}  // namespace vlsipart
