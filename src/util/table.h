// Plain-text and CSV table rendering for bench/report output.
//
// Every bench binary regenerates one of the paper's tables; TextTable
// formats aligned columns the way the paper prints them (e.g. the
// "min/avg" cell style of Tables 1-3) and can also emit CSV for
// downstream plotting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vlsipart {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with aligned, space-padded columns and a header rule.
  std::string to_string() const;

  /// Render as CSV (no alignment padding).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

  /// Raw cells, for machine-readable emitters (bench --json).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 1 decimal, like the
/// paper's cut/CPU cells).
std::string fmt_fixed(double value, int decimals = 1);

/// "min/avg" cell used throughout Tables 1-3.
std::string fmt_min_avg(double min, double avg, int decimals = 0);

/// "avgcut/avgcpu" cell used in Tables 4-5.  CPU keeps two decimals by
/// default since scaled-down default benches run in fractional seconds.
std::string fmt_cut_cpu(double cut, double cpu, int cpu_decimals = 2);

}  // namespace vlsipart
