// Portable software-prefetch hints for the refinement hot paths.
//
// A prefetch is a pure performance hint: it never changes observable
// behavior, so the bit-identical-trace contract of the FM kernels is
// unaffected whether the macro expands to a real instruction or to
// nothing.  Compilers without __builtin_prefetch get a no-op that still
// evaluates (and type-checks) the address expression.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
// Locality hint 3 = keep in all cache levels: the prefetched gain/lock/
// part metadata is re-touched by the very next moves of the same pass.
#define VP_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
#define VP_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define VP_PREFETCH_READ(addr) (static_cast<void>(addr))
#define VP_PREFETCH_WRITE(addr) (static_cast<void>(addr))
#endif
