// Checked integral narrowing for the compact-CSR id space.
//
// The hypergraph stores offsets as std::size_t while ids (VertexId,
// EdgeId) are 32-bit; every conversion from the 64-bit size domain into
// the id domain is a potential silent truncation once instances pass
// 2^32 pins.  vp::checked_narrow<T>(v) is the sanctioned spelling of
// that conversion: it asserts the value is representable in T and then
// casts.  vpart_lint's index-width rules treat a checked_narrow-wrapped
// expression as proven and flag bare narrowing assignments and
// static_casts of size-derived values.
//
// The check is VP_CHECK (always on): it is one compare against a
// constant with a never-taken branch, which is noise next to the memory
// traffic of any loop that narrows a size — and a wrong id is exactly
// the silently-corrupt-structure failure the methodology paper warns
// about.
#pragma once

#include <type_traits>
#include <utility>

#include "src/util/logging.h"

namespace vlsipart {

/// Convert `value` to the narrower integral type To, failing fast when
/// the value is not representable (too large, or negative into an
/// unsigned To).
template <typename To, typename From>
constexpr To checked_narrow(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_narrow converts between integral types");
  VP_CHECK(std::in_range<To>(value),
           "checked_narrow: value " << value << " not representable");
  return static_cast<To>(value);
}

}  // namespace vlsipart

/// Short alias used at call sites: vp::checked_narrow<VertexId>(n).
namespace vp = vlsipart;
