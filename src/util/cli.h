// Minimal command-line option parser for examples and bench binaries.
//
// Supports "--name value", "--name=value" and boolean "--flag" styles so
// every bench can expose the knobs the paper varies (tolerance, starts,
// instance set, scale) without pulling in an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vlsipart {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Numeric accessors return `fallback` when the option is absent and
  /// throw std::invalid_argument when it is present but not a clean
  /// number ("--starts=abc", "--starts 12x", a bare "--starts" flag, or
  /// an out-of-range value) — a silent 0 from strtoll would otherwise
  /// turn a typo into a wrong experiment.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Throws std::invalid_argument when any option passed on the command
  /// line is not in `allowed`, suggesting the closest allowed spelling —
  /// catches "--thread 8" (typo for "--threads") that would otherwise be
  /// silently ignored.  Call after construction with the binary's full
  /// option vocabulary.
  void check_known(const std::vector<std::string>& allowed) const;

  /// Validate an option VALUE against a closed vocabulary (same
  /// did-you-mean treatment check_known() gives option NAMES): throws
  /// std::invalid_argument listing `allowed` and suggesting the closest
  /// spelling — catches "--engine nlvel" before it silently falls into
  /// a default branch.  Returns `value` for chaining.
  static const std::string& check_known_value(
      const std::string& flag, const std::string& value,
      const std::vector<std::string>& allowed);

  /// Non-option positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Comma-separated list value, e.g. --cases ibm01,ibm02.
  std::vector<std::string> get_list(const std::string& name,
                                    const std::string& fallback) const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace vlsipart
