// Runtime invariant-audit configuration.
//
// The paper's thesis is that silent implementation bugs corrupt reported
// results; the audit harness makes the expensive from-scratch
// cross-checks (gain keys vs. recomputed gains, pin counts and cut vs.
// the assignment, balance monotonicity across passes) available in ANY
// run — not just unit tests — at a configurable cadence.  Audits never
// consume RNG state or mutate anything, so enabling them cannot change
// results, only detect that they are wrong.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace vlsipart {

enum class AuditMode : std::uint8_t {
  kOff = 0,      ///< no runtime audits (default; zero overhead)
  kPerPass = 1,  ///< audit at FM pass boundaries (O(pins) per pass)
  kPerMoves = 2, ///< per-pass audits plus a mid-pass audit every N moves
};

struct AuditConfig {
  AuditMode mode = AuditMode::kOff;
  /// Mid-pass audit cadence for kPerMoves (audit after every N moves).
  std::size_t every_moves = 256;

  bool enabled() const { return mode != AuditMode::kOff; }

  /// Parse the VLSIPART_AUDIT environment variable:
  ///   unset / ""        -> nullopt (no override)
  ///   "off" | "0"       -> kOff
  ///   "pass" | "1"      -> kPerPass
  ///   "moves"           -> kPerMoves with the default cadence
  ///   "moves:N"         -> kPerMoves auditing every N moves (N >= 1)
  /// Any other value fails fast through VP_CHECK.
  static std::optional<AuditConfig> from_env();

  /// `base` unless VLSIPART_AUDIT is set, in which case the env wins.
  /// This is what engines call at construction so one shell export turns
  /// audits on for every binary without touching configs.
  static AuditConfig resolve(const AuditConfig& base);

  std::string to_string() const;
};

const char* name_of(AuditMode mode);

}  // namespace vlsipart
