// Wall-clock and CPU timers.
//
// The paper insists on "actual CPU time as an axis of comparison, as
// opposed to coarser-grain quanta such as 'number of starts'" (Sec. 3.2).
// Timer exposes both wall and process-CPU readings so harnesses can report
// whichever is appropriate (benches report CPU seconds, like the paper).
#pragma once

#include <chrono>
#include <cstdint>

namespace vlsipart {

/// Process CPU time in seconds (user+system), from clock().
double process_cpu_seconds();

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = Clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-CPU stopwatch.
class CpuTimer {
 public:
  CpuTimer() { reset(); }
  void reset() { start_ = process_cpu_seconds(); }
  double elapsed() const { return process_cpu_seconds() - start_; }

 private:
  double start_ = 0.0;
};

}  // namespace vlsipart
