// Wall-clock and CPU timers.
//
// The paper insists on "actual CPU time as an axis of comparison, as
// opposed to coarser-grain quanta such as 'number of starts'" (Sec. 3.2).
// Timer exposes wall, process-CPU and per-thread-CPU readings so harnesses
// can report whichever is appropriate.  Per-start costs in multistart
// harnesses use the *thread* CPU clock so the paper's CPU-time axes stay
// meaningful when starts run concurrently (process CPU would charge every
// start for all threads' work); wall clock measures the harness itself
// (the quantity parallelism actually improves).
#pragma once

#include <chrono>
#include <cstdint>

namespace vlsipart {

/// Process CPU time in seconds (user+system), from clock().
double process_cpu_seconds();

/// CPU time consumed by the calling thread, in seconds.  Equals process
/// CPU time in a single-threaded process (modulo clock resolution).
double thread_cpu_seconds();

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }
  // Timers measure for reports and benches; readings never feed back
  // into partitioning decisions.
  // det-lint: allow(wall-clock)
  void reset() { start_ = Clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double elapsed() const {
    // det-lint: allow(wall-clock)
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-CPU stopwatch.
class CpuTimer {
 public:
  CpuTimer() { reset(); }
  void reset() { start_ = process_cpu_seconds(); }
  double elapsed() const { return process_cpu_seconds() - start_; }

 private:
  double start_ = 0.0;
};

/// Per-thread-CPU stopwatch.  Must be read on the thread that created it
/// (or last reset it).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset() { start_ = thread_cpu_seconds(); }
  double elapsed() const { return thread_cpu_seconds() - start_; }

 private:
  double start_ = 0.0;
};

}  // namespace vlsipart
