// Lightweight leveled logging and checked assertions.
//
// VP_CHECK is an always-on invariant check (the library is a research
// testbed; silently corrupt gain structures are exactly the kind of
// "implicit implementation decision" bug the paper warns about, so we
// fail fast).  VP_DCHECK compiles out in release builds for hot paths.
#pragma once

#include <sstream>
#include <string>

namespace vlsipart {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line to stderr with a level prefix.
void log_message(LogLevel level, const std::string& message);

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace vlsipart

#define VP_LOG(level, msg)                                            \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::vlsipart::log_level())) {                  \
      std::ostringstream vp_log_stream_;                              \
      vp_log_stream_ << msg;                                          \
      ::vlsipart::log_message(level, vp_log_stream_.str());           \
    }                                                                 \
  } while (0)

#define VP_INFO(msg) VP_LOG(::vlsipart::LogLevel::kInfo, msg)
#define VP_WARN(msg) VP_LOG(::vlsipart::LogLevel::kWarn, msg)
#define VP_DEBUG(msg) VP_LOG(::vlsipart::LogLevel::kDebug, msg)

#define VP_CHECK(expr, msg)                                           \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream vp_check_stream_;                            \
      vp_check_stream_ << msg;                                        \
      ::vlsipart::check_failed(#expr, __FILE__, __LINE__,             \
                               vp_check_stream_.str());               \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define VP_DCHECK(expr, msg) \
  do {                       \
  } while (0)
#else
#define VP_DCHECK(expr, msg) VP_CHECK(expr, msg)
#endif
