#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vlsipart {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_min_avg(double min, double avg, int decimals) {
  return fmt_fixed(min, decimals) + "/" + fmt_fixed(avg, decimals);
}

std::string fmt_cut_cpu(double cut, double cpu, int cpu_decimals) {
  return fmt_fixed(cut, 1) + "/" + fmt_fixed(cpu, cpu_decimals);
}

}  // namespace vlsipart
