// Content-addressed caches for the partitioning service.
//
// InstanceCache maps an InstanceSpec descriptor to a built Hypergraph.
// Builds are single-flight: the first request for a descriptor inserts a
// shared_future and builds outside the lock; concurrent requests for the
// same descriptor wait on that future instead of parsing/generating the
// instance again.  Entries are evicted LRU once more than `capacity`
// builds are resident.
//
// ResultCache maps a result_cache_key() hash to a finished (cut, parts)
// pair.  This is sound only because results are deterministic functions
// of the request (see protocol.h): serving from cache is observationally
// identical to recomputing.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/hypergraph/types.h"
#include "src/service/protocol.h"

namespace vlsipart::service {

/// Order-dependent structural hash of a hypergraph: counts, weights and
/// both CSR incidence arrays.  Two graphs with equal hashes are treated
/// as identical content for result-cache purposes.
std::uint64_t hypergraph_content_hash(const Hypergraph& h);

struct CachedInstance {
  Hypergraph graph;
  std::uint64_t content_hash = 0;
  double build_seconds = 0.0;
};

class InstanceCache {
 public:
  explicit InstanceCache(std::size_t capacity) : capacity_(capacity) {}

  /// Resolve a spec to a built instance, building it at most once per
  /// descriptor.  `hit` reports whether this call reused a resident (or
  /// in-flight) build.  Throws whatever the build throws (bad path,
  /// unknown preset); a failed build is forgotten so a later request can
  /// retry.
  std::shared_ptr<const CachedInstance> get(const InstanceSpec& spec,
                                            bool* hit);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t resident() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const CachedInstance>> future;
    std::uint64_t last_use = 0;
    bool ready = false;
  };

  void evict_locked();

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // guarded_by(mutex_)
  std::uint64_t use_counter_ = 0;         // guarded_by(mutex_)
  std::uint64_t hits_ = 0;                // guarded_by(mutex_)
  std::uint64_t misses_ = 0;              // guarded_by(mutex_)
};

struct CachedResult {
  Weight cut = 0;
  std::vector<PartId> parts;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result for `key`, or nullptr on miss.
  std::shared_ptr<const CachedResult> find(std::uint64_t key);
  void insert(std::uint64_t key, CachedResult result);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t resident() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> result;
    std::uint64_t last_use = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> entries_;  // guarded_by(mutex_)
  std::uint64_t use_counter_ = 0;           // guarded_by(mutex_)
  std::uint64_t hits_ = 0;                  // guarded_by(mutex_)
  std::uint64_t misses_ = 0;                // guarded_by(mutex_)
};

}  // namespace vlsipart::service
