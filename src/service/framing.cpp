#include "src/service/framing.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace vlsipart::service {
namespace {

void set_cloexec(int fd) {
  // Sockets must not leak into children the embedding process forks.
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void tune_stream_socket(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound response writes so a client that stops reading cannot wedge a
  // connection thread forever; the write fails and the server moves on.
  timeval send_timeout{};
  send_timeout.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  // Bound each blocking recv() so a peer that stalls mid-frame yields
  // kAgain ticks (idle/stall accounting) instead of wedging the reader.
  timeval recv_timeout{};
  recv_timeout.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
               sizeof(recv_timeout));
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // let the read surface the error
  }
}

}  // namespace

std::string Endpoint::describe() const {
  if (is_unix()) return "unix:" + unix_path;
  return "tcp:127.0.0.1:" + std::to_string(tcp_port);
}

bool Endpoint::parse(const std::string& spec, Endpoint& out,
                     std::string* error) {
  out = Endpoint{};
  if (spec.rfind("unix:", 0) == 0) {
    out.unix_path = spec.substr(5);
  } else if (spec.rfind("tcp:", 0) == 0) {
    const std::string port = spec.substr(4);
    char* end = nullptr;
    const long value = std::strtol(port.c_str(), &end, 10);
    if (end == port.c_str() || *end != '\0' || value < 0 || value > 65535) {
      if (error != nullptr) *error = "bad tcp port in endpoint: " + spec;
      return false;
    }
    out.tcp_port = static_cast<std::uint16_t>(value);
    return true;
  } else {
    out.unix_path = spec;
  }
  if (out.unix_path.empty()) {
    if (error != nullptr) *error = "empty unix socket path";
    return false;
  }
  sockaddr_un addr{};
  if (out.unix_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "unix socket path too long (max " +
               std::to_string(sizeof(addr.sun_path) - 1) +
               " bytes): " + out.unix_path;
    }
    return false;
  }
  return true;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket listen_endpoint(const Endpoint& endpoint) {
  if (endpoint.is_unix()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " +
                               endpoint.unix_path);
    }
    std::memcpy(addr.sun_path, endpoint.unix_path.c_str(),
                endpoint.unix_path.size() + 1);
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
      throw std::runtime_error("socket(AF_UNIX): " +
                               std::string(std::strerror(errno)));
    }
    set_cloexec(s.fd());
    ::unlink(endpoint.unix_path.c_str());  // stale socket from a dead run
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error("bind(" + endpoint.unix_path +
                               "): " + std::strerror(errno));
    }
    if (::listen(s.fd(), 64) != 0) {
      throw std::runtime_error("listen(" + endpoint.unix_path +
                               "): " + std::strerror(errno));
    }
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    throw std::runtime_error("socket(AF_INET): " +
                             std::string(std::strerror(errno)));
  }
  set_cloexec(s.fd());
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoint.tcp_port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("bind(127.0.0.1:" +
                             std::to_string(endpoint.tcp_port) +
                             "): " + std::strerror(errno));
  }
  if (::listen(s.fd(), 64) != 0) {
    throw std::runtime_error("listen: " + std::string(std::strerror(errno)));
  }
  return s;
}

std::uint16_t bound_tcp_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Socket connect_endpoint(const Endpoint& endpoint, int timeout_ms,
                        std::string* error) {
  (void)timeout_ms;  // local connects complete immediately or fail
  if (endpoint.is_unix()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return Socket();
    }
    std::memcpy(addr.sun_path, endpoint.unix_path.c_str(),
                endpoint.unix_path.size() + 1);
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid() ||
        ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "connect(" + endpoint.describe() +
                 "): " + std::strerror(errno);
      }
      return Socket();
    }
    set_cloexec(s.fd());
    tune_stream_socket(s.fd());
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoint.tcp_port);
  if (!s.valid() ||
      ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error =
          "connect(" + endpoint.describe() + "): " + std::strerror(errno);
    }
    return Socket();
  }
  set_cloexec(s.fd());
  tune_stream_socket(s.fd());
  return s;
}

Socket accept_client(const Socket& listener, int timeout_ms) {
  if (!wait_readable(listener.fd(), timeout_ms)) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  set_cloexec(fd);
  tune_stream_socket(fd);
  return Socket(fd);
}

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kAgain: return "again";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kIoError: return "io-error";
  }
  return "unknown";
}

FrameReader::FrameReader(int fd, std::size_t max_payload)
    : fd_(fd), max_payload_(max_payload) {}

void FrameReader::reset() {
  header_got_ = 0;
  payload_.clear();
  payload_got_ = 0;
  have_length_ = false;
}

FrameStatus FrameReader::poll_once(int timeout_ms) {
  if (!wait_readable(fd_, timeout_ms)) return FrameStatus::kAgain;
  // Drain what is available without blocking again; partial progress is
  // kept across calls.
  while (true) {
    if (!have_length_) {
      const ssize_t n =
          ::recv(fd_, header_ + header_got_, 4 - header_got_, 0);
      if (n == 0) {
        return header_got_ == 0 ? FrameStatus::kClosed
                                : FrameStatus::kTruncated;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return FrameStatus::kAgain;
        }
        if (errno == EINTR) continue;
        return FrameStatus::kIoError;
      }
      header_got_ += static_cast<std::size_t>(n);
      if (header_got_ < 4) return FrameStatus::kAgain;
      const std::size_t length =
          (static_cast<std::size_t>(header_[0]) << 24) |
          (static_cast<std::size_t>(header_[1]) << 16) |
          (static_cast<std::size_t>(header_[2]) << 8) |
          static_cast<std::size_t>(header_[3]);
      if (length > max_payload_) return FrameStatus::kOversized;
      have_length_ = true;
      payload_.resize(length);
      payload_got_ = 0;
      if (length == 0) return FrameStatus::kOk;
    }
    while (payload_got_ < payload_.size()) {
      const ssize_t n = ::recv(fd_, payload_.data() + payload_got_,
                               payload_.size() - payload_got_, 0);
      if (n == 0) return FrameStatus::kTruncated;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return FrameStatus::kAgain;
        }
        if (errno == EINTR) continue;
        return FrameStatus::kIoError;
      }
      payload_got_ += static_cast<std::size_t>(n);
    }
    return FrameStatus::kOk;
  }
}

FrameStatus read_frame(int fd, std::string& payload, std::size_t max_payload,
                       int timeout_ms) {
  FrameReader reader(fd, max_payload);
  while (true) {
    const FrameStatus status = reader.poll_once(timeout_ms);
    if (status == FrameStatus::kOk) {
      payload = std::move(reader.payload());
      return status;
    }
    if (status != FrameStatus::kAgain) return status;
    if (timeout_ms >= 0) return FrameStatus::kAgain;
  }
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFULL) return false;
  unsigned char header[4];
  const auto length = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>((length >> 24) & 0xFF);
  header[1] = static_cast<unsigned char>((length >> 16) & 0xFF);
  header[2] = static_cast<unsigned char>((length >> 8) & 0xFF);
  header[3] = static_cast<unsigned char>(length & 0xFF);
  std::string buffer;
  buffer.reserve(4 + payload.size());
  buffer.append(reinterpret_cast<const char*>(header), 4);
  buffer.append(payload);
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    const ssize_t n = ::send(fd, buffer.data() + sent, buffer.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace vlsipart::service
