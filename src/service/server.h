// vpartd server: long-running partitioning service.
//
// Architecture (one process, four kinds of threads):
//   * accept thread     — poll()s the listener + shutdown pipe, spawns
//                         one connection thread per client;
//   * connection threads— frame/parse requests, enqueue jobs, answer
//                         status/result/stats, enforce idle timeouts and
//                         payload caps;
//   * worker drivers    — `workers` long-lived tasks on the shared
//                         ThreadPool (one per pool slot).  Each driver
//                         owns resident engines (ML contraction scratch,
//                         flat/CLIP FM buffers) that are reused across
//                         jobs — the per-request engine warm-up cost is
//                         paid once per worker, not once per job;
//   * the caller's thread (serve_until_shutdown) — periodic stats log +
//                         shutdown latch.
//
// Admission control: a bounded queue.  A submit that would exceed
// queue_capacity is refused immediately with {"error":"overloaded"}
// (load shedding) rather than buffered without bound.  A job whose
// deadline_ms elapses while still queued is answered "expired" without
// running.
//
// Graceful drain (SIGTERM/SIGINT or {"op":"shutdown"}): new submits are
// refused with {"error":"draining"}, every already-admitted job runs to
// completion, waiting clients receive their results, then listener and
// connections close.  See stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/framing.h"
#include "src/service/instance_cache.h"
#include "src/service/metrics.h"
#include "src/service/protocol.h"
#include "src/util/thread_pool.h"

namespace vlsipart::service {

struct ServiceConfig {
  Endpoint endpoint;
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t max_payload = 4u << 20;       // 4 MiB frame cap
  int idle_timeout_ms = 30000;              // silent client -> close
  int drain_grace_ms = 2000;                // response flush on stop()
  double stats_log_interval_s = 0.0;        // 0 = no periodic log line
  std::size_t instance_cache_capacity = 8;  // resident hypergraphs
  std::size_t result_cache_capacity = 256;
  bool verbose = false;                     // per-event log lines
  /// Intra-run threads of each resident engine (1 = the serial engines;
  /// > 1 = the deterministic synchronous-round refiner / two-phase
  /// coarsener).  Results stay a pure function of the request either
  /// way, so cached and recomputed answers agree at any setting — but
  /// the two settings are different heuristics, so a deployment must
  /// pick one and keep it (see protocol.h determinism contract).
  std::size_t refine_threads = 1;
  std::size_t coarsen_threads = 1;
};

class PartitionService {
 public:
  explicit PartitionService(ServiceConfig config);
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Bind the endpoint and start accept + worker threads.  Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void start();

  /// Endpoint actually bound (resolves tcp port 0 to the real port).
  Endpoint bound_endpoint() const;

  /// Block until shutdown_requested() (signal or {"op":"shutdown"}),
  /// emitting the periodic stats log line; then drain via stop().
  /// Requires install_shutdown_handler() to have been called.
  void serve_until_shutdown();

  /// Graceful drain; idempotent.  Refuse new submits, run every admitted
  /// job to completion, flush waiting responses, close everything.
  void stop();

  const ServiceMetrics& metrics() const { return metrics_; }
  std::size_t queue_depth() const;
  /// Jobs admitted but not yet terminal (queued + running).
  std::size_t in_flight() const;

 private:
  struct Job;
  struct Connection;

  void accept_loop();
  void connection_loop(Connection* conn);
  void worker_driver(std::size_t slot);

  /// Dispatch one parsed request; returns the response (always non-null
  /// JSON) and sets *close_after for protocol violations.
  JsonValue handle_request(const JsonValue& request, Connection* conn,
                           bool* close_after);
  JsonValue handle_submit(const JsonValue& request, Connection* conn);
  JsonValue handle_status(const JsonValue& request);
  JsonValue handle_result(const JsonValue& request, Connection* conn);
  JsonValue handle_stats();

  std::shared_ptr<Job> find_job(std::int64_t id);
  JsonValue job_response(const Job& job) const;
  void finish_job(const std::shared_ptr<Job>& job, JobState state);
  void prune_jobs_locked();

  ServiceConfig config_;
  Socket listener_;
  Endpoint bound_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> conns_close_{false};

  std::thread accept_thread_;

  // Job queue + registry.
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  // guarded_by(jobs_mutex_)
  std::deque<std::shared_ptr<Job>> queue_;              // guarded_by(jobs_mutex_)
  std::uint64_t next_job_id_ = 1;                       // guarded_by(jobs_mutex_)
  std::size_t admitted_ = 0;  // queued + running          guarded_by(jobs_mutex_)
  bool workers_stop_ = false;  // guarded_by(jobs_mutex_)

  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex conns_mutex_;
  std::list<std::unique_ptr<Connection>> conns_;  // guarded_by(conns_mutex_)

  InstanceCache instances_;
  ResultCache results_;
  ServiceMetrics metrics_;
};

}  // namespace vlsipart::service
