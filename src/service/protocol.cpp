#include "src/service/protocol.h"

#include <cstdio>

#include "src/service/hash.h"

namespace vlsipart::service {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kExpired: return "expired";
  }
  return "unknown";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kExpired;
}

std::string InstanceSpec::descriptor() const {
  if (!hgr_path.empty()) return "hgr:" + hgr_path;
  if (!ispd98_path.empty()) return "ispd98:" + ispd98_path;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "@%.6g#%llu", scale,
                static_cast<unsigned long long>(gen_seed));
  return "preset:" + preset + buf;
}

bool InstanceSpec::validate(std::string* error) const {
  const int sources = static_cast<int>(!preset.empty()) +
                      static_cast<int>(!hgr_path.empty()) +
                      static_cast<int>(!ispd98_path.empty());
  if (sources != 1) {
    if (error != nullptr) {
      *error =
          "instance must name exactly one of preset / hgr_path / "
          "ispd98_path";
    }
    return false;
  }
  if (!preset.empty() && !(scale > 0.0 && scale <= 16.0)) {
    if (error != nullptr) *error = "instance.scale must be in (0, 16]";
    return false;
  }
  return true;
}

namespace {

bool get_size(const JsonValue& request, const char* key,
              std::size_t fallback, std::size_t min, std::size_t max,
              std::size_t& out, std::string* error) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) {
    out = fallback;
    return true;
  }
  const std::int64_t value = v->as_int(-1);
  if (!v->is_number() || value < static_cast<std::int64_t>(min) ||
      value > static_cast<std::int64_t>(max)) {
    if (error != nullptr) {
      *error = std::string(key) + " must be an integer in [" +
               std::to_string(min) + ", " + std::to_string(max) + "]";
    }
    return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

bool parse_submit(const JsonValue& request, SubmitRequest& out,
                  std::string* error) {
  out = SubmitRequest{};
  const JsonValue* instance = request.find("instance");
  if (instance == nullptr || !instance->is_object()) {
    if (error != nullptr) *error = "submit requires an instance object";
    return false;
  }
  if (const JsonValue* v = instance->find("preset")) {
    out.instance.preset = v->as_string();
  }
  if (const JsonValue* v = instance->find("scale")) {
    out.instance.scale = v->as_number(-1.0);
  }
  if (const JsonValue* v = instance->find("gen_seed")) {
    out.instance.gen_seed = static_cast<std::uint64_t>(v->as_int(0));
  }
  if (const JsonValue* v = instance->find("hgr_path")) {
    out.instance.hgr_path = v->as_string();
  }
  if (const JsonValue* v = instance->find("ispd98_path")) {
    out.instance.ispd98_path = v->as_string();
  }
  if (!out.instance.validate(error)) return false;

  if (!get_size(request, "k", 2, 2, 64, out.k, error)) return false;
  if (!get_size(request, "starts", 4, 1, 4096, out.starts, error)) {
    return false;
  }
  if (!get_size(request, "vcycles", 1, 0, 64, out.vcycles, error)) {
    return false;
  }
  if (const JsonValue* v = request.find("tolerance")) {
    out.tolerance = v->as_number(-1.0);
  }
  if (!(out.tolerance > 0.0 && out.tolerance < 1.0)) {
    if (error != nullptr) *error = "tolerance must be in (0, 1)";
    return false;
  }
  if (const JsonValue* v = request.find("engine")) {
    out.engine = v->as_string();
  }
  if (out.engine != "ml" && out.engine != "flat" && out.engine != "clip" &&
      out.engine != "nlevel" && out.engine != "evo") {
    if (error != nullptr) {
      *error = "engine must be one of ml|flat|clip|nlevel|evo";
    }
    return false;
  }
  if ((out.engine == "nlevel" || out.engine == "evo") && out.k != 2) {
    if (error != nullptr) {
      *error = "engine " + out.engine + " is a bipartitioner (k must be 2)";
    }
    return false;
  }
  if (!get_size(request, "population", 6, 1, 64, out.population, error)) {
    return false;
  }
  if (!get_size(request, "generations", 8, 0, 256, out.generations, error)) {
    return false;
  }
  if (const JsonValue* v = request.find("seed")) {
    out.seed = static_cast<std::uint64_t>(v->as_int(1));
  }
  if (const JsonValue* v = request.find("deadline_ms")) {
    out.deadline_ms = v->as_int(-1);
    if (out.deadline_ms < 0) {
      if (error != nullptr) *error = "deadline_ms must be >= 0";
      return false;
    }
  }
  if (const JsonValue* v = request.find("include_parts")) {
    out.include_parts = v->as_bool();
  }
  if (const JsonValue* v = request.find("use_result_cache")) {
    out.use_result_cache = v->as_bool(true);
  }
  return true;
}

JsonValue submit_to_json(const SubmitRequest& request) {
  JsonValue instance = JsonValue::object();
  if (!request.instance.preset.empty()) {
    instance.set("preset", JsonValue::string(request.instance.preset));
    instance.set("scale", JsonValue::number(request.instance.scale));
    instance.set("gen_seed", JsonValue::integer(static_cast<std::int64_t>(
                                 request.instance.gen_seed)));
  } else if (!request.instance.hgr_path.empty()) {
    instance.set("hgr_path", JsonValue::string(request.instance.hgr_path));
  } else {
    instance.set("ispd98_path",
                 JsonValue::string(request.instance.ispd98_path));
  }
  JsonValue out = JsonValue::object();
  out.set("op", JsonValue::string("submit"));
  out.set("instance", std::move(instance));
  out.set("k", JsonValue::integer(static_cast<std::int64_t>(request.k)));
  out.set("tolerance", JsonValue::number(request.tolerance));
  out.set("engine", JsonValue::string(request.engine));
  out.set("starts",
          JsonValue::integer(static_cast<std::int64_t>(request.starts)));
  out.set("vcycles",
          JsonValue::integer(static_cast<std::int64_t>(request.vcycles)));
  out.set("population",
          JsonValue::integer(static_cast<std::int64_t>(request.population)));
  out.set("generations",
          JsonValue::integer(static_cast<std::int64_t>(request.generations)));
  out.set("seed",
          JsonValue::integer(static_cast<std::int64_t>(request.seed)));
  if (request.deadline_ms > 0) {
    out.set("deadline_ms", JsonValue::integer(request.deadline_ms));
  }
  if (request.include_parts) {
    out.set("include_parts", JsonValue::boolean(true));
  }
  if (!request.use_result_cache) {
    out.set("use_result_cache", JsonValue::boolean(false));
  }
  return out;
}

std::uint64_t result_cache_key(const SubmitRequest& request,
                               std::uint64_t instance_content_hash) {
  std::uint64_t h = fnv1a64_value(instance_content_hash);
  h = fnv1a64(request.engine, h);
  h = fnv1a64_value<std::uint64_t>(request.k, h);
  h = fnv1a64_value(request.tolerance, h);
  h = fnv1a64_value<std::uint64_t>(request.starts, h);
  h = fnv1a64_value<std::uint64_t>(request.vcycles, h);
  h = fnv1a64_value<std::uint64_t>(request.population, h);
  h = fnv1a64_value<std::uint64_t>(request.generations, h);
  h = fnv1a64_value(request.seed, h);
  return h;
}

JsonValue make_error(const std::string& code, const std::string& message) {
  JsonValue out = JsonValue::object();
  out.set("ok", JsonValue::boolean(false));
  out.set("error", JsonValue::string(code));
  out.set("message", JsonValue::string(message));
  return out;
}

}  // namespace vlsipart::service
