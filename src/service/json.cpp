#include "src/service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vlsipart::service {

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::integer(std::int64_t v) {
  return number(static_cast<double>(v));
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::array() {
  JsonValue out;
  out.type_ = Type::kArray;
  return out;
}

JsonValue JsonValue::object() {
  JsonValue out;
  out.type_ = Type::kObject;
  return out;
}

bool JsonValue::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  return static_cast<std::int64_t>(number_);
}

std::string JsonValue::as_string(std::string fallback) const {
  return type_ == Type::kString ? string_ : std::move(fallback);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) found = &value;
  }
  return found;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  type_ = Type::kObject;
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {  // not representable in JSON
    out += "null";
    return;
  }
  char buf[40];
  // Integers print without a fraction so ids and cuts stay greppable.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(number_, out);
      break;
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out += ',';
        first = false;
        item.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        value.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue& out) {
    skip_whitespace();
    if (!parse_value(out, 0)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::string(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue::boolean(true);
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue::boolean(false);
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue();
          return true;
        }
        return fail("bad literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return false;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::array();
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.push(std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& value) {
    if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
    value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return fail("raw control character in string");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return fail("bad surrogate pair");
            }
          }
          append_utf8(cp, out);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("unexpected character");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return fail("malformed number");
    }
    out = JsonValue::number(value);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue();
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  JsonValue parsed;
  if (!parser.parse_document(parsed)) return false;
  out = std::move(parsed);
  return true;
}

}  // namespace vlsipart::service
