// Service observability: counters + latency histograms behind one lock.
//
// Everything here is monitoring-only — numbers reported by `stats` and
// the periodic log line — and never feeds back into partitioning
// decisions, so wall-clock readings are allowed (see the vpart_lint
// rule "wall-clock", DESIGN.md §12).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "src/service/json.h"
#include "src/util/histogram.h"

namespace vlsipart::service {

struct MetricsSnapshot {
  std::uint64_t accepted = 0;        // connections accepted
  std::uint64_t requests = 0;        // frames parsed into requests
  std::uint64_t submitted = 0;       // jobs admitted to the queue
  std::uint64_t completed = 0;       // jobs finished successfully
  std::uint64_t failed = 0;          // jobs that threw
  std::uint64_t expired = 0;         // jobs whose deadline passed queued
  std::uint64_t shed = 0;            // submits rejected: queue full
  std::uint64_t rejected = 0;        // malformed/oversized/bad requests
  std::uint64_t result_cache_hits = 0;
  std::uint64_t instance_cache_hits = 0;
  LatencyHistogram queue_wait;    // admission -> worker pickup
  LatencyHistogram latency;       // admission -> terminal state
};

class ServiceMetrics {
 public:
  void count_accepted();
  void count_request();
  void count_submitted();
  void count_completed(double queue_wait_seconds, double latency_seconds);
  void count_failed(double latency_seconds);
  void count_expired(double latency_seconds);
  void count_shed();
  void count_rejected();
  void count_result_cache_hit();
  void count_instance_cache_hit();

  MetricsSnapshot snapshot() const;

  /// stats payload members (flat; caller owns the envelope).
  JsonValue to_json() const;

  /// One structured line for the periodic server log:
  /// "vpartd stats: requests=12 done=10 ... p95=3.2ms".
  std::string log_line(std::size_t queue_depth, std::size_t in_flight) const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;  // guarded_by(mutex_)
};

}  // namespace vlsipart::service
