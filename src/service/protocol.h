// vpartd wire protocol: request/response schema over JSON frames.
//
// Ops (every request is one JSON object with an "op" member):
//   submit   enqueue a partition request; returns a job id immediately.
//   status   poll a job's state (queued/running/done/failed/expired).
//   result   fetch a job's result, optionally blocking until terminal.
//   stats    service observability snapshot (queue depth, cache hit
//            rates, latency percentiles).
//   shutdown initiate graceful drain (finish in-flight, reject new).
//
// Determinism contract: a job's result is a pure function of the submit
// body — instance spec, k, tolerance, engine, starts, vcycles, seed —
// and never of server load, worker count, batching or cache state.  The
// engines guarantee this (bit-identical multistart, DESIGN.md
// "Threading model"); the service preserves it by running every job on
// exactly one worker.  Each worker's engines use the daemon-wide
// refine_threads/coarsen_threads setting; the intra-run parallel engines
// are bit-identical at any thread count > 1, but 1 (serial FM) and > 1
// (synchronous-round engine) are different heuristics, so a deployment
// must pick one setting and keep it for results to be comparable across
// restarts.  That contract
// is also what makes the result cache sound: a repeated request may be
// answered from cache because recomputing it could not produce anything
// else.
#pragma once

#include <cstdint>
#include <string>

#include "src/service/json.h"

namespace vlsipart::service {

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kExpired,
};
const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

/// What to partition.  Exactly one source must be set: a synthetic
/// generator preset (with scale and optional generator-seed override),
/// an hMetis .hgr file, or an ISPD98 .netD/.are pair prefix.
struct InstanceSpec {
  std::string preset;
  double scale = 0.5;
  std::uint64_t gen_seed = 0;  // 0 = the preset's own default seed
  std::string hgr_path;
  std::string ispd98_path;

  /// Canonical descriptor used as the instance-cache lookup key, e.g.
  /// "preset:ibm01@0.5#0" or "hgr:/path/circuit.hgr".
  std::string descriptor() const;
  bool validate(std::string* error) const;
};

struct SubmitRequest {
  InstanceSpec instance;
  std::size_t k = 2;
  double tolerance = 0.02;
  std::string engine = "ml";  // ml | flat | clip | nlevel | evo
  std::size_t starts = 4;
  std::size_t vcycles = 1;    // k == 2, ml engine only
  /// Memetic knobs (evo engine only; ignored — but still part of the
  /// result-cache key — for every other engine).
  std::size_t population = 6;
  std::size_t generations = 8;
  std::uint64_t seed = 1;
  /// Admission-to-start budget in ms; a job still queued when it expires
  /// is answered with state "expired" instead of running.  0 = none.
  std::int64_t deadline_ms = 0;
  bool include_parts = false;
  /// Clients may opt out of the result cache (bench cold paths); the
  /// instance cache still applies.
  bool use_result_cache = true;
};

/// Parse + validate the body of a submit request.  Returns false and
/// sets *error on a malformed or out-of-range request.
bool parse_submit(const JsonValue& request, SubmitRequest& out,
                  std::string* error);

/// Client-side serializer (inverse of parse_submit).
JsonValue submit_to_json(const SubmitRequest& request);

/// Result-cache key: hash of every result-affecting request field plus
/// the *content* hash of the resolved instance (so two descriptors that
/// build identical hypergraphs share cached results).
std::uint64_t result_cache_key(const SubmitRequest& request,
                               std::uint64_t instance_content_hash);

JsonValue make_error(const std::string& code, const std::string& message);

}  // namespace vlsipart::service
