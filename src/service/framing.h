// Length-prefixed framing over local sockets for the vpartd protocol.
//
// Wire format: every message is one frame — a 4-byte big-endian payload
// length followed by that many bytes of UTF-8 JSON.  Explicit framing
// (rather than newline-delimited text) makes truncation, oversize and
// garbage detectable *before* parsing, which is what lets the server
// reject hostile or broken clients without crashing (the fuzz surface of
// the robustness tests).
//
// Transports: Unix-domain sockets (the default: filesystem permissions,
// no port allocation) with a localhost-TCP fallback for environments
// without a writable socket directory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vlsipart::service {

/// Where a service listens / a client connects.
struct Endpoint {
  std::string unix_path;        // non-empty => unix domain socket
  std::uint16_t tcp_port = 0;   // else 127.0.0.1:tcp_port

  bool is_unix() const { return !unix_path.empty(); }
  /// "unix:/run/vpartd.sock" or "tcp:127.0.0.1:7077".
  std::string describe() const;
  /// Parse "unix:PATH", "tcp:PORT", or a bare filesystem path (treated
  /// as unix).  Returns false and sets *error on a malformed spec.
  static bool parse(const std::string& spec, Endpoint& out,
                    std::string* error);
};

/// Move-only RAII socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  /// shutdown(SHUT_RDWR): unblocks a peer thread sleeping in poll/read
  /// on this fd (used by graceful drain to wake connection threads).
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Bind + listen.  Unix endpoints unlink a stale socket file first.
/// Throws std::runtime_error on failure.
Socket listen_endpoint(const Endpoint& endpoint);

/// Actual port of a listening TCP socket (resolves port 0 binds).
std::uint16_t bound_tcp_port(const Socket& listener);

/// Connect with a bounded wait.  Returns an invalid Socket and sets
/// *error on failure.
Socket connect_endpoint(const Endpoint& endpoint, int timeout_ms,
                        std::string* error);

/// Accept one client, waiting at most timeout_ms (<0 = forever).
/// Returns an invalid Socket on timeout or listener shutdown.
Socket accept_client(const Socket& listener, int timeout_ms);

enum class FrameStatus : std::uint8_t {
  kOk,         // complete frame available
  kAgain,      // timeout elapsed with the frame still incomplete
  kClosed,     // peer closed cleanly at a frame boundary
  kTruncated,  // peer closed (or errored) mid-frame
  kOversized,  // header announced a payload above the configured cap
  kIoError,    // read failure
};
const char* frame_status_name(FrameStatus status);

/// Incremental frame reader: buffers partial header/payload across
/// poll_once() calls, so a connection loop can use short poll slices
/// (to notice server shutdown) without losing bytes of a slow frame.
class FrameReader {
 public:
  FrameReader(int fd, std::size_t max_payload);

  /// Pump the socket once, waiting at most timeout_ms for readability.
  /// kOk means payload() holds a complete frame; call reset() before the
  /// next poll_once().  kAgain means "no complete frame yet" — callers
  /// decide whether accumulated idle time exceeds their budget.
  FrameStatus poll_once(int timeout_ms);

  std::string& payload() { return payload_; }
  /// True while a frame is partially read (idle at a frame boundary vs.
  /// stalled mid-frame — different timeout policies).
  bool mid_frame() const { return header_got_ > 0 || payload_got_ > 0; }
  void reset();

 private:
  int fd_;
  std::size_t max_payload_;
  unsigned char header_[4] = {0, 0, 0, 0};
  std::size_t header_got_ = 0;
  std::string payload_;
  std::size_t payload_got_ = 0;
  bool have_length_ = false;
};

/// Blocking convenience: read one whole frame, waiting at most
/// timeout_ms (<0 = forever).  Used by the client library.
FrameStatus read_frame(int fd, std::string& payload, std::size_t max_payload,
                       int timeout_ms);

/// Write one frame (header + payload), looping over partial writes.
/// Returns false on any error (EPIPE from a vanished client, send
/// timeout, ...).  Never raises SIGPIPE.
bool write_frame(int fd, std::string_view payload);

}  // namespace vlsipart::service
