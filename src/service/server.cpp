#include "src/service/server.h"

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/evo/evo_partitioner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/part/nlevel/nlevel_partitioner.h"
#include "src/service/hash.h"
#include "src/util/shutdown.h"
#include "src/util/timer.h"

namespace vlsipart::service {

// Wall-clock readings in this file (deadlines, idle timeouts, the stats
// log cadence) control *when* work is refused or reported, never *what*
// any partitioning run computes — results stay pure functions of the
// request.  det-lint: allow(wall-clock)
using ServiceClock = std::chrono::steady_clock;

struct PartitionService::Job {
  std::uint64_t id = 0;
  SubmitRequest request;
  JobState state = JobState::kQueued;
  std::string error;
  Weight cut = 0;
  std::vector<PartId> parts;
  std::string cache = "none";  // result | instance | none
  ServiceClock::time_point admitted_at;
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;      // worker wall time on this job
  double run_cpu_seconds = 0.0;  // worker thread-CPU on this job
};

struct PartitionService::Connection {
  Socket sock;
  std::thread thread;
  std::atomic<bool> busy{false};  // between frame-complete and response
  /// Jobs submitted on this connection whose terminal result has not yet
  /// been fetched here.  Graceful drain keeps the connection open (up to
  /// drain_grace_ms) while this is positive, so a client that submitted
  /// right before SIGTERM can still collect its answer.
  std::atomic<int> undelivered{0};
  std::atomic<bool> done{false};
};

namespace {

/// Resident per-worker engines.  A driver serves jobs one at a time, so
/// these are single-threaded by construction; keeping them across jobs
/// reuses the ML contraction scratch and flat-FM gain/move buffers.
struct WorkerEngines {
  std::size_t refine_threads = 1;
  std::size_t coarsen_threads = 1;
  MlPartitioner ml;
  FlatFmPartitioner flat;
  FlatFmPartitioner clip;
  NlevelPartitioner nlevel;

  WorkerEngines(std::size_t refine, std::size_t coarsen)
      : refine_threads(refine == 0 ? 1 : refine),
        coarsen_threads(coarsen == 0 ? 1 : coarsen),
        ml(make_ml_config(refine_threads, coarsen_threads)),
        flat(make_fm_config(/*clip_mode=*/false, refine_threads)),
        clip(make_fm_config(/*clip_mode=*/true, refine_threads)),
        nlevel(NlevelConfig{}) {}

  static FmConfig make_fm_config(bool clip_mode, std::size_t threads) {
    FmConfig fm;
    fm.clip = clip_mode;
    fm.exclude_oversized = clip_mode;
    fm.refine_threads = threads;
    return fm;
  }
  static FmConfig make_clip_config() {
    return make_fm_config(/*clip_mode=*/true, 1);
  }
  static MlConfig make_ml_config(std::size_t refine, std::size_t coarsen) {
    MlConfig config;
    config.refine.refine_threads = refine;
    config.coarsen.coarsen_threads = coarsen;
    return config;
  }
};

struct ExecOutcome {
  bool ok = false;
  std::string error;
  Weight cut = 0;
  std::vector<PartId> parts;
};

/// Run one request against a resolved hypergraph.  This mirrors the
/// dispatch in examples/vpart.cpp exactly, which is what makes service
/// results bit-identical to direct library calls (asserted by
/// ServiceDeterminism tests).
ExecOutcome execute_request(const SubmitRequest& req, const Hypergraph& h,
                            WorkerEngines& engines) {
  ExecOutcome out;
  if (req.k == 2) {
    PartitionProblem problem;
    problem.graph = &h;
    problem.balance = BalanceConstraint::from_tolerance(
        h.total_vertex_weight(), req.tolerance);
    MultistartResult r;
    if (req.engine == "ml") {
      r = run_hmetis_like(problem, engines.ml, req.starts, req.vcycles,
                          req.seed);
    } else if (req.engine == "nlevel") {
      r = run_multistart(problem, engines.nlevel, req.starts, req.seed);
    } else if (req.engine == "evo") {
      // population/generations are per-request, so the evo engine is
      // constructed per job (the resident ML engines it wraps are the
      // expensive part, and those live inside the EvoPartitioner anyway;
      // a run on a cold engine is bit-identical to a warm one).
      EvoConfig config;
      config.population = req.population;
      config.generations = req.generations;
      config.ml.refine.refine_threads = engines.refine_threads;
      config.ml.coarsen.coarsen_threads = engines.coarsen_threads;
      EvoPartitioner engine(config);
      r = run_multistart(problem, engine, req.starts, req.seed);
    } else {
      FlatFmPartitioner& engine =
          req.engine == "clip" ? engines.clip : engines.flat;
      r = run_multistart(problem, engine, req.starts, req.seed);
    }
    if (r.best_parts.empty()) {
      out.error = "no feasible solution found";
      return out;
    }
    const std::string violation =
        check_solution(problem, r.best_parts, r.best_cut);
    if (!violation.empty()) {
      out.error = "solution audit failed: " + violation;
      return out;
    }
    out.cut = r.best_cut;
    out.parts = std::move(r.best_parts);
  } else {
    KwayConfig config;
    config.k = req.k;
    config.tolerance = req.tolerance;
    config.use_ml = (req.engine == "ml");
    if (req.engine == "clip") config.fm = WorkerEngines::make_clip_config();
    config.fm.refine_threads = engines.refine_threads;
    config.ml.coarsen.coarsen_threads = engines.coarsen_threads;
    config.starts_per_level = req.starts;
    config.seed = req.seed;
    KwayResult r = recursive_bisection(h, config);
    out.cut = r.cut;
    out.parts = std::move(r.parts);
  }
  out.ok = true;
  return out;
}

std::int64_t elapsed_ms(ServiceClock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             ServiceClock::now() - since)  // det-lint: allow(wall-clock)
      .count();
}

}  // namespace

PartitionService::PartitionService(ServiceConfig config)
    : config_(std::move(config)),
      instances_(config_.instance_cache_capacity),
      results_(config_.result_cache_capacity) {
  if (config_.workers == 0) config_.workers = 1;
}

PartitionService::~PartitionService() { stop(); }

void PartitionService::start() {
  if (started_.exchange(true)) return;
  listener_ = listen_endpoint(config_.endpoint);
  bound_ = config_.endpoint;
  if (!bound_.is_unix()) bound_.tcp_port = bound_tcp_port(listener_);

  pool_ = std::make_unique<ThreadPool>(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    pool_->submit_with_slot([this](std::size_t slot) { worker_driver(slot); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (config_.verbose) {
    std::fprintf(stderr, "vpartd: listening on %s (%zu workers)\n",
                 bound_.describe().c_str(), config_.workers);
  }
}

Endpoint PartitionService::bound_endpoint() const { return bound_; }

void PartitionService::serve_until_shutdown() {
  // det-lint: allow(wall-clock)
  ServiceClock::time_point last_log = ServiceClock::now();
  while (!shutdown_requested()) {
    struct pollfd pfd = {};
    pfd.fd = shutdown_fd();
    pfd.events = POLLIN;
    ::poll(&pfd, 1, 200);
    if (config_.stats_log_interval_s > 0.0 &&
        static_cast<double>(elapsed_ms(last_log)) >=
            config_.stats_log_interval_s * 1000.0) {
      std::fprintf(stderr, "%s\n",
                   metrics_.log_line(queue_depth(), in_flight()).c_str());
      last_log = ServiceClock::now();  // det-lint: allow(wall-clock)
    }
  }
  if (config_.verbose) {
    std::fprintf(stderr, "vpartd: shutdown requested, draining\n");
  }
  stop();
}

void PartitionService::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  draining_.store(true);

  // 1. Every admitted job runs to completion (deadline-expired jobs are
  //    completed by being marked expired at pickup).
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait(lock, [this] { return admitted_ == 0; });
    workers_stop_ = true;
  }
  jobs_cv_.notify_all();
  pool_->wait_idle();

  // 2. Stop accepting; wake the accept poll.
  accept_stop_.store(true);
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (bound_.is_unix()) ::unlink(bound_.unix_path.c_str());

  // 3. Give connection threads mid-response a bounded grace to flush,
  //    then close the sockets under them and join.
  // det-lint: allow(wall-clock)
  const ServiceClock::time_point grace_start = ServiceClock::now();
  while (elapsed_ms(grace_start) < config_.drain_grace_ms) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      for (const auto& conn : conns_) {
        if (conn->done.load()) continue;
        if (conn->busy.load() || conn->undelivered.load() > 0) busy = true;
      }
    }
    if (!busy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  conns_close_.store(true);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  jobs_cv_.notify_all();  // wake result-waiters so they observe close
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  if (config_.verbose) {
    std::fprintf(stderr, "vpartd: drained; %s\n",
                 metrics_.log_line(0, 0).c_str());
  }
}

std::size_t PartitionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return queue_.size();
}

std::size_t PartitionService::in_flight() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return admitted_;
}

void PartitionService::accept_loop() {
  while (!accept_stop_.load()) {
    Socket client = accept_client(listener_, 200);
    if (!client.valid()) continue;
    metrics_.count_accepted();
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(client);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      // Reap finished connections so a long-lived server does not grow
      // a thread list proportional to total clients served.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void PartitionService::connection_loop(Connection* conn) {
  FrameReader reader(conn->sock.fd(), config_.max_payload);
  // det-lint: allow(wall-clock)
  ServiceClock::time_point last_activity = ServiceClock::now();
  while (!conns_close_.load()) {
    const FrameStatus status = reader.poll_once(100);
    if (status == FrameStatus::kAgain) {
      if (conns_close_.load()) break;
      const std::int64_t idle = elapsed_ms(last_activity);
      if (config_.idle_timeout_ms > 0 && !reader.mid_frame() &&
          idle >= config_.idle_timeout_ms) {
        if (config_.verbose) {
          std::fprintf(stderr, "vpartd: closing idle connection\n");
        }
        break;
      }
      // A peer stalled mid-frame gets the same budget; without this a
      // client that sends half a header and sleeps would pin the
      // connection forever.
      if (config_.idle_timeout_ms > 0 && reader.mid_frame() &&
          idle >= config_.idle_timeout_ms) {
        metrics_.count_rejected();
        write_frame(conn->sock.fd(),
                    make_error("timeout", "frame not completed in time")
                        .dump());
        break;
      }
      continue;
    }
    if (status == FrameStatus::kOversized) {
      metrics_.count_rejected();
      write_frame(
          conn->sock.fd(),
          make_error("oversized", "frame exceeds payload cap").dump());
      break;
    }
    if (status != FrameStatus::kOk) {
      // kClosed (clean), kTruncated (mid-frame hangup), kIoError: no
      // peer left to answer; just drop the connection.
      break;
    }
    conn->busy.store(true);
    JsonValue request;
    JsonValue response;
    bool close_after = false;
    std::string parse_error;
    if (!parse_json(reader.payload(), request, &parse_error)) {
      metrics_.count_rejected();
      response = make_error("bad_json", parse_error);
    } else if (!request.is_object()) {
      metrics_.count_rejected();
      response = make_error("bad_request", "request must be an object");
    } else {
      response = handle_request(request, conn, &close_after);
    }
    const bool sent = write_frame(conn->sock.fd(), response.dump());
    conn->busy.store(false);
    reader.reset();
    if (!sent || close_after) break;
    last_activity = ServiceClock::now();  // det-lint: allow(wall-clock)
  }
  conn->sock.shutdown_both();
  conn->done.store(true);
}

JsonValue PartitionService::handle_request(const JsonValue& request,
                                           Connection* conn,
                                           bool* close_after) {
  metrics_.count_request();
  const std::string op =
      request.find("op") != nullptr ? request.find("op")->as_string() : "";
  if (op == "submit") return handle_submit(request, conn);
  if (op == "status") return handle_status(request);
  if (op == "result") return handle_result(request, conn);
  if (op == "stats") return handle_stats();
  if (op == "ping") {
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(true));
    return out;
  }
  if (op == "shutdown") {
    request_shutdown();
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(true));
    out.set("draining", JsonValue::boolean(true));
    return out;
  }
  metrics_.count_rejected();
  *close_after = false;
  return make_error("bad_op", "unknown op '" + op + "'");
}

JsonValue PartitionService::handle_submit(const JsonValue& request,
                                          Connection* conn) {
  if (draining_.load()) {
    metrics_.count_rejected();
    return make_error("draining", "service is shutting down");
  }
  auto job = std::make_shared<Job>();
  std::string error;
  if (!parse_submit(request, job->request, &error)) {
    metrics_.count_rejected();
    return make_error("bad_request", error);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (queue_.size() >= config_.queue_capacity) {
      metrics_.count_shed();
      return make_error("overloaded", "admission queue is full");
    }
    job->id = next_job_id_++;
    job->admitted_at = ServiceClock::now();  // det-lint: allow(wall-clock)
    jobs_.emplace(job->id, job);
    queue_.push_back(job);
    ++admitted_;
    prune_jobs_locked();
  }
  metrics_.count_submitted();
  if (conn != nullptr) conn->undelivered.fetch_add(1);
  jobs_cv_.notify_all();

  JsonValue out = JsonValue::object();
  out.set("ok", JsonValue::boolean(true));
  out.set("job", JsonValue::integer(static_cast<std::int64_t>(job->id)));
  out.set("state", JsonValue::string(job_state_name(JobState::kQueued)));
  return out;
}

std::shared_ptr<PartitionService::Job> PartitionService::find_job(
    std::int64_t id) {
  if (id <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(static_cast<std::uint64_t>(id));
  return it == jobs_.end() ? nullptr : it->second;
}

JsonValue PartitionService::handle_status(const JsonValue& request) {
  const JsonValue* id = request.find("job");
  std::shared_ptr<Job> job =
      id != nullptr ? find_job(id->as_int(-1)) : nullptr;
  if (job == nullptr) {
    metrics_.count_rejected();
    return make_error("not_found", "unknown job id");
  }
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  JsonValue out = JsonValue::object();
  out.set("ok", JsonValue::boolean(true));
  out.set("job", JsonValue::integer(static_cast<std::int64_t>(job->id)));
  out.set("state", JsonValue::string(job_state_name(job->state)));
  return out;
}

JsonValue PartitionService::job_response(const Job& job) const {
  // Caller holds jobs_mutex_.
  JsonValue out = JsonValue::object();
  out.set("ok", JsonValue::boolean(job.state == JobState::kDone));
  out.set("job", JsonValue::integer(static_cast<std::int64_t>(job.id)));
  out.set("state", JsonValue::string(job_state_name(job.state)));
  if (job.state == JobState::kDone) {
    out.set("cut", JsonValue::integer(job.cut));
    out.set("cache", JsonValue::string(job.cache));
    out.set("queue_wait_s", JsonValue::number(job.queue_wait_seconds));
    out.set("run_s", JsonValue::number(job.run_seconds));
    out.set("run_cpu_s", JsonValue::number(job.run_cpu_seconds));
    if (job.request.include_parts) {
      JsonValue parts = JsonValue::array();
      for (const PartId p : job.parts) {
        parts.push(JsonValue::integer(p));
      }
      out.set("parts", std::move(parts));
    }
  } else if (job.state == JobState::kFailed) {
    out.set("error", JsonValue::string("job_failed"));
    out.set("message", JsonValue::string(job.error));
  } else if (job.state == JobState::kExpired) {
    out.set("error", JsonValue::string("expired"));
    out.set("message",
            JsonValue::string("deadline elapsed before a worker started"));
  }
  return out;
}

JsonValue PartitionService::handle_result(const JsonValue& request,
                                          Connection* conn) {
  const JsonValue* id = request.find("job");
  std::shared_ptr<Job> job =
      id != nullptr ? find_job(id->as_int(-1)) : nullptr;
  if (job == nullptr) {
    metrics_.count_rejected();
    return make_error("not_found", "unknown job id");
  }
  const JsonValue* wait = request.find("wait");
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  if (wait != nullptr && wait->as_bool()) {
    // Slice the wait so connection close during drain is observed.
    while (!job_state_terminal(job->state) && !conns_close_.load()) {
      jobs_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
  }
  if (job_state_terminal(job->state) && conn != nullptr) {
    // This connection no longer owes this delivery to the drain grace.
    int owed = conn->undelivered.load();
    while (owed > 0 &&
           !conn->undelivered.compare_exchange_weak(owed, owed - 1)) {
    }
  }
  if (!job_state_terminal(job->state)) {
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue::boolean(false));
    out.set("job", JsonValue::integer(static_cast<std::int64_t>(job->id)));
    out.set("state", JsonValue::string(job_state_name(job->state)));
    out.set("error", JsonValue::string("not_ready"));
    return out;
  }
  return job_response(*job);
}

JsonValue PartitionService::handle_stats() {
  JsonValue out = metrics_.to_json();
  out.set("ok", JsonValue::boolean(true));
  out.set("workers",
          JsonValue::integer(static_cast<std::int64_t>(config_.workers)));
  out.set("queue_depth",
          JsonValue::integer(static_cast<std::int64_t>(queue_depth())));
  out.set("in_flight",
          JsonValue::integer(static_cast<std::int64_t>(in_flight())));
  out.set("draining", JsonValue::boolean(draining_.load()));
  out.set("instances_resident",
          JsonValue::integer(static_cast<std::int64_t>(instances_.resident())));
  out.set("results_resident",
          JsonValue::integer(static_cast<std::int64_t>(results_.resident())));
  return out;
}

void PartitionService::finish_job(const std::shared_ptr<Job>& job,
                                  JobState state) {
  double latency = 0.0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->state = state;
    --admitted_;
    latency =
        static_cast<double>(elapsed_ms(job->admitted_at)) / 1000.0;
  }
  jobs_cv_.notify_all();
  switch (state) {
    case JobState::kDone:
      metrics_.count_completed(job->queue_wait_seconds, latency);
      break;
    case JobState::kFailed:
      metrics_.count_failed(latency);
      break;
    case JobState::kExpired:
      metrics_.count_expired(latency);
      break;
    default:
      break;
  }
}

void PartitionService::worker_driver(std::size_t slot) {
  (void)slot;
  WorkerEngines engines(config_.refine_threads, config_.coarsen_threads);
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_cv_.wait(lock,
                    [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ && drained
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
      job->queue_wait_seconds =
          static_cast<double>(elapsed_ms(job->admitted_at)) / 1000.0;
    }
    if (job->request.deadline_ms > 0 &&
        elapsed_ms(job->admitted_at) > job->request.deadline_ms) {
      finish_job(job, JobState::kExpired);
      continue;
    }
    try {
      bool instance_hit = false;
      const std::shared_ptr<const CachedInstance> instance =
          instances_.get(job->request.instance, &instance_hit);
      if (instance_hit) metrics_.count_instance_cache_hit();
      const std::uint64_t key =
          result_cache_key(job->request, instance->content_hash);
      std::shared_ptr<const CachedResult> cached;
      if (job->request.use_result_cache) cached = results_.find(key);
      const WallTimer run_timer;
      const ThreadCpuTimer cpu_timer;
      if (cached != nullptr) {
        metrics_.count_result_cache_hit();
        job->cut = cached->cut;
        job->parts = cached->parts;
        job->cache = "result";
      } else {
        ExecOutcome outcome =
            execute_request(job->request, instance->graph, engines);
        if (!outcome.ok) {
          job->error = outcome.error;
          job->run_seconds = run_timer.elapsed();
          finish_job(job, JobState::kFailed);
          continue;
        }
        job->cut = outcome.cut;
        job->parts = std::move(outcome.parts);
        job->cache = instance_hit ? "instance" : "none";
        CachedResult to_cache;
        to_cache.cut = job->cut;
        to_cache.parts = job->parts;
        results_.insert(key, std::move(to_cache));
      }
      job->run_seconds = run_timer.elapsed();
      job->run_cpu_seconds = cpu_timer.elapsed();
      finish_job(job, JobState::kDone);
    } catch (const std::exception& e) {
      job->error = e.what();
      finish_job(job, JobState::kFailed);
    } catch (...) {
      job->error = "unknown error";
      finish_job(job, JobState::kFailed);
    }
  }
}

void PartitionService::prune_jobs_locked() {
  // det-lint: holds(jobs_mutex_) — the _locked suffix is the contract.
  // Bound the registry: drop the oldest *terminal* jobs once the map
  // grows past 4096 entries (ids are monotone, so begin() is oldest).
  constexpr std::size_t kMaxJobs = 4096;
  auto it = jobs_.begin();
  while (jobs_.size() > kMaxJobs && it != jobs_.end()) {
    if (job_state_terminal(it->second->state)) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace vlsipart::service
