// Client library for the vpartd protocol.
//
// One ServiceClient wraps one connection; requests on a client are
// serial (the protocol is strict request/response per frame).  Used by
// tools/vpart_client, bench_service and the service tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/hypergraph/types.h"
#include "src/service/framing.h"
#include "src/service/json.h"
#include "src/service/protocol.h"

namespace vlsipart::service {

/// Outcome of a submit-and-wait round trip.
struct PartitionReply {
  bool ok = false;
  std::string state;        // done | failed | expired | ...
  std::string error;        // error code or transport failure
  std::string message;
  std::int64_t job = 0;
  Weight cut = 0;
  std::vector<PartId> parts;  // only when include_parts was requested
  std::string cache;          // result | instance | none
  double queue_wait_s = 0.0;
  double run_s = 0.0;
};

class ServiceClient {
 public:
  ServiceClient() = default;

  /// Connect with a bounded wait.  Returns false and sets error() on
  /// failure.
  bool connect(const Endpoint& endpoint, int timeout_ms = 5000);
  bool connected() const { return sock_.valid(); }
  void close() { sock_.close(); }
  const std::string& error() const { return error_; }

  /// One request/response round trip.  Returns false (and sets error())
  /// on transport or parse failure; protocol-level errors still return
  /// true with the error carried in the response object.
  bool request(const JsonValue& req, JsonValue& response,
               int timeout_ms = -1);

  /// submit + blocking result fetch in two frames.
  PartitionReply submit_and_wait(const SubmitRequest& req,
                                 int timeout_ms = -1);

  /// Fire-and-forget submit; returns the job id or -1.
  std::int64_t submit(const SubmitRequest& req);
  /// Blocking (wait=true) result fetch for a previously submitted job.
  PartitionReply fetch_result(std::int64_t job, int timeout_ms = -1);

  bool stats(JsonValue& response);
  bool shutdown_server();

  /// Max response payload accepted (mirrors the server's cap).
  static constexpr std::size_t kMaxPayload = 64u << 20;

 private:
  Socket sock_;
  std::string error_;
};

/// Parse a result/submit response object into a PartitionReply.
PartitionReply parse_reply(const JsonValue& response);

}  // namespace vlsipart::service
