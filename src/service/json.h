// Minimal deterministic JSON for the vpartd wire protocol.
//
// Dependency-free by design (the container bakes in no JSON library and
// the ROADMAP forbids adding one).  Objects preserve insertion order in
// a vector of pairs — not a hash map — so serialization is byte-stable
// for a given construction sequence and the determinism lint has nothing
// to flag.  The parser is bounded recursive descent with a depth cap, so
// a hostile frame cannot blow the stack; the framing layer already
// bounds payload size.  Subset notes: numbers are IEEE doubles
// (integers round-trip exactly up to 2^53 — cuts, ids and part vectors
// fit comfortably), duplicate object keys keep the last value on lookup.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vlsipart::service {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  JsonValue() = default;  // null

  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue integer(std::int64_t v);
  static JsonValue string(std::string v);
  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Scalar accessors never throw; a type mismatch yields the fallback.
  bool as_bool(bool fallback = false) const;
  double as_number(double fallback = 0.0) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  std::string as_string(std::string fallback = {}) const;

  /// Object lookup (last occurrence wins); nullptr when absent or when
  /// this value is not an object.
  const JsonValue* find(std::string_view key) const;
  /// Append a member (no replace — callers build objects once).
  JsonValue& set(std::string key, JsonValue value);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array append / access.
  JsonValue& push(JsonValue value);
  const std::vector<JsonValue>& items() const { return items_; }

  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one complete JSON document (surrounding whitespace allowed,
/// trailing garbage rejected).  Returns false and sets *error (if
/// non-null) on malformed input; `out` is reset to null first.
bool parse_json(std::string_view text, JsonValue& out, std::string* error);

}  // namespace vlsipart::service
