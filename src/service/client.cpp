#include "src/service/client.h"

namespace vlsipart::service {

bool ServiceClient::connect(const Endpoint& endpoint, int timeout_ms) {
  error_.clear();
  sock_ = connect_endpoint(endpoint, timeout_ms, &error_);
  return sock_.valid();
}

bool ServiceClient::request(const JsonValue& req, JsonValue& response,
                            int timeout_ms) {
  response = JsonValue();
  if (!sock_.valid()) {
    error_ = "not connected";
    return false;
  }
  if (!write_frame(sock_.fd(), req.dump())) {
    error_ = "send failed (server closed?)";
    sock_.close();
    return false;
  }
  std::string payload;
  const FrameStatus status =
      read_frame(sock_.fd(), payload, kMaxPayload, timeout_ms);
  if (status != FrameStatus::kOk) {
    error_ = std::string("no response: ") + frame_status_name(status);
    sock_.close();
    return false;
  }
  std::string parse_error;
  if (!parse_json(payload, response, &parse_error)) {
    error_ = "unparseable response: " + parse_error;
    return false;
  }
  return true;
}

PartitionReply parse_reply(const JsonValue& response) {
  PartitionReply reply;
  reply.ok = response.find("ok") != nullptr && response.find("ok")->as_bool();
  if (const JsonValue* v = response.find("state")) {
    reply.state = v->as_string();
  }
  if (const JsonValue* v = response.find("error")) {
    reply.error = v->as_string();
  }
  if (const JsonValue* v = response.find("message")) {
    reply.message = v->as_string();
  }
  if (const JsonValue* v = response.find("job")) reply.job = v->as_int(-1);
  if (const JsonValue* v = response.find("cut")) {
    reply.cut = static_cast<Weight>(v->as_int(0));
  }
  if (const JsonValue* v = response.find("cache")) {
    reply.cache = v->as_string();
  }
  if (const JsonValue* v = response.find("queue_wait_s")) {
    reply.queue_wait_s = v->as_number(0.0);
  }
  if (const JsonValue* v = response.find("run_s")) {
    reply.run_s = v->as_number(0.0);
  }
  if (const JsonValue* v = response.find("parts"); v != nullptr &&
                                                   v->is_array()) {
    reply.parts.reserve(v->items().size());
    for (const JsonValue& item : v->items()) {
      reply.parts.push_back(static_cast<PartId>(item.as_int(0)));
    }
  }
  return reply;
}

std::int64_t ServiceClient::submit(const SubmitRequest& req) {
  JsonValue response;
  if (!request(submit_to_json(req), response)) return -1;
  const PartitionReply reply = parse_reply(response);
  if (!reply.ok) {
    error_ = reply.error.empty() ? "submit refused" : reply.error;
    return -1;
  }
  return reply.job;
}

PartitionReply ServiceClient::fetch_result(std::int64_t job,
                                           int timeout_ms) {
  PartitionReply reply;
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::string("result"));
  req.set("job", JsonValue::integer(job));
  req.set("wait", JsonValue::boolean(true));
  JsonValue response;
  if (!request(req, response, timeout_ms)) {
    reply.error = error_;
    return reply;
  }
  return parse_reply(response);
}

PartitionReply ServiceClient::submit_and_wait(const SubmitRequest& req,
                                              int timeout_ms) {
  PartitionReply reply;
  const std::int64_t job = submit(req);
  if (job < 0) {
    reply.error = error_.empty() ? "submit failed" : error_;
    return reply;
  }
  return fetch_result(job, timeout_ms);
}

bool ServiceClient::stats(JsonValue& response) {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::string("stats"));
  return request(req, response);
}

bool ServiceClient::shutdown_server() {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::string("shutdown"));
  JsonValue response;
  return request(req, response) && response.find("ok") != nullptr &&
         response.find("ok")->as_bool();
}

}  // namespace vlsipart::service
