#include "src/service/metrics.h"

#include <cstdio>

namespace vlsipart::service {

void ServiceMetrics::count_accepted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.accepted;
}

void ServiceMetrics::count_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.requests;
}

void ServiceMetrics::count_submitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.submitted;
}

void ServiceMetrics::count_completed(double queue_wait_seconds,
                                     double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.completed;
  data_.queue_wait.record(queue_wait_seconds);
  data_.latency.record(latency_seconds);
}

void ServiceMetrics::count_failed(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.failed;
  data_.latency.record(latency_seconds);
}

void ServiceMetrics::count_expired(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.expired;
  data_.latency.record(latency_seconds);
}

void ServiceMetrics::count_shed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.shed;
}

void ServiceMetrics::count_rejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.rejected;
}

void ServiceMetrics::count_result_cache_hit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.result_cache_hits;
}

void ServiceMetrics::count_instance_cache_hit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.instance_cache_hits;
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

namespace {

JsonValue histogram_json(const LatencyHistogram& h) {
  JsonValue out = JsonValue::object();
  out.set("count",
          JsonValue::integer(static_cast<std::int64_t>(h.count())));
  out.set("mean_s", JsonValue::number(h.mean_seconds()));
  out.set("p50_s", JsonValue::number(h.quantile(0.50)));
  out.set("p95_s", JsonValue::number(h.quantile(0.95)));
  out.set("p99_s", JsonValue::number(h.quantile(0.99)));
  out.set("max_s", JsonValue::number(h.max_seconds()));
  return out;
}

}  // namespace

JsonValue ServiceMetrics::to_json() const {
  const MetricsSnapshot s = snapshot();
  JsonValue out = JsonValue::object();
  const auto add = [&out](const char* key, std::uint64_t v) {
    out.set(key, JsonValue::integer(static_cast<std::int64_t>(v)));
  };
  add("accepted", s.accepted);
  add("requests", s.requests);
  add("submitted", s.submitted);
  add("completed", s.completed);
  add("failed", s.failed);
  add("expired", s.expired);
  add("shed", s.shed);
  add("rejected", s.rejected);
  add("result_cache_hits", s.result_cache_hits);
  add("instance_cache_hits", s.instance_cache_hits);
  out.set("queue_wait", histogram_json(s.queue_wait));
  out.set("latency", histogram_json(s.latency));
  return out;
}

std::string ServiceMetrics::log_line(std::size_t queue_depth,
                                     std::size_t in_flight) const {
  const MetricsSnapshot s = snapshot();
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "vpartd stats: requests=%llu submitted=%llu done=%llu failed=%llu "
      "expired=%llu shed=%llu rejected=%llu rcache=%llu icache=%llu "
      "queue=%zu inflight=%zu",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.expired),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.result_cache_hits),
      static_cast<unsigned long long>(s.instance_cache_hits), queue_depth,
      in_flight);
  std::string line(buf);
  line += " latency{" + s.latency.summary() + "}";
  return line;
}

}  // namespace vlsipart::service
