// FNV-1a 64-bit hashing for service cache keys.
//
// Both caches of the service layer are content-addressed with this hash:
// the instance cache hashes hypergraph structure, the result cache
// hashes the canonical request (instance content hash + every
// result-affecting knob).  FNV-1a is deterministic across runs and
// platforms of the same endianness; the keys never leave the process, so
// cross-endian stability is not required.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace vlsipart::service {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t hash = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

inline std::uint64_t fnv1a64(std::string_view text,
                             std::uint64_t hash = kFnvOffset) {
  return fnv1a64(text.data(), text.size(), hash);
}

template <typename T>
inline std::uint64_t fnv1a64_value(const T& value,
                                   std::uint64_t hash = kFnvOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a64(&value, sizeof(T), hash);
}

}  // namespace vlsipart::service
