#include "src/service/instance_cache.h"

#include "src/gen/netlist_gen.h"
#include "src/io/hmetis_io.h"
#include "src/io/ispd98_io.h"
#include "src/service/hash.h"
#include "src/util/timer.h"

namespace vlsipart::service {

std::uint64_t hypergraph_content_hash(const Hypergraph& h) {
  std::uint64_t hash = fnv1a64_value<std::uint64_t>(h.num_vertices());
  hash = fnv1a64_value<std::uint64_t>(h.num_edges(), hash);
  hash = fnv1a64_value<std::uint64_t>(h.num_pins(), hash);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    hash = fnv1a64_value(h.vertex_weight(v), hash);
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    hash = fnv1a64_value(h.edge_weight(e), hash);
    const auto pins = h.pins(e);
    hash = fnv1a64(pins.data(), pins.size() * sizeof(VertexId), hash);
  }
  return hash;
}

namespace {

std::shared_ptr<const CachedInstance> build_instance(
    const InstanceSpec& spec) {
  auto built = std::make_shared<CachedInstance>();
  const WallTimer timer;
  if (!spec.hgr_path.empty()) {
    built->graph = read_hmetis_file(spec.hgr_path);
  } else if (!spec.ispd98_path.empty()) {
    built->graph = read_ispd98_files(spec.ispd98_path).hypergraph;
  } else {
    GenConfig config = preset(spec.preset).scaled(spec.scale);
    if (spec.gen_seed != 0) config.seed = spec.gen_seed;
    built->graph = generate_netlist(config);
  }
  built->content_hash = hypergraph_content_hash(built->graph);
  built->build_seconds = timer.elapsed();
  return built;
}

}  // namespace

std::shared_ptr<const CachedInstance> InstanceCache::get(
    const InstanceSpec& spec, bool* hit) {
  const std::string key = spec.descriptor();
  std::shared_future<std::shared_ptr<const CachedInstance>> future;
  std::promise<std::shared_ptr<const CachedInstance>> promise;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_use = ++use_counter_;
      future = it->second.future;
      ++hits_;
      if (hit != nullptr) *hit = true;
    } else {
      Entry entry;
      entry.future = promise.get_future().share();
      entry.last_use = ++use_counter_;
      future = entry.future;
      entries_.emplace(key, std::move(entry));
      builder = true;
      ++misses_;
      if (hit != nullptr) *hit = false;
    }
  }
  if (builder) {
    try {
      promise.set_value(build_instance(spec));
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) it->second.ready = true;
      evict_locked();
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);  // failed builds are retryable
    }
  }
  return future.get();  // rethrows the build error for waiters too
}

void InstanceCache::evict_locked() {
  // det-lint: holds(mutex_) — the _locked suffix is the contract.
  while (true) {
    std::size_t ready = 0;
    auto oldest = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) continue;
      ++ready;
      if (oldest == entries_.end() ||
          it->second.last_use < oldest->second.last_use) {
        oldest = it;
      }
    }
    if (ready <= capacity_ || oldest == entries_.end()) return;
    entries_.erase(oldest);
  }
}

std::uint64_t InstanceCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t InstanceCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t InstanceCache::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::shared_ptr<const CachedResult> ResultCache::find(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  it->second.last_use = ++use_counter_;
  ++hits_;
  return it->second.result;
}

void ResultCache::insert(std::uint64_t key, CachedResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  entry.result = std::make_shared<const CachedResult>(std::move(result));
  entry.last_use = ++use_counter_;
  while (entries_.size() > capacity_) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < oldest->second.last_use) oldest = it;
    }
    entries_.erase(oldest);
  }
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultCache::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace vlsipart::service
