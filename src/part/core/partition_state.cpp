#include "src/part/core/partition_state.h"

#include <sstream>

#include "src/util/logging.h"
#include "src/util/prefetch.h"

namespace vlsipart {

namespace {
/// Net-walk prefetch distance: far enough to cover an L2 hit, near
/// enough that the line is still resident when the walk arrives.
constexpr std::size_t kNetPrefetchDistance = 4;
}  // namespace

PartitionState::PartitionState(const Hypergraph& h)
    : h_(&h),
      parts_(h.num_vertices(), kNoPart),
      pins_in_(2 * h.num_edges(), 0) {}

void PartitionState::assign(std::span<const PartId> parts) {
  VP_CHECK(parts.size() == h_->num_vertices(), "assignment covers vertices");
  parts_.assign(parts.begin(), parts.end());
  part_weight_ = {0, 0};
  pins_in_.assign(2 * h_->num_edges(), 0);
  for (std::size_t v = 0; v < parts_.size(); ++v) {
    VP_CHECK(parts_[v] == 0 || parts_[v] == 1, "part id is 0 or 1, v=" << v);
    part_weight_[parts_[v]] += h_->vertex_weight(static_cast<VertexId>(v));
  }
  cut_ = 0;
  for (std::size_t e = 0; e < h_->num_edges(); ++e) {
    for (const VertexId v : h_->pins(static_cast<EdgeId>(e))) {
      ++pins_in_[2 * e + parts_[v]];
    }
    if (pins_in_[2 * e] > 0 && pins_in_[2 * e + 1] > 0) {
      cut_ += h_->edge_weight(static_cast<EdgeId>(e));
    }
  }
}

template <bool kRecord>
void PartitionState::move_impl(VertexId v, MoveNetCounts* counts) {
  const PartId from = parts_[v];
  VP_DCHECK(from == 0 || from == 1, "vertex assigned before move");
  const PartId to = from ^ 1;
  const Weight w = h_->vertex_weight(v);
  const auto nets = h_->incident_edges(v);
  if constexpr (kRecord) {
    counts->old_pins.resize(2 * nets.size());  // hot-path: allow(recording scratch, bounded by max net degree)
  }
  const std::size_t prefetch_end =
      nets.size() > kNetPrefetchDistance ? nets.size() - kNetPrefetchDistance
                                         : 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (i < prefetch_end) {
      // The interleaved pair (2e, 2e+1) shares an 8-byte-aligned chunk,
      // so one prefetch covers both counters of the upcoming net.
      VP_PREFETCH_WRITE(
          &pins_in_[2 * static_cast<std::size_t>(
                            nets[i + kNetPrefetchDistance])]);
    }
    const EdgeId e = nets[i];
    const std::size_t base = 2 * static_cast<std::size_t>(e);
    const std::uint32_t old_from = pins_in_[base + from];
    const std::uint32_t old_to = pins_in_[base + to];
    if constexpr (kRecord) {
      counts->old_pins[2 * i + from] = old_from;
      counts->old_pins[2 * i + to] = old_to;
    }
    pins_in_[base + from] = old_from - 1;
    pins_in_[base + to] = old_to + 1;
    // v itself is a from-side pin, so old_from >= 1 and the to side never
    // empties: cut membership flips only through old_to == 0 (newly cut)
    // or old_from == 1 (now uncut).
    const bool was_cut = old_to > 0;
    const bool now_cut = old_from > 1;
    if (was_cut != now_cut) {
      const Weight ew = h_->edge_weight(e);
      cut_ += now_cut ? ew : -ew;
    }
  }
  parts_[v] = to;
  part_weight_[from] -= w;
  part_weight_[to] += w;
}

void PartitionState::move(VertexId v) { move_impl<false>(v, nullptr); }

void PartitionState::move(VertexId v, MoveNetCounts& counts) {
  move_impl<true>(v, &counts);
}

Gain PartitionState::gain(VertexId v) const {
  const PartId from = parts_[v];
  const PartId to = from ^ 1;
  Gain g = 0;
  for (const EdgeId e : h_->incident_edges(v)) {
    const Weight ew = h_->edge_weight(e);
    const std::size_t base = 2 * static_cast<std::size_t>(e);
    if (pins_in_[base + from] == 1) g += ew;
    if (pins_in_[base + to] == 0) g -= ew;
  }
  return g;
}

void PartitionState::audit() const {
  std::array<Weight, 2> weights{0, 0};
  for (std::size_t v = 0; v < parts_.size(); ++v) {
    VP_CHECK(parts_[v] == 0 || parts_[v] == 1, "vertex assigned, v=" << v);
    weights[parts_[v]] += h_->vertex_weight(static_cast<VertexId>(v));
  }
  VP_CHECK(weights[0] == part_weight_[0] && weights[1] == part_weight_[1],
           "part weights match recomputation");
  Weight cut = 0;
  for (std::size_t e = 0; e < h_->num_edges(); ++e) {
    std::uint32_t p0 = 0;
    std::uint32_t p1 = 0;
    for (const VertexId v : h_->pins(static_cast<EdgeId>(e))) {
      if (parts_[v] == 0) {
        ++p0;
      } else {
        ++p1;
      }
    }
    VP_CHECK(p0 == pins_in_[2 * e] && p1 == pins_in_[2 * e + 1],
             "pin counts match recomputation, e=" << e);
    if (p0 > 0 && p1 > 0) cut += h_->edge_weight(static_cast<EdgeId>(e));
  }
  VP_CHECK(cut == cut_, "cut matches recomputation: incremental " << cut_
                                                                  << " vs "
                                                                  << cut);
}

Weight compute_cut(const Hypergraph& h, std::span<const PartId> parts) {
  VP_CHECK(parts.size() == h.num_vertices(), "assignment covers vertices");
  Weight cut = 0;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    bool in0 = false;
    bool in1 = false;
    for (const VertexId v : h.pins(static_cast<EdgeId>(e))) {
      if (parts[v] == 0) {
        in0 = true;
      } else {
        in1 = true;
      }
      if (in0 && in1) break;
    }
    if (in0 && in1) cut += h.edge_weight(static_cast<EdgeId>(e));
  }
  return cut;
}

std::array<Weight, 2> compute_part_weights(const Hypergraph& h,
                                           std::span<const PartId> parts) {
  std::array<Weight, 2> w{0, 0};
  for (std::size_t v = 0; v < parts.size(); ++v) {
    if (parts[v] <= 1) w[parts[v]] += h.vertex_weight(static_cast<VertexId>(v));
  }
  return w;
}

std::string check_solution(const PartitionProblem& problem,
                           std::span<const PartId> parts) {
  const Hypergraph& h = *problem.graph;
  if (parts.size() != h.num_vertices()) {
    return "assignment size mismatch";
  }
  for (std::size_t v = 0; v < parts.size(); ++v) {
    if (parts[v] != 0 && parts[v] != 1) {
      return "vertex " + std::to_string(v) + " unassigned";
    }
    if (problem.is_fixed(static_cast<VertexId>(v)) &&
        parts[v] != problem.fixed[v]) {
      return "fixed vertex " + std::to_string(v) + " moved";
    }
  }
  const auto weights = compute_part_weights(h, parts);
  if (!problem.balance.feasible(weights[0])) {
    std::ostringstream out;
    out << "balance violated: part0=" << weights[0]
        << " not in " << problem.balance.to_string();
    return out.str();
  }
  return {};
}

std::string check_solution(const PartitionProblem& problem,
                           std::span<const PartId> parts, Weight claimed_cut) {
  std::string base = check_solution(problem, parts);
  if (!base.empty()) return base;
  const Weight actual = compute_cut(*problem.graph, parts);
  if (actual != claimed_cut) {
    std::ostringstream out;
    out << "cut miscounted: claimed " << claimed_cut << " but assignment cuts "
        << actual;
    return out.str();
  }
  return {};
}

}  // namespace vlsipart
