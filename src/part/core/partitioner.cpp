#include "src/part/core/partitioner.h"

namespace vlsipart {

FlatFmPartitioner::FlatFmPartitioner(FmConfig config, std::string name,
                                     InitialScheme initial)
    : config_(config), name_(std::move(name)), initial_(initial) {
  if (name_.empty()) {
    name_ = std::string("flat-") + (config_.clip ? "clip" : "fm");
  }
}

Weight FlatFmPartitioner::run(const PartitionProblem& problem, Rng& rng,
                              std::vector<PartId>& parts) {
  parts = make_initial(problem, initial_, run_index_++, rng);
  PartitionState state(*problem.graph);
  state.assign(parts);
  FmRefiner refiner(problem, config_);
  last_result_ = refiner.refine(state, rng);
  parts = state.parts();
  return state.cut();
}

}  // namespace vlsipart
