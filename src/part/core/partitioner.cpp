#include "src/part/core/partitioner.h"

namespace vlsipart {

FlatFmPartitioner::FlatFmPartitioner(FmConfig config, std::string name,
                                     InitialScheme initial)
    : config_(config), name_(std::move(name)), initial_(initial) {
  if (name_.empty()) {
    name_ = std::string("flat-") + (config_.clip ? "clip" : "fm");
  }
}

Weight FlatFmPartitioner::run(const PartitionProblem& problem, Rng& rng,
                              std::vector<PartId>& parts) {
  return run_start(problem, rng, parts, run_index_++);
}

Weight FlatFmPartitioner::run_start(const PartitionProblem& problem, Rng& rng,
                                    std::vector<PartId>& parts,
                                    std::size_t start_index) {
  parts = make_initial(problem, initial_, start_index, rng);
  if (&problem != bound_problem_ || problem.graph != bound_graph_) {
    state_ = std::make_unique<PartitionState>(*problem.graph);
    if (config_.refine_threads > 1) {
      if (pool_ == nullptr) {
        pool_ = std::make_unique<ThreadPool>(config_.refine_threads);
      }
      parallel_refiner_ =
          std::make_unique<ParallelFmRefiner>(problem, config_, pool_.get());
    } else {
      refiner_ = std::make_unique<FmRefiner>(problem, config_);
    }
    bound_problem_ = &problem;
    bound_graph_ = problem.graph;
  }
  state_->assign(parts);
  if (parallel_refiner_ != nullptr) {
    const ParallelFmResult result = parallel_refiner_->refine(*state_, rng);
    work_.absorb(result.update_work());
    // Surface the round stats through the serial result shape so the
    // corking/diagnostic consumers keep working against either engine.
    last_result_ = FmResult{};
    last_result_.initial_cut = result.initial_cut;
    last_result_.final_cut = result.final_cut;
    last_result_.passes = result.rounds;
    last_result_.total_moves = result.total_moves;
  } else {
    last_result_ = refiner_->refine(*state_, rng);
    work_.absorb(last_result_.update_work());
  }
  parts = state_->parts();
  return state_->cut();
}

std::unique_ptr<Bipartitioner> FlatFmPartitioner::clone() const {
  return std::make_unique<FlatFmPartitioner>(config_, name_, initial_);
}

}  // namespace vlsipart
