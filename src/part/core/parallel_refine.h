// Deterministic synchronous-round parallel 2-way refinement.
//
// The serial FM engine (fm_refiner.h) is inherently sequential: every
// move depends on the gain-bucket state left by the previous one.  This
// engine trades that strict move order for round-level parallelism while
// keeping the repo's determinism bar (DESIGN.md §7): results are a pure
// function of the problem and the starting assignment — never of the
// thread count or scheduling.  Each round:
//
//   1. FREEZE    — gains of all dirty vertices are recomputed from the
//                  current PartitionState into a flat snapshot, in
//                  parallel over contiguous vertex-range shards;
//   2. PROPOSE   — each shard collects its positive-gain movable
//                  vertices (or, from an infeasible projection, the
//                  overloaded side's vertices) in ascending id order;
//   3. COMMIT    — shard buffers are concatenated in shard order (=
//                  global ascending id order, see shard.h), stably
//                  sorted by gain descending (ties stay in id order),
//                  and applied by a serial prefix scan: each legal move
//                  is applied through the PartitionState interleaved
//                  pin-count walk while the running (imbalance, cut)
//                  key is tracked, then the suffix beyond the best
//                  prefix is rolled back — moves the frozen gains
//                  mispredicted (conflicting neighbors) cost nothing;
//   4. REBUILD   — vertices whose gain the kept moves may have changed
//                  (all pins of nets incident to kept moves) are marked
//                  dirty for the next round's parallel patch.
//
// Rounds repeat while the kept prefix strictly improves the
// (imbalance, cut) key.  Every phase is either shard-parallel with a
// barrier (the pool's parallel_for_dynamic joins before the next phase
// reads) or serial, and no phase reads anything another thread writes in
// the same phase, so the execution is race-free by construction and
// bit-identical at any thread count — the property
// tests/parallel_refine_test.cpp enforces at 1/2/4/8 threads.
#pragma once

#include <mutex>
#include <span>
#include <vector>

#include "src/part/core/fm_config.h"
#include "src/part/core/fm_refiner.h"  // UpdateWork cost-model struct
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vlsipart {

/// One candidate move from the frozen gain snapshot.
struct MoveProposal {
  VertexId v = kInvalidVertex;
  Gain gain = 0;
};

/// Outcome of one prefix-scan commit.
struct CommitOutcome {
  std::size_t applied = 0;           ///< moves applied before rollback
  std::size_t kept = 0;              ///< best-prefix length after rollback
  std::size_t rejected_balance = 0;  ///< proposals refused as illegal
  std::size_t rejected_other = 0;    ///< fixed vertices / duplicates
  Weight cut_before = 0;
  Weight cut_after = 0;
};

/// Deterministic prefix-scan commit: walk `proposals` in order, apply
/// every legal move (balance-legal, or strictly imbalance-reducing when
/// the state is infeasible) through state.move(), track the
/// (imbalance, cut) key after each applied move, then roll back to the
/// earliest best prefix.  The kept move ids land in `kept_moves` in
/// application order.  Proposals naming fixed vertices or a vertex
/// already moved this commit are skipped (counted in rejected_other), so
/// arbitrary — even adversarial — proposal lists are safe: the state
/// ends feasible-or-better with a never-worse (imbalance, cut) key.
/// Deterministic: the outcome is a pure function of `state` and the
/// proposal order (callers sort by gain desc, ties by ascending id).
/// `moved_scratch`, when provided, must be all-zero and sized to the
/// vertex count; it is returned all-zero (callers reuse it round to
/// round; without it the function allocates).
CommitOutcome commit_proposals(const PartitionProblem& problem,
                               PartitionState& state,
                               std::span<const MoveProposal> proposals,
                               std::vector<VertexId>& kept_moves,
                               std::vector<std::uint8_t>* moved_scratch =
                                   nullptr);

struct ParallelRoundStats {
  std::size_t proposals = 0;
  std::size_t applied = 0;
  std::size_t kept = 0;
  std::size_t rejected_balance = 0;
  std::size_t gains_recomputed = 0;
  Weight cut_before = 0;
  Weight cut_after = 0;
};

struct ParallelFmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  std::size_t rounds = 0;
  std::size_t total_moves = 0;  ///< kept moves summed over rounds
  std::vector<ParallelRoundStats> round_stats;
  /// Kept move ids per round, recorded only when FmConfig::record_trace
  /// is set — the parallel counterpart of FmResult::pass_traces and the
  /// raw material of the thread-invariance digests.
  std::vector<std::vector<VertexId>> round_traces;

  /// Gain-recompute work expressed in the serial refiner's cost model so
  /// multistart harnesses can aggregate either engine's counters.
  UpdateWork update_work() const {
    UpdateWork w;
    for (const ParallelRoundStats& s : round_stats) {
      w.nets_walked += s.gains_recomputed;
      w.nonzero_delta_updates += s.applied;
    }
    return w;
  }
};

class ParallelFmRefiner {
 public:
  /// The problem must outlive the refiner.  `pool` (not owned, may be
  /// null) supplies the workers; the shard count equals the pool's
  /// thread count (1 when null) and, by the shard.h merge lemma, has no
  /// effect on results.
  ParallelFmRefiner(const PartitionProblem& problem, FmConfig config,
                    ThreadPool* pool);

  /// Refine `state` (fully assigned) in place.  The Rng is part of the
  /// engine interface but never consumed: synchronous rounds make no
  /// randomized decisions, which is what keeps them shard-invariant.
  ParallelFmResult refine(PartitionState& state, Rng& rng);

  const FmConfig& config() const { return config_; }

 private:
  /// Recompute snapshot gains of dirty vertices (parallel), returning
  /// the number recomputed.
  std::size_t freeze_gains(const PartitionState& state);
  /// Collect this round's proposals into proposals_ (parallel propose +
  /// deterministic shard-order merge + stable gain sort).
  void propose(const PartitionState& state);
  /// Mark every vertex whose gain a kept move may have changed.
  void mark_dirty(std::span<const VertexId> kept);

  Weight imbalance(Weight w0) const;

  const PartitionProblem* problem_;
  FmConfig config_;
  AuditConfig audit_;
  ThreadPool* pool_;  // not owned
  std::size_t shards_ = 1;

  std::vector<Gain> gain_;            ///< frozen per-vertex gain snapshot
  std::vector<std::uint8_t> dirty_;   ///< gain_[v] needs a recompute
  std::vector<std::uint8_t> movable_; ///< not fixed, not oversized-excluded
  std::vector<std::vector<MoveProposal>> shard_proposals_;
  std::vector<MoveProposal> proposals_;
  std::vector<VertexId> kept_moves_;
  std::vector<std::uint8_t> moved_scratch_;

  /// Per-round gain-recompute tally.  Workers of the freeze phase
  /// accumulate their shard counts here; integer addition commutes, so
  /// the total is scheduling-invariant even though the update order is
  /// not.  Lock discipline is checked by vpart_lint (DESIGN.md §12).
  std::mutex work_mutex_;
  std::size_t round_gains_recomputed_ = 0;  // guarded_by(work_mutex_)
};

}  // namespace vlsipart
