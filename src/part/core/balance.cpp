#include "src/part/core/balance.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace vlsipart {

BalanceConstraint BalanceConstraint::from_tolerance(Weight total_weight,
                                                    double tolerance) {
  VP_CHECK(total_weight > 0, "total weight positive");
  VP_CHECK(tolerance >= 0.0 && tolerance < 1.0, "tolerance in [0,1)");
  BalanceConstraint b;
  b.total_ = total_weight;
  const double half = 0.5 + tolerance / 2.0;
  b.max_ = static_cast<Weight>(
      std::floor(static_cast<double>(total_weight) * half));
  // Symmetric window; guarantee max >= ceil(total/2) so exact bisection
  // (up to parity) is always admissible.
  b.max_ = std::max(b.max_, (total_weight + 1) / 2);
  b.min_ = total_weight - b.max_;
  return b;
}

BalanceConstraint BalanceConstraint::from_bounds(Weight total_weight,
                                                 Weight min_part,
                                                 Weight max_part) {
  VP_CHECK(total_weight > 0, "total weight positive");
  VP_CHECK(min_part <= max_part, "min <= max");
  BalanceConstraint b;
  b.total_ = total_weight;
  b.min_ = std::max<Weight>(0, min_part);
  b.max_ = std::min(total_weight, max_part);
  return b;
}

std::string BalanceConstraint::to_string() const {
  std::ostringstream out;
  out << "[" << min_ << ", " << max_ << "] of " << total_;
  return out.str();
}

}  // namespace vlsipart
