#include "src/part/core/fm_refiner.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/part/core/invariant_audit.h"
#include "src/util/logging.h"
#include "src/util/prefetch.h"

namespace vlsipart {

namespace {
/// Pin-walk prefetch distance, and the minimum net size that pays for
/// the extra prefetch instructions.  Small nets (the 3-5 pin typical
/// case) fit the walk in flight anyway; the gather-heavy huge
/// clock/reset-class nets are where the per-pin metadata loads
/// (locked/part/bucket) miss cache and the hint overlaps them.
constexpr std::size_t kPinPrefetchDistance = 8;
constexpr std::size_t kPinPrefetchMinPins = 16;
}  // namespace

FmRefiner::FmRefiner(const PartitionProblem& problem, FmConfig config)
    : problem_(&problem),
      config_(config),
      audit_(AuditConfig::resolve(config.audit)),
      container_(problem.graph->num_vertices(), config.insert_order),
      locked_(problem.graph->num_vertices(), 0) {
  // Keys are bounded by the weighted degree for classic FM and by twice
  // the weighted degree for CLIP (cumulative delta gain = actual gain
  // minus initial gain).  Size the bucket range for the worst case.
  const Hypergraph& h = *problem.graph;
  Gain max_wdeg = 0;
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    Gain wdeg = 0;
    for (const EdgeId e : h.incident_edges(static_cast<VertexId>(v))) {
      wdeg += h.edge_weight(e);
    }
    max_wdeg = std::max(max_wdeg, wdeg);
  }
  max_abs_gain_ = 2 * max_wdeg;
  use_lookahead_ = config_.lookahead_depth > 1 && !config_.clip;
}

void FmRefiner::lookahead_vector(const PartitionState& state, VertexId v,
                                 std::vector<Gain>& out) const {
  const Hypergraph& h = *problem_->graph;
  const PartId from = state.part(v);
  const PartId to = from ^ 1;
  const auto depth = static_cast<std::size_t>(config_.lookahead_depth);
  out.assign(depth - 1, 0);  // hot-path: allow(reused scratch, bounded by lookahead depth)
  for (const EdgeId e : h.incident_edges(v)) {
    const Weight w = h.edge_weight(e);
    const std::uint32_t locked_from = locked_in_[from][e];
    const std::uint32_t locked_to = locked_in_[to][e];
    // Binding number beta_X(n): free pins of n in X, infinite (never
    // counted) when X holds a locked pin of n [30].
    if (locked_from == 0) {
      const std::uint32_t free_from = state.pins_in(e, from);
      if (free_from >= 2 && free_from <= depth) {
        out[free_from - 2] += w;  // level-k positive term, k = free_from
      }
    }
    if (locked_to == 0) {
      // Binding-number invariant: beta_to counts only *free* pins, but
      // this branch runs only when the to-side holds no locked pin of e,
      // so every to-side pin is free and the raw pin count IS the
      // binding number (no locked-pin subtraction needed).
      const std::uint32_t free_to = state.pins_in(e, to);
      if (free_to >= 1 && free_to + 1 <= depth) {
        out[free_to - 1] -= w;  // level-(free_to+1) negative term
      }
    }
  }
}

VertexId FmRefiner::lookahead_pick(const PartitionState& state,
                                   VertexId head) const {
  VertexId best = kInvalidVertex;
  std::vector<Gain>& best_vec = la_best_vec_;
  std::vector<Gain>& vec = la_vec_;
  best_vec.clear();
  std::size_t scanned = 0;
  for (VertexId v = head;
       v != kInvalidVertex && scanned < config_.lookahead_scan_limit;
       v = container_.next_in_bucket(v), ++scanned) {
    if (!move_allowed(state, v)) continue;
    lookahead_vector(state, v, vec);
    if (best == kInvalidVertex || vec > best_vec) {
      best = v;
      best_vec = vec;
    }
  }
  return best;
}

void FmRefiner::run_in_pass_audit(const PartitionState& state) const {
  FmAuditView view;
  view.problem = problem_;
  view.config = &config_;
  view.state = &state;
  view.container = &container_;
  view.initial_gain = initial_gain_;
  view.locked = locked_;
  view.locked_in = use_lookahead_ ? &locked_in_ : nullptr;
  audit_mid_pass(view);  // hot-path: allow(audit mode only, disabled in timed runs)
}

Weight FmRefiner::imbalance(Weight w0) const {
  const BalanceConstraint& b = problem_->balance;
  if (w0 < b.min_part()) return b.min_part() - w0;
  if (w0 > b.max_part()) return w0 - b.max_part();
  return 0;
}

bool FmRefiner::move_allowed(const PartitionState& state, VertexId v) const {
  const Weight w = problem_->graph->vertex_weight(v);
  const Weight w0 = state.part_weight(0);
  const PartId from = state.part(v);
  if (problem_->balance.move_legal(w0, w, from)) return true;
  // Recovery rule: from an infeasible state, allow any move that strictly
  // reduces the balance violation (needed when a coarse solution projects
  // to an infeasible fine solution during uncoarsening).
  const Weight new_w0 = (from == 0) ? w0 - w : w0 + w;
  return imbalance(new_w0) < imbalance(w0);
}

FmRefiner::Candidate FmRefiner::select_from_side(const PartitionState& state,
                                                 PartId side) const {
  Candidate cand;
  if (container_.size(side) == 0) return cand;
  Gain key = container_.max_key(side);
  while (key >= container_.min_representable_key()) {
    VertexId v = container_.bucket_head(side, key);
    if (v == kInvalidVertex) {
      key = container_.next_nonempty_below(side, key);
      continue;
    }
    if (use_lookahead_) {
      // Krishnamurthy tie-breaking [30]: among the (equal-key) moves at
      // the top of this bucket, take the legal one with the largest
      // level-2..r lookahead vector.
      const VertexId pick = lookahead_pick(state, v);
      if (pick != kInvalidVertex) {
        cand.v = pick;
        cand.key = key;
        cand.valid = true;
        return cand;
      }
      if (config_.illegal_head == IllegalHeadPolicy::kSkipSide) return cand;
      key = container_.next_nonempty_below(side, key);
      continue;
    }
    // "FM-based partitioners typically look at only the first move in a
    // bucket" (Sec. 2.3): if the head is illegal, skip the bucket (or the
    // whole side), unless look_beyond_first walks the list.
    while (v != kInvalidVertex) {
      if (move_allowed(state, v)) {
        cand.v = v;
        cand.key = key;
        cand.valid = true;
        return cand;
      }
      if (!config_.look_beyond_first) break;
      v = container_.next_in_bucket(v);
    }
    if (!config_.look_beyond_first &&
        config_.illegal_head == IllegalHeadPolicy::kSkipSide) {
      return cand;  // abandon the side entirely
    }
    key = container_.next_nonempty_below(side, key);
  }
  return cand;
}

FmRefiner::Candidate FmRefiner::select_move(const PartitionState& state,
                                            PartId last_from) const {
  const Candidate c0 = select_from_side(state, 0);
  const Candidate c1 = select_from_side(state, 1);
  if (!c0.valid) return c1;
  if (!c1.valid) return c0;
  if (c0.key != c1.key) return c0.key > c1.key ? c0 : c1;
  // Equal highest keys on both sides: the tie-break the paper studies.
  switch (config_.tie_break) {
    case TieBreak::kPart0:
      return c0;
    case TieBreak::kAway:
      // Prefer the side that is NOT the last move's source; before any
      // move has been made, fall back to partition 0 (deterministic).
      if (last_from == kNoPart) return c0;
      return last_from == 0 ? c1 : c0;
    case TieBreak::kToward:
      if (last_from == kNoPart) return c0;
      return last_from == 0 ? c0 : c1;
  }
  return c0;
}

// hot-path: root
FmPassStats FmRefiner::run_pass(PartitionState& state, Rng& rng) {
  const Hypergraph& h = *problem_->graph;
  const std::size_t n = h.num_vertices();
  FmPassStats stats;
  stats.cut_before = state.cut();

  container_.reset(max_abs_gain_);
  std::fill(locked_.begin(), locked_.end(), 0);
  move_order_.clear();
  current_trace_.clear();
  if (use_lookahead_) {
    locked_in_[0].assign(h.num_edges(), 0);  // hot-path: allow(per-pass reset of reused buffer)
    locked_in_[1].assign(h.num_edges(), 0);  // hot-path: allow(per-pass reset of reused buffer)
    // Fixed and excluded vertices never move: treat them as locked so
    // binding numbers see them as immovable pins.
    for (std::size_t v = 0; v < n; ++v) {
      const auto vid = static_cast<VertexId>(v);
      const bool immovable =
          problem_->is_fixed(vid) ||
          (config_.exclude_oversized &&
           h.vertex_weight(vid) > problem_->balance.window());
      if (!immovable) continue;
      for (const EdgeId e : h.incident_edges(vid)) {
        ++locked_in_[state.part(vid)][e];
      }
    }
  }

  // Build the gain container.  Fixed vertices never enter; oversized
  // vertices are excluded when the corking fix is on.
  const Weight window = problem_->balance.window();
  std::vector<VertexId>& order = build_order_;
  order.resize(n);  // hot-path: allow(per-pass reset of reused buffer)
  std::iota(order.begin(), order.end(), 0);
  std::vector<Gain>& initial_gain = initial_gain_;
  initial_gain.assign(n, 0);  // hot-path: allow(per-pass reset of reused buffer)
  for (std::size_t v = 0; v < n; ++v) {
    initial_gain[v] = state.gain(static_cast<VertexId>(v));
  }
  if (config_.clip) {
    // CLIP builds the zero-gain buckets with the highest-initial-gain
    // cells at the heads [15]: insert in ascending initial-gain order so
    // head-insertion leaves the largest at the front.
    std::stable_sort(order.begin(), order.end(),  // hot-path: allow(CLIP bucket build, once per pass)
                     [&](VertexId a, VertexId b) {
                       return initial_gain[a] < initial_gain[b];
                     });
  }
  for (const VertexId v : order) {
    if (problem_->is_fixed(v)) continue;
    if (config_.exclude_oversized && h.vertex_weight(v) > window) {
      ++stats.oversized_excluded;
      continue;
    }
    if (config_.clip) {
      // Faithful CLIP head ordering (highest initial gain at the head of
      // the zero-gain bucket) requires head insertion for the initial
      // build regardless of the update-time insertion policy.
      container_.insert_at_head(v, state.part(v), /*key=*/0);
    } else {
      container_.insert(v, state.part(v), initial_gain[v], rng);
    }
  }

  // A freshly built container must agree with a from-scratch recompute
  // before the first move — catches build-time bugs at the source.
  if (audit_.enabled()) run_in_pass_audit(state);

  // Best-prefix tracking.  Key = (imbalance, cut); tie-break per policy.
  Weight best_cut = stats.cut_before;
  Weight best_imb = imbalance(state.part_weight(0));
  auto slack = [&]() {
    const Weight w0 = state.part_weight(0);
    return std::min(problem_->balance.max_part() - w0,
                    w0 - problem_->balance.min_part());
  };
  Weight best_slack = slack();
  std::size_t best_prefix = 0;
  std::size_t moves_since_best = 0;
  PartId last_from = kNoPart;

  // Under the All-dgain policy even a zero-delta neighbor is reinserted
  // (shuffling its bucket position and consuming rng), so every incident
  // net must be walked.  Under Nonzero, a zero-delta walk is a no-op and
  // non-critical nets can be skipped wholesale.
  const bool can_skip_noncritical =
      config_.zero_gain_update != ZeroGainUpdate::kAll;
  MoveNetCounts& moved = move_counts_;

  while (true) {
    const Candidate cand = select_move(state, last_from);
    if (!cand.valid) {
      stats.stalled = !container_.empty();
      break;
    }
    const VertexId v = cand.v;
    const PartId from = state.part(v);

    container_.remove(v);
    locked_[v] = 1;

    // Apply the move — recording each incident net's pre-move pin counts
    // in the same walk — then run the "four cut values" delta-gain
    // update for every free vertex on every *critical* incident net
    // (Sec. 2.2).
    const auto nets = h.incident_edges(v);
    state.move(v, moved);
    last_from = from;
    move_order_.push_back(v);  // hot-path: allow(move log, geometric growth amortized over passes)
    ++stats.moves_made;
    if (use_lookahead_) {
      // v is now locked on its destination side.
      for (const EdgeId e : nets) {
        ++locked_in_[from ^ 1][e];
      }
    }

    for (std::size_t i = 0; i < nets.size(); ++i) {
      const EdgeId e = nets[i];
      const std::uint32_t old_pins[2] = {moved.old_in(i, 0),
                                         moved.old_in(i, 1)};
      // Net-state filter: if the source side keeps >= 2 pins after the
      // move (old >= 3) and the destination side already had >= 2, the
      // net is non-critical before AND after — every pin's "four cut
      // values" delta is provably zero, so the O(pins) walk is pure
      // overhead.  This turns huge clock/reset-class nets from O(pins)
      // per move into O(1) for almost every move.
      if (can_skip_noncritical && old_pins[from] >= 3 &&
          old_pins[from ^ 1] >= 2) {
        ++stats.nets_skipped_noncritical;
        continue;
      }
      ++stats.nets_walked;
      const Weight ew = h.edge_weight(e);
      // Post-move counts derive from the recorded pre-move counts (the
      // source side lost v, the destination gained it) — the scattered
      // per-net counter re-reads the loop used to do are gone; the walk
      // runs entirely off the dense MoveNetCounts stream.
      std::uint32_t new_pins[2];
      new_pins[from] = old_pins[from] - 1;
      new_pins[from ^ 1] = old_pins[from ^ 1] + 1;
      const auto pins = h.pins(e);
      const std::size_t prefetch_end =
          pins.size() >= kPinPrefetchMinPins
              ? pins.size() - kPinPrefetchDistance
              : 0;
      for (std::size_t j = 0; j < pins.size(); ++j) {
        if (j < prefetch_end) {
          const VertexId ahead = pins[j + kPinPrefetchDistance];
          container_.prefetch(ahead);
          VP_PREFETCH_READ(&locked_[ahead]);
          VP_PREFETCH_READ(&state.parts()[ahead]);
        }
        const VertexId y = pins[j];
        if (y == v || locked_[y] || !container_.contains(y)) continue;
        const PartId py = state.part(y);
        const PartId qy = py ^ 1;
        const Gain old_contrib = (old_pins[py] == 1 ? ew : 0) -
                                 (old_pins[qy] == 0 ? ew : 0);
        const Gain new_contrib = (new_pins[py] == 1 ? ew : 0) -
                                 (new_pins[qy] == 0 ? ew : 0);
        const Gain delta = new_contrib - old_contrib;
        if (delta != 0) {
          container_.update_key(y, delta, rng);
          ++stats.nonzero_delta_updates;
        } else if (config_.zero_gain_update == ZeroGainUpdate::kAll) {
          container_.reinsert(y, rng);
          ++stats.zero_delta_updates;
        }
      }
    }

    // Best-prefix bookkeeping.
    const Weight cut = state.cut();
    if (config_.record_trace) current_trace_.push_back(cut);  // hot-path: allow(trace recording, reused buffer)
    const Weight imb = imbalance(state.part_weight(0));
    const Weight slk = slack();
    bool better = false;
    if (imb != best_imb) {
      better = imb < best_imb;
    } else if (cut != best_cut) {
      better = cut < best_cut;
    } else {
      switch (config_.best_choice) {
        case BestChoice::kFirst:
          better = false;
          break;
        case BestChoice::kLast:
          better = true;
          break;
        case BestChoice::kBalance:
          better = slk > best_slack;
          break;
      }
    }
    if (audit_.mode == AuditMode::kPerMoves &&
        stats.moves_made % audit_.every_moves == 0) {
      run_in_pass_audit(state);
    }

    if (better) {
      best_cut = cut;
      best_imb = imb;
      best_slack = slk;
      best_prefix = move_order_.size();
      moves_since_best = 0;
    } else {
      ++moves_since_best;
      if (config_.max_moves_past_best > 0 &&
          moves_since_best >= config_.max_moves_past_best) {
        stats.stalled = !container_.empty();
        break;
      }
    }
  }

  // The container (and, under lookahead, the locked-pin counts) must
  // still agree with a from-scratch recompute at the end of the move
  // sequence — every delta-gain update of the pass is on trial here.
  if (audit_.enabled()) run_in_pass_audit(state);

  // Roll back to the best prefix.
  for (std::size_t i = move_order_.size(); i > best_prefix; --i) {
    state.move(move_order_[i - 1]);
  }
  stats.moves_kept = best_prefix;
  stats.cut_after = state.cut();
  stats.zero_move_pass = (stats.moves_made == 0);
  return stats;
}

FmResult FmRefiner::refine(PartitionState& state, Rng& rng) {
  FmResult result;
  result.initial_cut = state.cut();
  int pass_count = 0;
  Weight imb_before = imbalance(state.part_weight(0));
  while (true) {
    FmPassStats stats = run_pass(state, rng);
    ++pass_count;
    result.total_moves += stats.moves_made;
    if (stats.zero_move_pass) ++result.zero_move_passes;
    if (stats.stalled) ++result.stalled_passes;
    if (audit_.enabled()) {
      // Re-derive pin counts, cut and weights from the assignment and
      // hold the pass to its rollback guarantees (never-worse balance
      // violation; never-worse cut at equal violation).
      audit_pass_boundary(*problem_, state, imb_before, stats.cut_before);
    }
    const Weight imb_after = imbalance(state.part_weight(0));
    // Keep passing while the pass improved either the balance violation
    // or (at equal violation) the cut.
    const bool improved =
        stats.moves_kept > 0 &&
        (imb_after < imb_before ||
         (imb_after == imb_before && stats.cut_after < stats.cut_before));
    imb_before = imb_after;
    result.pass_stats.push_back(std::move(stats));
    if (config_.record_trace) {
      result.pass_traces.push_back(std::move(current_trace_));
      current_trace_.clear();
    }
    if (!improved) break;
    if (config_.max_passes > 0 && pass_count >= config_.max_passes) break;
  }
  result.passes = static_cast<std::size_t>(pass_count);
  result.final_cut = state.cut();
  return result;
}

}  // namespace vlsipart
