#include "src/part/core/gain_container.h"

#include <algorithm>

#include "src/util/logging.h"

namespace vlsipart {

GainContainer::GainContainer(std::size_t num_vertices, InsertOrder order)
    : order_(order),
      prev_(num_vertices, kInvalidVertex),
      next_(num_vertices, kInvalidVertex),
      key_(num_vertices, 0),
      side_(num_vertices, 0),
      in_(num_vertices, 0) {}

void GainContainer::reset(Gain max_abs_key) {
  VP_CHECK(max_abs_key >= 0, "key bound nonnegative");
  max_abs_key_ = max_abs_key;
  const std::size_t buckets = static_cast<std::size_t>(2 * max_abs_key + 1);
  for (int s = 0; s < 2; ++s) {
    if (head_[s].size() != buckets) {
      // First reset, or the key range changed: full (re)initialization.
      head_[s].assign(buckets, kInvalidVertex);
      tail_[s].assign(buckets, kInvalidVertex);
    } else {
      // Sparse reset: only slots touched since the previous reset can be
      // nonempty.  The key range is O(max weighted degree) — with wide
      // power-law edge weights it dwarfs the few hundred keys a pass
      // actually uses, so clearing every slot per pass is the dominant
      // reset cost this path avoids.
      for (const std::size_t idx : touched_[s]) {
        head_[s][idx] = kInvalidVertex;
        tail_[s][idx] = kInvalidVertex;
      }
    }
    touched_[s].clear();
    max_index_[s] = 0;
    count_[s] = 0;
  }
  std::fill(in_.begin(), in_.end(), 0);
}

void GainContainer::push(VertexId v, PartId side, Gain key, bool at_head) {
  VP_DCHECK(key >= -max_abs_key_ && key <= max_abs_key_,
            "key " << key << " within representable range " << max_abs_key_);
  const std::size_t idx = index_of(key);
  key_[v] = key;
  side_[v] = side;
  in_[v] = 1;
  ++count_[side];
  VertexId& head = head_[side][idx];
  VertexId& tail = tail_[side][idx];
  if (head == kInvalidVertex) {
    // Slot transitions empty -> nonempty: remember it for the sparse
    // reset.  A slot emptied and refilled within one pass may appear
    // twice; clearing twice is harmless and the list stays bounded by
    // the number of pushes.
    touched_[side].push_back(idx);
    head = tail = v;
    prev_[v] = next_[v] = kInvalidVertex;
  } else if (at_head) {
    prev_[v] = kInvalidVertex;
    next_[v] = head;
    prev_[head] = v;
    head = v;
  } else {
    next_[v] = kInvalidVertex;
    prev_[v] = tail;
    next_[tail] = v;
    tail = v;
  }
  max_index_[side] = std::max(max_index_[side], idx);
}

void GainContainer::unlink(VertexId v) {
  const PartId side = side_[v];
  const std::size_t idx = index_of(key_[v]);
  if (prev_[v] != kInvalidVertex) {
    next_[prev_[v]] = next_[v];
  } else {
    head_[side][idx] = next_[v];
  }
  if (next_[v] != kInvalidVertex) {
    prev_[next_[v]] = prev_[v];
  } else {
    tail_[side][idx] = prev_[v];
  }
  prev_[v] = next_[v] = kInvalidVertex;
  in_[v] = 0;
  --count_[side];
}

bool GainContainer::pick_head(Rng& rng) const {
  switch (order_) {
    case InsertOrder::kLifo:
      return true;
    case InsertOrder::kFifo:
      return false;
    case InsertOrder::kRandom:
      return rng.bernoulli(0.5);
  }
  return true;
}

void GainContainer::insert(VertexId v, PartId side, Gain key, Rng& rng) {
  VP_DCHECK(!in_[v], "vertex not already contained");
  push(v, side, key, pick_head(rng));
}

void GainContainer::insert_at_head(VertexId v, PartId side, Gain key) {
  VP_DCHECK(!in_[v], "vertex not already contained");
  push(v, side, key, /*at_head=*/true);
}

void GainContainer::remove(VertexId v) {
  VP_DCHECK(in_[v], "vertex contained before removal");
  unlink(v);
}

void GainContainer::update_key(VertexId v, Gain delta, Rng& rng) {
  VP_DCHECK(in_[v], "vertex contained before key update");
  const PartId side = side_[v];
  Gain new_key = key_[v] + delta;
  // Clamp defensively: with CLIP keys (cumulative delta gain) the bound
  // is 2x the weighted degree, which reset() is sized for; clamping
  // preserves ordering at the extremes rather than corrupting memory.
  new_key = std::clamp(new_key, -max_abs_key_, max_abs_key_);
  unlink(v);
  push(v, side, new_key, pick_head(rng));
}

void GainContainer::reinsert(VertexId v, Rng& rng) {
  VP_DCHECK(in_[v], "vertex contained before reinsert");
  const PartId side = side_[v];
  const Gain key = key_[v];
  unlink(v);
  push(v, side, key, pick_head(rng));
}

Gain GainContainer::max_key(PartId side) const {
  VP_CHECK(count_[side] > 0, "side nonempty for max_key");
  std::size_t idx = max_index_[side];
  while (head_[side][idx] == kInvalidVertex) {
    VP_DCHECK(idx > 0, "nonempty side has a nonempty bucket");
    --idx;
  }
  max_index_[side] = idx;
  return static_cast<Gain>(idx) - max_abs_key_;
}

Gain GainContainer::next_nonempty_below(PartId side, Gain key) const {
  Gain k = key - 1;
  while (k >= -max_abs_key_) {
    if (head_[side][index_of(k)] != kInvalidVertex) return k;
    --k;
  }
  return -max_abs_key_ - 1;
}

VertexId GainContainer::bucket_head(PartId side, Gain key) const {
  if (key < -max_abs_key_ || key > max_abs_key_) return kInvalidVertex;
  return head_[side][index_of(key)];
}

}  // namespace vlsipart
