// Structure-of-arrays bucket-list kernel shared by the 2-way and k-way
// FM refiners.
//
// Layout.  One flat id space holds both real vertices and bucket
// sentinels:
//
//     id:      0 .. n-1                  n .. n + kGroups*stride - 1
//              vertices                  one sentinel per bucket slot
//
// where stride = 2*max_abs_key + 1 buckets per group (group = FM side,
// or the single k-way candidate pool) and slot (g, key) has flat index
// g*stride + (key + max_abs_key).  `next_`/`prev_` are parallel arrays
// over the whole id space; each bucket is a circular doubly-linked list
// threaded through its sentinel, so an empty bucket is simply a
// sentinel pointing at itself.  The only other per-vertex state is
// `bucket_`, the flat slot a contained vertex currently occupies
// (kNoSlot when absent) — key and group are derived from it, which
// deletes the per-vertex key/side/contained arrays of the previous
// node-based container and shrinks the hot per-vertex record to 12
// bytes across three parallel arrays.
//
// The sentinel encoding makes the three hot operations branchless:
//
//     erase:       next[prev[v]] = next[v]; prev[next[v]] = prev[v]
//     push_front:  splice v between sentinel and next[sentinel]
//     push_back:   splice v between prev[sentinel] and sentinel
//
// No head/tail/empty tests anywhere — the sentinel is always a valid
// neighbor.  Iteration from the head ends when the walk reaches an id
// >= n (the sentinel), which `next()` maps back to kInvalidVertex.
//
// reset() is O(touched + contained), not O(key range): slots that
// transitioned empty -> nonempty since the previous reset are recorded,
// and resetting walks exactly those lists (clearing each member's
// `bucket_` entry) and re-points their sentinels.  The key range is
// O(max weighted degree), which with wide power-law edge weights dwarfs
// the few hundred slots a pass actually uses.
//
// Max-key queries amortize over a per-group max cursor that only
// descends between insertions (the classic FM bucket-array scheme).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/hypergraph/types.h"
#include "src/util/checked_narrow.h"
#include "src/util/logging.h"
#include "src/util/prefetch.h"

namespace vlsipart {

template <int kGroups>
class BucketArray {
  static_assert(kGroups == 1 || kGroups == 2,
                "BucketArray supports the single-pool (k-way) and "
                "two-sided (2-way FM) shapes");

 public:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  explicit BucketArray(std::size_t num_vertices)
      : n_(num_vertices), bucket_(num_vertices, kNoSlot) {}

  /// Clear and size buckets for keys in [-max_abs_key, max_abs_key].
  /// O(touched + contained) when the key range is unchanged.
  void reset(Gain max_abs_key) {
    VP_CHECK(max_abs_key >= 0, "key bound nonnegative");
    max_abs_key_ = max_abs_key;
    const auto stride = static_cast<std::size_t>(2 * max_abs_key + 1);
    const std::size_t total = n_ + kGroups * stride;
    VP_CHECK(total < static_cast<std::size_t>(kInvalidVertex),
             "vertex + bucket-sentinel id space fits VertexId");
    if (stride != stride_ || next_.size() != total) {
      // First reset, or the key range changed: full (re)initialization.
      // Vertex entries of next_/prev_ need no init — they are written
      // before they are read (on push).
      stride_ = stride;
      next_.resize(total);  // hot-path: allow(reset is per-pass setup; buffers reused across passes)
      prev_.resize(total);  // hot-path: allow(reset is per-pass setup; buffers reused across passes)
      for (std::size_t s = n_; s < total; ++s) {
        next_[s] = static_cast<VertexId>(s);
        prev_[s] = static_cast<VertexId>(s);
      }
      std::fill(bucket_.begin(), bucket_.end(), kNoSlot);
    } else {
      // Sparse reset: only slots that went empty -> nonempty since the
      // previous reset can hold vertices.  Walking their lists clears
      // the membership of everything still contained, so no O(n) sweep
      // of bucket_ is needed either.  A slot emptied and refilled
      // within one pass may appear twice; the second walk sees an
      // already-empty list.
      for (const std::uint32_t flat : touched_) {
        const auto s = static_cast<VertexId>(n_ + flat);
        for (VertexId u = next_[s]; u != s; u = next_[u]) {
          bucket_[u] = kNoSlot;
        }
        next_[s] = s;
        prev_[s] = s;
      }
    }
    touched_.clear();
    for (int g = 0; g < kGroups; ++g) {
      max_index_[g] = 0;
      count_[g] = 0;
    }
  }

  /// Insert v at the head of bucket (group, key).  v must be absent.
  // hot-path: root
  void push_front(VertexId v, int group, Gain key) {
    const std::size_t idx = checked_index(v, key);
    // reset() proved the whole sentinel id space fits VertexId, so the
    // flat slot index is representable in 32 bits.
    const auto flat = vp::checked_narrow<std::uint32_t>(
        static_cast<std::size_t>(group) * stride_ + idx);
    const auto sent = static_cast<VertexId>(n_ + flat);
    const VertexId head = next_[sent];
    if (head == sent) touched_.push_back(flat);  // hot-path: allow(touched-slot log, reused buffer, one entry per nonempty slot per pass)
    bucket_[v] = flat;
    ++count_[group];
    next_[v] = head;
    prev_[v] = sent;
    prev_[head] = v;
    next_[sent] = v;
    max_index_[group] = std::max(max_index_[group], idx);
  }

  /// Insert v at the tail of bucket (group, key).  v must be absent.
  // hot-path: root
  void push_back(VertexId v, int group, Gain key) {
    const std::size_t idx = checked_index(v, key);
    // reset() proved the whole sentinel id space fits VertexId, so the
    // flat slot index is representable in 32 bits.
    const auto flat = vp::checked_narrow<std::uint32_t>(
        static_cast<std::size_t>(group) * stride_ + idx);
    const auto sent = static_cast<VertexId>(n_ + flat);
    const VertexId tail = prev_[sent];
    if (tail == sent) touched_.push_back(flat);  // hot-path: allow(touched-slot log, reused buffer, one entry per nonempty slot per pass)
    bucket_[v] = flat;
    ++count_[group];
    prev_[v] = tail;
    next_[v] = sent;
    next_[tail] = v;
    prev_[sent] = v;
    max_index_[group] = std::max(max_index_[group], idx);
  }

  /// Remove v (must be contained).  Branchless splice.
  // hot-path: root
  void erase(VertexId v) {
    VP_DCHECK(contains(v), "vertex contained before removal");
    const VertexId a = prev_[v];
    const VertexId b = next_[v];
    next_[a] = b;
    prev_[b] = a;
    --count_[group_of(v)];
    bucket_[v] = kNoSlot;
  }

  /// Move a contained vertex to the bucket of `new_key` within its
  /// current group, placing it at the head (front) or tail.  Equivalent
  /// to erase() + push_front/push_back, but writes each parallel array
  /// once and leaves the group count untouched — the hot sequence of
  /// every delta-gain update.
  // hot-path: root
  void move_to(VertexId v, Gain new_key, bool front) {
    VP_DCHECK(contains(v), "vertex contained before move_to");
    VP_DCHECK(new_key >= -max_abs_key_ && new_key <= max_abs_key_,
              "key " << new_key << " within representable range "
                     << max_abs_key_);
    const int group = group_of(v);
    const auto idx = static_cast<std::size_t>(new_key + max_abs_key_);
    const auto flat = static_cast<std::uint32_t>(
        static_cast<std::size_t>(group) * stride_ + idx);
    const auto sent = static_cast<VertexId>(n_ + flat);
    // Unlink first: v may already sit in the destination bucket, and the
    // splice below must read the post-unlink head/tail.
    const VertexId a = prev_[v];
    const VertexId b = next_[v];
    next_[a] = b;
    prev_[b] = a;
    if (front) {
      const VertexId head = next_[sent];
      if (head == sent) touched_.push_back(flat);  // hot-path: allow(touched-slot log, reused buffer, one entry per nonempty slot per pass)
      next_[v] = head;
      prev_[v] = sent;
      prev_[head] = v;
      next_[sent] = v;
    } else {
      const VertexId tail = prev_[sent];
      if (tail == sent) touched_.push_back(flat);  // hot-path: allow(touched-slot log, reused buffer, one entry per nonempty slot per pass)
      prev_[v] = tail;
      next_[v] = sent;
      next_[tail] = v;
      prev_[sent] = v;
    }
    bucket_[v] = flat;
    max_index_[group] = std::max(max_index_[group], idx);
  }

  bool contains(VertexId v) const { return bucket_[v] != kNoSlot; }

  int group_of(VertexId v) const {
    VP_DCHECK(contains(v), "vertex contained for group query");
    if constexpr (kGroups == 1) {
      return 0;
    } else {
      return bucket_[v] >= stride_ ? 1 : 0;
    }
  }

  Gain key(VertexId v) const {
    VP_DCHECK(contains(v), "vertex contained for key query");
    std::size_t idx = bucket_[v];
    if constexpr (kGroups == 2) {
      if (idx >= stride_) idx -= stride_;
    }
    return static_cast<Gain>(idx) - max_abs_key_;
  }

  std::size_t size(int group) const { return count_[group]; }
  bool empty() const {
    std::size_t total = 0;
    for (int g = 0; g < kGroups; ++g) total += count_[g];
    return total == 0;
  }

  /// Highest key with a nonempty bucket in `group`; group must be
  /// nonempty.  Amortized O(1) over a pass via the descending cursor.
  Gain max_key(int group) const {
    VP_CHECK(count_[group] > 0, "group nonempty for max_key");
    const std::size_t base = n_ + static_cast<std::size_t>(group) * stride_;
    std::size_t idx = max_index_[group];
    while (slot_empty(base + idx)) {
      VP_DCHECK(idx > 0, "nonempty group has a nonempty bucket");
      --idx;
    }
    max_index_[group] = idx;
    return static_cast<Gain>(idx) - max_abs_key_;
  }

  /// Highest nonempty key in `group` strictly below `key`; returns
  /// min_representable_key()-1 if none.
  Gain next_nonempty_below(int group, Gain key) const {
    const std::size_t base = n_ + static_cast<std::size_t>(group) * stride_;
    for (Gain k = key - 1; k >= -max_abs_key_; --k) {
      if (!slot_empty(base + static_cast<std::size_t>(k + max_abs_key_))) {
        return k;
      }
    }
    return -max_abs_key_ - 1;
  }

  /// Head vertex of bucket (group, key); kInvalidVertex if empty.  The
  /// key must be within the representable range.
  VertexId front(int group, Gain key) const {
    const std::size_t sent = n_ + static_cast<std::size_t>(group) * stride_ +
                             static_cast<std::size_t>(key + max_abs_key_);
    const VertexId head = next_[sent];
    return head == static_cast<VertexId>(sent) ? kInvalidVertex : head;
  }

  /// Successor within the same bucket (kInvalidVertex at the end).
  VertexId next(VertexId v) const {
    const VertexId nx = next_[v];
    return nx < n_ ? nx : kInvalidVertex;
  }

  Gain min_representable_key() const { return -max_abs_key_; }
  Gain max_representable_key() const { return max_abs_key_; }

  /// Hint that v's membership/key metadata is about to be read — used by
  /// the refiners' pin walks to overlap the gather latency of upcoming
  /// pins with the current pin's update.
  void prefetch(VertexId v) const { VP_PREFETCH_READ(&bucket_[v]); }

 private:
  bool slot_empty(std::size_t sent) const {
    return next_[sent] == static_cast<VertexId>(sent);
  }

  std::size_t checked_index([[maybe_unused]] VertexId v, Gain key) const {
    VP_DCHECK(!contains(v), "vertex not already contained");
    VP_DCHECK(key >= -max_abs_key_ && key <= max_abs_key_,
              "key " << key << " within representable range " << max_abs_key_);
    return static_cast<std::size_t>(key + max_abs_key_);
  }

  std::size_t n_ = 0;
  std::size_t stride_ = 0;  // buckets per group
  Gain max_abs_key_ = 0;

  // Parallel arrays over the vertex+sentinel id space.
  std::vector<VertexId> next_;
  std::vector<VertexId> prev_;
  // Per-vertex flat bucket slot; kNoSlot when not contained.
  std::vector<std::uint32_t> bucket_;
  // Slots written since the last reset() (empty -> nonempty events).
  std::vector<std::uint32_t> touched_;
  // Lazily maintained upper bound on the max nonempty key index.
  mutable std::size_t max_index_[kGroups] = {};
  std::size_t count_[kGroups] = {};
};

}  // namespace vlsipart
