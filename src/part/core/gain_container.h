// Bucket-array gain container for FM-style partitioners.
//
// Moves are segregated by source partition ("side"), exactly the
// organization the paper describes when discussing highest-gain-bucket
// tie-breaking (Sec. 2.2).  Each side is an array of doubly-linked
// buckets indexed by key (actual gain for classic FM; cumulative delta
// gain for CLIP), with intrusive prev/next links over vertex ids and a
// lazily maintained max-key pointer.
//
// All operations are O(1) except max-key queries, which amortize over the
// monotone descent of the max pointer within a pass.
#pragma once

#include <cstddef>
#include <vector>

#include "src/hypergraph/types.h"
#include "src/part/core/fm_config.h"
#include "src/util/rng.h"

namespace vlsipart {

class GainContainer {
 public:
  GainContainer(std::size_t num_vertices, InsertOrder order);

  /// Clear and size buckets for keys in [-max_abs_key, max_abs_key].
  void reset(Gain max_abs_key);

  /// Insert a free vertex on `side` with the given key.  Position within
  /// the bucket follows the configured InsertOrder (LIFO head / FIFO
  /// tail / random end); rng is only consulted for kRandom.
  void insert(VertexId v, PartId side, Gain key, Rng& rng);

  /// Insert at the bucket head regardless of the configured order.  Used
  /// by CLIP's initial build, which orders the zero-gain bucket heads by
  /// descending initial gain [15].
  void insert_at_head(VertexId v, PartId side, Gain key);

  /// Remove v (must be contained).
  void remove(VertexId v);

  /// Remove and reinsert v with key shifted by delta (nonzero delta-gain
  /// update).
  void update_key(VertexId v, Gain delta, Rng& rng);

  /// Remove and reinsert v at the same key — the "All-dgain" policy's
  /// zero-delta update, which shifts v's position within its bucket.
  void reinsert(VertexId v, Rng& rng);

  bool contains(VertexId v) const { return in_[v]; }
  Gain key(VertexId v) const { return key_[v]; }
  PartId side_of(VertexId v) const { return side_[v]; }

  std::size_t size(PartId side) const { return count_[side]; }
  bool empty() const { return count_[0] + count_[1] == 0; }

  /// Highest key with a nonempty bucket on `side`; side must be nonempty.
  Gain max_key(PartId side) const;

  /// Highest nonempty key on `side` strictly below `key`; returns
  /// min_key()-1 if none.  Used to skip a bucket whose head is illegal.
  Gain next_nonempty_below(PartId side, Gain key) const;

  /// Head vertex of the bucket (kInvalidVertex if empty).
  VertexId bucket_head(PartId side, Gain key) const;
  /// Successor within the same bucket (kInvalidVertex at the end).
  VertexId next_in_bucket(VertexId v) const { return next_[v]; }

  Gain min_representable_key() const { return -max_abs_key_; }
  Gain max_representable_key() const { return max_abs_key_; }

 private:
  std::size_t index_of(Gain key) const {
    return static_cast<std::size_t>(key + max_abs_key_);
  }

  bool pick_head(Rng& rng) const;
  void push(VertexId v, PartId side, Gain key, bool at_head);
  void unlink(VertexId v);

  InsertOrder order_;
  Gain max_abs_key_ = 0;

  // Per-side bucket arrays: head/tail vertex per key index.
  std::vector<VertexId> head_[2];
  std::vector<VertexId> tail_[2];
  // Key indices whose slots were written since the last reset(); reset()
  // clears only these (the key range is O(max weighted degree), the
  // touched set is O(ops per pass)).
  std::vector<std::size_t> touched_[2];
  // Lazily maintained upper bound on the max nonempty key index.
  mutable std::size_t max_index_[2] = {0, 0};
  std::size_t count_[2] = {0, 0};

  // Intrusive per-vertex fields.
  std::vector<VertexId> prev_;
  std::vector<VertexId> next_;
  std::vector<Gain> key_;
  std::vector<PartId> side_;
  std::vector<std::uint8_t> in_;
};

}  // namespace vlsipart
