// Structure-of-arrays gain container for FM-style 2-way partitioners.
//
// Moves are segregated by source partition ("side"), exactly the
// organization the paper describes when discussing highest-gain-bucket
// tie-breaking (Sec. 2.2).  The storage is the shared SoA bucket kernel
// (bucket_array.h): flat parallel next/prev/bucket arrays, sentinel-
// threaded circular bucket lists (branchless insert/remove), a per-side
// dense bucket array with a descending max-gain cursor, and an
// O(touched) sparse reset.  This class adds only FM policy on top —
// the InsertOrder position rule (LIFO head / FIFO tail / random end),
// CLIP's forced head insertion, and defensive key clamping — and every
// method is header-inline so the refiner's inner loop pays no call
// boundary per bucket operation.
//
// All operations are O(1) except max-key queries, which amortize over
// the monotone descent of the max pointer within a pass.
#pragma once

#include <algorithm>
#include <cstddef>

#include "src/hypergraph/types.h"
#include "src/part/core/bucket_array.h"
#include "src/part/core/fm_config.h"
#include "src/util/rng.h"

namespace vlsipart {

class GainContainer {
 public:
  GainContainer(std::size_t num_vertices, InsertOrder order)
      : order_(order), buckets_(num_vertices) {}

  /// Clear and size buckets for keys in [-max_abs_key, max_abs_key].
  void reset(Gain max_abs_key) { buckets_.reset(max_abs_key); }

  /// Insert a free vertex on `side` with the given key.  Position within
  /// the bucket follows the configured InsertOrder (LIFO head / FIFO
  /// tail / random end); rng is only consulted for kRandom.
  void insert(VertexId v, PartId side, Gain key, Rng& rng) {
    if (pick_head(rng)) {
      buckets_.push_front(v, side, key);
    } else {
      buckets_.push_back(v, side, key);
    }
  }

  /// Insert at the bucket head regardless of the configured order.  Used
  /// by CLIP's initial build, which orders the zero-gain bucket heads by
  /// descending initial gain [15].
  void insert_at_head(VertexId v, PartId side, Gain key) {
    buckets_.push_front(v, side, key);
  }

  /// Remove v (must be contained).
  void remove(VertexId v) { buckets_.erase(v); }

  /// Remove and reinsert v with key shifted by delta (nonzero delta-gain
  /// update).
  void update_key(VertexId v, Gain delta, Rng& rng) {
    // Clamp defensively: with CLIP keys (cumulative delta gain) the bound
    // is 2x the weighted degree, which reset() is sized for; clamping
    // preserves ordering at the extremes rather than corrupting memory.
    const Gain new_key =
        std::clamp(buckets_.key(v) + delta, buckets_.min_representable_key(),
                   buckets_.max_representable_key());
    buckets_.move_to(v, new_key, pick_head(rng));
  }

  /// Remove and reinsert v at the same key — the "All-dgain" policy's
  /// zero-delta update, which shifts v's position within its bucket.
  void reinsert(VertexId v, Rng& rng) {
    buckets_.move_to(v, buckets_.key(v), pick_head(rng));
  }

  bool contains(VertexId v) const { return buckets_.contains(v); }
  Gain key(VertexId v) const { return buckets_.key(v); }
  PartId side_of(VertexId v) const {
    return static_cast<PartId>(buckets_.group_of(v));
  }

  std::size_t size(PartId side) const { return buckets_.size(side); }
  bool empty() const { return buckets_.empty(); }

  /// Highest key with a nonempty bucket on `side`; side must be nonempty.
  Gain max_key(PartId side) const { return buckets_.max_key(side); }

  /// Highest nonempty key on `side` strictly below `key`; returns
  /// min_key()-1 if none.  Used to skip a bucket whose head is illegal.
  Gain next_nonempty_below(PartId side, Gain key) const {
    return buckets_.next_nonempty_below(side, key);
  }

  /// Head vertex of the bucket (kInvalidVertex if empty).
  VertexId bucket_head(PartId side, Gain key) const {
    if (key < buckets_.min_representable_key() ||
        key > buckets_.max_representable_key()) {
      return kInvalidVertex;
    }
    return buckets_.front(side, key);
  }
  /// Successor within the same bucket (kInvalidVertex at the end).
  VertexId next_in_bucket(VertexId v) const { return buckets_.next(v); }

  Gain min_representable_key() const {
    return buckets_.min_representable_key();
  }
  Gain max_representable_key() const {
    return buckets_.max_representable_key();
  }

  /// Hint that v's membership/key metadata is about to be read.
  void prefetch(VertexId v) const { buckets_.prefetch(v); }

 private:
  bool pick_head(Rng& rng) const {
    switch (order_) {
      case InsertOrder::kLifo:
        return true;
      case InsertOrder::kFifo:
        return false;
      case InsertOrder::kRandom:
        return rng.bernoulli(0.5);
    }
    return true;
  }

  InsertOrder order_;
  BucketArray<2> buckets_;
};

}  // namespace vlsipart
