// Abstract bipartitioner interface and the flat FM implementation.
//
// A Bipartitioner is a single-start heuristic: given a problem and a
// seeded Rng, it produces one feasible assignment.  Multistart regimes,
// BSF curves and Pareto comparisons (Sec. 3.2) are all built on top of
// this interface by the multistart harness and the eval library, so flat
// FM, CLIP FM and the multilevel engine are compared "apples to apples".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/part/core/fm_config.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/core/parallel_refine.h"
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vlsipart {

class Bipartitioner {
 public:
  virtual ~Bipartitioner() = default;

  virtual std::string name() const = 0;

  /// Run one start: generate (or refine) an assignment into `parts`.
  /// Returns the achieved cut.  Deterministic given the Rng state.
  virtual Weight run(const PartitionProblem& problem, Rng& rng,
                     std::vector<PartId>& parts) = 0;

  /// Like run(), but with the multistart start index made explicit.
  /// Engines whose behavior depends on how many starts they have served
  /// (e.g. InitialScheme::kMixed alternation) must key that behavior on
  /// `start_index` here, so a parallel harness executing starts out of
  /// order reproduces the serial schedule bit-for-bit.  Default ignores
  /// the index and forwards to run().
  virtual Weight run_start(const PartitionProblem& problem, Rng& rng,
                           std::vector<PartId>& parts,
                           std::size_t start_index) {
    (void)start_index;
    return run(problem, rng, parts);
  }

  /// Fresh engine with identical configuration, for use as a private
  /// per-worker instance in parallel multistart.  Returns nullptr when
  /// the engine does not support cloning; parallel harnesses then fall
  /// back to the serial path.
  virtual std::unique_ptr<Bipartitioner> clone() const { return nullptr; }

  /// Cumulative gain-update work over every refine() this engine has
  /// performed (all starts, all levels).  Engines that do not track work
  /// report zeros; harnesses surface the counters as a skip-rate column.
  virtual UpdateWork update_work() const { return {}; }
};

/// Flat (single-level) FM or CLIP partitioner: random feasible initial
/// solution + FM refinement with the configured implicit decisions.
///
/// The partition state and FM refiner (gain container, lock vector, move
/// buffers) are allocated on first run and reused across starts on the
/// same problem, so a multistart loop pays the allocation cost once
/// instead of once per start.
class FlatFmPartitioner final : public Bipartitioner {
 public:
  explicit FlatFmPartitioner(FmConfig config, std::string name = {},
                             InitialScheme initial = InitialScheme::kRandom);

  std::string name() const override { return name_; }
  Weight run(const PartitionProblem& problem, Rng& rng,
             std::vector<PartId>& parts) override;
  Weight run_start(const PartitionProblem& problem, Rng& rng,
                   std::vector<PartId>& parts,
                   std::size_t start_index) override;
  std::unique_ptr<Bipartitioner> clone() const override;

  /// FM statistics of the most recent run (corking diagnostics etc.).
  const FmResult& last_result() const { return last_result_; }

  UpdateWork update_work() const override { return work_; }

  const FmConfig& config() const { return config_; }

 private:
  FmConfig config_;
  std::string name_;
  InitialScheme initial_;
  FmResult last_result_;
  UpdateWork work_;
  std::size_t run_index_ = 0;
  /// Reusable scratch, bound to the problem of the most recent run.  The
  /// refiner only captures graph-derived sizes at construction and reads
  /// balance/fixed through the problem pointer, so rebinding is needed
  /// exactly when the problem object (or its graph) changes.
  const PartitionProblem* bound_problem_ = nullptr;
  const Hypergraph* bound_graph_ = nullptr;
  std::unique_ptr<PartitionState> state_;
  std::unique_ptr<FmRefiner> refiner_;
  /// Parallel-path scratch, used instead of refiner_ when
  /// config_.refine_threads > 1 (the pool is created lazily and owned so
  /// a clone gets private workers).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ParallelFmRefiner> parallel_refiner_;
};

}  // namespace vlsipart
