// Abstract bipartitioner interface and the flat FM implementation.
//
// A Bipartitioner is a single-start heuristic: given a problem and a
// seeded Rng, it produces one feasible assignment.  Multistart regimes,
// BSF curves and Pareto comparisons (Sec. 3.2) are all built on top of
// this interface by the multistart harness and the eval library, so flat
// FM, CLIP FM and the multilevel engine are compared "apples to apples".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/part/core/fm_config.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"

namespace vlsipart {

class Bipartitioner {
 public:
  virtual ~Bipartitioner() = default;

  virtual std::string name() const = 0;

  /// Run one start: generate (or refine) an assignment into `parts`.
  /// Returns the achieved cut.  Deterministic given the Rng state.
  virtual Weight run(const PartitionProblem& problem, Rng& rng,
                     std::vector<PartId>& parts) = 0;
};

/// Flat (single-level) FM or CLIP partitioner: random feasible initial
/// solution + FM refinement with the configured implicit decisions.
class FlatFmPartitioner final : public Bipartitioner {
 public:
  explicit FlatFmPartitioner(FmConfig config, std::string name = {},
                             InitialScheme initial = InitialScheme::kRandom);

  std::string name() const override { return name_; }
  Weight run(const PartitionProblem& problem, Rng& rng,
             std::vector<PartId>& parts) override;

  /// FM statistics of the most recent run (corking diagnostics etc.).
  const FmResult& last_result() const { return last_result_; }

  const FmConfig& config() const { return config_; }

 private:
  FmConfig config_;
  std::string name_;
  InitialScheme initial_;
  FmResult last_result_;
  std::size_t run_index_ = 0;
};

}  // namespace vlsipart
