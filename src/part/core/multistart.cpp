#include "src/part/core/multistart.h"

#include <limits>

#include "src/util/logging.h"
#include "src/util/timer.h"

namespace vlsipart {

Weight MultistartResult::min_cut() const {
  Weight best = std::numeric_limits<Weight>::max();
  for (const auto& s : starts) {
    if (s.feasible) best = std::min(best, s.cut);
  }
  if (best == std::numeric_limits<Weight>::max()) {
    // No feasible start: report the raw minimum so tables stay readable.
    for (const auto& s : starts) best = std::min(best, s.cut);
  }
  return best;
}

double MultistartResult::avg_cut() const {
  if (starts.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : starts) sum += static_cast<double>(s.cut);
  return sum / static_cast<double>(starts.size());
}

double MultistartResult::avg_cpu_seconds() const {
  if (starts.empty()) return 0.0;
  return total_cpu_seconds / static_cast<double>(starts.size());
}

Sample MultistartResult::cut_sample() const {
  Sample s;
  s.reserve(starts.size());
  for (const auto& r : starts) s.add(static_cast<double>(r.cut));
  return s;
}

Sample MultistartResult::time_sample() const {
  Sample s;
  s.reserve(starts.size());
  for (const auto& r : starts) s.add(r.cpu_seconds);
  return s;
}

MultistartResult run_multistart(const PartitionProblem& problem,
                                Bipartitioner& partitioner,
                                std::size_t num_starts, std::uint64_t seed) {
  MultistartResult result;
  result.starts.reserve(num_starts);
  Rng base(seed);
  std::vector<PartId> parts;
  Weight best = std::numeric_limits<Weight>::max();
  for (std::size_t i = 0; i < num_starts; ++i) {
    Rng rng = base.fork(i);
    CpuTimer timer;
    const Weight cut = partitioner.run(problem, rng, parts);
    StartRecord record;
    record.cut = cut;
    record.cpu_seconds = timer.elapsed();
    record.feasible = check_solution(problem, parts).empty();
    result.total_cpu_seconds += record.cpu_seconds;
    if (record.feasible && cut < best) {
      best = cut;
      result.best_parts = parts;
    }
    result.starts.push_back(record);
  }
  result.best_cut =
      (best == std::numeric_limits<Weight>::max()) ? 0 : best;
  return result;
}

PrunedMultistartResult run_multistart_pruned(const PartitionProblem& problem,
                                             const FmConfig& config,
                                             std::size_t num_starts,
                                             std::uint64_t seed,
                                             const PruneConfig& prune) {
  PrunedMultistartResult out;
  MultistartResult& result = out.result;
  result.starts.reserve(num_starts);
  Rng base(seed);
  Weight best = std::numeric_limits<Weight>::max();
  Weight best_pass1 = std::numeric_limits<Weight>::max();

  FmConfig pass1_config = config;
  pass1_config.max_passes = 1;

  for (std::size_t i = 0; i < num_starts; ++i) {
    Rng rng = base.fork(i);
    CpuTimer timer;

    auto parts = random_initial(problem, rng);
    PartitionState state(*problem.graph);
    state.assign(parts);
    FmRefiner pass1(problem, pass1_config);
    pass1.refine(state, rng);
    const Weight pass1_cut = state.cut();

    StartRecord record;
    const bool doomed =
        best_pass1 != std::numeric_limits<Weight>::max() &&
        static_cast<double>(pass1_cut) >
            prune.factor * static_cast<double>(best_pass1);
    best_pass1 = std::min(best_pass1, pass1_cut);

    if (doomed) {
      record.cut = pass1_cut;
      record.cpu_seconds = timer.elapsed();
      record.feasible = false;  // discarded; never competes for best
      ++out.pruned_starts;
      out.pruned_cpu_seconds += record.cpu_seconds;
    } else {
      FmRefiner rest(problem, config);
      rest.refine(state, rng);
      record.cut = state.cut();
      record.cpu_seconds = timer.elapsed();
      record.feasible = check_solution(problem, state.parts()).empty();
      if (record.feasible && record.cut < best) {
        best = record.cut;
        result.best_parts = state.parts();
      }
    }
    result.total_cpu_seconds += record.cpu_seconds;
    result.starts.push_back(record);
  }
  result.best_cut = (best == std::numeric_limits<Weight>::max()) ? 0 : best;
  return out;
}

MultistartResult run_multistart_budgeted(const PartitionProblem& problem,
                                         Bipartitioner& partitioner,
                                         double cpu_budget_seconds,
                                         std::uint64_t seed,
                                         std::size_t max_starts) {
  MultistartResult result;
  Rng base(seed);
  std::vector<PartId> parts;
  Weight best = std::numeric_limits<Weight>::max();
  std::size_t i = 0;
  while (true) {
    Rng rng = base.fork(i);
    CpuTimer timer;
    const Weight cut = partitioner.run(problem, rng, parts);
    StartRecord record;
    record.cut = cut;
    record.cpu_seconds = timer.elapsed();
    record.feasible = check_solution(problem, parts).empty();
    result.total_cpu_seconds += record.cpu_seconds;
    if (record.feasible && cut < best) {
      best = cut;
      result.best_parts = parts;
    }
    result.starts.push_back(record);
    ++i;
    if (result.total_cpu_seconds >= cpu_budget_seconds) break;
    if (max_starts > 0 && i >= max_starts) break;
  }
  result.best_cut = (best == std::numeric_limits<Weight>::max()) ? 0 : best;
  return result;
}

}  // namespace vlsipart
